//! Mini-mdtest CLI: run a metadata phase against any modeled filesystem
//! and print latency + closed-loop throughput, like one cell of the
//! paper's evaluation.
//!
//! Usage:
//!   cargo run --release --example metadata_bench -- \
//!       [system] [servers] [clients] [items] [phase] [--transport T]
//!
//!   system: loco-c | loco-nc | loco-cf | ceph | gluster | lustre-d1 |
//!           lustre-d2 | indexfs | rawkv        (default loco-c)
//!   phase:  touch | mkdir | file-stat | dir-stat | rm | rmdir |
//!           readdir | chmod | chown | truncate | access (default touch)
//!   --transport sim | thread | tcp  (default sim; LocoFS systems only —
//!           tcp boots in-process localhost servers, or dials an
//!           external `locod` cluster when LOCO_CLUSTER is set)

use locofs::baselines::{
    CephFsModel, DistFs, GlusterFsModel, IndexFsModel, LocoAdapter, LustreFsModel, LustreVariant,
    RawKvFs,
};
use locofs::client::{LocoConfig, Transport};
use locofs::mdtest::{
    collect_traces, dump_phase_slow_ops, gen_phase, gen_setup, run_latency, run_setup, BenchReport,
    PhaseKind, TreeSpec,
};
use locofs::sim::des::ClosedLoopSim;

fn make(system: &str, servers: u16, transport: Transport) -> Box<dyn DistFs> {
    match system {
        "loco-c" => Box::new(LocoAdapter::with_transport(
            LocoConfig::with_servers(servers),
            transport,
        )),
        "loco-nc" => Box::new(LocoAdapter::with_transport(
            LocoConfig::with_servers(servers).no_cache(),
            transport,
        )),
        "loco-cf" => Box::new(LocoAdapter::with_transport(
            LocoConfig::with_servers(servers).coupled(),
            transport,
        )),
        "ceph" => Box::new(CephFsModel::new(servers)),
        "gluster" => Box::new(GlusterFsModel::new(servers)),
        "lustre-d1" => Box::new(LustreFsModel::new(LustreVariant::Dne1, servers)),
        "lustre-d2" => Box::new(LustreFsModel::new(LustreVariant::Dne2, servers)),
        "indexfs" => Box::new(IndexFsModel::new(servers)),
        "rawkv" => Box::new(RawKvFs::new()),
        other => panic!("unknown system {other:?}"),
    }
}

fn phase(name: &str) -> PhaseKind {
    match name {
        "touch" => PhaseKind::FileCreate,
        "mkdir" => PhaseKind::DirCreate,
        "file-stat" => PhaseKind::FileStat,
        "dir-stat" => PhaseKind::DirStat,
        "rm" => PhaseKind::FileRemove,
        "rmdir" => PhaseKind::DirRemove,
        "readdir" => PhaseKind::Readdir,
        "chmod" => PhaseKind::ModChmod,
        "chown" => PhaseKind::ModChown,
        "truncate" => PhaseKind::ModTruncate,
        "access" => PhaseKind::ModAccess,
        other => panic!("unknown phase {other:?}"),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut transport = Transport::Sim;
    let mut args = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if a == "--transport" {
            let val = it.next().expect("--transport needs a value");
            transport = Transport::parse(val)
                .unwrap_or_else(|| panic!("unknown transport {val:?} (sim/thread/tcp)"));
        } else if let Some(val) = a.strip_prefix("--transport=") {
            transport = Transport::parse(val)
                .unwrap_or_else(|| panic!("unknown transport {val:?} (sim/thread/tcp)"));
        } else {
            args.push(a.clone());
        }
    }
    let system = args
        .first()
        .map(String::as_str)
        .unwrap_or("loco-c")
        .to_string();
    let servers: u16 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let clients: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(64);
    let items: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(100);
    let kind = phase(args.get(4).map(String::as_str).unwrap_or("touch"));

    println!(
        "system={system} servers={servers} clients={clients} items/client={items} phase={} transport={transport}",
        kind.label()
    );

    // Single-client latency.
    let mut fs = make(&system, servers, transport);
    let spec1 = TreeSpec::new(1, items);
    run_setup(&mut *fs, &gen_setup(&spec1)).unwrap();
    if kind.needs_files() {
        let pre = match kind {
            PhaseKind::DirStat | PhaseKind::DirRemove => PhaseKind::DirCreate,
            _ => PhaseKind::FileCreate,
        };
        for op in &gen_phase(&spec1, pre)[0] {
            let _ = op.apply(&mut *fs);
            let _ = fs.take_trace();
        }
    }
    let run = run_latency(&mut *fs, &gen_phase(&spec1, kind)[0]);
    println!(
        "latency : mean {:.1} µs ({:.2}× RTT), errors {}",
        run.mean_us(),
        run.mean_rtts(fs.rtt().max(1)),
        run.errors
    );
    dump_phase_slow_ops(&format!("{system} {} latency", kind.label()), &mut *fs);
    let mut report = BenchReport::new("mdtest");
    let labels = (system.clone(), servers.to_string(), kind.label());
    report.push(
        "latency_mean_us",
        &[
            ("system", &labels.0),
            ("servers", &labels.1),
            ("phase", labels.2),
        ],
        run.mean_us(),
    );

    // Closed-loop throughput.
    let mut fs = make(&system, servers, transport);
    let spec = TreeSpec::new(clients, items);
    run_setup(&mut *fs, &gen_setup(&spec)).unwrap();
    if kind.needs_files() {
        let pre = match kind {
            PhaseKind::DirStat | PhaseKind::DirRemove => PhaseKind::DirCreate,
            _ => PhaseKind::FileCreate,
        };
        for stream in gen_phase(&spec, pre) {
            for op in stream {
                let _ = op.apply(&mut *fs);
                let _ = fs.take_trace();
            }
        }
    }
    let traces = collect_traces(&mut *fs, &gen_phase(&spec, kind));
    let sim = ClosedLoopSim {
        rtt: fs.rtt(),
        ..Default::default()
    };
    let out = sim.run(traces);
    println!(
        "throughput: {:.0} IOPS ({} ops, mean loaded latency {:.1} µs)",
        out.iops(),
        out.ops_completed,
        out.mean_latency() / 1000.0
    );
    dump_phase_slow_ops(&format!("{system} {} throughput", kind.label()), &mut *fs);
    report.push(
        "iops",
        &[
            ("system", &labels.0),
            ("servers", &labels.1),
            ("phase", labels.2),
        ],
        out.iops(),
    );
    report.write();
}
