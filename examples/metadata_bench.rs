//! Mini-mdtest CLI: run a metadata phase against any modeled filesystem
//! and print latency + closed-loop throughput, like one cell of the
//! paper's evaluation.
//!
//! Usage:
//!   cargo run --release --example metadata_bench -- \
//!       [system] [servers] [clients] [items] [phase] [--transport T]
//!       [--clients N] [--pipeline D] [--sync-policy P]
//!
//!   system: loco-c | loco-nc | loco-cf | ceph | gluster | lustre-d1 |
//!           lustre-d2 | indexfs | rawkv        (default loco-c)
//!   phase:  touch | mkdir | file-stat | dir-stat | rm | rmdir |
//!           readdir | chmod | chown | truncate | access (default touch)
//!   --transport sim | thread | tcp  (default sim; LocoFS systems only —
//!           tcp boots in-process localhost servers, or dials an
//!           external `locod` cluster when LOCO_CLUSTER is set)
//!   --clients N     closed-loop client count (same as positional 3)
//!   --pipeline D    wire mode: D concurrent requests per client
//!                   (default 1)
//!   --sync-policy P wire mode WAL durability: os-managed | always
//!                   (default os-managed)
//!
//! With `--transport tcp` and a LocoFS system, an extra *wire
//! throughput* section runs after the modeled sections: real client
//! threads against in-process durable servers, measured in wall-clock
//! op/s, once with WAL group commit disabled (the thread-per-connection
//! seed's fsync-per-RPC behavior) and once enabled — so the group
//! commit win and the fsyncs-per-op are recorded numbers in
//! `results/BENCH_fig08_tcp_pipelined.json`, not claims.

use locofs::baselines::{
    CephFsModel, DistFs, GlusterFsModel, IndexFsModel, LocoAdapter, LustreFsModel, LustreVariant,
    RawKvFs,
};
use locofs::client::{LocoConfig, Transport, TransportCluster};
use locofs::kv::SyncPolicy;
use locofs::mdtest::{
    collect_traces, dump_phase_slow_ops, gen_phase, gen_setup, run_latency, run_setup, BenchReport,
    PhaseKind, TreeSpec,
};
use locofs::sim::des::ClosedLoopSim;

fn make(system: &str, servers: u16, transport: Transport) -> Box<dyn DistFs> {
    match system {
        "loco-c" => Box::new(LocoAdapter::with_transport(
            LocoConfig::with_servers(servers),
            transport,
        )),
        "loco-nc" => Box::new(LocoAdapter::with_transport(
            LocoConfig::with_servers(servers).no_cache(),
            transport,
        )),
        "loco-cf" => Box::new(LocoAdapter::with_transport(
            LocoConfig::with_servers(servers).coupled(),
            transport,
        )),
        "ceph" => Box::new(CephFsModel::new(servers)),
        "gluster" => Box::new(GlusterFsModel::new(servers)),
        "lustre-d1" => Box::new(LustreFsModel::new(LustreVariant::Dne1, servers)),
        "lustre-d2" => Box::new(LustreFsModel::new(LustreVariant::Dne2, servers)),
        "indexfs" => Box::new(IndexFsModel::new(servers)),
        "rawkv" => Box::new(RawKvFs::new()),
        other => panic!("unknown system {other:?}"),
    }
}

fn phase(name: &str) -> PhaseKind {
    match name {
        "touch" => PhaseKind::FileCreate,
        "mkdir" => PhaseKind::DirCreate,
        "file-stat" => PhaseKind::FileStat,
        "dir-stat" => PhaseKind::DirStat,
        "rm" => PhaseKind::FileRemove,
        "rmdir" => PhaseKind::DirRemove,
        "readdir" => PhaseKind::Readdir,
        "chmod" => PhaseKind::ModChmod,
        "chown" => PhaseKind::ModChown,
        "truncate" => PhaseKind::ModTruncate,
        "access" => PhaseKind::ModAccess,
        other => panic!("unknown phase {other:?}"),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut transport = Transport::Sim;
    let mut clients_flag: Option<usize> = None;
    let mut pipeline: usize = 1;
    let mut sync_policy = SyncPolicy::OsManaged;
    let mut args = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        // Accept both `--flag VALUE` and `--flag=VALUE`.
        let mut flag_val = |name: &str| -> Option<String> {
            if a == name {
                Some(
                    it.next()
                        .unwrap_or_else(|| panic!("{name} needs a value"))
                        .clone(),
                )
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(val) = flag_val("--transport") {
            transport = Transport::parse(&val)
                .unwrap_or_else(|| panic!("unknown transport {val:?} (sim/thread/tcp)"));
        } else if let Some(val) = flag_val("--clients") {
            clients_flag = Some(val.parse().expect("--clients takes a number"));
        } else if let Some(val) = flag_val("--pipeline") {
            pipeline = val.parse().expect("--pipeline takes a number");
            assert!(pipeline >= 1, "--pipeline must be at least 1");
        } else if let Some(val) = flag_val("--sync-policy") {
            sync_policy = SyncPolicy::parse(&val)
                .unwrap_or_else(|| panic!("unknown sync policy {val:?} (os-managed/always)"));
        } else {
            args.push(a.clone());
        }
    }
    let system = args
        .first()
        .map(String::as_str)
        .unwrap_or("loco-c")
        .to_string();
    let servers: u16 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let clients: usize = clients_flag
        .or_else(|| args.get(2).and_then(|a| a.parse().ok()))
        .unwrap_or(64);
    let items: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(100);
    let kind = phase(args.get(4).map(String::as_str).unwrap_or("touch"));

    println!(
        "system={system} servers={servers} clients={clients} items/client={items} phase={} transport={transport}",
        kind.label()
    );

    // Single-client latency.
    let mut fs = make(&system, servers, transport);
    let spec1 = TreeSpec::new(1, items);
    run_setup(&mut *fs, &gen_setup(&spec1)).unwrap();
    if kind.needs_files() {
        let pre = match kind {
            PhaseKind::DirStat | PhaseKind::DirRemove => PhaseKind::DirCreate,
            _ => PhaseKind::FileCreate,
        };
        for op in &gen_phase(&spec1, pre)[0] {
            let _ = op.apply(&mut *fs);
            let _ = fs.take_trace();
        }
    }
    let run = run_latency(&mut *fs, &gen_phase(&spec1, kind)[0]);
    println!(
        "latency : mean {:.1} µs ({:.2}× RTT), errors {}",
        run.mean_us(),
        run.mean_rtts(fs.rtt().max(1)),
        run.errors
    );
    dump_phase_slow_ops(&format!("{system} {} latency", kind.label()), &mut *fs);
    let mut report = BenchReport::new("mdtest");
    let labels = (system.clone(), servers.to_string(), kind.label());
    report.push(
        "latency_mean_us",
        &[
            ("system", &labels.0),
            ("servers", &labels.1),
            ("phase", labels.2),
        ],
        run.mean_us(),
    );

    // Closed-loop throughput.
    let mut fs = make(&system, servers, transport);
    let spec = TreeSpec::new(clients, items);
    run_setup(&mut *fs, &gen_setup(&spec)).unwrap();
    if kind.needs_files() {
        let pre = match kind {
            PhaseKind::DirStat | PhaseKind::DirRemove => PhaseKind::DirCreate,
            _ => PhaseKind::FileCreate,
        };
        for stream in gen_phase(&spec, pre) {
            for op in stream {
                let _ = op.apply(&mut *fs);
                let _ = fs.take_trace();
            }
        }
    }
    let traces = collect_traces(&mut *fs, &gen_phase(&spec, kind));
    let sim = ClosedLoopSim {
        rtt: fs.rtt(),
        ..Default::default()
    };
    let out = sim.run(traces);
    println!(
        "throughput: {:.0} IOPS ({} ops, mean loaded latency {:.1} µs)",
        out.iops(),
        out.ops_completed,
        out.mean_latency() / 1000.0
    );
    dump_phase_slow_ops(&format!("{system} {} throughput", kind.label()), &mut *fs);
    report.push(
        "iops",
        &[
            ("system", &labels.0),
            ("servers", &labels.1),
            ("phase", labels.2),
        ],
        out.iops(),
    );
    report.write();

    // Wall-clock wire throughput (TCP + LocoFS systems only): the
    // sections above replay virtual costs; this one measures the real
    // server core — sockets, event loop, WAL, fsync — before and after
    // cross-connection group commit.
    if transport == Transport::Tcp && system.starts_with("loco") {
        wire_bench(&system, servers, clients, pipeline, items, sync_policy);
    }
}

/// One wall-clock wire run: `clients * pipeline` threads sharing a
/// `clients`-wide connection pool per server, `items` creates each,
/// against in-process durable TCP servers. Returns (ops/s, WAL fsyncs).
fn wire_run(
    config: &LocoConfig,
    clients: usize,
    pipeline: usize,
    items: usize,
    group_commit: bool,
) -> (f64, u64) {
    // All three knobs are read at boot time: pool width when endpoints
    // dial, server core and group commit when `serve_tcp` starts. The
    // baseline arm runs the actual seed discipline — thread-per-
    // connection core, fsync inline per acked RPC — not merely the
    // event loop with batching disabled.
    std::env::set_var("LOCO_RPC_CONNS", clients.to_string());
    std::env::set_var(
        "LOCO_SERVER_CORE",
        if group_commit { "event" } else { "threaded" },
    );
    std::env::set_var("LOCO_GROUP_COMMIT", if group_commit { "on" } else { "off" });
    let cluster = TransportCluster::new(config.clone(), Transport::Tcp);
    let registry = cluster.registry.clone();
    let threads = clients * pipeline;

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let mut c = cluster.client();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            c.mkdir(&format!("/wire{t}"), 0o755).expect("setup dir");
            barrier.wait();
            for i in 0..items {
                c.create(&format!("/wire{t}/f{i}"), 0o644).expect("create");
            }
        }));
    }
    barrier.wait();
    let t0 = std::time::Instant::now();
    for h in handles {
        h.join().expect("wire client thread");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);

    // Drain the cluster: the shutdown maintenance pass publishes each
    // role's final WAL counters into the shared registry.
    let (num_dms, num_fms, num_ost) = (
        cluster.config.num_dms.max(1),
        cluster.config.num_fms,
        cluster.config.num_ost,
    );
    drop(cluster);
    let mut fsyncs = 0u64;
    for (role, n) in [("dms", num_dms), ("fms", num_fms), ("ost", num_ost)] {
        for i in 0..n {
            let idx = i.to_string();
            fsyncs += registry
                .gauge("loco_wal_fsyncs", &[("role", role), ("server", &idx)])
                .get()
                .max(0) as u64;
        }
    }
    ((threads * items) as f64 / secs, fsyncs)
}

/// The before/after group-commit comparison at equal durability, with
/// the result recorded in `results/BENCH_fig08_tcp_pipelined.json`.
fn wire_bench(
    system: &str,
    servers: u16,
    clients: usize,
    pipeline: usize,
    items: usize,
    sync_policy: SyncPolicy,
) {
    let scratch = std::env::temp_dir().join(format!("loco-wire-bench-{}", std::process::id()));
    // Short wall-clock runs are dominated by scheduler noise; floor the
    // per-thread op count so each trial lasts long enough to average it
    // out.
    let items = items.max(200);
    let ops = (clients * pipeline * items) as f64;
    let policy_label = match sync_policy {
        SyncPolicy::EveryRecord => "always",
        SyncPolicy::OsManaged => "os-managed",
    };
    println!(
        "wire     : {clients} clients x {pipeline} pipelined, {items} creates each, \
         sync-policy {policy_label}"
    );
    println!("wire     : off = thread-per-connection seed core, on = event loop + group commit");

    // Best of TRIALS per configuration, with the off/on arms
    // *interleaved* so drifting background load hits both arms alike
    // rather than biasing whichever ran second. The best run is the one
    // least disturbed by unrelated scheduling — standard practice for
    // peak-throughput comparisons. Each trial boots a fresh cluster on
    // a fresh WAL.
    const TRIALS: usize = 5;
    let arms = [("off", false), ("on", true)];
    let mut best: [Option<(f64, u64)>; 2] = [None, None];
    for trial in 0..TRIALS {
        for (arm, (tag, group_commit)) in arms.iter().enumerate() {
            let dir = scratch.join(format!("{tag}{trial}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("wire bench scratch dir");
            let config = LocoConfig::with_servers(servers).durable(&dir, sync_policy);
            let run = wire_run(&config, clients, pipeline, items, *group_commit);
            if best[arm].is_none_or(|b| run.0 > b.0) {
                best[arm] = Some(run);
            }
        }
    }
    let mut results = Vec::new();
    for (arm, (tag, _)) in arms.iter().enumerate() {
        let (ops_per_s, fsyncs) = best[arm].expect("at least one trial");
        println!(
            "wire     : group-commit {tag:3} {ops_per_s:8.0} op/s, {fsyncs} wal fsyncs \
             ({:.3} fsyncs/op, best of {TRIALS})",
            fsyncs as f64 / ops
        );
        results.push((*tag, ops_per_s, fsyncs));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let (_, off_ops, off_fsyncs) = results[0];
    let (_, on_ops, on_fsyncs) = results[1];
    println!(
        "wire     : fsyncs {off_fsyncs} -> {on_fsyncs}, throughput {off_ops:.0} -> {on_ops:.0} \
         op/s ({:.2}x) with group commit",
        on_ops / off_ops.max(1e-9)
    );

    let mut report = BenchReport::new("fig08_tcp_pipelined");
    let (c, p, s) = (
        clients.to_string(),
        pipeline.to_string(),
        servers.to_string(),
    );
    for (tag, ops_per_s, fsyncs) in results {
        let labels = [
            ("system", system),
            ("servers", s.as_str()),
            ("clients", c.as_str()),
            ("pipeline", p.as_str()),
            ("sync_policy", policy_label),
            ("group_commit", tag),
        ];
        report.push("wire_ops_per_s", &labels, ops_per_s);
        report.push("wal_fsyncs", &labels, fsyncs as f64);
        report.push("fsyncs_per_op", &labels, fsyncs as f64 / ops);
    }
    report.write();
}
