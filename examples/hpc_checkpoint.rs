//! HPC checkpoint/restart — the workload class the paper's introduction
//! motivates (earth simulation / weather forecast applications that
//! "store files in a specific set of directories", §3.2.2).
//!
//! N simulated MPI ranks each write a checkpoint file per step into a
//! per-rank directory, then a restart phase reads the latest step back.
//! The run reports metadata round trips and shows why the d-inode
//! client cache matters for this directory-local pattern.
//!
//! Run with: `cargo run --release --example hpc_checkpoint`

use locofs::client::{LocoCluster, LocoConfig};
use locofs::types::Perm;

const RANKS: usize = 32;
const STEPS: usize = 8;
const CKPT_BYTES: usize = 64 * 1024;

fn run(cache: bool) -> (u64, usize) {
    let config = if cache {
        LocoConfig::with_servers(8)
    } else {
        LocoConfig::with_servers(8).no_cache()
    };
    let cluster = LocoCluster::new(config);
    let mut fs = cluster.client();
    let rtt = fs.rtt();

    // Job prologue: one directory per rank.
    fs.mkdir("/ckpt", 0o755).unwrap();
    for rank in 0..RANKS {
        fs.mkdir(&format!("/ckpt/rank{rank:04}"), 0o755).unwrap();
    }

    // Checkpoint phases.
    let payload = vec![0xCCu8; CKPT_BYTES];
    let mut total_ns = 0u64;
    let mut total_rpcs = 0usize;
    for step in 0..STEPS {
        for rank in 0..RANKS {
            let path = format!("/ckpt/rank{rank:04}/step{step:05}.ckpt");
            let mut fh = fs.create(&path, 0o644).unwrap();
            let t = fs.take_trace();
            total_rpcs += t.visits.len();
            total_ns += t.unloaded_latency(rtt);
            fs.write(&mut fh, 0, &payload).unwrap();
            let t = fs.take_trace();
            total_rpcs += t.visits.len();
            total_ns += t.unloaded_latency(rtt);
        }
    }

    // Restart: read the last step back and verify.
    for rank in 0..RANKS {
        let path = format!("/ckpt/rank{rank:04}/step{:05}.ckpt", STEPS - 1);
        let fh = fs.open(&path, Perm::Read).unwrap();
        let data = fs.read(&fh, 0, fh.size).unwrap();
        assert_eq!(data.len(), CKPT_BYTES);
        let t = fs.take_trace();
        total_rpcs += t.visits.len();
    }

    (total_ns, total_rpcs)
}

fn main() {
    println!(
        "checkpoint workload: {RANKS} ranks × {STEPS} steps × {CKPT_BYTES} B + restart read\n"
    );
    let (ns_c, rpc_c) = run(true);
    let (ns_nc, rpc_nc) = run(false);
    println!(
        "with d-inode cache   : {rpc_c:6} metadata/data RPCs, checkpoint path {:.1} ms virtual",
        ns_c as f64 / 1e6
    );
    println!(
        "without cache        : {rpc_nc:6} metadata/data RPCs, checkpoint path {:.1} ms virtual",
        ns_nc as f64 / 1e6
    );
    println!(
        "\ncache removed {} DMS lookups — checkpoint apps have exactly the\n\
         directory locality §3.2.2 argues the client cache exploits.",
        rpc_nc - rpc_c
    );
}
