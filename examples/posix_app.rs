//! A small "application" written against the LocoLib POSIX layer —
//! the recompile-against-LocoLib path the paper describes for clients
//! (§3.1): a log-structured event recorder that appends events, rotates
//! files, and replays them back.
//!
//! Run with: `cargo run --release --example posix_app`

use locofs::client::{LocoCluster, LocoConfig};
use locofs::posix::{OpenFlags, PosixFs, Whence};

const EVENTS: usize = 250;
const ROTATE_EVERY: usize = 100;

fn main() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = PosixFs::new(cluster.client());

    fs.mkdir("/var", 0o755).unwrap();
    fs.mkdir("/var/log", 0o755).unwrap();

    // --- write phase: append events, rotating the log file ---
    let mut segment = 0;
    let mut fd = fs
        .open(
            "/var/log/events.0",
            OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::APPEND,
            0o640,
        )
        .unwrap();
    for i in 0..EVENTS {
        if i > 0 && i % ROTATE_EVERY == 0 {
            fs.close(fd).unwrap();
            segment += 1;
            fd = fs
                .open(
                    &format!("/var/log/events.{segment}"),
                    OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::APPEND,
                    0o640,
                )
                .unwrap();
        }
        let line = format!("event {i:06}: sensor={} value={}\n", i % 7, i * 3);
        fs.write(fd, line.as_bytes()).unwrap();
    }
    fs.close(fd).unwrap();

    // --- replay phase: read every segment back, count events ---
    let mut segments = fs.readdir("/var/log").unwrap();
    segments.sort();
    let mut replayed = 0;
    let mut bytes = 0usize;
    for seg in &segments {
        let path = format!("/var/log/{seg}");
        let fd = fs.open(&path, OpenFlags::RDONLY, 0).unwrap();
        let size = fs.fstat(fd).unwrap().size as usize;
        let mut buf = vec![0u8; size];
        fs.lseek(fd, 0, Whence::Set).unwrap();
        let n = fs.read(fd, &mut buf).unwrap();
        assert_eq!(n, size);
        replayed += buf.iter().filter(|&&b| b == b'\n').count();
        bytes += n;
        fs.close(fd).unwrap();
    }
    fs.sync();

    println!("wrote {EVENTS} events across {} segments", segments.len());
    println!("replayed {replayed} events ({bytes} bytes) — all accounted for");
    assert_eq!(replayed, EVENTS);
    assert_eq!(fs.open_fds(), 0, "no descriptor leaks");

    // Demonstrate rotation cleanup: keep only the newest segment.
    for seg in &segments[..segments.len() - 1] {
        fs.unlink(&format!("/var/log/{seg}")).unwrap();
    }
    println!(
        "after cleanup: {:?} remain",
        fs.readdir("/var/log").unwrap()
    );
}
