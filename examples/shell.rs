//! An interactive/scriptable shell over a LocoFS cluster — handy for
//! poking at the namespace and watching per-operation RPC traces.
//!
//! Run the built-in demo script:
//!   cargo run --release --example shell
//! Or pipe your own commands:
//!   echo -e "mkdir /x\ntouch /x/f\nls /x" | cargo run --release --example shell -- -
//!
//! Commands: mkdir P | rmdir P | touch P | rm P | ls P | stat P |
//!           write P TEXT | cat P | mv OLD NEW | chmod MODE P |
//!           trace on|off | slow | dump-ops [PATH] | help
//!
//! `slow` prints the flight recorder's slowest sampled ops with their
//! layer breakdown; `dump-ops` exports them as a Chrome trace (load in
//! `about://tracing` or Perfetto). Sampling defaults to `slow`; set
//! `LOCO_TRACE=all|sample:N|off` to override.

use locofs::client::{LocoCluster, LocoConfig, TraceMode};
use locofs::types::{DirentKind, Perm};
use std::io::BufRead;

const DEMO: &str = "\
mkdir /home
mkdir /home/alice
touch /home/alice/notes.txt
write /home/alice/notes.txt loosely-coupled metadata is fast
cat /home/alice/notes.txt
stat /home/alice/notes.txt
chmod 600 /home/alice/notes.txt
stat /home/alice/notes.txt
mkdir /home/alice/projects
touch /home/alice/projects/paper.tex
ls /home/alice
trace on
mv /home/alice /home/alice-archived
ls /home/alice-archived
trace off
rm /home/alice-archived/notes.txt
ls /home/alice-archived
slow
";

fn main() {
    let cluster = LocoCluster::new(
        LocoConfig::with_servers(4).traced(TraceMode::from_env_or(TraceMode::All)),
    );
    let mut fs = cluster.client();
    let mut show_trace = false;

    let args: Vec<String> = std::env::args().collect();
    let from_stdin = args.get(1).map(String::as_str) == Some("-");
    let script: Vec<String> = if from_stdin {
        std::io::stdin()
            .lock()
            .lines()
            .map_while(Result::ok)
            .collect()
    } else {
        DEMO.lines().map(str::to_string).collect()
    };

    for line in script {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        println!("loco$ {line}");
        let mut parts = line.splitn(3, ' ');
        let cmd = parts.next().unwrap_or("");
        let a1 = parts.next().unwrap_or("");
        let a2 = parts.next().unwrap_or("");
        let result: Result<String, locofs::types::FsError> = match cmd {
            "mkdir" => fs.mkdir(a1, 0o755).map(|_| String::new()),
            "rmdir" => fs.rmdir(a1).map(|_| String::new()),
            "touch" => fs.create(a1, 0o644).map(|_| String::new()),
            "rm" => fs.unlink(a1).map(|_| String::new()),
            "ls" => fs.readdir(a1).map(|entries| {
                entries
                    .iter()
                    .map(|(n, k)| match k {
                        DirentKind::Dir => format!("{n}/"),
                        DirentKind::File => n.clone(),
                    })
                    .collect::<Vec<_>>()
                    .join("  ")
            }),
            "stat" => match fs.stat_file(a1) {
                Ok(st) => Ok(format!(
                    "file mode={:o} uid={} size={} uuid={}",
                    st.access.mode, st.access.uid, st.content.size, st.content.uuid
                )),
                Err(locofs::types::FsError::NotFound) => fs
                    .stat_dir(a1)
                    .map(|d| format!("dir mode={:o} uid={} uuid={}", d.mode, d.uid, d.uuid)),
                Err(e) => Err(e),
            },
            "write" => fs
                .open(a1, Perm::Write)
                .and_then(|mut h| fs.write(&mut h, 0, a2.as_bytes()).map(|_| String::new())),
            "cat" => fs.open(a1, Perm::Read).and_then(|h| {
                fs.read(&h, 0, h.size)
                    .map(|b| String::from_utf8_lossy(&b).to_string())
            }),
            "mv" => match fs.rename_file(a1, a2) {
                Ok(()) => Ok(String::new()),
                Err(locofs::types::FsError::NotFound) => fs
                    .rename_dir(a1, a2)
                    .map(|n| format!("(moved {n} directory inode(s))")),
                Err(e) => Err(e),
            },
            "chmod" => {
                let mode = u32::from_str_radix(a1, 8).unwrap_or(0o644);
                match fs.chmod_file(a2, mode) {
                    Ok(()) => Ok(String::new()),
                    Err(locofs::types::FsError::NotFound) => {
                        fs.chmod_dir(a2, mode).map(|_| String::new())
                    }
                    Err(e) => Err(e),
                }
            }
            "trace" => {
                show_trace = a1 == "on";
                Ok(String::new())
            }
            "slow" => {
                let recs = fs.flight_recorder().slowest();
                if recs.is_empty() {
                    Ok("flight recorder empty (is LOCO_TRACE off?)".into())
                } else {
                    let mut out = String::from("slowest sampled ops:");
                    for r in recs.iter().take(10) {
                        out.push_str(&format!(
                            "\n  {:>8.1}µs  {:<12} {:<24} dominant={}",
                            r.latency_ns as f64 / 1e3,
                            r.op,
                            r.detail,
                            r.dominant_layer()
                        ));
                        for v in &r.visits {
                            out.push_str(&format!(
                                "\n             └ {} {} service={:.1}µs kv={:.1}µs",
                                v.server,
                                v.op,
                                v.service_ns as f64 / 1e3,
                                v.attr("kv_ns") as f64 / 1e3
                            ));
                        }
                    }
                    Ok(out)
                }
            }
            "dump-ops" => {
                let json = fs.flight_recorder().chrome_trace();
                if a1.is_empty() {
                    Ok(json)
                } else {
                    match std::fs::write(a1, &json) {
                        Ok(()) => Ok(format!("wrote {a1} (open in about://tracing)")),
                        Err(e) => Ok(format!("cannot write {a1}: {e}")),
                    }
                }
            }
            "help" => {
                Ok("mkdir rmdir touch rm ls stat write cat mv chmod trace slow dump-ops".into())
            }
            other => Ok(format!("unknown command {other:?} (try help)")),
        };
        match result {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
        let trace = fs.take_trace();
        if show_trace && !trace.visits.is_empty() {
            let detail: Vec<String> = trace
                .visits
                .iter()
                .map(|v| {
                    let class = match v.server.class {
                        locofs::net::class::DMS => "DMS",
                        locofs::net::class::FMS => "FMS",
                        locofs::net::class::OST => "OST",
                        _ => "MDS",
                    };
                    format!(
                        "{class}{} ({:.1}µs)",
                        v.server.index,
                        v.service as f64 / 1e3
                    )
                })
                .collect();
            println!(
                "  trace: {} round trip(s) → {}",
                trace.visits.len(),
                detail.join(", ")
            );
        }
    }
}
