//! fsck demo — the reconstructable-namespace property in action.
//!
//! The flattened directory tree keeps dirents as *derived* data (each
//! inode is the source of truth, as in ReconFS, which the paper cites
//! as the inspiration for its backward indexing). This demo corrupts
//! the derived dirent lists, shows the damage, and rebuilds the entire
//! namespace index from the primary records.
//!
//! Run with: `cargo run --release --example fsck_demo`

use locofs::client::{fsck, fsck_repair, LocoCluster, LocoConfig};

fn main() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();

    // Build a namespace.
    for proj in ["atlas", "borealis", "cirrus"] {
        fs.mkdir(&format!("/{proj}"), 0o755).unwrap();
        fs.mkdir(&format!("/{proj}/results"), 0o755).unwrap();
        for i in 0..8 {
            fs.create(&format!("/{proj}/run{i}.log"), 0o644).unwrap();
            fs.create(&format!("/{proj}/results/out{i}.dat"), 0o644)
                .unwrap();
        }
    }
    let report = fsck(&cluster);
    println!(
        "built namespace: {} directories, {} files — fsck clean: {}",
        report.directories,
        report.files,
        report.is_clean()
    );

    // Corrupt every derived dirent list on the DMS and all FMS.
    let dirs = cluster.dms[0].with_service(|s| s.export_dirs());
    for (_, inode) in &dirs {
        cluster.dms[0].with_service(|s| s.drop_dirent_list(inode.uuid));
        for f in &cluster.fms {
            f.with_service(|s| s.drop_dirent_list(inode.uuid));
        }
    }
    println!("\n-- corruption: every dirent list destroyed --");
    println!(
        "ls /atlas now sees {} entries (should be 9)",
        fs.readdir("/atlas").unwrap().len()
    );
    let report = fsck(&cluster);
    println!(
        "fsck findings: {} (unlisted dirs: {}, unlisted files: {})",
        report.findings(),
        report.unlisted_dirs.len(),
        report.unlisted_files.len()
    );

    // Reconstruct from primary records only.
    let rewritten = fsck_repair(&cluster);
    println!("\n-- repair: {rewritten} dirent lists rebuilt from inodes --");
    let report = fsck(&cluster);
    println!("fsck clean: {}", report.is_clean());
    println!(
        "ls /atlas sees {} entries again",
        fs.readdir("/atlas").unwrap().len()
    );
    assert!(report.is_clean());
    assert_eq!(fs.readdir("/atlas").unwrap().len(), 9);
    // Files still stat with their original uuids (nothing relocated).
    fs.stat_file("/borealis/results/out3.dat").unwrap();
    println!("\nthe namespace index is fully derived data — exactly why the\npaper's backward dirents make the tree reconstructable.");
}
