//! Quickstart: build a LocoFS cluster, run the full metadata + data API,
//! and inspect the per-operation RPC traces that power the paper's
//! figures.
//!
//! Run with: `cargo run --release --example quickstart`

use locofs::client::{LocoCluster, LocoConfig};
use locofs::types::Perm;

fn main() {
    // A cluster with one Directory Metadata Server, 4 File Metadata
    // Servers and an object store, over a simulated 174 µs-RTT network.
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    let rtt = fs.rtt();

    println!("== namespace operations ==");
    fs.mkdir("/projects", 0o755).unwrap();
    fs.mkdir("/projects/demo", 0o755).unwrap();
    let t = fs.take_trace();
    println!(
        "mkdir: {} round trip(s), {:.2} RTT unloaded latency",
        t.visits.len(),
        t.unloaded_latency(rtt) as f64 / rtt as f64
    );

    let mut fh = fs.create("/projects/demo/report.txt", 0o644).unwrap();
    let t = fs.take_trace();
    println!(
        "create: {} round trip(s) (warm d-inode cache → only the FMS)",
        t.visits.len()
    );

    println!("\n== data path ==");
    fs.write(&mut fh, 0, b"LocoFS stores blocks by uuid + blk_num.")
        .unwrap();
    let fh2 = fs.open("/projects/demo/report.txt", Perm::Read).unwrap();
    let body = fs.read(&fh2, 0, fh2.size).unwrap();
    println!(
        "read back {} bytes: {:?}",
        body.len(),
        String::from_utf8_lossy(&body)
    );

    println!("\n== attributes (decoupled file metadata) ==");
    fs.chmod_file("/projects/demo/report.txt", 0o600).unwrap();
    let st = fs.stat_file("/projects/demo/report.txt").unwrap();
    println!(
        "mode = {:o}, size = {}, uuid = {}",
        st.access.mode, st.content.size, st.content.uuid
    );

    println!("\n== rename: only directory inodes move ==");
    fs.mkdir("/projects/demo/results", 0o755).unwrap();
    fs.create("/projects/demo/results/r0.dat", 0o644).unwrap();
    let moved = fs
        .rename_dir("/projects/demo", "/projects/demo-v2")
        .unwrap();
    println!("renamed subtree: {moved} directory inode(s) relocated (files: 0)");
    let st = fs.stat_file("/projects/demo-v2/report.txt").unwrap();
    println!(
        "file reachable at new path, uuid unchanged: {}",
        st.content.uuid
    );

    println!("\n== listing ==");
    for (name, kind) in fs.readdir("/projects/demo-v2").unwrap() {
        println!("  {name} ({kind:?})");
    }

    let (hits, misses) = fs.cache_stats();
    println!("\nd-inode cache: {hits} hits / {misses} misses");
    println!(
        "client virtual time elapsed: {:.2} ms",
        fs.now() as f64 / 1e6
    );
}
