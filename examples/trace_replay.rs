//! Replay a synthetic HPC metadata trace (the §3.4.1-shaped op mix)
//! against LocoFS and print the operator's view: per-server KV
//! activity, FMS load balance, cache effectiveness, and throughput.
//!
//! Run with: `cargo run --release --example trace_replay [clients] [ops]`

use locofs::client::{ClusterReport, LocoCluster, LocoConfig};
use locofs::mdtest::{collect_traces, OpMix, TraceGen};
use locofs::sim::des::ClosedLoopSim;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(32);
    let ops: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(400);

    let cluster = LocoCluster::new(LocoConfig::with_servers(8));
    let mut fs = loco_baselines::LocoAdapter::from_cluster(&cluster);
    use loco_baselines::DistFs;

    // Generate one trace stream per client over disjoint subtrees.
    let mix = OpMix::hpc().with_rename_fraction(1e-3);
    let mut streams = Vec::new();
    for c in 0..clients {
        let root = format!("/job{c:03}");
        fs.mkdir(&root).unwrap();
        let _ = fs.take_trace();
        streams.push(TraceGen::new(0xC0FFEE + c as u64, &root, mix).take(ops));
    }

    ClusterReport::reset(&cluster);
    let traces = collect_traces(&mut fs, &streams);
    let out = ClosedLoopSim::default().run(traces);

    println!(
        "replayed {} ops from {clients} clients ({} per client)\n",
        out.ops_completed, ops
    );
    println!("closed-loop throughput : {:.0} IOPS", out.iops());
    println!(
        "mean / max op latency   : {:.0} µs / {:.0} µs\n",
        out.mean_latency() / 1e3,
        out.max_latency as f64 / 1e3
    );
    let report = ClusterReport::collect(&cluster);
    println!("{report}");
}
