//! Real-concurrency demo: the metadata servers run on their own OS
//! threads behind channels (the `ThreadEndpoint` transport), and many
//! client threads hammer them simultaneously — the deployment shape of
//! the original system, as opposed to the deterministic simulated
//! transport the benchmarks use.
//!
//! Run with: `cargo run --release --example threaded_cluster`

use locofs::dms::{DirServer, DmsBackend, DmsRequest, DmsResponse};
use locofs::fms::{FileServer, FmsMode, FmsRequest, FmsResponse};
use locofs::kv::KvConfig;
use locofs::net::{class, spawn, CallCtx, Endpoint, ServerId};
use locofs::types::HashRing;
use std::time::Instant;

const CLIENT_THREADS: usize = 8;
const DIRS_PER_CLIENT: usize = 200;
const FILES_PER_DIR: usize = 20;
const NUM_FMS: u16 = 4;

fn main() {
    // Spawn one DMS and four FMS, each on its own thread.
    let (dms, _dms_guard) = spawn(
        ServerId::new(class::DMS, 0),
        DirServer::new(DmsBackend::BTree, KvConfig::default()),
    );
    let mut fms = Vec::new();
    let mut fms_guards = Vec::new();
    for i in 0..NUM_FMS {
        let (ep, guard) = spawn(
            ServerId::new(class::FMS, i),
            FileServer::new(i + 1, FmsMode::Decoupled, KvConfig::default()),
        );
        fms.push(ep);
        fms_guards.push(guard);
    }
    let ring = HashRing::new(NUM_FMS);

    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENT_THREADS {
        let dms = dms.clone();
        let fms = fms.clone();
        let ring = ring.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = CallCtx::new();
            let mut created = 0usize;
            for d in 0..DIRS_PER_CLIENT {
                let dir = format!("/t{c}-{d}");
                let resp = dms.call(
                    &mut ctx,
                    DmsRequest::Mkdir {
                        path: dir.clone(),
                        mode: 0o755,
                        uid: 1000,
                        gid: 1000,
                        ts: 0,
                    },
                );
                assert!(matches!(resp, DmsResponse::Done(Ok(_))));
                let DmsResponse::Dir(Ok(inode)) =
                    dms.call(&mut ctx, DmsRequest::GetDir { path: dir })
                else {
                    panic!("GetDir failed")
                };
                for f in 0..FILES_PER_DIR {
                    let name = format!("file{f}");
                    let idx = ring.place_file(inode.uuid.raw(), &name) as usize;
                    let resp = fms[idx].call(
                        &mut ctx,
                        FmsRequest::Create {
                            dir_uuid: inode.uuid,
                            name,
                            mode: 0o644,
                            uid: 1000,
                            gid: 1000,
                            ts: 0,
                        },
                    );
                    assert!(matches!(resp, FmsResponse::Created(Ok(_))), "{resp:?}");
                    created += 1;
                }
            }
            (created, ctx.round_trips())
        }));
    }

    let mut total_files = 0;
    let mut total_rpcs = 0;
    for h in handles {
        let (files, rpcs) = h.join().unwrap();
        total_files += files;
        total_rpcs += rpcs;
    }
    let elapsed = start.elapsed();

    // Cross-check the namespace from a fresh client context.
    let mut ctx = CallCtx::new();
    let DmsResponse::Dir(Ok(_)) = dms.call(
        &mut ctx,
        DmsRequest::GetDir {
            path: "/t0-0".into(),
        },
    ) else {
        panic!("namespace check failed")
    };

    println!(
        "{CLIENT_THREADS} client threads created {total_files} files in {} dirs \
         across 1 DMS + {NUM_FMS} FMS (threaded transport)",
        CLIENT_THREADS * DIRS_PER_CLIENT
    );
    println!(
        "{total_rpcs} RPCs in {:.1} ms wall time → {:.0} RPC/s real concurrency",
        elapsed.as_secs_f64() * 1e3,
        total_rpcs as f64 / elapsed.as_secs_f64()
    );
}
