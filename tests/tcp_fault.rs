//! Fault behavior of the TCP transport: killing a server mid-workload
//! must surface `EIO` (FsError::Io) through retry exhaustion — no
//! hangs, deadlines fire, and the cluster stays usable for every
//! role that is still up.

use locofs::client::{DmsEndpoint, FmsEndpoint, LocoClient, LocoConfig, ObsWiring, OstEndpoint};
use locofs::dms::DirServer;
use locofs::fms::FileServer;
use locofs::kv::KvConfig;
use locofs::net::tcp::{serve_tcp, RetryPolicy, ServeOptions, TcpEndpoint, TcpServerGuard};
use locofs::net::{class, Endpoint, ServerId};
use locofs::obs::{FlightRecorder, MetricsRegistry, SampleMode, Tracer, Watchdog, WatchdogConfig};
use locofs::ostore::ObjectStore;
use locofs::types::FsError;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggressive policy so retry exhaustion completes in well under a
/// second: 2 attempts, 5 ms backoff, 200 ms deadline.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        backoff: Duration::from_millis(5),
        deadline: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(200),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    }
}

struct TcpTestCluster {
    client: LocoClient,
    // Index 0 = DMS, then FMS guards, then OST guards.
    fms_guards: Vec<TcpServerGuard>,
    _other_guards: Vec<TcpServerGuard>,
}

/// 1 DMS + `fms` FMS + 1 OST, all in-process behind real sockets, with
/// the fast retry policy on every client endpoint.
fn boot(fms: u16) -> TcpTestCluster {
    let config = LocoConfig::with_servers(fms);
    let kv = KvConfig::default();
    let registry = Arc::new(MetricsRegistry::new());
    let mut other_guards = Vec::new();

    let dms_id = ServerId::new(class::DMS, 0);
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let g = serve_tcp(
        dms_id,
        DirServer::with_sid(config.dms_backend, kv.clone(), 0),
        l,
        ServeOptions::default(),
    )
    .unwrap();
    let dms: Vec<DmsEndpoint> = vec![Arc::new(TcpEndpoint::<DirServer>::with_policy(
        dms_id,
        &g.addr().to_string(),
        fast_policy(),
    ))];
    other_guards.push(g);

    let mut fms_eps: Vec<FmsEndpoint> = Vec::new();
    let mut fms_guards = Vec::new();
    for i in 0..fms {
        let id = ServerId::new(class::FMS, i);
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let g = serve_tcp(
            id,
            FileServer::new(i + 1, config.fms_mode, kv.clone()),
            l,
            ServeOptions::default(),
        )
        .unwrap();
        fms_eps.push(Arc::new(TcpEndpoint::<FileServer>::with_policy(
            id,
            &g.addr().to_string(),
            fast_policy(),
        )));
        fms_guards.push(g);
    }

    let ost_id = ServerId::new(class::OST, 0);
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let g = serve_tcp(ost_id, ObjectStore::new(kv), l, ServeOptions::default()).unwrap();
    let ost: Vec<OstEndpoint> = vec![Arc::new(TcpEndpoint::<ObjectStore>::with_policy(
        ost_id,
        &g.addr().to_string(),
        fast_policy(),
    ))];
    other_guards.push(g);

    let obs = ObsWiring {
        registry,
        tracer: Arc::new(Tracer::new(SampleMode::Off)),
        flight: Arc::new(FlightRecorder::new(8)),
        watchdog: Arc::new(Watchdog::new(WatchdogConfig::default())),
    };
    let client = LocoClient::with_endpoints(config, dms, fms_eps, ost, obs, 1000, 1000);
    TcpTestCluster {
        client,
        fms_guards,
        _other_guards: other_guards,
    }
}

#[test]
fn killing_an_fms_mid_workload_surfaces_eio_without_hanging() {
    let mut cluster = boot(2);
    let c = &mut cluster.client;
    c.mkdir("/w", 0o755).unwrap();
    // Warm up: files land on both FMS shards.
    for i in 0..12 {
        c.create(&format!("/w/f{i}"), 0o644).unwrap();
    }

    // Kill every FMS (drop closes the listeners and joins the conn
    // threads), keeping DMS and OST alive.
    cluster.fms_guards.clear();

    let start = Instant::now();
    let mut io_errors = 0;
    for i in 0..12 {
        match c.stat_file(&format!("/w/f{i}")) {
            Err(FsError::Io(msg)) => {
                io_errors += 1;
                assert!(
                    msg.contains("FMS"),
                    "EIO should say which shard died: {msg}"
                );
            }
            other => panic!("expected EIO after FMS death, got {other:?}"),
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(io_errors, 12);
    // 12 ops x 2 attempts x (fast connect-refused + 5-10 ms backoff):
    // generous bound proves deadlines/backoff fire instead of hanging.
    assert!(
        elapsed < Duration::from_secs(30),
        "retry exhaustion took {elapsed:?} — deadlines not firing"
    );

    // The DMS is still healthy: directory metadata ops keep working.
    c.mkdir("/w2", 0o755).unwrap();
    assert!(c.stat_dir("/w").is_ok());
}

/// Open a durable FMS store under `dir` (HashDb inner, FMS codec).
fn durable_fms(dir: &std::path::Path) -> FileServer {
    let cfg = FileServer::tune_cfg(locofs::fms::FmsMode::Decoupled, KvConfig::default());
    let db = locofs::kv::DurableStore::open(dir, locofs::kv::HashDb::new(cfg)).unwrap();
    FileServer::with_store(Box::new(db), 1, locofs::fms::FmsMode::Decoupled)
}

#[test]
fn fms_restart_recovers_acked_namespace_from_durable_store() {
    // A restarted FMS used to come back empty (process state died with
    // it). With a DurableStore every acknowledged mutation is WAL-logged
    // before the response frame, so the restart recovers the namespace
    // and the protocol level reconnects lazily — same client, same
    // pooled endpoints, no rebuild.
    let scratch = std::env::temp_dir().join(format!("loco-tcp-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    let mut cluster = boot(1);
    let c = &mut cluster.client;

    // Swap the volatile FMS for a durable one on its own port.
    let fms_id = ServerId::new(class::FMS, 0);
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let g = serve_tcp(fms_id, durable_fms(&scratch), l, ServeOptions::default()).unwrap();
    let fms_addr = g.addr();
    let fms_ep: FmsEndpoint = Arc::new(TcpEndpoint::<FileServer>::with_policy(
        fms_id,
        &fms_addr.to_string(),
        fast_policy(),
    ));
    c.swap_fms_endpoint(0, fms_ep);
    cluster.fms_guards = vec![g];

    c.mkdir("/d", 0o755).unwrap();
    c.create("/d/before", 0o644).unwrap();

    // Take the FMS down: file creates fail with EIO, dirs still work.
    cluster.fms_guards.clear();
    assert!(matches!(c.create("/d/during", 0o644), Err(FsError::Io(_))));
    c.mkdir("/d/sub", 0o755).unwrap();

    // Restart on the same port over the same data dir: the WAL replay
    // brings back every acknowledged file record.
    let l = TcpListener::bind(fms_addr).expect("rebind the freed port");
    let _g = serve_tcp(fms_id, durable_fms(&scratch), l, ServeOptions::default()).unwrap();
    assert!(
        c.stat_file("/d/before").is_ok(),
        "acked create must survive the FMS restart"
    );
    c.create("/d/after", 0o644).unwrap();
    assert!(c.stat_file("/d/after").is_ok());

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn idle_pooled_conn_closed_by_server_redials_lazily_without_spurious_eio() {
    // A daemon restart closes every pooled client connection. The next
    // call on such a connection must not burn the retry budget (or
    // surface a spurious EIO with attempts=1): the pool detects the
    // dead connection — eagerly via the reader's dead flag, or lazily
    // via one free same-slot redial when the failure only shows up
    // after the write — and the call succeeds on a fresh socket.
    use locofs::ostore::{OstoreRequest, OstoreResponse};
    use locofs::types::Uuid;

    let one_shot = RetryPolicy {
        attempts: 1,
        backoff: Duration::from_millis(1),
        deadline: Duration::from_millis(2000),
        connect_timeout: Duration::from_millis(2000),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    };
    let id = ServerId::new(class::OST, 0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp(
        id,
        ObjectStore::new(KvConfig::default()),
        listener,
        ServeOptions::default(),
    )
    .unwrap();
    let addr = guard.addr();
    let ep = TcpEndpoint::<ObjectStore>::with_policy(id, &addr.to_string(), one_shot);
    let mut ctx = locofs::net::CallCtx::new();
    let write = |ctx: &mut locofs::net::CallCtx, blk: u64| {
        ep.try_call(
            ctx,
            OstoreRequest::WriteBlock {
                uuid: Uuid::new(0, 1),
                blk,
                data: vec![7u8; 64],
            },
        )
    };
    // Warm every pool slot.
    for blk in 0..4 {
        assert!(matches!(
            write(&mut ctx, blk),
            Ok(OstoreResponse::Done(Ok(())))
        ));
    }
    // Several restart rounds: each one leaves the whole pool pointing
    // at sockets the old server closed.
    for round in 0..5 {
        guard.shutdown();
        let listener = TcpListener::bind(addr).expect("rebind the freed port");
        guard = serve_tcp(
            id,
            ObjectStore::new(KvConfig::default()),
            listener,
            ServeOptions::default(),
        )
        .unwrap();
        for blk in 0..10 {
            let r = write(&mut ctx, blk);
            assert!(
                matches!(r, Ok(OstoreResponse::Done(Ok(())))),
                "round {round} blk {blk}: stale pooled conn must redial, got {r:?}"
            );
        }
    }
}

#[test]
fn fenced_reply_skips_backoff_budget_and_surfaces_fenced_epoch() {
    // A standby (or fenced ex-primary) answers instantly with a
    // fenced stamp. That is not a transport fault: burning the full
    // exponential-backoff budget before reporting it would only delay
    // the client's redial to the real primary. The endpoint takes ONE
    // immediate no-sleep retry (covers a promote racing the call) and
    // then surfaces `RpcError::FencedEpoch` — never `Exhausted`, and
    // never a backoff sleep.
    use locofs::dms::DmsRequest;
    use locofs::kv::{BTreeDb, DurableStore};
    use locofs::net::RpcError;
    use locofs::repl::{AckPolicy, ReplCtl, Role};

    let scratch = std::env::temp_dir().join(format!("loco-tcp-fenced-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    // A durable DMS booted as a *standby* at epoch 3: every client op
    // is rejected with a fenced reply stamp.
    let db = DurableStore::open(&scratch, BTreeDb::new(KvConfig::default())).unwrap();
    let mut server = DirServer::with_store(Box::new(db), 0);
    let ctl = Arc::new(ReplCtl::new(
        3,
        Role::Standby,
        AckPolicy::None,
        Duration::from_millis(500),
        Vec::new(),
    ));
    assert!(server.enable_repl(ctl), "durable store must take the tap");

    let id = ServerId::new(class::DMS, 0);
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let g = serve_tcp(id, server, l, ServeOptions::default()).unwrap();

    // Pathological budget: if the fenced reply took the normal retry
    // path, the backoff sleeps alone (2 s + 4 s + ...) would trip the
    // elapsed assertion below.
    let slow_policy = RetryPolicy {
        attempts: 5,
        backoff: Duration::from_secs(2),
        deadline: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(2),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    };
    let ep = TcpEndpoint::<DirServer>::with_policy(id, &g.addr().to_string(), slow_policy);
    let mut ctx = locofs::net::CallCtx::new();

    let start = Instant::now();
    let err = ep
        .try_call(&mut ctx, DmsRequest::GetDir { path: "/".into() })
        .expect_err("standby must fence client metadata ops");
    let elapsed = start.elapsed();

    match err {
        RpcError::FencedEpoch { epoch } => assert_eq!(epoch, 3, "stamp carries the fencing epoch"),
        other => panic!("expected FencedEpoch (not Exhausted/backoff), got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_millis(500),
        "fenced fast path must not burn the backoff budget: {elapsed:?}"
    );

    drop(g);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn deadline_fires_on_a_black_hole_server() {
    // A listener that accepts but never replies: the per-call deadline
    // (not TCP buffering) must bound the latency of every attempt.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _hold = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = listener.accept() {
            held.push(s); // keep sockets open, say nothing
        }
    });

    let policy = RetryPolicy {
        attempts: 2,
        backoff: Duration::from_millis(1),
        deadline: Duration::from_millis(100),
        connect_timeout: Duration::from_millis(200),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    };
    let ep = TcpEndpoint::<DirServer>::with_policy(
        ServerId::new(class::DMS, 0),
        &addr.to_string(),
        policy,
    );
    let mut ctx = locofs::net::CallCtx::new();
    let start = Instant::now();
    let err = ep
        .try_call(
            &mut ctx,
            locofs::dms::DmsRequest::GetDir { path: "/".into() },
        )
        .expect_err("black hole must not answer");
    let elapsed = start.elapsed();
    let msg = err.to_string();
    assert!(
        msg.contains("exhausted") || msg.contains("deadline"),
        "unexpected error: {msg}"
    );
    // 2 attempts x 100 ms deadline + backoff: must finish well under
    // the 2 s default — proves the configured deadline is honored.
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline did not fire: {elapsed:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(150),
        "two deadlines expected"
    );
}
