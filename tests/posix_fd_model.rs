//! Randomized model test for the file-descriptor layer: random
//! sequences of fd-level operations (seeded, deterministic) against a
//! reference model of byte-accurate file contents and offsets.

use locofs::client::{LocoCluster, LocoConfig};
use locofs::posix::{OpenFlags, PosixFs, Whence};
use locofs::sim::rng::Rng;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum FdOp {
    Open(u8, bool),     // file id, truncate?
    Close(u8),          // nth open fd
    Write(u8, Vec<u8>), // nth open fd, payload
    Read(u8, u8),       // nth open fd, length
    SeekSet(u8, u16),
    SeekEnd(u8, i8),
}

#[derive(Clone)]
struct ModelFile {
    data: Vec<u8>,
}

struct ModelFd {
    file: u8,
    offset: u64,
}

fn random_op(rng: &mut Rng) -> FdOp {
    match rng.gen_below(6) {
        0 => FdOp::Open(rng.gen_below(4) as u8, rng.gen_bool(0.5)),
        1 => FdOp::Close(rng.gen_below(6) as u8),
        2 => {
            let len = rng.gen_range(0..40);
            let data = (0..len).map(|_| rng.gen_u64() as u8).collect();
            FdOp::Write(rng.gen_below(6) as u8, data)
        }
        3 => FdOp::Read(rng.gen_below(6) as u8, rng.gen_below(64) as u8),
        4 => FdOp::SeekSet(rng.gen_below(6) as u8, rng.gen_below(200) as u16),
        _ => FdOp::SeekEnd(rng.gen_below(6) as u8, rng.gen_below(21) as i8 - 20),
    }
}

#[test]
fn fd_layer_matches_byte_model() {
    let mut rng = Rng::seed_from_u64(0xFD_0001);
    for _case in 0..24 {
        let n_ops = rng.gen_range(1..60);
        let ops: Vec<FdOp> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        let mut fs = PosixFs::new(cluster.client());
        fs.mkdir("/w", 0o755).unwrap();

        let mut files: HashMap<u8, ModelFile> = HashMap::new();
        let mut fds: Vec<(i32, ModelFd)> = Vec::new();

        for op in ops {
            match op {
                FdOp::Open(file, trunc) => {
                    let mut flags = OpenFlags::RDWR | OpenFlags::CREAT;
                    if trunc {
                        flags = flags | OpenFlags::TRUNC;
                    }
                    let fd = fs.open(&format!("/w/file{file}"), flags, 0o644).unwrap();
                    let entry = files.entry(file).or_insert(ModelFile { data: Vec::new() });
                    if trunc {
                        entry.data.clear();
                    }
                    fds.push((fd, ModelFd { file, offset: 0 }));
                }
                FdOp::Close(n) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, _) = fds.remove(i);
                    fs.close(fd).unwrap();
                }
                FdOp::Write(n, data) => {
                    if fds.is_empty() || data.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    assert_eq!(fs.write(*fd, &data).unwrap(), data.len());
                    let f = files.get_mut(&m.file).unwrap();
                    let end = m.offset as usize + data.len();
                    if f.data.len() < end {
                        f.data.resize(end, 0);
                    }
                    f.data[m.offset as usize..end].copy_from_slice(&data);
                    m.offset = end as u64;
                }
                FdOp::Read(n, len) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    let mut buf = vec![0u8; len as usize];
                    let got = fs.read(*fd, &mut buf).unwrap();
                    let f = &files[&m.file];
                    let start = (m.offset as usize).min(f.data.len());
                    let end = (start + len as usize).min(f.data.len());
                    assert_eq!(got, end - start, "short-read length");
                    assert_eq!(&buf[..got], &f.data[start..end]);
                    m.offset += got as u64;
                }
                FdOp::SeekSet(n, off) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    assert_eq!(fs.lseek(*fd, off as i64, Whence::Set).unwrap(), off as u64);
                    m.offset = off as u64;
                }
                FdOp::SeekEnd(n, off) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    let size = files[&m.file].data.len() as i64;
                    let want = size + off as i64;
                    if want < 0 {
                        assert!(fs.lseek(*fd, off as i64, Whence::End).is_err());
                    } else {
                        assert_eq!(fs.lseek(*fd, off as i64, Whence::End).unwrap(), want as u64);
                        m.offset = want as u64;
                    }
                }
            }
        }

        // Final contents agree for every file, read through fresh fds.
        for (id, model) in &files {
            let fd = fs
                .open(&format!("/w/file{id}"), OpenFlags::RDONLY, 0)
                .unwrap();
            assert_eq!(fs.fstat(fd).unwrap().size, model.data.len() as u64);
            let mut buf = vec![0u8; model.data.len()];
            assert_eq!(fs.read(fd, &mut buf).unwrap(), model.data.len());
            assert_eq!(&buf, &model.data);
            fs.close(fd).unwrap();
        }
    }
}
