//! Property test for the file-descriptor layer: random sequences of
//! fd-level operations against a reference model of byte-accurate file
//! contents and offsets.

use locofs::client::{LocoCluster, LocoConfig};
use locofs::posix::{OpenFlags, PosixFs, Whence};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum FdOp {
    Open(u8, bool),     // file id, truncate?
    Close(u8),          // nth open fd
    Write(u8, Vec<u8>), // nth open fd, payload
    Read(u8, u8),       // nth open fd, length
    SeekSet(u8, u16),
    SeekEnd(u8, i8),
}

#[derive(Clone)]
struct ModelFile {
    data: Vec<u8>,
}

struct ModelFd {
    file: u8,
    offset: u64,
}

fn op_strategy() -> impl Strategy<Value = FdOp> {
    prop_oneof![
        (0u8..4, any::<bool>()).prop_map(|(f, t)| FdOp::Open(f, t)),
        (0u8..6).prop_map(FdOp::Close),
        (0u8..6, prop::collection::vec(any::<u8>(), 0..40)).prop_map(|(f, d)| FdOp::Write(f, d)),
        (0u8..6, 0u8..64).prop_map(|(f, n)| FdOp::Read(f, n)),
        (0u8..6, 0u16..200).prop_map(|(f, o)| FdOp::SeekSet(f, o)),
        (0u8..6, -20i8..1).prop_map(|(f, o)| FdOp::SeekEnd(f, o)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fd_layer_matches_byte_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        let mut fs = PosixFs::new(cluster.client());
        fs.mkdir("/w", 0o755).unwrap();

        let mut files: HashMap<u8, ModelFile> = HashMap::new();
        let mut fds: Vec<(i32, ModelFd)> = Vec::new();

        for op in ops {
            match op {
                FdOp::Open(file, trunc) => {
                    let mut flags = OpenFlags::RDWR | OpenFlags::CREAT;
                    if trunc {
                        flags = flags | OpenFlags::TRUNC;
                    }
                    let fd = fs
                        .open(&format!("/w/file{file}"), flags, 0o644)
                        .unwrap();
                    let entry = files.entry(file).or_insert(ModelFile { data: Vec::new() });
                    if trunc {
                        entry.data.clear();
                    }
                    fds.push((fd, ModelFd { file, offset: 0 }));
                }
                FdOp::Close(n) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, _) = fds.remove(i);
                    fs.close(fd).unwrap();
                }
                FdOp::Write(n, data) => {
                    if fds.is_empty() || data.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    prop_assert_eq!(fs.write(*fd, &data).unwrap(), data.len());
                    let f = files.get_mut(&m.file).unwrap();
                    let end = m.offset as usize + data.len();
                    if f.data.len() < end {
                        f.data.resize(end, 0);
                    }
                    f.data[m.offset as usize..end].copy_from_slice(&data);
                    m.offset = end as u64;
                }
                FdOp::Read(n, len) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    let mut buf = vec![0u8; len as usize];
                    let got = fs.read(*fd, &mut buf).unwrap();
                    let f = &files[&m.file];
                    let start = (m.offset as usize).min(f.data.len());
                    let end = (start + len as usize).min(f.data.len());
                    prop_assert_eq!(got, end - start, "short-read length");
                    prop_assert_eq!(&buf[..got], &f.data[start..end]);
                    m.offset += got as u64;
                }
                FdOp::SeekSet(n, off) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    prop_assert_eq!(
                        fs.lseek(*fd, off as i64, Whence::Set).unwrap(),
                        off as u64
                    );
                    m.offset = off as u64;
                }
                FdOp::SeekEnd(n, off) => {
                    if fds.is_empty() {
                        continue;
                    }
                    let i = n as usize % fds.len();
                    let (fd, m) = &mut fds[i];
                    let size = files[&m.file].data.len() as i64;
                    let want = size + off as i64;
                    if want < 0 {
                        prop_assert!(fs.lseek(*fd, off as i64, Whence::End).is_err());
                    } else {
                        prop_assert_eq!(
                            fs.lseek(*fd, off as i64, Whence::End).unwrap(),
                            want as u64
                        );
                        m.offset = want as u64;
                    }
                }
            }
        }

        // Final contents agree for every file, read through fresh fds.
        for (id, model) in &files {
            let fd = fs
                .open(&format!("/w/file{id}"), OpenFlags::RDONLY, 0)
                .unwrap();
            prop_assert_eq!(fs.fstat(fd).unwrap().size, model.data.len() as u64);
            let mut buf = vec![0u8; model.data.len()];
            prop_assert_eq!(fs.read(fd, &mut buf).unwrap(), model.data.len());
            prop_assert_eq!(&buf, &model.data);
            fs.close(fd).unwrap();
        }
    }
}
