//! Real-concurrency integration: servers on OS threads behind channels
//! (`ThreadEndpoint`), many client threads, final state cross-checked.
//! Complements the deterministic simulated transport the benchmarks use
//! — and verifies both transports produce identical visit traces.

use locofs::dms::{DirServer, DmsBackend, DmsRequest, DmsResponse};
use locofs::fms::{FileServer, FmsMode, FmsRequest, FmsResponse};
use locofs::kv::KvConfig;
use locofs::net::{class, spawn, CallCtx, Endpoint, ServerId, SimEndpoint};
use locofs::types::HashRing;

#[test]
fn concurrent_clients_build_a_consistent_namespace() {
    let (dms, _dg) = spawn(
        ServerId::new(class::DMS, 0),
        DirServer::new(DmsBackend::BTree, KvConfig::default()),
    );
    let mut fms = Vec::new();
    let mut guards = Vec::new();
    for i in 0..3u16 {
        let (ep, g) = spawn(
            ServerId::new(class::FMS, i),
            FileServer::new(i + 1, FmsMode::Decoupled, KvConfig::default()),
        );
        fms.push(ep);
        guards.push(g);
    }
    let ring = HashRing::new(3);

    const THREADS: usize = 6;
    const DIRS: usize = 40;
    const FILES: usize = 5;

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let dms = dms.clone();
        let fms = fms.clone();
        let ring = ring.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = CallCtx::new();
            for d in 0..DIRS {
                let dir = format!("/w{t}-{d}");
                let DmsResponse::Done(Ok(_)) = dms.call(
                    &mut ctx,
                    DmsRequest::Mkdir {
                        path: dir.clone(),
                        mode: 0o755,
                        uid: 1,
                        gid: 1,
                        ts: 0,
                    },
                ) else {
                    panic!("mkdir {dir} failed")
                };
                let DmsResponse::Dir(Ok(inode)) =
                    dms.call(&mut ctx, DmsRequest::GetDir { path: dir })
                else {
                    panic!("getdir failed")
                };
                for f in 0..FILES {
                    let name = format!("f{f}");
                    let idx = ring.place_file(inode.uuid.raw(), &name) as usize;
                    let resp = fms[idx].call(
                        &mut ctx,
                        FmsRequest::Create {
                            dir_uuid: inode.uuid,
                            name,
                            mode: 0o644,
                            uid: 1,
                            gid: 1,
                            ts: 0,
                        },
                    );
                    assert!(matches!(resp, FmsResponse::Created(Ok(_))));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Cross-check: every directory exists with exactly FILES files.
    let mut ctx = CallCtx::new();
    for t in 0..THREADS {
        for d in 0..DIRS {
            let dir = format!("/w{t}-{d}");
            let DmsResponse::Dir(Ok(inode)) =
                dms.call(&mut ctx, DmsRequest::GetDir { path: dir.clone() })
            else {
                panic!("{dir} missing after concurrent run")
            };
            let mut total = 0;
            for ep in &fms {
                let FmsResponse::Count(n) = ep.call(
                    &mut ctx,
                    FmsRequest::CountFiles {
                        dir_uuid: inode.uuid,
                    },
                ) else {
                    panic!()
                };
                total += n;
            }
            assert_eq!(total, FILES, "{dir} file count");
        }
    }
}

#[test]
fn duplicate_creates_race_to_exactly_one_winner() {
    let (dms, _g) = spawn(
        ServerId::new(class::DMS, 0),
        DirServer::new(DmsBackend::BTree, KvConfig::default()),
    );
    const RACERS: usize = 8;
    let mut handles = Vec::new();
    for _ in 0..RACERS {
        let dms = dms.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = CallCtx::new();
            matches!(
                dms.call(
                    &mut ctx,
                    DmsRequest::Mkdir {
                        path: "/contended".into(),
                        mode: 0o755,
                        uid: 1,
                        gid: 1,
                        ts: 0,
                    },
                ),
                DmsResponse::Done(Ok(_))
            )
        }));
    }
    let winners = handles
        .into_iter()
        .filter(|_| true)
        .map(|h| h.join().unwrap())
        .filter(|&w| w)
        .count();
    assert_eq!(winners, 1, "exactly one mkdir must win the race");
}

#[test]
fn sim_and_thread_transports_agree_on_traces() {
    let mk = || DirServer::new(DmsBackend::BTree, KvConfig::default());
    let sim = SimEndpoint::new(ServerId::new(class::DMS, 0), mk());
    let (thr, _g) = spawn(ServerId::new(class::DMS, 0), mk());

    let script = |ep: &dyn Endpoint<DmsRequest, DmsResponse>| {
        let mut ctx = CallCtx::new();
        for i in 0..20 {
            ep.call(
                &mut ctx,
                DmsRequest::Mkdir {
                    path: format!("/d{i}"),
                    mode: 0o755,
                    uid: 1,
                    gid: 1,
                    ts: 0,
                },
            );
        }
        ep.call(&mut ctx, DmsRequest::GetDir { path: "/d7".into() });
        ctx.take_trace()
    };
    let a = script(&sim);
    let b = script(&thr);
    assert_eq!(a.visits, b.visits, "transports must charge identically");
}
