//! loco-prof acceptance: per-op resource attribution, span folding,
//! and the `locotop` dashboard, end to end.
//!
//! * sampled ops carry heap-allocation counts on the client record
//!   *and* on every server visit span, and the always-on
//!   `loco_alloc_per_op` histograms attribute allocations with tracing
//!   entirely off;
//! * folded stacks derived from the span trees are identical across
//!   the sim, threaded, and TCP transports (modulo wall-clock queue
//!   frames), round-trip through render/parse, and conserve total
//!   attributed time;
//! * `locod profile` returns parseable folded stacks from a live
//!   daemon, and `locotop --once --json` renders a full cluster
//!   snapshot with plausible allocs/op, failing when a daemon is down.

use locofs::client::{LocoCluster, LocoConfig, TraceMode, Transport, TransportCluster};
use locofs::net::{control, Control, ControlReply};
use locofs::obs::{
    counting_installed, fold_records, leaf_total, parse_folded, render_folded, FoldedStacks,
};
use std::process::Command;
use std::time::{Duration, Instant};

/// Upper bound on heap allocations a single metadata op may perform,
/// client- or server-side. Generous (real counts are tens), but tight
/// enough to catch attribution bugs that misfile whole phases of work
/// onto one op.
const MAX_PLAUSIBLE_ALLOCS_PER_OP: u64 = 100_000;

#[test]
fn sampled_ops_carry_alloc_attribution_client_and_server() {
    assert!(
        counting_installed(),
        "loco-obs installs the counting global allocator in this binary"
    );
    let cluster = LocoCluster::new(LocoConfig::with_servers(2).traced(TraceMode::All));
    let mut fs = cluster.client();
    fs.mkdir("/a", 0o755).unwrap();
    for i in 0..16 {
        fs.create(&format!("/a/f{i}"), 0o644).unwrap();
    }
    let records = fs.flight_recorder().recent();
    assert_eq!(records.len(), 17, "TraceMode::All records every op");
    for rec in &records {
        // Client-side: building request paths alone allocates, so a
        // zero here means the snapshot/delta pair never ran.
        assert!(
            (1..MAX_PLAUSIBLE_ALLOCS_PER_OP).contains(&rec.allocs),
            "implausible client allocs for {}: {}",
            rec.op,
            rec.allocs
        );
        assert!(rec.alloc_bytes > 0, "allocations imply bytes: {rec:?}");
        // Server-side: every visit span carries its handler's counts
        // (metadata mutations insert into the KV store, so the
        // handler path allocates too).
        for v in &rec.visits {
            let allocs = v.attr("allocs");
            assert!(
                (1..MAX_PLAUSIBLE_ALLOCS_PER_OP).contains(&allocs),
                "implausible server allocs for {}/{}: {allocs}",
                v.server,
                v.op
            );
            assert!(v.attr("alloc_bytes") > 0, "visit bytes: {v:?}");
        }
        assert!(rec.total_allocs() > rec.allocs, "total spans both sides");
    }
    // The op's JSON export carries the aggregate, for dashboards.
    let json = records[0].to_json().to_string();
    assert!(json.contains("\"allocs\""), "{json}");
    assert!(json.contains("\"alloc_bytes\""), "{json}");
    // And the registry holds both per-op alloc histograms: client
    // (sampled ops) and server (always-on).
    let text = fs.registry().render_prometheus();
    assert!(
        text.contains("loco_client_alloc_per_op{op=\"create\""),
        "{text}"
    );
    assert!(text.contains("loco_alloc_per_op{"), "{text}");
    assert!(text.contains("loco_alloc_bytes_per_op{"), "{text}");
}

#[test]
fn tracing_off_still_attributes_allocs_server_side_only() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2).traced(TraceMode::Off));
    let mut fs = cluster.client();
    fs.mkdir("/b", 0o755).unwrap();
    for i in 0..8 {
        fs.create(&format!("/b/f{i}"), 0o644).unwrap();
    }
    assert!(fs.flight_recorder().is_empty(), "off ⇒ nothing sampled");
    let text = fs.registry().render_prometheus();
    // The unsampled client path takes no snapshots and registers no
    // client alloc families...
    assert!(!text.contains("loco_client_alloc_per_op"), "{text}");
    // ...but server-side attribution is always on: the per-RPC alloc
    // histograms populate regardless.
    assert!(text.contains("loco_alloc_per_op{"), "{text}");
    let pt = locofs::obs::promtext::parse(&text).unwrap();
    let count = pt.sum("loco_alloc_per_op_count", &[("role", "dms")]);
    assert!(count > 0.0, "DMS requests were attributed: {text}");
    let mean = pt.sum("loco_alloc_per_op_sum", &[("role", "dms")]) / count;
    assert!(
        mean >= 1.0 && mean < MAX_PLAUSIBLE_ALLOCS_PER_OP as f64,
        "implausible DMS allocs/op {mean}"
    );
}

/// Run the golden create workload on one transport and fold it.
fn folded_create_workload(transport: Transport) -> FoldedStacks {
    let config = LocoConfig::with_servers(2).traced(TraceMode::All);
    let cluster = TransportCluster::new(config, transport);
    let mut c = cluster.client();
    c.mkdir("/g", 0o755).unwrap();
    for i in 0..10 {
        c.create(&format!("/g/f{i}"), 0o644).unwrap();
    }
    fold_records(&cluster.flight.recent())
}

/// Queue-wait frames are wall-clock and legitimately differ between a
/// lock, a channel, and a socket; everything else in the fold is
/// virtual-cost and must agree bit-for-bit.
fn drop_queue_frames(stacks: FoldedStacks) -> FoldedStacks {
    stacks
        .into_iter()
        .filter(|(s, _)| s.rsplit(';').next() != Some("queue"))
        .collect()
}

#[test]
fn folded_stacks_agree_across_transports_and_round_trip() {
    let sim = drop_queue_frames(folded_create_workload(Transport::Sim));
    let thr = drop_queue_frames(folded_create_workload(Transport::Thread));
    let tcp = drop_queue_frames(folded_create_workload(Transport::Tcp));
    assert!(!sim.is_empty());
    assert_eq!(sim, thr, "sim vs thread folds");
    assert_eq!(sim, tcp, "sim vs tcp folds");

    // Golden shape of the create workload: client work, network, and
    // the FMS Create handler with its KV share all present.
    let stacks: Vec<&str> = sim.iter().map(|(s, _)| s.as_str()).collect();
    assert!(stacks.contains(&"create"), "{stacks:?}");
    assert!(stacks.contains(&"create;net"), "{stacks:?}");
    assert!(
        stacks
            .iter()
            .any(|s| s.starts_with("create;fms") && s.ends_with(".Create")),
        "{stacks:?}"
    );
    assert!(
        stacks
            .iter()
            .any(|s| s.starts_with("create;fms") && s.ends_with(".Create;kv")),
        "{stacks:?}"
    );
    assert!(
        stacks.iter().any(|s| s.starts_with("mkdir;dms0")),
        "{stacks:?}"
    );
    assert!(leaf_total(&sim, "kv") > 0, "KV time attributed");

    // The folded text round-trips through the parser losslessly.
    let text = render_folded(&sim);
    assert_eq!(parse_folded(&text).unwrap(), sim);

    // Conservation: the fold redistributes — never invents — time.
    // Client work + network + service must equal the fold total.
    let cluster = TransportCluster::new(
        LocoConfig::with_servers(2).traced(TraceMode::All),
        Transport::Sim,
    );
    let mut c = cluster.client();
    c.mkdir("/g", 0o755).unwrap();
    for i in 0..10 {
        c.create(&format!("/g/f{i}"), 0o644).unwrap();
    }
    let records = cluster.flight.recent();
    let expected: u64 = records
        .iter()
        .map(|r| {
            r.client_work_ns
                + r.visits.len() as u64 * r.rtt_ns
                + r.visits
                    .iter()
                    .map(|v| v.service_ns + v.queue_ns)
                    .sum::<u64>()
        })
        .sum();
    let total: u64 = fold_records(&records).iter().map(|(_, v)| *v).sum();
    assert_eq!(total, expected);
}

// --- live-cluster dashboard ------------------------------------------

struct Daemon(std::process::Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn spawn_daemon(role: &str, addr: &str) -> Daemon {
    let child = Command::new(env!("CARGO_BIN_EXE_locod"))
        .args([
            "serve",
            "--role",
            role,
            "--index",
            "0",
            "--listen",
            addr,
            "--maintain-ms",
            "100",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn locod");
    Daemon(child)
}

fn wait_ping(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if matches!(
            control(addr, Control::Ping, Duration::from_millis(500)),
            Ok(ControlReply::Pong)
        ) {
            return;
        }
        assert!(Instant::now() < deadline, "{addr} never answered a ping");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn locotop_and_locod_profile_work_against_a_live_cluster() {
    let (dms, fms, ost) = (
        format!("127.0.0.1:{}", free_port()),
        format!("127.0.0.1:{}", free_port()),
        format!("127.0.0.1:{}", free_port()),
    );
    let _daemons = [
        spawn_daemon("dms", &dms),
        spawn_daemon("fms", &fms),
        spawn_daemon("ost", &ost),
    ];
    for a in [&dms, &fms, &ost] {
        wait_ping(a);
    }

    // Drive real metadata load over the wire.
    let spec = format!("dms={dms};fms={fms};ost={ost}");
    let addrs = locofs::client::ClusterAddrs::parse(&spec).unwrap();
    let cluster = TransportCluster::tcp_external(LocoConfig::default(), &addrs);
    let mut c = cluster.client();
    c.mkdir("/live", 0o755).unwrap();
    for i in 0..32 {
        let mut h = c.create(&format!("/live/f{i}"), 0o644).unwrap();
        c.write(&mut h, 0, b"x").unwrap();
        c.stat_file(&format!("/live/f{i}")).unwrap();
    }
    // Let at least two maintain ticks land so the series ring holds a
    // rate window.
    std::thread::sleep(Duration::from_millis(300));

    // `locod profile` returns parseable folded stacks with the per-op
    // KV split, tracing entirely off.
    let out = Command::new(env!("CARGO_BIN_EXE_locod"))
        .args(["profile", &dms])
        .output()
        .expect("run locod profile");
    assert!(out.status.success(), "{out:?}");
    let folded = parse_folded(&String::from_utf8_lossy(&out.stdout)).expect("parseable fold");
    let stacks: Vec<&str> = folded.iter().map(|(s, _)| s.as_str()).collect();
    assert!(
        stacks.iter().any(|s| s.starts_with("dms0;")),
        "daemon-rooted frames: {stacks:?}"
    );
    assert!(
        leaf_total(&folded, "kv") > 0,
        "KV share present: {stacks:?}"
    );

    // `locod series` returns the ring as JSON with at least one point.
    let out = Command::new(env!("CARGO_BIN_EXE_locod"))
        .args(["series", &dms])
        .output()
        .expect("run locod series");
    assert!(out.status.success(), "{out:?}");
    let series = locofs::obs::json::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("series JSON parses");
    assert!(
        !series.get("points").unwrap().as_arr().unwrap().is_empty(),
        "maintain timer ticked the ring"
    );

    // `locotop --once --json`: one snapshot covering every daemon,
    // machine-readable, exit 0.
    let out = Command::new(env!("CARGO_BIN_EXE_locotop"))
        .args(["--cluster", &spec, "--once", "--json"])
        .output()
        .expect("run locotop");
    assert!(out.status.success(), "{out:?}");
    let doc = locofs::obs::json::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("locotop JSON parses");
    assert_eq!(doc.get("ok").unwrap(), &locofs::obs::json::Json::Bool(true));
    let daemons = doc.get("daemons").unwrap().as_arr().unwrap();
    assert_eq!(daemons.len(), 3);
    for d in daemons {
        assert_eq!(d.get("ok").unwrap(), &locofs::obs::json::Json::Bool(true));
        let ops = d.get("ops_total").unwrap().as_f64().unwrap();
        assert!(ops > 0.0, "every role served requests: {d:?}");
        let allocs = d
            .get("allocs_per_op")
            .unwrap()
            .as_f64()
            .expect("allocs/op attributed with tracing off");
        assert!(
            allocs >= 1.0 && allocs < MAX_PLAUSIBLE_ALLOCS_PER_OP as f64,
            "implausible allocs/op {allocs} for {d:?}"
        );
    }

    // Against a dead daemon the one-shot snapshot fails loudly.
    drop(_daemons);
    let out = Command::new(env!("CARGO_BIN_EXE_locotop"))
        .args([
            "--cluster",
            &spec,
            "--once",
            "--json",
            "--timeout-ms",
            "300",
        ])
        .output()
        .expect("run locotop on dead cluster");
    assert!(!out.status.success(), "dead cluster must exit non-zero");
}
