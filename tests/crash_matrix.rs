//! Crash-point matrix: for every named fault site, under both sync
//! policies, kill a `locod chaos-apply` child mid-flight and prove the
//! recovery invariant with `locod chaos-verify`:
//!
//! * the recovered store equals the state after *some* prefix of the
//!   deterministic op stream (commit groups are atomic — no torn or
//!   phantom records survive), and
//! * that prefix is at least as long as the acknowledged prefix (no
//!   acknowledged op is ever lost).
//!
//! Faults are armed purely via `LOCO_CRASHPOINT` / `LOCO_IOFAULT`
//! (see `loco-faults`), so each case is a plain subprocess run of the
//! release binary under test — the same code path a production daemon
//! executes. A site that never fires under a given policy (e.g.
//! `wal_after_sync` with os-managed flushing) simply lets the child
//! complete; the verify invariant must hold either way.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

fn locod() -> &'static str {
    env!("CARGO_BIN_EXE_locod")
}

static CASE_SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch {
    dir: PathBuf,
    ack: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let n = CASE_SEQ.fetch_add(1, Ordering::Relaxed);
        let base = std::env::temp_dir().join(format!(
            "loco-crash-matrix-{}-{n}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        Self {
            dir: base.join("store"),
            ack: base.join("acked"),
        }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if let Some(base) = self.dir.parent() {
            let _ = std::fs::remove_dir_all(base);
        }
    }
}

const OPS: &str = "200";
const CHECKPOINT_EVERY: &str = "25";

/// Run one apply-crash-verify cycle with the given fault env var.
fn run_case(policy: &str, env_key: &str, env_val: &str) {
    let tag = format!("{policy}-{}", env_val.replace(['=', ':'], "_"));
    let s = Scratch::new(&tag);
    let apply = Command::new(locod())
        .args([
            "chaos-apply",
            "--data-dir",
            s.dir.to_str().unwrap(),
            "--ops",
            OPS,
            "--sync-policy",
            policy,
            "--checkpoint-every",
            CHECKPOINT_EVERY,
            "--ack-file",
            s.ack.to_str().unwrap(),
        ])
        .env_remove("LOCO_CRASHPOINT")
        .env_remove("LOCO_IOFAULT")
        .env(env_key, env_val)
        .output()
        .expect("spawn chaos-apply");
    let stderr = String::from_utf8_lossy(&apply.stderr);
    assert!(
        !stderr.contains("panicked"),
        "[{tag}] chaos-apply panicked (must abort or fail cleanly):\n{stderr}"
    );
    if !apply.status.success() {
        // The child died — it must have been our armed fault, loudly.
        assert!(
            stderr.contains("loco-faults") || stderr.contains("FATAL wal"),
            "[{tag}] child failed for an unexpected reason:\n{stderr}"
        );
    }

    // Recovery runs with nothing armed: replay must be clean and the
    // recovered state must match an acked-or-longer prefix.
    let verify = Command::new(locod())
        .args([
            "chaos-verify",
            "--data-dir",
            s.dir.to_str().unwrap(),
            "--ops",
            OPS,
            "--ack-file",
            s.ack.to_str().unwrap(),
        ])
        .env_remove("LOCO_CRASHPOINT")
        .env_remove("LOCO_IOFAULT")
        .output()
        .expect("spawn chaos-verify");
    assert!(
        verify.status.success(),
        "[{tag}] RECOVERY INVARIANT VIOLATED\napply stderr:\n{stderr}\nverify stdout:\n{}\nverify stderr:\n{}",
        String::from_utf8_lossy(&verify.stdout),
        String::from_utf8_lossy(&verify.stderr),
    );
}

const POLICIES: [&str; 2] = ["os-managed", "every-record"];

/// Crash points on the WAL commit path. Hit counts land mid-stream so
/// some ops are already acked and checkpoints have happened.
#[test]
fn crash_matrix_wal_sites() {
    for policy in POLICIES {
        // Before the group is written: the op was never acked.
        run_case(policy, "LOCO_CRASHPOINT", "wal_pre_commit:57");
        // After write+flush, before fsync/ack: op durable but unacked.
        run_case(policy, "LOCO_CRASHPOINT", "wal_after_append:101");
        // After fsync (fires only under every-record).
        run_case(policy, "LOCO_CRASHPOINT", "wal_after_sync:33");
    }
}

/// Crash points bracketing every step of the checkpoint protocol:
/// snapshot tmp write, rename, WAL truncation.
#[test]
fn crash_matrix_checkpoint_sites() {
    for policy in POLICIES {
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_pre_write:2");
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_pre_rename:3");
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_post_rename:3");
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_post_truncate:4");
    }
}

/// Injected I/O failures: write errors abort before the ack
/// (fsyncgate discipline — never ack what the log did not take), and
/// torn writes crash mid-write leaving a prefix on disk.
#[test]
fn crash_matrix_io_faults() {
    for policy in POLICIES {
        run_case(policy, "LOCO_IOFAULT", "wal_write=err:44");
        run_case(policy, "LOCO_IOFAULT", "wal_fsync=err:78");
        run_case(policy, "LOCO_IOFAULT", "wal_commit=short:90");
        run_case(policy, "LOCO_IOFAULT", "checkpoint_write=err:2");
        run_case(policy, "LOCO_IOFAULT", "checkpoint_write=short:3");
    }
}

/// Recovery must be idempotent: after a torn-tail crash, the first
/// open truncates the torn bytes and replays; a second open over the
/// result must see exactly the same state. (This is the double-crash
/// scenario — dying again right after recovery must lose nothing.)
#[test]
fn crash_matrix_recovery_is_idempotent() {
    let s = Scratch::new("idempotent");
    let apply = Command::new(locod())
        .args([
            "chaos-apply",
            "--data-dir",
            s.dir.to_str().unwrap(),
            "--ops",
            OPS,
            "--sync-policy",
            "os-managed",
            "--checkpoint-every",
            CHECKPOINT_EVERY,
            "--ack-file",
            s.ack.to_str().unwrap(),
        ])
        .env_remove("LOCO_CRASHPOINT")
        .env("LOCO_IOFAULT", "wal_commit=short:90")
        .output()
        .expect("spawn chaos-apply");
    assert!(!apply.status.success(), "torn write must crash the child");
    for round in 1..=2 {
        let verify = Command::new(locod())
            .args([
                "chaos-verify",
                "--data-dir",
                s.dir.to_str().unwrap(),
                "--ops",
                OPS,
                "--ack-file",
                s.ack.to_str().unwrap(),
            ])
            .env_remove("LOCO_CRASHPOINT")
            .env_remove("LOCO_IOFAULT")
            .output()
            .expect("spawn chaos-verify");
        assert!(
            verify.status.success(),
            "recovery round {round} violated the invariant:\n{}\n{}",
            String::from_utf8_lossy(&verify.stdout),
            String::from_utf8_lossy(&verify.stderr),
        );
    }
}
