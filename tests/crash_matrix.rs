//! Crash-point matrix: for every named fault site, under both sync
//! policies, kill a `locod chaos-apply` child mid-flight and prove the
//! recovery invariant with `locod chaos-verify`:
//!
//! * the recovered store equals the state after *some* prefix of the
//!   deterministic op stream (commit groups are atomic — no torn or
//!   phantom records survive), and
//! * that prefix is at least as long as the acknowledged prefix (no
//!   acknowledged op is ever lost).
//!
//! Faults are armed purely via `LOCO_CRASHPOINT` / `LOCO_IOFAULT`
//! (see `loco-faults`), so each case is a plain subprocess run of the
//! release binary under test — the same code path a production daemon
//! executes. A site that never fires under a given policy (e.g.
//! `wal_after_sync` with os-managed flushing) simply lets the child
//! complete; the verify invariant must hold either way.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

fn locod() -> &'static str {
    env!("CARGO_BIN_EXE_locod")
}

static CASE_SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch {
    dir: PathBuf,
    ack: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let n = CASE_SEQ.fetch_add(1, Ordering::Relaxed);
        let base = std::env::temp_dir().join(format!(
            "loco-crash-matrix-{}-{n}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        Self {
            dir: base.join("store"),
            ack: base.join("acked"),
        }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if let Some(base) = self.dir.parent() {
            let _ = std::fs::remove_dir_all(base);
        }
    }
}

const OPS: &str = "200";
const CHECKPOINT_EVERY: &str = "25";

/// Run one apply-crash-verify cycle with the given fault env var.
fn run_case(policy: &str, env_key: &str, env_val: &str) {
    let tag = format!("{policy}-{}", env_val.replace(['=', ':'], "_"));
    let s = Scratch::new(&tag);
    let apply = Command::new(locod())
        .args([
            "chaos-apply",
            "--data-dir",
            s.dir.to_str().unwrap(),
            "--ops",
            OPS,
            "--sync-policy",
            policy,
            "--checkpoint-every",
            CHECKPOINT_EVERY,
            "--ack-file",
            s.ack.to_str().unwrap(),
        ])
        .env_remove("LOCO_CRASHPOINT")
        .env_remove("LOCO_IOFAULT")
        .env(env_key, env_val)
        .output()
        .expect("spawn chaos-apply");
    let stderr = String::from_utf8_lossy(&apply.stderr);
    assert!(
        !stderr.contains("panicked"),
        "[{tag}] chaos-apply panicked (must abort or fail cleanly):\n{stderr}"
    );
    if !apply.status.success() {
        // The child died — it must have been our armed fault, loudly.
        assert!(
            stderr.contains("loco-faults") || stderr.contains("FATAL wal"),
            "[{tag}] child failed for an unexpected reason:\n{stderr}"
        );
    }

    // Recovery runs with nothing armed: replay must be clean and the
    // recovered state must match an acked-or-longer prefix.
    let verify = Command::new(locod())
        .args([
            "chaos-verify",
            "--data-dir",
            s.dir.to_str().unwrap(),
            "--ops",
            OPS,
            "--ack-file",
            s.ack.to_str().unwrap(),
        ])
        .env_remove("LOCO_CRASHPOINT")
        .env_remove("LOCO_IOFAULT")
        .output()
        .expect("spawn chaos-verify");
    assert!(
        verify.status.success(),
        "[{tag}] RECOVERY INVARIANT VIOLATED\napply stderr:\n{stderr}\nverify stdout:\n{}\nverify stderr:\n{}",
        String::from_utf8_lossy(&verify.stdout),
        String::from_utf8_lossy(&verify.stderr),
    );
}

const POLICIES: [&str; 2] = ["os-managed", "every-record"];

/// Crash points on the WAL commit path. Hit counts land mid-stream so
/// some ops are already acked and checkpoints have happened.
#[test]
fn crash_matrix_wal_sites() {
    for policy in POLICIES {
        // Before the group is written: the op was never acked.
        run_case(policy, "LOCO_CRASHPOINT", "wal_pre_commit:57");
        // After write+flush, before fsync/ack: op durable but unacked.
        run_case(policy, "LOCO_CRASHPOINT", "wal_after_append:101");
        // After fsync (fires only under every-record).
        run_case(policy, "LOCO_CRASHPOINT", "wal_after_sync:33");
    }
}

/// Crash points bracketing every step of the checkpoint protocol:
/// snapshot tmp write, rename, WAL truncation.
#[test]
fn crash_matrix_checkpoint_sites() {
    for policy in POLICIES {
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_pre_write:2");
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_pre_rename:3");
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_post_rename:3");
        run_case(policy, "LOCO_CRASHPOINT", "checkpoint_post_truncate:4");
    }
}

/// Injected I/O failures: write errors abort before the ack
/// (fsyncgate discipline — never ack what the log did not take), and
/// torn writes crash mid-write leaving a prefix on disk.
#[test]
fn crash_matrix_io_faults() {
    for policy in POLICIES {
        run_case(policy, "LOCO_IOFAULT", "wal_write=err:44");
        run_case(policy, "LOCO_IOFAULT", "wal_fsync=err:78");
        run_case(policy, "LOCO_IOFAULT", "wal_commit=short:90");
        run_case(policy, "LOCO_IOFAULT", "checkpoint_write=err:2");
        run_case(policy, "LOCO_IOFAULT", "checkpoint_write=short:3");
    }
}

/// Kill the daemon child on drop so a failing assertion never leaks a
/// listening process into later tests.
struct DaemonGuard(std::process::Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// One group-committer crash case, driven through a real `locod serve`
/// daemon: concurrent TCP clients issue durable writes, the armed
/// crash point aborts the committer thread mid-batch, and an offline
/// reopen of the data dir must recover every *acknowledged* write and
/// nothing that was never issued. This is the batched generalization
/// of recovered-state-equals-acked-prefix: with many connections there
/// is no single op order, so the invariant is acked ⊆ recovered ⊆
/// issued, per-record.
fn run_daemon_committer_case(site: &str) {
    use locofs::kv::{DurableStore, HashDb, KvConfig};
    use locofs::net::tcp::{RetryPolicy, TcpEndpoint};
    use locofs::net::{class, CallCtx, Endpoint, ServerId, Service};
    use locofs::ostore::{ObjectStore, OstoreRequest, OstoreResponse};
    use locofs::types::Uuid;
    use std::collections::HashSet;
    use std::io::BufRead;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    const THREADS: u64 = 8;
    const OPS_PER_THREAD: u64 = 40;
    let s = Scratch::new(&format!("daemon-{}", site.replace(':', "_")));

    let mut child = DaemonGuard(
        Command::new(locod())
            .args([
                "serve",
                "--role",
                "ost",
                "--index",
                "0",
                "--listen",
                "127.0.0.1:0",
                "--data-dir",
                s.dir.to_str().unwrap(),
                "--sync-policy",
                "every-record",
            ])
            .env_remove("LOCO_IOFAULT")
            .env_remove("LOCO_GROUP_COMMIT")
            .env("LOCO_CRASHPOINT", site)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn locod serve"),
    );
    // The daemon line-buffers its banner; the bound port is in it.
    // Keep the stdout pipe alive for the daemon's whole life — closing
    // it would kill the daemon on its next print.
    let mut banner = std::io::BufReader::new(child.0.stdout.take().expect("child stdout"));
    let addr = loop {
        let mut line = String::new();
        let n = banner.read_line(&mut line).expect("read daemon banner");
        assert!(n > 0, "[{site}] daemon exited before announcing its port");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.trim().to_string();
        }
    };

    let acked: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let one_shot = RetryPolicy {
        attempts: 1,
        backoff: Duration::from_millis(1),
        deadline: Duration::from_secs(2),
        connect_timeout: Duration::from_secs(2),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    };
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        let acked = Arc::clone(&acked);
        let policy = one_shot;
        handles.push(std::thread::spawn(move || {
            let ep = TcpEndpoint::<ObjectStore>::with_policy(
                ServerId::new(class::OST, 0),
                &addr,
                policy,
            );
            let mut ctx = CallCtx::new();
            for i in 0..OPS_PER_THREAD {
                let id = t * 1000 + i;
                let r = ep.try_call(
                    &mut ctx,
                    OstoreRequest::WriteBlock {
                        uuid: Uuid::new(7, id),
                        blk: 0,
                        data: vec![id as u8; 32],
                    },
                );
                match r {
                    Ok(OstoreResponse::Done(Ok(()))) => {
                        acked.lock().unwrap().insert(id);
                    }
                    // The daemon aborted mid-batch (or the write raced
                    // the abort): the op was simply never acked.
                    _ => break,
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // The armed site must actually have fired: the daemon aborts.
    let deadline = Instant::now() + Duration::from_secs(15);
    let status = loop {
        if let Some(st) = child.0.try_wait().expect("try_wait daemon") {
            break st;
        }
        assert!(
            Instant::now() < deadline,
            "[{site}] daemon survived {THREADS}x{OPS_PER_THREAD} durable \
             writes — the committer crash point never fired"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(!status.success(), "[{site}] daemon must die at the site");

    // Offline recovery over the daemon's data dir (same composition as
    // locod's ost role: HashDb inner under ROOT/ost0/).
    let acked = acked.lock().unwrap();
    let db = DurableStore::open(s.dir.join("ost0"), HashDb::new(KvConfig::default()))
        .expect("recover daemon store");
    let mut ost = ObjectStore::with_store(Box::new(db));
    for &id in acked.iter() {
        match ost.handle(OstoreRequest::ReadBlock {
            uuid: Uuid::new(7, id),
            blk: 0,
        }) {
            OstoreResponse::Block(Ok(data)) => assert_eq!(
                data,
                vec![id as u8; 32],
                "[{site}] acked write {id} recovered with wrong bytes"
            ),
            other => panic!("[{site}] ACKED WRITE {id} LOST ACROSS CRASH: {other:?}"),
        }
    }
    // No phantoms: ids that were never issued must not exist.
    for id in [THREADS * 1000, 999_999] {
        let r = ost.handle(OstoreRequest::ReadBlock {
            uuid: Uuid::new(7, id),
            blk: 0,
        });
        assert!(
            matches!(r, OstoreResponse::Block(Err(_))),
            "[{site}] phantom block {id} appeared after recovery: {r:?}"
        );
    }
    assert!(
        !acked.is_empty(),
        "[{site}] nothing was acked before the crash — the case \
         exercised no batch at all"
    );
}

/// Crash points inside the cross-connection group committer, through a
/// real daemon under `--sync-policy every-record`:
/// * `group_commit_pre_sync` — a batch dies before its fsync: none of
///   its records were acked, earlier batches stay recovered;
/// * `group_commit_post_sync` — the batch is durable but its acks may
///   never have left: recovery may be a superset of acked, never less.
#[test]
fn crash_matrix_group_committer_sites() {
    // Hit count 25: clients issue sequentially, so at most 8 records
    // share a batch — 320 ops force ≥40 committer drains. 25 therefore
    // always fires, after ~24 acked batches of history.
    run_daemon_committer_case("group_commit_pre_sync:25");
    run_daemon_committer_case("group_commit_post_sync:25");
}

/// Recovery must be idempotent: after a torn-tail crash, the first
/// open truncates the torn bytes and replays; a second open over the
/// result must see exactly the same state. (This is the double-crash
/// scenario — dying again right after recovery must lose nothing.)
#[test]
fn crash_matrix_recovery_is_idempotent() {
    let s = Scratch::new("idempotent");
    let apply = Command::new(locod())
        .args([
            "chaos-apply",
            "--data-dir",
            s.dir.to_str().unwrap(),
            "--ops",
            OPS,
            "--sync-policy",
            "os-managed",
            "--checkpoint-every",
            CHECKPOINT_EVERY,
            "--ack-file",
            s.ack.to_str().unwrap(),
        ])
        .env_remove("LOCO_CRASHPOINT")
        .env("LOCO_IOFAULT", "wal_commit=short:90")
        .output()
        .expect("spawn chaos-apply");
    assert!(!apply.status.success(), "torn write must crash the child");
    for round in 1..=2 {
        let verify = Command::new(locod())
            .args([
                "chaos-verify",
                "--data-dir",
                s.dir.to_str().unwrap(),
                "--ops",
                OPS,
                "--ack-file",
                s.ack.to_str().unwrap(),
            ])
            .env_remove("LOCO_CRASHPOINT")
            .env_remove("LOCO_IOFAULT")
            .output()
            .expect("spawn chaos-verify");
        assert!(
            verify.status.success(),
            "recovery round {round} violated the invariant:\n{}\n{}",
            String::from_utf8_lossy(&verify.stdout),
            String::from_utf8_lossy(&verify.stderr),
        );
    }
}
