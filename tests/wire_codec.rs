//! Property/fuzz-style tests for the `Wire` codec and the frame layer:
//! every request/response variant roundtrips byte-exactly, and
//! truncated, bit-flipped and oversized-length inputs must come back as
//! decode errors — never a panic, never an unbounded allocation. Same
//! contract style as `DirentList::decode`'s corrupt-buffer tests.

use locofs::dms::{DmsRequest, DmsResponse};
use locofs::fms::{FmsRequest, FmsResponse};
use locofs::net::frame::{crc32, decode_header, encode_frame, read_frame, FrameKind, HEADER_LEN};
use locofs::net::{ReplStamp, RpcRequest, RpcResponse, SpanReply, TraceCtx};
use locofs::ostore::{OstoreRequest, OstoreResponse};
use locofs::types::{DirInode, FileAccess, FileContent, FsError, Perm, Uuid, Wire};

fn access() -> FileAccess {
    FileAccess {
        ctime: 3,
        mode: 0o644,
        uid: 1,
        gid: 2,
    }
}

fn content() -> FileContent {
    FileContent {
        mtime: 8,
        atime: 9,
        size: 4096,
        bsize: 1 << 20,
        uuid: Uuid::from_raw(21),
    }
}

/// Deterministic xorshift64* so fuzz failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn uuid(n: u64) -> Uuid {
    Uuid::from_raw(n)
}

/// One exemplar per DmsRequest variant (every field populated).
fn dms_requests() -> Vec<DmsRequest> {
    vec![
        DmsRequest::Mkdir {
            path: "/a/b".into(),
            mode: 0o755,
            uid: 1,
            gid: 2,
            ts: 3,
        },
        DmsRequest::Rmdir {
            path: "/a/b".into(),
            uid: 1,
            gid: 2,
        },
        DmsRequest::GetDir { path: "/a".into() },
        DmsRequest::StatDir {
            path: "/a".into(),
            uid: 1,
            gid: 2,
        },
        DmsRequest::ReaddirSubdirs { dir_uuid: uuid(7) },
        DmsRequest::SetDirAttr {
            path: "/a".into(),
            uid: 1,
            gid: 2,
            new_mode: Some(0o700),
            new_owner: Some((3, 4)),
            ts: 9,
        },
        DmsRequest::RenameDir {
            old_path: "/a".into(),
            new_path: "/b".into(),
            uid: 1,
            gid: 2,
            ts: 9,
        },
        DmsRequest::CheckAccess {
            path: "/a".into(),
            uid: 1,
            gid: 2,
            perm: Perm::Write,
        },
        DmsRequest::MkdirLocal {
            path: "/a".into(),
            mode: 0o755,
            uid: 1,
            gid: 2,
            ts: 3,
        },
        DmsRequest::RmdirLocal { path: "/a".into() },
        DmsRequest::AddDirent {
            dir_uuid: uuid(1),
            name: "x".into(),
            child_uuid: uuid(2),
        },
        DmsRequest::RemoveDirent {
            dir_uuid: uuid(1),
            name: "x".into(),
        },
    ]
}

fn dms_responses() -> Vec<DmsResponse> {
    let inode = DirInode::new(uuid(5), 0o755, 1, 2, 3);
    vec![
        DmsResponse::Dir(Ok(inode)),
        DmsResponse::Dir(Err(FsError::NotFound)),
        DmsResponse::Dirents(Ok(vec![
            ("a".to_string(), uuid(1)),
            ("b".to_string(), uuid(2)),
        ])),
        DmsResponse::Dirents(Err(FsError::NotADirectory)),
        DmsResponse::Done(Ok(3)),
        DmsResponse::Done(Err(FsError::Io("disk on fire".into()))),
        DmsResponse::Bool(true),
        DmsResponse::Bool(false),
    ]
}

fn fms_requests() -> Vec<FmsRequest> {
    vec![
        FmsRequest::Create {
            dir_uuid: uuid(1),
            name: "f".into(),
            mode: 0o644,
            uid: 1,
            gid: 2,
            ts: 3,
        },
        FmsRequest::Open {
            dir_uuid: uuid(1),
            name: "f".into(),
            uid: 1,
            gid: 2,
            perm: Perm::Read,
            with_content: true,
        },
        FmsRequest::Stat {
            dir_uuid: uuid(1),
            name: "f".into(),
        },
        FmsRequest::GetContent {
            dir_uuid: uuid(1),
            name: "f".into(),
        },
        FmsRequest::Access {
            dir_uuid: uuid(1),
            name: "f".into(),
            uid: 1,
            gid: 2,
            perm: Perm::Exec,
        },
        FmsRequest::Chmod {
            dir_uuid: uuid(1),
            name: "f".into(),
            uid: 1,
            mode: 0o600,
            ts: 9,
        },
        FmsRequest::Chown {
            dir_uuid: uuid(1),
            name: "f".into(),
            uid: 1,
            new_uid: 5,
            new_gid: 6,
            ts: 9,
        },
        FmsRequest::Utimens {
            dir_uuid: uuid(1),
            name: "f".into(),
            atime: 11,
            mtime: 12,
        },
        FmsRequest::SetSize {
            dir_uuid: uuid(1),
            name: "f".into(),
            size: 4096,
            ts: 9,
        },
        FmsRequest::Remove {
            dir_uuid: uuid(1),
            name: "f".into(),
        },
        FmsRequest::ListFiles { dir_uuid: uuid(1) },
        FmsRequest::ListFilesPlus { dir_uuid: uuid(1) },
        FmsRequest::CountFiles { dir_uuid: uuid(1) },
        FmsRequest::TakeFile {
            dir_uuid: uuid(1),
            name: "f".into(),
        },
        FmsRequest::PutFile {
            dir_uuid: uuid(1),
            name: "f".into(),
            access: access(),
            content: content(),
        },
    ]
}

fn fms_responses() -> Vec<FmsResponse> {
    vec![
        FmsResponse::Created(Ok(uuid(9))),
        FmsResponse::Created(Err(FsError::AlreadyExists)),
        FmsResponse::Opened(Ok((access(), Some(content())))),
        FmsResponse::Opened(Ok((access(), None))),
        FmsResponse::Opened(Err(FsError::PermissionDenied)),
        FmsResponse::Statted(Ok((access(), content()))),
        FmsResponse::Statted(Err(FsError::NotFound)),
        FmsResponse::Content(Ok(content())),
        FmsResponse::Bool(true),
        FmsResponse::Done(Ok(())),
        FmsResponse::Removed(Ok(uuid(4))),
        FmsResponse::Removed(Err(FsError::NotFound)),
        FmsResponse::Names(vec![("a".to_string(), uuid(1)), ("b".to_string(), uuid(2))]),
        FmsResponse::NamesPlus(vec![("a".to_string(), access(), content())]),
        FmsResponse::Count(17),
        FmsResponse::Taken(Ok((access(), content()))),
        FmsResponse::Taken(Err(FsError::NotFound)),
    ]
}

fn ost_requests() -> Vec<OstoreRequest> {
    vec![
        OstoreRequest::WriteBlock {
            uuid: uuid(1),
            blk: 3,
            data: vec![0xAB; 64],
        },
        OstoreRequest::ReadBlock {
            uuid: uuid(1),
            blk: 3,
        },
        OstoreRequest::TruncateBlocks {
            uuid: uuid(1),
            keep_blocks: 2,
        },
        OstoreRequest::RemoveObject { uuid: uuid(1) },
    ]
}

fn ost_responses() -> Vec<OstoreResponse> {
    vec![
        OstoreResponse::Done(Ok(())),
        OstoreResponse::Block(Ok(vec![1, 2, 3])),
        OstoreResponse::Block(Err(FsError::NotFound)),
        OstoreResponse::Removed(9),
    ]
}

/// Decode any prefix / corruption of `bytes` as `T`: must never panic,
/// and a strict prefix must never round-trip as the full value.
fn assert_decode_robust<T: Wire + PartialEq + std::fmt::Debug>(bytes: &[u8]) {
    // Every truncation errors (the codec has no zero-width suffix:
    // all encodings here end in fixed-width or length-checked data).
    for cut in 0..bytes.len() {
        assert!(
            T::from_wire(&bytes[..cut]).is_err(),
            "truncated to {cut}/{} bytes must not decode",
            bytes.len()
        );
    }
    // Trailing garbage is rejected.
    let mut padded = bytes.to_vec();
    padded.push(0);
    assert!(T::from_wire(&padded).is_err(), "trailing byte accepted");
}

/// Bit-flip fuzz: every single-bit corruption either fails to decode or
/// decodes to a *different* valid value — never panics. `budget` caps
/// the work for long encodings.
fn assert_bitflips_safe<T: Wire + PartialEq + std::fmt::Debug>(bytes: &[u8], rng: &mut Rng) {
    let total_bits = bytes.len() * 8;
    let flips: Vec<usize> = if total_bits <= 512 {
        (0..total_bits).collect()
    } else {
        (0..512)
            .map(|_| (rng.next() as usize) % total_bits)
            .collect()
    };
    for bit in flips {
        let mut mutated = bytes.to_vec();
        mutated[bit / 8] ^= 1 << (bit % 8);
        // Must not panic; Ok is fine if the flipped byte still forms a
        // valid encoding of some other value.
        let _ = T::from_wire(&mutated);
    }
}

fn exhaustive<T: Wire + PartialEq + std::fmt::Debug>(values: Vec<T>, rng: &mut Rng) {
    for v in values {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("roundtrip decode");
        assert_eq!(back, v, "roundtrip must be identity");
        assert_decode_robust::<T>(&bytes);
        assert_bitflips_safe::<T>(&bytes, rng);
    }
}

#[test]
fn every_dms_variant_roundtrips_and_rejects_corruption() {
    let mut rng = Rng(0xD5A2_91E0_33C7_B14F);
    exhaustive(dms_requests(), &mut rng);
    exhaustive(dms_responses(), &mut rng);
}

#[test]
fn every_fms_variant_roundtrips_and_rejects_corruption() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    exhaustive(fms_requests(), &mut rng);
    exhaustive(fms_responses(), &mut rng);
}

#[test]
fn every_ostore_variant_roundtrips_and_rejects_corruption() {
    let mut rng = Rng(0xC2B2_AE3D_27D4_EB4F);
    exhaustive(ost_requests(), &mut rng);
    exhaustive(ost_responses(), &mut rng);
}

#[test]
fn rpc_envelopes_roundtrip_and_reject_corruption() {
    let mut rng = Rng(0x1656_67B1_9E37_79F9);
    let reqs = vec![
        RpcRequest {
            budget_ms: 0,
            trace: None,
            body: DmsRequest::GetDir { path: "/x".into() },
        },
        RpcRequest {
            budget_ms: 0,
            trace: Some(TraceCtx {
                trace_id: 42,
                span_id: 7,
                parent: 3,
                sampled: true,
            }),
            body: DmsRequest::GetDir { path: "/x".into() },
        },
    ];
    exhaustive(reqs, &mut rng);
    let resps = vec![
        RpcResponse {
            cost: 1234,
            span: None,
            repl: None,
            body: DmsResponse::Bool(true),
        },
        RpcResponse {
            cost: 1234,
            span: Some(SpanReply {
                op: "GetDir",
                queue_ns: 55,
                attrs: vec![("kv_ns", 9), ("sw_ns", 2)],
            }),
            repl: Some(ReplStamp {
                epoch: 7,
                fenced: true,
            }),
            body: DmsResponse::Bool(true),
        },
    ];
    exhaustive(resps, &mut rng);
}

#[test]
fn oversized_length_fields_error_without_allocating() {
    // A Vec<u8> claiming u32::MAX elements in a 10-byte buffer: the
    // count sanity check must fire before any reserve. If this test
    // completes (rather than aborting on OOM), the guard held.
    let mut evil = Vec::new();
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    evil.extend_from_slice(&[0u8; 6]);
    assert!(Vec::<u8>::from_wire(&evil).is_err());

    // Same via a request wrapper: WriteBlock's data length lies.
    let mut bytes = OstoreRequest::WriteBlock {
        uuid: Uuid::from_raw(1),
        blk: 0,
        data: vec![7; 8],
    }
    .to_wire();
    // data length field sits after tag(1) + uuid(8) + blk(8).
    let len_off = 1 + 8 + 8;
    bytes[len_off..len_off + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
    assert!(OstoreRequest::from_wire(&bytes).is_err());

    // A String claiming 64 MiB + 1 is over MAX_WIRE_LEN even if the
    // buffer were big enough.
    let mut huge = Vec::new();
    huge.extend_from_slice(&((locofs::types::MAX_WIRE_LEN as u32) + 1).to_le_bytes());
    huge.extend_from_slice(b"abc");
    assert!(String::from_wire(&huge).is_err());
}

#[test]
fn unknown_enum_tags_are_rejected() {
    for bad_tag in [12u8, 200, 255] {
        let mut bytes = DmsRequest::GetDir { path: "/x".into() }.to_wire();
        bytes[0] = bad_tag;
        assert!(DmsRequest::from_wire(&bytes).is_err(), "tag {bad_tag}");
    }
    let mut bytes = OstoreResponse::Removed(1).to_wire();
    bytes[0] = 99;
    assert!(OstoreResponse::from_wire(&bytes).is_err());
}

// ---- frame layer -----------------------------------------------------

#[test]
fn frames_roundtrip_through_a_byte_stream() {
    let payload = DmsRequest::GetDir { path: "/x".into() }.to_wire();
    let bytes = encode_frame(FrameKind::Request, 77, &payload);
    let frame = read_frame(&mut &bytes[..]).unwrap().expect("one frame");
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.req_id, 77);
    assert_eq!(frame.payload, payload);
    // Clean EOF at a frame boundary reads as None, not an error.
    assert!(read_frame(&mut &[][..]).unwrap().is_none());
}

#[test]
fn corrupted_frames_are_rejected_not_panicked_on() {
    let payload = b"hello wire".to_vec();
    let good = encode_frame(FrameKind::Response, 5, &payload);

    // Truncation anywhere mid-frame is an error (not a clean close).
    for cut in 1..good.len() {
        assert!(
            read_frame(&mut &good[..cut]).is_err(),
            "cut at {cut} must error"
        );
    }

    // Any single-bit flip in the payload or checksum trips the CRC;
    // flips in the header trip magic/version/len validation. Two header
    // fields are deliberately outside the CRC: the request id (bytes
    // 4..12, so a flipped id still parses) and the kind byte (byte 3,
    // where a flip may land on another *valid* kind). Both only
    // misroute a frame within one already-authenticated connection.
    for byte in 0..good.len() {
        if byte == 3 || (4..12).contains(&byte) {
            continue;
        }
        for bit in 0..8 {
            let mut evil = good.clone();
            evil[byte] ^= 1 << bit;
            match read_frame(&mut &evil[..]) {
                Err(_) => {}
                Ok(got) => panic!("flip byte {byte} bit {bit} must be rejected, got {got:?}"),
            }
        }
    }

    // A length field claiming more than MAX_PAYLOAD errors before any
    // allocation happens.
    let mut evil = good.clone();
    evil[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(read_frame(&mut &evil[..]).is_err());
}

#[test]
fn header_validation_rejects_wrong_magic_and_version() {
    let good = encode_frame(FrameKind::Control, 0, b"x");
    let mut hdr = [0u8; HEADER_LEN];
    hdr.copy_from_slice(&good[..HEADER_LEN]);
    assert!(decode_header(&hdr).is_ok());

    let mut bad = hdr;
    bad[0] = b'X';
    assert!(decode_header(&bad).is_err(), "bad magic");
    let mut bad = hdr;
    bad[2] = 99;
    assert!(decode_header(&bad).is_err(), "future protocol version");
    let mut bad = hdr;
    bad[3] = 42;
    assert!(decode_header(&bad).is_err(), "unknown frame kind");
}

#[test]
fn crc32_matches_reference_vector() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
}

#[test]
fn random_garbage_never_decodes_as_anything_dangerous() {
    // 4 KiB of deterministic noise thrown at every decoder: any result
    // is fine as long as nothing panics or over-allocates.
    let mut rng = Rng(0x0123_4567_89AB_CDEF);
    for _ in 0..200 {
        let len = (rng.next() as usize) % 64;
        let noise: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = DmsRequest::from_wire(&noise);
        let _ = DmsResponse::from_wire(&noise);
        let _ = FmsRequest::from_wire(&noise);
        let _ = FmsResponse::from_wire(&noise);
        let _ = OstoreRequest::from_wire(&noise);
        let _ = OstoreResponse::from_wire(&noise);
        let _ = RpcRequest::<FmsRequest>::from_wire(&noise);
        let _ = RpcResponse::<FmsResponse>::from_wire(&noise);
        let _ = read_frame(&mut &noise[..]);
    }
}
