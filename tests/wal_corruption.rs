//! Torture the on-disk durability formats: truncate the WAL at every
//! byte boundary, flip bits everywhere, craft oversized length fields,
//! append garbage tails, and corrupt the snapshot. The recovery
//! contract under all of it:
//!
//! * `DurableStore::open` never panics;
//! * when it succeeds, the recovered state equals the state after some
//!   *prefix* of the committed op stream (commit groups are atomic —
//!   no torn or phantom records, ever);
//! * when the damage is detectable but not safely truncatable (a
//!   corrupt snapshot), it fails with a clean `Err`.

use locofs::kv::{BTreeDb, DurableStore, KvConfig, KvStore};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

const OPS: u64 = 60;

static SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!(
            "loco-wal-corruption-{}-{n}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic op `i`: a mix of puts, appends, in-place writes and
/// deletes over a small rotating key space, so every WAL op code and
/// multi-part payload shape appears in the log.
fn apply_op(db: &mut dyn KvStore, i: u64) {
    let key = format!("k{:02}", i % 17).into_bytes();
    match i % 6 {
        0 | 1 => db.put(&key, format!("value-{i}").as_bytes()),
        2 => db.append(&key, format!("+{i}").as_bytes()),
        3 => {
            db.write_at(&key, (i % 5) as usize, b"XY");
        }
        4 => {
            db.delete(&key);
        }
        _ => db.put(&key, &[(i % 251) as u8; 48]),
    }
}

fn dump(db: &mut dyn KvStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut d = db.scan_prefix(b"");
    d.sort();
    d
}

/// `prefixes[k]` = the sorted state after ops `0..k`.
fn model_prefixes() -> Vec<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut model = BTreeDb::new(KvConfig::default());
    let mut out = vec![dump(&mut model)];
    for i in 0..OPS {
        apply_op(&mut model, i);
        out.push(dump(&mut model));
    }
    out
}

/// Write all `OPS` ops through a DurableStore at `dir`. With
/// `checkpoint` false the checkpoint threshold is parked out of reach
/// so every op stays in the WAL; with it true a checkpoint lands
/// mid-stream, leaving a snapshot plus a WAL tail.
fn build_store(dir: &Path, checkpoint: bool) {
    let mut db = DurableStore::open(dir, BTreeDb::new(KvConfig::default())).unwrap();
    db.checkpoint_every = usize::MAX;
    for i in 0..OPS {
        apply_op(&mut db, i);
        if checkpoint && i == OPS / 2 {
            db.checkpoint().unwrap();
        }
    }
}

/// Open the (possibly damaged) store and, on success, return which
/// model prefix the recovered state equals; a recovered state that
/// matches *no* prefix is the one unforgivable outcome.
fn open_and_classify(
    dir: &Path,
    prefixes: &[Vec<(Vec<u8>, Vec<u8>)>],
    what: &str,
) -> Option<usize> {
    match DurableStore::open(dir, BTreeDb::new(KvConfig::default())) {
        Err(_) => None,
        Ok(mut db) => {
            let got = dump(&mut db);
            match prefixes.iter().position(|p| *p == got) {
                Some(k) => Some(k),
                None => panic!(
                    "{what}: recovered state matches no prefix of the op stream \
                     ({} keys recovered) — torn or phantom records leaked through",
                    got.len()
                ),
            }
        }
    }
}

/// Copy `src` store dir into a fresh dir with `mutate` applied to the
/// WAL bytes (recovery truncates/rewrites in place, so each case needs
/// its own copy of the original damage).
fn with_damaged_wal(src: &Path, dst: &Path, mutate: impl FnOnce(&mut Vec<u8>)) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    if src.join("snapshot.db").exists() {
        std::fs::copy(src.join("snapshot.db"), dst.join("snapshot.db")).unwrap();
    }
    let mut wal = std::fs::read(src.join("wal.log")).unwrap();
    mutate(&mut wal);
    std::fs::write(dst.join("wal.log"), &wal).unwrap();
}

#[test]
fn truncation_at_every_byte_recovers_a_prefix() {
    let prefixes = model_prefixes();
    let src = Scratch::new("trunc-src");
    build_store(&src.0, false);
    let len = std::fs::read(src.0.join("wal.log")).unwrap().len();
    let case = Scratch::new("trunc-case");

    let mut longest = 0usize;
    for cut in 0..=len {
        with_damaged_wal(&src.0, &case.0, |wal| wal.truncate(cut));
        let k = open_and_classify(&case.0, &prefixes, &format!("truncate at {cut}"))
            .unwrap_or_else(|| panic!("truncate at {cut}: open failed — a shorter log must load"));
        assert!(
            k >= longest,
            "truncate at {cut}: recovered prefix {k} shrank below {longest} — \
             more log bytes must never mean fewer recovered ops"
        );
        longest = longest.max(k);
    }
    assert_eq!(
        longest, OPS as usize,
        "the untruncated log must recover every op"
    );
}

#[test]
fn bit_flips_never_panic_and_never_fabricate_state() {
    let prefixes = model_prefixes();
    let src = Scratch::new("flip-src");
    build_store(&src.0, false);
    let len = std::fs::read(src.0.join("wal.log")).unwrap().len();
    let case = Scratch::new("flip-case");

    // Every byte of the 5-byte header, then a stride across the body.
    let positions: Vec<usize> = (0..5.min(len)).chain((5..len).step_by(3)).collect();
    for pos in positions {
        let bit = 1u8 << (pos % 8);
        with_damaged_wal(&src.0, &case.0, |wal| wal[pos] ^= bit);
        // Ok-with-some-prefix or clean Err (header damage) both
        // satisfy the contract; open_and_classify panics on the one
        // outcome that does not (a state matching no prefix).
        let _ = open_and_classify(&case.0, &prefixes, &format!("bit flip at {pos}"));
    }
}

#[test]
fn oversized_length_field_is_rejected_without_allocation() {
    let prefixes = model_prefixes();
    let src = Scratch::new("oversize-src");
    build_store(&src.0, false);
    let case = Scratch::new("oversize-case");

    // A crafted tail record claiming a 4 GiB key: seq, commit flag,
    // put op, klen = u32::MAX. The parser must bounds-check before
    // trusting the length — no OOM, no panic, tail dropped.
    with_damaged_wal(&src.0, &case.0, |wal| {
        wal.extend_from_slice(&(OPS + 1).to_le_bytes());
        wal.push(0x01); // commit
        wal.push(1); // OP_PUT
        wal.extend_from_slice(&u32::MAX.to_le_bytes());
        wal.extend_from_slice(b"garbage");
    });
    let k = open_and_classify(&case.0, &prefixes, "oversized length")
        .expect("a valid log with a junk tail must load");
    assert_eq!(k, OPS as usize, "junk tail must not cost committed ops");

    // Recovery truncates the junk: a second open sees a clean log.
    let wal_len = std::fs::read(case.0.join("wal.log")).unwrap().len();
    assert_eq!(
        open_and_classify(&case.0, &prefixes, "reopen after truncation"),
        Some(OPS as usize)
    );
    assert_eq!(
        std::fs::read(case.0.join("wal.log")).unwrap().len(),
        wal_len,
        "second recovery must be a no-op"
    );
}

#[test]
fn torn_tail_garbage_is_truncated() {
    let prefixes = model_prefixes();
    let src = Scratch::new("torn-src");
    build_store(&src.0, false);
    let clean_len = std::fs::read(src.0.join("wal.log")).unwrap().len();
    let case = Scratch::new("torn-case");

    with_damaged_wal(&src.0, &case.0, |wal| {
        // A torn write: half of a plausible record, then noise.
        wal.extend_from_slice(&(OPS + 1).to_le_bytes());
        for i in 0..37u8 {
            wal.push(i.wrapping_mul(89) ^ 0x5a);
        }
    });
    assert_eq!(
        open_and_classify(&case.0, &prefixes, "torn tail"),
        Some(OPS as usize),
        "committed prefix must survive a torn tail"
    );
    assert_eq!(
        std::fs::read(case.0.join("wal.log")).unwrap().len(),
        clean_len,
        "recovery must truncate the log back to its committed prefix"
    );
}

#[test]
fn snapshot_corruption_is_detected_never_absorbed() {
    let prefixes = model_prefixes();
    let src = Scratch::new("snap-src");
    build_store(&src.0, true); // checkpoint mid-stream: snapshot + WAL tail
    assert_eq!(
        open_and_classify(&src.0, &prefixes, "pristine snapshot+wal"),
        Some(OPS as usize)
    );

    let snap = std::fs::read(src.0.join("snapshot.db")).unwrap();
    let case = Scratch::new("snap-case");
    // Every header byte (magic, version, last-covered-seq, header crc)
    // plus a stride across the image body. The last-covered-seq decides
    // which WAL records replay — an undetected flip there would
    // silently double-apply or skip committed ops.
    let positions: Vec<usize> = (0..17.min(snap.len()))
        .chain((17..snap.len()).step_by(5))
        .collect();
    for pos in positions {
        let _ = std::fs::remove_dir_all(&case.0);
        std::fs::create_dir_all(&case.0).unwrap();
        std::fs::copy(src.0.join("wal.log"), case.0.join("wal.log")).unwrap();
        let mut bytes = snap.clone();
        bytes[pos] ^= 1 << (pos % 8);
        std::fs::write(case.0.join("snapshot.db"), &bytes).unwrap();

        match DurableStore::open(&case.0, BTreeDb::new(KvConfig::default())) {
            Err(_) => {} // detected: the only acceptable failure mode
            Ok(mut db) => {
                // If a flip somehow passes every checksum, the loaded
                // state must still be exactly right.
                assert_eq!(
                    dump(&mut db),
                    prefixes[OPS as usize],
                    "snapshot flip at byte {pos} loaded silently WRONG state"
                );
            }
        }
    }
}
