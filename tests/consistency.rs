//! Consistency-boundary tests: lease expiry, stale caches across
//! clients, rename/caching interplay, and the uuid-indirection
//! properties that make LocoFS's loose coupling safe.

use locofs::client::{LocoCluster, LocoConfig};
use locofs::sim::time::SECS;
use locofs::types::{FsError, Perm};

/// §3.2.2 + §3.4.2 interplay: a client holding a *stale path* lease can
/// keep creating in a renamed directory, and the files land in the
/// directory's NEW location — because placement and dirents key on the
/// directory's uuid, which rename never changes. Loose coupling turns
/// what would be a consistency bug into correct behaviour.
#[test]
fn stale_lease_creates_land_in_renamed_directory() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut a = cluster.client();
    let mut b = cluster.client();

    a.mkdir("/proj", 0o777).unwrap();
    a.create("/proj/seed", 0o644).unwrap(); // warms a's lease on /proj

    // b renames the directory while a's lease is still valid.
    b.rename_dir("/proj", "/proj-v2").unwrap();

    // a creates through the stale path — succeeds via the cached uuid.
    a.create("/proj/during-lease", 0o644).unwrap();

    // The file is visible at the directory's new name.
    assert!(b.stat_file("/proj-v2/during-lease").is_ok());
    assert!(b.stat_file("/proj-v2/seed").is_ok());

    // Once a's lease expires, the old path is gone for a as well.
    a.advance_clock(31 * SECS);
    assert_eq!(
        a.create("/proj/after-lease", 0o644).err(),
        Some(FsError::NotFound)
    );
    assert!(a.stat_file("/proj-v2/during-lease").is_ok());
}

/// Lease expiry forces revalidation: permission changes become visible
/// to cached clients after at most one lease period.
#[test]
fn chmod_visible_after_lease_expiry() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut owner = cluster.client_as(10, 10);
    let mut other = cluster.client_as(20, 20);

    owner.mkdir("/open", 0o777).unwrap();
    other.create("/open/f1", 0o644).unwrap(); // other caches /open

    // Owner locks the directory down.
    owner.chmod_dir("/open", 0o700).unwrap();

    // Within the lease, other's stale d-inode still authorizes creates
    // (the documented lease window).
    assert!(other.create("/open/f2", 0o644).is_ok());

    // After expiry, the new mode is enforced.
    other.advance_clock(31 * SECS);
    assert_eq!(
        other.create("/open/f3", 0o644).err(),
        Some(FsError::PermissionDenied)
    );
}

/// rmdir/racing-create: after a directory is removed, stale-lease file
/// creates still *succeed* at the FMS (uuid keyed) but the files are
/// unreachable once the lease lapses — and a re-created directory of
/// the same name gets a fresh uuid, so no entries leak across
/// generations.
#[test]
fn directory_generations_do_not_leak_entries() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut a = cluster.client();
    let mut b = cluster.client();

    a.mkdir("/gen", 0o777).unwrap();
    a.create("/gen/old-file", 0o644).unwrap();
    a.unlink("/gen/old-file").unwrap();
    a.rmdir("/gen").unwrap();

    // Same name, new generation (fresh uuid).
    b.mkdir("/gen", 0o777).unwrap();
    b.create("/gen/new-file", 0o644).unwrap();
    let entries = b.readdir("/gen").unwrap();
    assert_eq!(entries.len(), 1, "{entries:?}");
    assert_eq!(entries[0].0, "new-file");
}

/// utimens only touches the content part; chmod only the access part —
/// concurrent updates to different parts never clobber each other.
#[test]
fn decoupled_parts_update_independently() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/f", 0o644).unwrap();

    fs.utimens_file("/d/f", 111, 222).unwrap();
    fs.chmod_file("/d/f", 0o600).unwrap();
    fs.utimens_file("/d/f", 333, 444).unwrap();

    let st = fs.stat_file("/d/f").unwrap();
    assert_eq!(st.access.mode, 0o600, "chmod survived utimens");
    assert_eq!((st.content.atime, st.content.mtime), (333, 444));
}

/// Open handles keep working across a file rename (uuid-based data
/// addressing): a writer holding a handle writes blocks that the
/// renamed file still owns.
#[test]
fn open_handle_survives_rename() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut writer = cluster.client();
    let mut renamer = cluster.client();

    writer.mkdir("/w", 0o777).unwrap();
    let mut h = writer.create("/w/log", 0o644).unwrap();
    writer.write(&mut h, 0, b"first").unwrap();

    renamer.rename_file("/w/log", "/w/log.archived").unwrap();

    // Data written through the (now stale-pathed) handle reaches the
    // same uuid → same blocks. The metadata size update goes to the old
    // key and fails, which the client surfaces.
    let res = writer.write(&mut h, 5, b"-second");
    assert_eq!(res, Err(FsError::NotFound), "size update sees the rename");

    // But the file content at the new name still has the first write.
    let h2 = renamer.open("/w/log.archived", Perm::Read).unwrap();
    assert_eq!(renamer.read(&h2, 0, 5).unwrap(), b"first");
}

/// Two clients with independent caches both converge on the DMS state.
#[test]
fn independent_caches_converge() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut a = cluster.client();
    let mut b = cluster.client();
    a.mkdir("/shared", 0o777).unwrap();
    a.create("/shared/x", 0o644).unwrap();
    b.create("/shared/y", 0o644).unwrap();
    let (ah, _am) = a.cache_stats();
    let (_bh, bm) = b.cache_stats();
    assert!(bm >= 1, "b had to resolve /shared itself");
    // Both list both files.
    assert_eq!(a.readdir("/shared").unwrap().len(), 2);
    assert_eq!(b.readdir("/shared").unwrap().len(), 2);
    // a's later ops still hit its warm cache.
    a.create("/shared/z", 0o644).unwrap();
    let (ah2, _) = a.cache_stats();
    assert!(ah2 > ah);
}
