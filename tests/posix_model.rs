//! Randomized differential testing: every modeled filesystem (LocoFS
//! and the four baselines) must agree with a simple in-memory reference
//! model under random operation sequences (seeded, deterministic).
//!
//! The reference model is a plain map of paths; agreement is checked on
//! each operation's success/failure and on namespace contents at the
//! end. This is what makes the baseline *models* trustworthy
//! comparators rather than stubs.

use locofs::baselines::{
    CephFsModel, DistFs, GlusterFsModel, IndexFsModel, LocoAdapter, LustreFsModel, LustreVariant,
};
use locofs::client::LocoConfig;
use locofs::sim::rng::Rng;
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug, PartialEq)]
enum NodeKind {
    Dir,
    File,
}

/// Reference namespace: path → kind.
///
/// `split_namespace` models LocoFS's decoupled design, where directory
/// inodes (on the DMS) and file inodes (on the FMS) live in disjoint
/// key spaces: a file and a directory may share a name, by
/// construction — a documented relaxation of POSIX (DESIGN.md §5).
#[derive(Default)]
struct RefFs {
    nodes: BTreeMap<String, NodeKind>,
    split_namespace: bool,
}

impl RefFs {
    fn new() -> Self {
        let mut s = Self::default();
        s.nodes.insert("/".into(), NodeKind::Dir);
        s
    }

    fn split() -> Self {
        let mut s = Self::new();
        s.split_namespace = true;
        s
    }

    fn key(&self, p: &str, kind: NodeKind) -> String {
        if self.split_namespace && kind == NodeKind::File {
            format!("F{p}")
        } else {
            p.to_string()
        }
    }

    fn parent_ok(&self, p: &str) -> bool {
        locofs::types::parent(p)
            .map(|d| self.nodes.get(d) == Some(&NodeKind::Dir))
            .unwrap_or(false)
    }

    fn children(&self, dir: &str) -> Vec<String> {
        let mk = |root: &str| {
            if dir == "/" {
                format!("{root}/")
            } else {
                format!("{root}{dir}/")
            }
        };
        let mut prefixes = vec![mk("")];
        if self.split_namespace {
            prefixes.push(mk("F"));
        }
        self.nodes
            .keys()
            .filter(|k| {
                prefixes.iter().any(|prefix| {
                    k.starts_with(prefix)
                        && k.len() > prefix.len()
                        && !k[prefix.len()..].contains('/')
                })
            })
            .cloned()
            .collect()
    }

    fn mkdir(&mut self, p: &str) -> bool {
        let key = self.key(p, NodeKind::Dir);
        if !self.parent_ok(p) || self.nodes.contains_key(&key) {
            return false;
        }
        if !self.split_namespace && self.nodes.contains_key(&self.key(p, NodeKind::File)) {
            return false;
        }
        self.nodes.insert(key, NodeKind::Dir);
        true
    }

    fn create(&mut self, p: &str) -> bool {
        let key = self.key(p, NodeKind::File);
        if !self.parent_ok(p) || self.nodes.contains_key(&key) {
            return false;
        }
        if !self.split_namespace && self.nodes.contains_key(p) {
            return false;
        }
        self.nodes.insert(key, NodeKind::File);
        true
    }

    fn unlink(&mut self, p: &str) -> bool {
        let key = self.key(p, NodeKind::File);
        if self.nodes.get(&key) == Some(&NodeKind::File) {
            self.nodes.remove(&key);
            true
        } else {
            false
        }
    }

    fn rmdir(&mut self, p: &str) -> bool {
        if p == "/" || self.nodes.get(p) != Some(&NodeKind::Dir) {
            return false;
        }
        if !self.children(p).is_empty() {
            return false;
        }
        self.nodes.remove(p);
        true
    }

    fn stat_file(&self, p: &str) -> bool {
        self.nodes.get(&self.key(p, NodeKind::File)) == Some(&NodeKind::File)
    }

    fn stat_dir(&self, p: &str) -> bool {
        self.nodes.get(p) == Some(&NodeKind::Dir)
    }
}

#[derive(Clone, Debug)]
enum ModelOp {
    Mkdir(String),
    Create(String),
    Unlink(String),
    Rmdir(String),
    StatFile(String),
    StatDir(String),
    Readdir(String),
}

/// Small path universe so operations collide meaningfully.
fn random_path(rng: &mut Rng) -> String {
    const COMPS: [&str; 4] = ["a", "b", "c", "d"];
    let depth = rng.gen_range(1..4);
    let comps: Vec<&str> = (0..depth).map(|_| COMPS[rng.gen_range(0..4)]).collect();
    format!("/{}", comps.join("/"))
}

fn random_op(rng: &mut Rng) -> ModelOp {
    let p = random_path(rng);
    match rng.gen_below(7) {
        0 => ModelOp::Mkdir(p),
        1 => ModelOp::Create(p),
        2 => ModelOp::Unlink(p),
        3 => ModelOp::Rmdir(p),
        4 => ModelOp::StatFile(p),
        5 => ModelOp::StatDir(p),
        _ => ModelOp::Readdir(p),
    }
}

fn random_ops(rng: &mut Rng, max_len: usize) -> Vec<ModelOp> {
    let n = rng.gen_range(1..max_len);
    (0..n).map(|_| random_op(rng)).collect()
}

fn check_fs_against_model(mut fs: Box<dyn DistFs>, ops: &[ModelOp]) {
    check_fs_against(fs.as_mut(), RefFs::new(), ops)
}

fn check_fs_split_namespace(mut fs: Box<dyn DistFs>, ops: &[ModelOp]) {
    check_fs_against(fs.as_mut(), RefFs::split(), ops)
}

fn check_fs_against(fs: &mut dyn DistFs, mut model: RefFs, ops: &[ModelOp]) {
    for (i, op) in ops.iter().enumerate() {
        let label = format!("{} op#{i} {op:?}", fs.name());
        match op {
            ModelOp::Mkdir(p) => {
                assert_eq!(fs.mkdir(p).is_ok(), model.mkdir(p), "{label}")
            }
            ModelOp::Create(p) => {
                assert_eq!(fs.create(p).is_ok(), model.create(p), "{label}")
            }
            ModelOp::Unlink(p) => {
                assert_eq!(fs.unlink(p).is_ok(), model.unlink(p), "{label}")
            }
            ModelOp::Rmdir(p) => {
                assert_eq!(fs.rmdir(p).is_ok(), model.rmdir(p), "{label}")
            }
            ModelOp::StatFile(p) => {
                assert_eq!(fs.stat_file(p).is_ok(), model.stat_file(p), "{label}")
            }
            ModelOp::StatDir(p) => {
                assert_eq!(fs.stat_dir(p).is_ok(), model.stat_dir(p), "{label}")
            }
            ModelOp::Readdir(p) => {
                let got = fs.readdir(p);
                if model.stat_dir(p) {
                    assert_eq!(
                        got.unwrap_or(usize::MAX),
                        model.children(p).len(),
                        "{label}"
                    );
                } else {
                    assert!(got.is_err(), "{label} should fail");
                }
            }
        }
    }
}

const CASES: u64 = 24;

#[test]
fn locofs_matches_reference() {
    let mut rng = Rng::seed_from_u64(0x10C0_0001);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 80);
        check_fs_split_namespace(
            Box::new(LocoAdapter::new(LocoConfig::with_servers(4))),
            &ops,
        );
    }
}

#[test]
fn locofs_nocache_matches_reference() {
    let mut rng = Rng::seed_from_u64(0x10C0_0002);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 80);
        check_fs_split_namespace(
            Box::new(LocoAdapter::new(LocoConfig::with_servers(3).no_cache())),
            &ops,
        );
    }
}

#[test]
fn locofs_coupled_matches_reference() {
    let mut rng = Rng::seed_from_u64(0x10C0_0003);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 80);
        check_fs_split_namespace(
            Box::new(LocoAdapter::new(LocoConfig::with_servers(4).coupled())),
            &ops,
        );
    }
}

#[test]
fn locofs_sharded_dms_matches_reference() {
    // The sharded-DMS ablation must keep namespace semantics
    // (minus rename/chmod-dir, which the generator doesn't emit).
    let mut rng = Rng::seed_from_u64(0x10C0_0004);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 80);
        check_fs_split_namespace(
            Box::new(LocoAdapter::new(LocoConfig::with_servers(3).sharded_dms(4))),
            &ops,
        );
    }
}

#[test]
fn indexfs_matches_reference() {
    let mut rng = Rng::seed_from_u64(0x1DE_0001);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 60);
        check_fs_against_model(Box::new(IndexFsModel::new(4)), &ops);
    }
}

#[test]
fn cephfs_matches_reference() {
    let mut rng = Rng::seed_from_u64(0xCE_0001);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 60);
        check_fs_against_model(Box::new(CephFsModel::new(4)), &ops);
    }
}

#[test]
fn gluster_matches_reference() {
    let mut rng = Rng::seed_from_u64(0x61_0001);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 60);
        check_fs_against_model(Box::new(GlusterFsModel::new(4)), &ops);
    }
}

#[test]
fn lustre_variants_match_reference() {
    let mut rng = Rng::seed_from_u64(0x105_0001);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng, 60);
        for variant in [
            LustreVariant::Single,
            LustreVariant::Dne1,
            LustreVariant::Dne2,
        ] {
            check_fs_against_model(Box::new(LustreFsModel::new(variant, 4)), &ops);
        }
    }
}
