//! Server restart/recovery: snapshot every metadata server, rebuild the
//! cluster from the images, and verify the namespace (and uuid
//! allocation) survives intact.

use locofs::client::{LocoCluster, LocoConfig};
use locofs::dms::{DirServer, DmsBackend};
use locofs::fms::{FileServer, FmsMode};
use locofs::kv::KvConfig;
use locofs::net::{class, ServerId, SimEndpoint};
use locofs::obs::MetricsRegistry;
use locofs::types::{FsError, HashRing};

/// Snapshot a whole cluster's metadata tier and rebuild it.
fn restart(cluster: &LocoCluster) -> LocoCluster {
    let dms_image = cluster.dms[0].with_service(|s| s.snapshot());
    let fms_images: Vec<Vec<u8>> = cluster
        .fms
        .iter()
        .map(|f| f.with_service(|s| s.snapshot()))
        .collect();

    let dms = vec![SimEndpoint::new(
        ServerId::new(class::DMS, 0),
        DirServer::restore(DmsBackend::BTree, KvConfig::default(), &dms_image).unwrap(),
    )];
    let fms = fms_images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            SimEndpoint::new(
                ServerId::new(class::FMS, i as u16),
                FileServer::restore(FmsMode::Decoupled, KvConfig::default(), img).unwrap(),
            )
        })
        .collect();
    LocoCluster {
        config: cluster.config.clone(),
        dms,
        fms,
        ost: cluster.ost.clone(), // data tier kept (metadata restart only)
        ring: HashRing::new(cluster.config.num_fms),
        registry: MetricsRegistry::shared(),
        tracer: cluster.tracer.clone(),
        flight: cluster.flight.clone(),
        watchdog: cluster.watchdog.clone(),
    }
}

#[test]
fn namespace_survives_metadata_restart() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/proj", 0o755).unwrap();
    fs.mkdir("/proj/sub", 0o750).unwrap();
    for i in 0..20 {
        fs.create(&format!("/proj/f{i}"), 0o644).unwrap();
    }
    let mut h = fs.create("/proj/sub/data", 0o600).unwrap();
    fs.write(&mut h, 0, b"durable payload").unwrap();
    fs.chmod_file("/proj/f3", 0o400).unwrap();

    let restarted = restart(&cluster);
    let mut fs2 = restarted.client();

    // Directory tree, files, attributes and data all intact.
    assert_eq!(fs2.stat_dir("/proj/sub").unwrap().mode, 0o750);
    assert_eq!(fs2.readdir("/proj").unwrap().len(), 21);
    assert_eq!(fs2.stat_file("/proj/f3").unwrap().access.mode, 0o400);
    let h2 = fs2
        .open("/proj/sub/data", locofs::types::Perm::Read)
        .unwrap();
    assert_eq!(fs2.read(&h2, 0, h2.size).unwrap(), b"durable payload");
}

#[test]
fn uuid_allocation_resumes_without_collisions() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    let mut uuids = std::collections::HashSet::new();
    for i in 0..16 {
        let h = fs.create(&format!("/d/a{i}"), 0o644).unwrap();
        uuids.insert(h.uuid);
    }

    let restarted = restart(&cluster);
    let mut fs2 = restarted.client();
    // New objects after restart must not reuse pre-restart uuids —
    // block addressing depends on it.
    for i in 0..16 {
        let h = fs2.create(&format!("/d/b{i}"), 0o644).unwrap();
        assert!(uuids.insert(h.uuid), "uuid {} reused after restart", h.uuid);
    }
    // New directories also get fresh uuids.
    fs2.mkdir("/d2", 0o755).unwrap();
    let d1 = fs2.stat_dir("/d").unwrap().uuid;
    let d2 = fs2.stat_dir("/d2").unwrap().uuid;
    assert_ne!(d1, d2);
}

#[test]
fn restore_can_migrate_dms_backend() {
    // Build on the hash backend, restore onto the B+ tree — and gain
    // range-move rename in the process.
    let mut cfg = LocoConfig::with_servers(2);
    cfg.dms_backend = DmsBackend::Hash;
    let cluster = LocoCluster::new(cfg);
    let mut fs = cluster.client();
    fs.mkdir("/a", 0o755).unwrap();
    fs.mkdir("/a/b", 0o755).unwrap();

    let image = cluster.dms[0].with_service(|s| s.snapshot());
    let migrated = DirServer::restore(DmsBackend::BTree, KvConfig::default(), &image).unwrap();
    let dms = vec![SimEndpoint::new(ServerId::new(class::DMS, 0), migrated)];
    let restarted = LocoCluster {
        config: cluster.config.clone(),
        dms,
        fms: cluster.fms.clone(),
        ost: cluster.ost.clone(),
        ring: HashRing::new(cluster.config.num_fms),
        registry: MetricsRegistry::shared(),
        tracer: cluster.tracer.clone(),
        flight: cluster.flight.clone(),
        watchdog: cluster.watchdog.clone(),
    };
    let mut fs2 = restarted.client();
    assert!(fs2.stat_dir("/a/b").is_ok());
    let moved = fs2.rename_dir("/a", "/z").unwrap();
    assert_eq!(moved, 2);
    assert!(fs2.stat_dir("/z/b").is_ok());
    assert_eq!(fs2.stat_dir("/a"), Err(FsError::NotFound));
}

#[test]
fn corrupt_server_snapshots_are_rejected() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(1));
    let mut fs = cluster.client();
    fs.mkdir("/x", 0o755).unwrap();
    let mut image = cluster.dms[0].with_service(|s| s.snapshot());
    image.truncate(image.len() / 2);
    assert!(DirServer::restore(DmsBackend::BTree, KvConfig::default(), &image).is_err());
    assert!(DirServer::restore(DmsBackend::BTree, KvConfig::default(), b"xy").is_err());
    assert!(FileServer::restore(FmsMode::Decoupled, KvConfig::default(), b"").is_err());
}
