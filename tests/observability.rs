//! Observability integration: the metrics registry, endpoint
//! instrumentation, and trace export working together across the
//! stack. These are the acceptance tests of the `loco-obs` subsystem:
//!
//! * both transports (simulated lock-served, threaded channel-served)
//!   feed identical virtual-cost histograms for identical workloads,
//!   and both agree with the visit traces the client records;
//! * `MetricsRegistry::snapshot()` / `render_prometheus()` are safe
//!   while server threads are concurrently recording;
//! * a multi-visit operation (create: DMS then FMS) exports to Chrome
//!   trace-event JSON and parses back with correctly nested spans;
//! * the log-bucketed histogram holds p50/p99 within 1% of exact on
//!   one million samples.

use locofs::client::{ClusterReport, LocoCluster, LocoConfig};
use locofs::dms::{DirServer, DmsBackend, DmsRequest, DmsResponse};
use locofs::kv::KvConfig;
use locofs::net::{
    chrome_trace_of_ops, class, spawn_with_metrics, CallCtx, Endpoint, EndpointMetrics, ServerId,
    SimEndpoint,
};
use locofs::obs::{parse_chrome_trace, LogHistogram, MetricsRegistry};

/// Drive the same mkdir/stat mix through any endpoint, returning the
/// accumulated visit trace.
fn dms_script(ep: &dyn Endpoint<DmsRequest, DmsResponse>) -> locofs::sim::des::JobTrace {
    let mut ctx = CallCtx::new();
    for i in 0..50 {
        ep.call(
            &mut ctx,
            DmsRequest::Mkdir {
                path: format!("/d{i}"),
                mode: 0o755,
                uid: 1,
                gid: 1,
                ts: 0,
            },
        );
    }
    for i in 0..10 {
        ep.call(
            &mut ctx,
            DmsRequest::GetDir {
                path: format!("/d{i}"),
            },
        );
    }
    ctx.take_trace()
}

#[test]
fn thread_and_sim_endpoints_record_identical_metrics() {
    let id = ServerId::new(class::DMS, 0);
    let mk = || DirServer::new(DmsBackend::BTree, KvConfig::default());

    let sim_reg = MetricsRegistry::shared();
    let sim_ep = SimEndpoint::new(id, mk()).with_metrics(EndpointMetrics::register(&sim_reg, id));
    let sim_trace = dms_script(&sim_ep);

    let thr_reg = MetricsRegistry::shared();
    let thr_metrics = EndpointMetrics::register(&thr_reg, id);
    let (thr_ep, _guard) = spawn_with_metrics(id, mk(), Some(thr_metrics.clone()));
    let thr_trace = dms_script(&thr_ep);

    // Both transports executed the same service code over the same
    // requests, so the virtual costs in the traces are identical...
    assert_eq!(sim_trace.visits, thr_trace.visits);

    // ...and the metrics each endpoint recorded agree with each other
    // and with the trace: 60 requests, service-time sum equal to the
    // summed visit costs.
    let trace_service: u64 = sim_trace.visits.iter().map(|v| v.service).sum();
    let sim_metrics = sim_ep.metrics().expect("sim endpoint has metrics");
    for m in [&**sim_metrics, &*thr_metrics] {
        assert_eq!(m.requests(), 60);
        assert_eq!(m.service_total(), trace_service);
        assert_eq!(m.inflight(), 0, "in-flight gauge returns to zero");
    }

    // The per-RPC-type family splits the same total: Mkdir + GetDir
    // service histograms sum back to the aggregate.
    for reg in [&sim_reg, &thr_reg] {
        let snap = reg.snapshot();
        let per_op: u64 = ["Mkdir", "GetDir"]
            .iter()
            .filter_map(|op| {
                snap.get(
                    "rpc_op_service_nanos",
                    &[("op", op), ("role", "dms"), ("server", "0")],
                )
            })
            .filter_map(|v| match v {
                locofs::obs::MetricValue::Histogram(h) => Some(h.sum),
                _ => None,
            })
            .sum();
        assert_eq!(per_op, trace_service);
    }
}

#[test]
fn snapshot_is_safe_while_server_threads_record() {
    let id = ServerId::new(class::DMS, 0);
    let reg = MetricsRegistry::shared();
    let metrics = EndpointMetrics::register(&reg, id);
    let (ep, _guard) = spawn_with_metrics(
        id,
        DirServer::new(DmsBackend::Hash, KvConfig::default()),
        Some(metrics.clone()),
    );

    const CLIENTS: usize = 4;
    const OPS: usize = 200;
    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let ep = ep.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = CallCtx::new();
            for i in 0..OPS {
                ep.call(
                    &mut ctx,
                    DmsRequest::Mkdir {
                        path: format!("/t{t}-{i}"),
                        mode: 0o755,
                        uid: 1,
                        gid: 1,
                        ts: 0,
                    },
                );
            }
        }));
    }
    // Snapshot concurrently with the recording threads: must not
    // panic, deadlock, or return torn families.
    while handles.iter().any(|h| !h.is_finished()) {
        let snap = reg.snapshot();
        let _ = reg.render_prometheus();
        assert!(snap.counter_family_total("rpc_requests_total") <= (CLIENTS * OPS) as u64);
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(metrics.requests(), (CLIENTS * OPS) as u64);
    assert_eq!(metrics.inflight(), 0);
    let text = reg.render_prometheus();
    assert!(text.contains("# TYPE rpc_requests_total counter"));
    assert!(text.contains("rpc_service_nanos_count"));
}

#[test]
fn create_exports_a_chrome_trace_with_nested_dms_and_fms_spans() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/proj", 0o755).unwrap();
    let mkdir_trace = fs.take_trace();
    fs.create("/proj/a.dat", 0o644).unwrap();
    let create_trace = fs.take_trace();
    assert!(
        create_trace.visits.len() >= 2,
        "create touches DMS (resolve) then FMS"
    );

    let rtt = fs.rtt();
    let ops = vec![
        ("mkdir".to_string(), mkdir_trace),
        ("create".to_string(), create_trace),
    ];
    let text = chrome_trace_of_ops(&ops, rtt);
    let spans = parse_chrome_trace(&text).expect("export parses back");

    // Round trip is lossless.
    assert_eq!(spans, locofs::net::op_spans(&ops, rtt));

    // Two client spans, in order, not overlapping.
    let clients: Vec<_> = spans.iter().filter(|s| s.cat == "client").collect();
    assert_eq!(clients.len(), 2);
    assert_eq!(clients[0].name, "mkdir");
    assert_eq!(clients[1].name, "create");
    assert!(clients[0].end_us() <= clients[1].ts_us + 1e-9);

    // Every server span nests inside exactly its operation's client
    // span; the create op shows both a DMS and an FMS visit.
    let servers: Vec<_> = spans.iter().filter(|s| s.cat == "server").collect();
    assert!(!servers.is_empty());
    for s in &servers {
        assert_eq!(
            clients.iter().filter(|c| c.encloses(s)).count(),
            1,
            "span {} must nest in exactly one client op",
            s.name
        );
    }
    let create_servers: Vec<_> = servers.iter().filter(|s| clients[1].encloses(s)).collect();
    assert!(create_servers.iter().any(|s| s.name.starts_with("dms")));
    assert!(create_servers.iter().any(|s| s.name.starts_with("fms")));
}

#[test]
fn cluster_metrics_cover_a_full_client_workload() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/w", 0o755).unwrap();
    for i in 0..20 {
        let mut fh = fs.create(&format!("/w/f{i}"), 0o644).unwrap();
        fs.write(&mut fh, 0, b"payload").unwrap();
        fs.stat_file(&format!("/w/f{i}")).unwrap();
    }
    let report = ClusterReport::collect_with_client(&cluster, &fs);
    let cache = report.cache.expect("client report carries cache stats");
    assert!(
        cache.hits > 0,
        "warm path resolutions hit the d-inode cache"
    );

    let text = fs.registry().render_prometheus();
    // One registry snapshot covers client ops, cache counters, and
    // every server's RPC families.
    for needle in [
        "client_op_latency_nanos{op=\"create\",quantile=\"0.5\"}",
        "client_op_latency_nanos{op=\"write\"",
        "client_cache_hits_total",
        "rpc_requests_total{role=\"dms\"",
        "rpc_requests_total{role=\"fms\"",
        "rpc_requests_total{role=\"ost\"",
        "rpc_inflight",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Client op count in the registry equals the ops we issued
    // (1 mkdir + 20 * (create + write + stat)).
    let snap = fs.registry().snapshot();
    let op_count: u64 = snap
        .entries
        .iter()
        .filter(|(id, _)| id.name == "client_op_latency_nanos")
        .filter_map(|(_, v)| match v {
            locofs::obs::MetricValue::Histogram(h) => Some(h.count),
            _ => None,
        })
        .sum();
    assert_eq!(op_count, 61);
}

/// Deterministic xorshift so the test needs no RNG dependency.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn histogram_quantiles_within_one_percent_on_a_million_samples() {
    let hist = LogHistogram::new();
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    let mut exact = Vec::with_capacity(1_000_000);
    for _ in 0..1_000_000 {
        // Log-uniform over ~6 decades, like a latency distribution
        // with a long tail.
        let exp = rng.next() % 20;
        let v = (1u64 << exp) + rng.next() % (1u64 << exp);
        hist.record(v);
        exact.push(v);
    }
    exact.sort_unstable();
    for q in [0.50, 0.90, 0.99] {
        let rank = ((q * exact.len() as f64).ceil() as usize).max(1) - 1;
        let truth = exact[rank] as f64;
        let est = hist.quantile(q) as f64;
        let rel = (est - truth).abs() / truth;
        assert!(
            rel <= 0.01,
            "p{} off by {:.3}%: exact {truth}, histogram {est}",
            q * 100.0,
            rel * 100.0
        );
    }
    assert_eq!(hist.count(), 1_000_000);
    assert_eq!(hist.min(), *exact.first().unwrap());
    assert_eq!(hist.max(), *exact.last().unwrap());
}
