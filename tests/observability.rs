//! Observability integration: the metrics registry, endpoint
//! instrumentation, and trace export working together across the
//! stack. These are the acceptance tests of the `loco-obs` subsystem:
//!
//! * both transports (simulated lock-served, threaded channel-served)
//!   feed identical virtual-cost histograms for identical workloads,
//!   and both agree with the visit traces the client records;
//! * `MetricsRegistry::snapshot()` / `render_prometheus()` are safe
//!   while server threads are concurrently recording;
//! * a multi-visit operation (create: DMS then FMS) exports to Chrome
//!   trace-event JSON and parses back with correctly nested spans;
//! * the log-bucketed histogram holds p50/p99 within 1% of exact on
//!   one million samples.

use locofs::client::{ClusterReport, LocoCluster, LocoConfig};
use locofs::dms::{DirServer, DmsBackend, DmsRequest, DmsResponse};
use locofs::kv::KvConfig;
use locofs::net::{
    chrome_trace_of_ops, class, spawn_with_metrics, CallCtx, Endpoint, EndpointMetrics, ServerId,
    SimEndpoint,
};
use locofs::obs::{parse_chrome_trace, LogHistogram, MetricsRegistry};

/// Drive the same mkdir/stat mix through any endpoint, returning the
/// accumulated visit trace.
fn dms_script(ep: &dyn Endpoint<DmsRequest, DmsResponse>) -> locofs::sim::des::JobTrace {
    let mut ctx = CallCtx::new();
    for i in 0..50 {
        ep.call(
            &mut ctx,
            DmsRequest::Mkdir {
                path: format!("/d{i}"),
                mode: 0o755,
                uid: 1,
                gid: 1,
                ts: 0,
            },
        );
    }
    for i in 0..10 {
        ep.call(
            &mut ctx,
            DmsRequest::GetDir {
                path: format!("/d{i}"),
            },
        );
    }
    ctx.take_trace()
}

#[test]
fn thread_and_sim_endpoints_record_identical_metrics() {
    let id = ServerId::new(class::DMS, 0);
    let mk = || DirServer::new(DmsBackend::BTree, KvConfig::default());

    let sim_reg = MetricsRegistry::shared();
    let sim_ep = SimEndpoint::new(id, mk()).with_metrics(EndpointMetrics::register(&sim_reg, id));
    let sim_trace = dms_script(&sim_ep);

    let thr_reg = MetricsRegistry::shared();
    let thr_metrics = EndpointMetrics::register(&thr_reg, id);
    let (thr_ep, _guard) = spawn_with_metrics(id, mk(), Some(thr_metrics.clone()));
    let thr_trace = dms_script(&thr_ep);

    // Both transports executed the same service code over the same
    // requests, so the virtual costs in the traces are identical...
    assert_eq!(sim_trace.visits, thr_trace.visits);

    // ...and the metrics each endpoint recorded agree with each other
    // and with the trace: 60 requests, service-time sum equal to the
    // summed visit costs.
    let trace_service: u64 = sim_trace.visits.iter().map(|v| v.service).sum();
    let sim_metrics = sim_ep.metrics().expect("sim endpoint has metrics");
    for m in [&**sim_metrics, &*thr_metrics] {
        assert_eq!(m.requests(), 60);
        assert_eq!(m.service_total(), trace_service);
        assert_eq!(m.inflight(), 0, "in-flight gauge returns to zero");
    }

    // The per-RPC-type family splits the same total: Mkdir + GetDir
    // service histograms sum back to the aggregate.
    for reg in [&sim_reg, &thr_reg] {
        let snap = reg.snapshot();
        let per_op: u64 = ["Mkdir", "GetDir"]
            .iter()
            .filter_map(|op| {
                snap.get(
                    "loco_rpc_op_service_nanos",
                    &[("op", op), ("role", "dms"), ("server", "0")],
                )
            })
            .filter_map(|v| match v {
                locofs::obs::MetricValue::Histogram(h) => Some(h.sum),
                _ => None,
            })
            .sum();
        assert_eq!(per_op, trace_service);
    }
}

#[test]
fn snapshot_is_safe_while_server_threads_record() {
    let id = ServerId::new(class::DMS, 0);
    let reg = MetricsRegistry::shared();
    let metrics = EndpointMetrics::register(&reg, id);
    let (ep, _guard) = spawn_with_metrics(
        id,
        DirServer::new(DmsBackend::Hash, KvConfig::default()),
        Some(metrics.clone()),
    );

    const CLIENTS: usize = 4;
    const OPS: usize = 200;
    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let ep = ep.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = CallCtx::new();
            for i in 0..OPS {
                ep.call(
                    &mut ctx,
                    DmsRequest::Mkdir {
                        path: format!("/t{t}-{i}"),
                        mode: 0o755,
                        uid: 1,
                        gid: 1,
                        ts: 0,
                    },
                );
            }
        }));
    }
    // Snapshot concurrently with the recording threads: must not
    // panic, deadlock, or return torn families.
    while handles.iter().any(|h| !h.is_finished()) {
        let snap = reg.snapshot();
        let _ = reg.render_prometheus();
        assert!(snap.counter_family_total("loco_rpc_requests_total") <= (CLIENTS * OPS) as u64);
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(metrics.requests(), (CLIENTS * OPS) as u64);
    assert_eq!(metrics.inflight(), 0);
    let text = reg.render_prometheus();
    assert!(text.contains("# TYPE loco_rpc_requests_total counter"));
    assert!(text.contains("loco_rpc_service_nanos_count"));
}

#[test]
fn create_exports_a_chrome_trace_with_nested_dms_and_fms_spans() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/proj", 0o755).unwrap();
    let mkdir_trace = fs.take_trace();
    fs.create("/proj/a.dat", 0o644).unwrap();
    let create_trace = fs.take_trace();
    assert!(
        create_trace.visits.len() >= 2,
        "create touches DMS (resolve) then FMS"
    );

    let rtt = fs.rtt();
    let ops = vec![
        ("mkdir".to_string(), mkdir_trace),
        ("create".to_string(), create_trace),
    ];
    let text = chrome_trace_of_ops(&ops, rtt);
    let spans = parse_chrome_trace(&text).expect("export parses back");

    // Round trip is lossless.
    assert_eq!(spans, locofs::net::op_spans(&ops, rtt));

    // Two client spans, in order, not overlapping.
    let clients: Vec<_> = spans.iter().filter(|s| s.cat == "client").collect();
    assert_eq!(clients.len(), 2);
    assert_eq!(clients[0].name, "mkdir");
    assert_eq!(clients[1].name, "create");
    assert!(clients[0].end_us() <= clients[1].ts_us + 1e-9);

    // Every server span nests inside exactly its operation's client
    // span; the create op shows both a DMS and an FMS visit.
    let servers: Vec<_> = spans.iter().filter(|s| s.cat == "server").collect();
    assert!(!servers.is_empty());
    for s in &servers {
        assert_eq!(
            clients.iter().filter(|c| c.encloses(s)).count(),
            1,
            "span {} must nest in exactly one client op",
            s.name
        );
    }
    let create_servers: Vec<_> = servers.iter().filter(|s| clients[1].encloses(s)).collect();
    assert!(create_servers.iter().any(|s| s.name.starts_with("dms")));
    assert!(create_servers.iter().any(|s| s.name.starts_with("fms")));
}

#[test]
fn cluster_metrics_cover_a_full_client_workload() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/w", 0o755).unwrap();
    for i in 0..20 {
        let mut fh = fs.create(&format!("/w/f{i}"), 0o644).unwrap();
        fs.write(&mut fh, 0, b"payload").unwrap();
        fs.stat_file(&format!("/w/f{i}")).unwrap();
    }
    let report = ClusterReport::collect_with_client(&cluster, &fs);
    let cache = report.cache.expect("client report carries cache stats");
    assert!(
        cache.hits > 0,
        "warm path resolutions hit the d-inode cache"
    );

    let text = fs.registry().render_prometheus();
    // One registry snapshot covers client ops, cache counters, and
    // every server's RPC families.
    for needle in [
        "loco_client_op_latency_nanos{op=\"create\",quantile=\"0.5\"}",
        "loco_client_op_latency_nanos{op=\"write\"",
        "loco_client_cache_hits_total",
        "loco_rpc_requests_total{role=\"dms\"",
        "loco_rpc_requests_total{role=\"fms\"",
        "loco_rpc_requests_total{role=\"ost\"",
        "loco_rpc_inflight",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Client op count in the registry equals the ops we issued
    // (1 mkdir + 20 * (create + write + stat)).
    let snap = fs.registry().snapshot();
    let op_count: u64 = snap
        .entries
        .iter()
        .filter(|(id, _)| id.name == "loco_client_op_latency_nanos")
        .filter_map(|(_, v)| match v {
            locofs::obs::MetricValue::Histogram(h) => Some(h.count),
            _ => None,
        })
        .sum();
    assert_eq!(op_count, 61);
}

/// Deterministic xorshift so the test needs no RNG dependency.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn histogram_quantiles_within_one_percent_on_a_million_samples() {
    let hist = LogHistogram::new();
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    let mut exact = Vec::with_capacity(1_000_000);
    for _ in 0..1_000_000 {
        // Log-uniform over ~6 decades, like a latency distribution
        // with a long tail.
        let exp = rng.next() % 20;
        let v = (1u64 << exp) + rng.next() % (1u64 << exp);
        hist.record(v);
        exact.push(v);
    }
    exact.sort_unstable();
    for q in [0.50, 0.90, 0.99] {
        let rank = ((q * exact.len() as f64).ceil() as usize).max(1) - 1;
        let truth = exact[rank] as f64;
        let est = hist.quantile(q) as f64;
        let rel = (est - truth).abs() / truth;
        assert!(
            rel <= 0.01,
            "p{} off by {:.3}%: exact {truth}, histogram {est}",
            q * 100.0,
            rel * 100.0
        );
    }
    assert_eq!(hist.count(), 1_000_000);
    assert_eq!(hist.min(), *exact.first().unwrap());
    assert_eq!(hist.max(), *exact.last().unwrap());
}

// ===== loco-trace: span collection, flight recorder, watchdog =======

/// Drive a mkdir/stat mix through any endpoint with tracing on,
/// returning the collected span tree.
fn traced_dms_script(ep: &dyn Endpoint<DmsRequest, DmsResponse>) -> Vec<locofs::obs::VisitSpan> {
    let mut ctx = CallCtx::new();
    ctx.start_trace(42);
    for i in 0..20 {
        ep.call(
            &mut ctx,
            DmsRequest::Mkdir {
                path: format!("/d{i}"),
                mode: 0o755,
                uid: 1,
                gid: 1,
                ts: 0,
            },
        );
    }
    for i in 0..5 {
        ep.call(
            &mut ctx,
            DmsRequest::GetDir {
                path: format!("/d{i}"),
            },
        );
    }
    ctx.take_op_trace().expect("context was traced").spans
}

#[test]
fn span_trees_agree_across_transports() {
    let id = ServerId::new(class::DMS, 0);
    let mk = || DirServer::new(DmsBackend::BTree, KvConfig::default());

    let sim_spans = traced_dms_script(&SimEndpoint::new(id, mk()));
    let (thr_ep, _guard) = locofs::net::spawn(id, mk());
    let thr_spans = traced_dms_script(&thr_ep);

    // Queue wait is real wall-clock time and legitimately differs
    // between a lock (sim) and a channel (threaded); everything else —
    // span ids, parents, op labels, virtual service costs, and the
    // KV/software attribution shipped back across the channel — must
    // be identical.
    let normalize = |spans: Vec<locofs::obs::VisitSpan>| {
        spans
            .into_iter()
            .map(|mut s| {
                s.queue_ns = 0;
                s
            })
            .collect::<Vec<_>>()
    };
    let (sim_spans, thr_spans) = (normalize(sim_spans), normalize(thr_spans));
    assert_eq!(sim_spans.len(), 25);
    assert_eq!(sim_spans, thr_spans);
    // The span tree is attributed: each visit splits its service time
    // into software and KV shares.
    for s in &sim_spans {
        assert_eq!(s.parent, 1, "visits hang off the root span");
        assert!(s.attr("kv_ns") <= s.service_ns);
        assert!(s.attr("kv_ops") > 0, "DMS ops touch the KV store: {s:?}");
    }
}

#[test]
fn sampling_off_records_zero_spans_and_costs_nothing_in_state() {
    use locofs::client::TraceMode;
    let cluster = LocoCluster::new(LocoConfig::with_servers(2).traced(TraceMode::Off));
    let mut fs = cluster.client();
    fs.mkdir("/q", 0o755).unwrap();
    for i in 0..30 {
        fs.create(&format!("/q/f{i}"), 0o644).unwrap();
        fs.stat_file(&format!("/q/f{i}")).unwrap();
    }
    assert!(fs.flight_recorder().is_empty(), "off ⇒ no records");
    assert_eq!(fs.flight_recorder().stats(), (0, 0), "off ⇒ never offered");
    assert_eq!(fs.watchdog().fired_count(), 0);
    assert!(fs.watchdog().events().is_empty());
}

#[test]
fn tracing_does_not_perturb_virtual_latencies() {
    use locofs::client::TraceMode;
    // The tracer observes the latency model; it must not change it.
    let run = |mode: TraceMode| {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2).traced(mode));
        let mut fs = cluster.client();
        fs.mkdir("/p", 0o755).unwrap();
        for i in 0..25 {
            fs.create(&format!("/p/f{i}"), 0o644).unwrap();
            fs.stat_file(&format!("/p/f{i}")).unwrap();
        }
        fs.rename_dir("/p", "/p2").unwrap();
        fs.now()
    };
    assert_eq!(run(TraceMode::Off), run(TraceMode::All));
    assert_eq!(run(TraceMode::Off), run(TraceMode::Sample(7)));
}

/// The subsystem's acceptance test: a deliberately slow operation shows
/// up in the flight recorder with a span tree naming the layer that
/// consumed the time, and the watchdog fires exactly one structured
/// event for it.
#[test]
fn slow_op_is_flight_recorded_attributed_and_watchdogged() {
    use locofs::client::TraceMode;
    let cluster = LocoCluster::new(LocoConfig::with_servers(2).traced(TraceMode::Slow));
    let mut fs = cluster.client();

    // Warm phase: enough cheap ops to arm the watchdog's baseline
    // (min_samples) with ordinary latencies.
    fs.mkdir("/big", 0o755).unwrap();
    for i in 0..64 {
        fs.stat_dir("/big").unwrap();
        fs.create(&format!("/big/f{i}"), 0o644).unwrap();
    }
    assert_eq!(fs.watchdog().fired_count(), 0, "warm phase is unremarkable");

    // Grow a wide subtree, then range-move it: the DMS rename extracts
    // and reinserts every d-inode under the prefix in one visit — the
    // op class the paper's §3.4.3 calls out, and our designated slow op.
    for i in 0..800 {
        fs.mkdir(&format!("/big/sub{i}"), 0o755).unwrap();
    }
    let fired_before = fs.watchdog().fired_count();
    let moved = fs.rename_dir("/big", "/big2").unwrap();
    assert_eq!(moved, 801);

    // 1. The flight recorder holds it, slowest-first.
    let recs = fs.flight_recorder().slowest_of("rename_dir");
    assert_eq!(recs.len(), 1, "one rename_dir was sampled");
    let rec = &recs[0];
    assert_eq!(rec.detail, "/big", "root span carries the source path");
    assert_eq!(
        fs.flight_recorder().slowest().first().map(|r| r.trace_id),
        Some(rec.trace_id),
        "globally the slowest op of the run"
    );

    // 2. The span tree names the exact layer that consumed the time:
    // one DMS visit whose KV share dominates client, network, and
    // every other server's software share.
    assert_eq!(rec.visits.len(), 1, "d-rename is a single DMS visit");
    assert_eq!(rec.visits[0].role(), "dms");
    assert_eq!(rec.visits[0].op, "RenameDir");
    assert!(
        rec.dominant_layer().starts_with("dms"),
        "latency attributed to the DMS, got {}",
        rec.dominant_layer()
    );
    assert!(
        rec.visits[0].attr("kv_ops") >= 801,
        "range move touches every moved inode: {:?}",
        rec.visits[0]
    );

    // 3. The watchdog fired exactly one tail-latency event for it,
    // with the span tree attached.
    let events: Vec<_> = fs
        .watchdog()
        .events()
        .into_iter()
        .filter(|e| e.op == "rename_dir")
        .collect();
    assert_eq!(events.len(), 1, "exactly one event for the slow op");
    let ev = &events[0];
    assert_eq!(ev.kind, locofs::obs::WatchdogKind::TailLatency);
    assert_eq!(ev.trace_id, rec.trace_id);
    assert!(ev.latency_ns > ev.threshold_ns);
    assert!(ev.record.is_some(), "event carries the full span tree");
    assert_eq!(
        fs.watchdog().fired_count(),
        fired_before + 1,
        "no other op tripped the watchdog"
    );

    // 4. The record exports as a Chrome trace that parses back with
    // the KV share nested inside the DMS visit span.
    let text = fs.flight_recorder().chrome_trace();
    let spans = parse_chrome_trace(&text).expect("flight export parses");
    let client = spans
        .iter()
        .find(|s| s.cat == "client" && s.name == "rename_dir")
        .expect("client span present");
    let server = spans
        .iter()
        .find(|s| s.cat == "server" && s.name.starts_with("dms0/RenameDir"))
        .expect("DMS visit span present");
    let kv = spans
        .iter()
        .filter(|s| s.cat == "kv")
        .find(|s| server.encloses(s))
        .expect("kv share nests in the DMS visit");
    assert!(client.encloses(server), "visit nests in the op span");
    assert!(kv.dur_us <= server.dur_us);

    // 5. CI artifact hook: when LOCO_OBS_DUMP_DIR is set, leave the
    // dumps on disk for the workflow to upload.
    if let Ok(dir) = std::env::var("LOCO_OBS_DUMP_DIR") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create dump dir");
        std::fs::write(dir.join("flight.json"), fs.flight_recorder().dump_json())
            .expect("write flight dump");
        std::fs::write(dir.join("flight.chrome.json"), &text).expect("write chrome dump");
        std::fs::write(dir.join("metrics.prom"), fs.registry().render_prometheus())
            .expect("write metrics dump");
        std::fs::write(dir.join("watchdog.json"), format!("[{}]", ev.to_json()))
            .expect("write watchdog dump");
    }
}
