//! End-to-end coverage of the structured logging stack: the in-process
//! `loco-log` ring (overflow, span correlation, zero-cost-when-off),
//! the `Logs` control frame against a real `locod` daemon (cursor
//! resume across a SIGKILL restart), a three-daemon collector run
//! producing a merged timeline + report, and the eprintln audit that
//! keeps ad-hoc prints out of the daemon-side crates.

use locofs::collect::{self, CollectConfig, Daemon as Target};
use locofs::log as llog;
use locofs::net::{control, Control, ControlReply};
use locofs::obs::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

// ----- in-process ring tests -------------------------------------------

/// The ring, its level filter and the span thread-local are process
/// globals; every in-process test serializes here and re-pins the
/// levels it needs.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    llog::set_level(Some(llog::Level::Info));
    llog::set_stderr_level(None);
    g
}

#[test]
fn ring_overflow_keeps_the_newest_events() {
    let _g = lock();
    let cap = llog::capacity() as u64;
    let start = llog::head_seq();
    // 2× capacity: the first half must be evicted, the second retained.
    for i in 0..2 * cap {
        llog::info!("test.overflow", "spin"; i = i);
    }
    let t = llog::tail(start, usize::MAX);
    assert!(t.dropped >= cap, "old events must report as dropped");
    let last = t.events.last().expect("newest event retained");
    assert_eq!(last.seq, start + 2 * cap - 1, "newest event is the last");
    // Everything returned is contiguous and ends at the head.
    for w in t.events.windows(2) {
        assert_eq!(w[0].seq + 1, w[1].seq, "retained suffix is contiguous");
    }
}

#[test]
fn events_inside_a_sampled_span_carry_its_trace_id() {
    let _g = lock();
    let start = llog::head_seq();
    {
        let _span = llog::span_scope(0xfeed_beef, 7);
        llog::info!("test.span", "inside");
    }
    llog::info!("test.span", "outside");
    let t = llog::tail(start, usize::MAX);
    let inside = t.events.iter().find(|e| e.msg == "inside").unwrap();
    assert_eq!(inside.trace_id, 0xfeed_beef);
    assert_eq!(inside.span_id, 7);
    let outside = t.events.iter().find(|e| e.msg == "outside").unwrap();
    assert_eq!(outside.trace_id, 0, "scope must not leak past its drop");
    // And the wire form renders the trace id as a 16-hex-digit string.
    let js = inside.to_json(None);
    assert!(js.contains("\"trace\":\"00000000feedbeef\""), "{js}");
}

#[test]
fn disabled_logging_allocates_nothing() {
    let _g = lock();
    assert!(
        locofs::obs::alloc::counting_installed(),
        "test binary links loco-obs, so the counting allocator is live"
    );
    // LOCO_LOG=off equivalent.
    llog::set_level(None);
    // Warm up any lazy statics touched by the off path.
    llog::debug!("test.alloc", "warmup"; x = 1u64);
    let snap = locofs::obs::alloc::snapshot();
    for i in 0..10_000u64 {
        llog::debug!("test.alloc", "dropped on the floor";
            i = i, label = "field values must not be built");
    }
    let (allocs, bytes) = snap.delta();
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "a disabled log site must not allocate (one relaxed load only)"
    );
}

// ----- subprocess helpers (shared with daemon_crash_recovery) ----------

fn locod() -> &'static str {
    env!("CARGO_BIN_EXE_locod")
}

static SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!("loco-logging-{}-{n}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

struct DaemonProc(Child);

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_role(role: &str, addr: &str, data_dir: &Path) -> DaemonProc {
    let mut cmd = Command::new(locod());
    cmd.args([
        "serve",
        "--role",
        role,
        "--index",
        "0",
        "--listen",
        addr,
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--sync-policy",
        "every-record",
    ])
    .env_remove("LOCO_CRASHPOINT")
    .env_remove("LOCO_IOFAULT")
    .env("LOCO_LOG", "debug")
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    DaemonProc(cmd.spawn().expect("spawn locod serve"))
}

fn wait_ping(addr: &str) {
    let start = Instant::now();
    loop {
        if let Ok(ControlReply::Pong) = control(addr, Control::Ping, Duration::from_millis(500)) {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "daemon at {addr} never answered a ping"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn tail_frame(addr: &str, cursor: u64) -> Json {
    let reply = control(
        addr,
        Control::Logs { cursor, max: 4096 },
        Duration::from_secs(5),
    )
    .expect("logs control frame");
    let ControlReply::Logs(s) = reply else {
        panic!("unexpected reply {reply:?}");
    };
    json::parse(&s).expect("logs reply is valid JSON")
}

fn boot_of(j: &Json) -> String {
    j.get("boot_id").and_then(Json::as_str).unwrap().to_string()
}

fn msgs_of(j: &Json) -> Vec<String> {
    j.get("events")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|e| e.get("msg").and_then(Json::as_str).map(String::from))
        .collect()
}

// ----- Logs frame across a restart -------------------------------------

#[test]
fn logs_cursor_survives_a_daemon_restart_via_boot_id() {
    let scratch = Scratch::new("cursor");
    let addr = format!("127.0.0.1:{}", free_port());

    let mut d = spawn_role("dms", &addr, &scratch.0);
    wait_ping(&addr);

    let first = tail_frame(&addr, 0);
    let boot1 = boot_of(&first);
    let msgs = msgs_of(&first);
    assert!(
        msgs.iter().any(|m| m == "daemon booting"),
        "boot event visible over the Logs frame: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m == "durable store opened"),
        "recovery event visible over the Logs frame: {msgs:?}"
    );
    let cursor = first.get("next").and_then(Json::as_f64).unwrap() as u64;
    assert!(cursor > 0);
    // Polling again from the cursor yields only *new* events (the
    // control connections themselves log at debug), never replays.
    let again = tail_frame(&addr, cursor);
    assert_eq!(
        again.get("dropped").and_then(Json::as_f64).unwrap() as u64,
        0
    );
    for ev in again.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
        let seq = ev.get("seq").and_then(Json::as_f64).unwrap() as u64;
        assert!(seq >= cursor, "resumed tail must not replay event {seq}");
    }

    // SIGKILL + restart over the same data dir and port.
    d.0.kill().unwrap();
    d.0.wait().unwrap();
    let _d2 = spawn_role("dms", &addr, &scratch.0);
    wait_ping(&addr);

    // The stale cursor addresses the dead incarnation's sequence space;
    // the boot id says so, and rewinding to 0 yields the new boot's
    // events (including its WAL recovery).
    let stale = tail_frame(&addr, cursor);
    assert_ne!(boot_of(&stale), boot1, "restart must change the boot id");
    let rewound = tail_frame(&addr, 0);
    let msgs = msgs_of(&rewound);
    assert!(
        msgs.iter().any(|m| m == "durable store opened"),
        "post-restart recovery logged: {msgs:?}"
    );
}

// ----- three-daemon collector e2e --------------------------------------

#[test]
fn collector_merges_a_crash_into_one_timeline() {
    let scratch = Scratch::new("collector");
    let out = scratch.0.join("collect");
    let data = scratch.0.join("data");
    std::fs::create_dir_all(&data).unwrap();

    let roles = ["dms", "fms", "ost"];
    let addrs: Vec<String> = roles
        .iter()
        .map(|_| format!("127.0.0.1:{}", free_port()))
        .collect();
    let mut daemons: Vec<DaemonProc> = roles
        .iter()
        .zip(&addrs)
        .map(|(role, addr)| spawn_role(role, addr, &data))
        .collect();
    for addr in &addrs {
        wait_ping(addr);
    }

    let targets: Vec<Target> = roles
        .iter()
        .zip(&addrs)
        .map(|(role, addr)| Target {
            name: format!("{role}0"),
            addr: addr.clone(),
        })
        .collect();
    let cfg = CollectConfig {
        interval: Duration::from_millis(100),
        duration: Some(Duration::from_millis(400)),
        timeout: Duration::from_secs(2),
    };

    // Round 1: all up. Cursors persist under `out`.
    let s1 = collect::collect(&targets, &out, &cfg).unwrap();
    assert!(s1.events > 0, "boot + recovery events collected");

    // SIGKILL the FMS, collect (sees it down), restart, collect again
    // (sees the new boot id + its recovery events).
    daemons[1].0.kill().unwrap();
    daemons[1].0.wait().unwrap();
    let s2 = collect::collect(&targets, &out, &cfg).unwrap();
    assert!(s2.unreachable >= 1, "down transition recorded: {s2:?}");
    daemons[1] = spawn_role("fms", &addrs[1], &data);
    wait_ping(&addrs[1]);
    let s3 = collect::collect(&targets, &out, &cfg).unwrap();
    assert!(s3.restarts >= 1, "boot-id change recorded: {s3:?}");

    let sum = collect::report(&out).unwrap();
    assert_eq!(sum.sources, 3, "all three daemons in the merged timeline");
    assert!(sum.incidents >= 2, "crash + recovery markers: {sum:?}");

    let timeline = std::fs::read_to_string(out.join("timeline.jsonl")).unwrap();
    assert!(timeline.contains("daemon unreachable"));
    assert!(timeline.contains("daemon restarted (boot id changed)"));
    assert!(timeline.contains("durable store opened"));
    // Merged stream is monotonic in wall time.
    let times: Vec<u64> = timeline
        .lines()
        .map(|l| {
            json::parse(l)
                .unwrap()
                .get("t_us")
                .and_then(Json::as_f64)
                .unwrap() as u64
        })
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "timeline is sorted");

    let md = std::fs::read_to_string(out.join("report.md")).unwrap();
    assert!(md.contains("daemon unreachable"));
    assert!(md.contains("durable store opened"));
    let trace = std::fs::read_to_string(out.join("timeline.trace.json")).unwrap();
    assert!(trace.contains("\"traceEvents\""));
}

// ----- eprintln audit ---------------------------------------------------

/// Daemon-side crates must route diagnostics through `loco-log`; raw
/// `eprintln!` is reserved for CLI binaries and the few allowlisted
/// last-resort sites below.
#[test]
fn no_stray_eprintln_in_daemon_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    // file substring → why a raw stderr write is acceptable there.
    let allow: &[(&str, &str)] = &[(
        "crates/obs/src/watchdog.rs",
        "fallback when no loco-log fire hook is installed (obs depends on nothing)",
    )];
    let mut stray = Vec::new();
    for krate in ["net", "dms", "fms", "kv", "ostore", "faults", "obs", "log"] {
        let dir = root.join("crates").join(krate).join("src");
        scan_dir(&dir, &mut |path, text| {
            for (lineno, line) in text.lines().enumerate() {
                if line.contains("eprintln!") && !line.trim_start().starts_with("//") {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap()
                        .to_string_lossy()
                        .to_string();
                    if !allow.iter().any(|(a, _)| rel.contains(a)) {
                        stray.push(format!("{rel}:{}", lineno + 1));
                    }
                }
            }
        });
    }
    assert!(
        stray.is_empty(),
        "eprintln! in daemon-side code — use loco_log::{{error!,warn!,…}} \
         or loco_log::last_gasp for abort paths:\n{}",
        stray.join("\n")
    );
}

fn scan_dir(dir: &Path, f: &mut impl FnMut(&Path, &str)) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            scan_dir(&p, f);
        } else if p.extension().is_some_and(|x| x == "rs") {
            if let Ok(text) = std::fs::read_to_string(&p) {
                f(&p, &text);
            }
        }
    }
}
