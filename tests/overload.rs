//! loco-guard behaviour under overload and network chaos:
//!
//! * a slow-loris connection dribbling one request byte at a time must
//!   not starve healthy clients sharing the server;
//! * requests whose deadline budget expires while queued are dropped
//!   before dispatch — provably never reaching the WAL;
//! * past the admission watermark, mutations shed with a fast
//!   `Overloaded` reject while reads keep draining;
//! * the client retry budget caps aggregate retry amplification under
//!   a brownout (driven through the chaos proxy);
//! * the per-address circuit breaker trips to fail-fast after repeated
//!   exhaustion and recovers through a half-open probe once the
//!   partition heals.

use locofs::dms::{DirServer, DmsRequest, DmsResponse};
use locofs::faults::ChaosProxy;
use locofs::kv::{BTreeDb, DurableStore, KvConfig, SyncPolicy};
use locofs::net::frame::{encode_frame, FrameKind};
use locofs::net::tcp::{serve_tcp, serve_tcp_shared, RetryPolicy, ServeOptions, TcpEndpoint};
use locofs::net::{
    class, CallCtx, CommitFsync, Endpoint, EndpointMetrics, RpcError, RpcRequest, ServerId, Service,
};
use locofs::obs::MetricsRegistry;
use locofs::types::wire::Wire;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn mkdir_local(path: String) -> DmsRequest {
    DmsRequest::MkdirLocal {
        path,
        mode: 0o755,
        uid: 0,
        gid: 0,
        ts: 1,
    }
}

/// Client guard off, generous deadline: the baseline policy the guard
/// tests perturb one knob at a time.
fn plain_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 1,
        backoff: Duration::from_millis(1),
        deadline: Duration::from_secs(2),
        connect_timeout: Duration::from_secs(2),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    }
}

fn shed_count(registry: &Arc<MetricsRegistry>) -> u64 {
    let labels_i: [(&str, &str); 3] = [("role", "dms"), ("server", "0"), ("reason", "inflight")];
    let labels_q: [(&str, &str); 3] = [("role", "dms"), ("server", "0"), ("reason", "queue")];
    registry.counter("loco_server_shed", &labels_i).get()
        + registry.counter("loco_server_shed", &labels_q).get()
}

fn expired_count(registry: &Arc<MetricsRegistry>) -> u64 {
    // The op label depends on where the drop happened (pre-decode
    // recovers the label; an undecodable payload falls back to "?").
    ["MkdirLocal", "Mkdir", "?"]
        .iter()
        .map(|op| {
            let labels: [(&str, &str); 3] = [("role", "dms"), ("server", "0"), ("op", op)];
            registry.counter("loco_server_expired", &labels).get()
        })
        .sum()
}

// ---------------------------------------------------------------------
// 1. Slow-loris starvation
// ---------------------------------------------------------------------

#[test]
fn slow_loris_dribble_does_not_starve_healthy_clients() {
    let id = ServerId::new(class::DMS, 0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp(
        id,
        DirServer::with_sid(locofs::dms::DmsBackend::BTree, KvConfig::default(), 0),
        listener,
        ServeOptions::default(),
    )
    .unwrap();
    let addr = guard.addr().to_string();

    // A valid request frame, fed to the server one byte every 15 ms —
    // a whole-frame dribble lasting ~1.5 s.
    let payload = RpcRequest {
        budget_ms: 0,
        trace: None,
        body: mkdir_local("/loris".into()),
    }
    .to_wire();
    let frame = encode_frame(FrameKind::Request, 1, &payload);
    let stop = Arc::new(AtomicBool::new(false));
    let loris = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sock = TcpStream::connect(&addr).unwrap();
            for b in &frame {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if sock.write_all(std::slice::from_ref(b)).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(15));
            }
            sock
        })
    };

    // Healthy traffic on a normal endpoint must complete while the
    // loris is still mid-frame.
    let ep = TcpEndpoint::<DirServer>::with_policy(id, &addr, plain_policy());
    let mut ctx = CallCtx::new();
    let t0 = Instant::now();
    for i in 0..100 {
        let r = ep.try_call(&mut ctx, mkdir_local(format!("/h{i}"))).unwrap();
        assert!(matches!(r, DmsResponse::Done(Ok(_))), "healthy op failed");
    }
    let healthy = t0.elapsed();
    assert!(
        healthy < Duration::from_millis(1000),
        "healthy clients starved behind the slow-loris: {healthy:?}"
    );
    stop.store(true, Ordering::Relaxed);
    let _ = loris.join();
    guard.shutdown();
}

// ---------------------------------------------------------------------
// 2. Expired-in-queue requests never reach the WAL
// ---------------------------------------------------------------------

#[test]
fn expired_in_queue_requests_never_reach_the_wal() {
    let scratch = std::env::temp_dir().join(format!("loco-overload-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    let id = ServerId::new(class::DMS, 0);
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = EndpointMetrics::register(&registry, id);
    let store = DurableStore::open(&scratch, BTreeDb::new(KvConfig::default())).unwrap();
    let svc = Arc::new(Mutex::new(DirServer::with_store(Box::new(store), 0)));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp_shared(
        id,
        Arc::clone(&svc),
        listener,
        ServeOptions {
            metrics: Some(Arc::clone(&metrics)),
            registry: Some(Arc::clone(&registry)),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = guard.addr().to_string();

    // Warm-up mutation so connections and the WAL both exist.
    let ep = TcpEndpoint::<DirServer>::with_policy(id, &addr, plain_policy());
    let mut ctx = CallCtx::new();
    ep.try_call(&mut ctx, mkdir_local("/warm".into())).unwrap();

    let wal_before = locofs::net::Service::maintain(&mut *svc.lock().unwrap(), false)
        .expect("durable store reports")
        .wal_records;

    // Stall the service by holding its lock, then pipeline mutations
    // carrying 50 ms budgets on one raw connection. The first one is
    // dispatched immediately and blocks on the service mutex (the
    // post-lock re-check catches it); the rest sit parsed-but-queued
    // in the worker's read buffer (the pre-decode check catches them).
    // All four budgets lapse during the 400 ms stall.
    let mut sock = {
        let _stall = svc.lock().unwrap();
        let mut sock = TcpStream::connect(&addr).unwrap();
        // One write_all for all four frames: they must land in the
        // worker's buffer in a single read pass so frames 2-4 keep
        // frame 1's arrival stamp (separate writes can be segmented
        // by TCP and read late — with a *fresh* stamp).
        let mut batch = Vec::new();
        for i in 0..4u64 {
            let payload = RpcRequest {
                budget_ms: 50,
                trace: None,
                body: mkdir_local(format!("/late{i}")),
            }
            .to_wire();
            batch.extend_from_slice(&encode_frame(FrameKind::Request, 100 + i, &payload));
        }
        sock.write_all(&batch).unwrap();
        // Don't trust scheduling: wait until the worker has actually
        // read + dispatched the first request (it shows up in the
        // inflight gauge while blocked on the stalled service mutex),
        // THEN let the budgets lapse. The remaining three frames were
        // read in the same pass and keep their arrival stamp.
        let labels: [(&str, &str); 2] = [("role", "dms"), ("server", "0")];
        let inflight = registry.gauge("loco_rpc_inflight", &labels);
        let t0 = Instant::now();
        while inflight.get() < 1 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(inflight.get() >= 1, "worker never dispatched the request");
        std::thread::sleep(Duration::from_millis(400));
        sock
    };
    // Every reply is an explicit Error frame carrying REJECT_EXPIRED —
    // the server tells the (long-gone) caller it dropped the request
    // unexecuted rather than leaving the connection hanging.
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for _ in 0..4 {
        let frame = locofs::net::frame::read_frame(&mut sock)
            .unwrap()
            .expect("reply frame");
        assert_eq!(frame.kind, FrameKind::Error, "want an expiry reject");
        assert_eq!(frame.payload, vec![locofs::net::REJECT_EXPIRED]);
    }

    // Give the drained queue a moment to be counted, then prove the
    // expired mutations died *before* the WAL: record count unchanged.
    let t0 = Instant::now();
    while expired_count(&registry) < 4 && t0.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        expired_count(&registry) >= 4,
        "server never counted the expired mutations: {}",
        expired_count(&registry)
    );
    let wal_after = locofs::net::Service::maintain(&mut *svc.lock().unwrap(), false)
        .expect("durable store reports")
        .wal_records;
    assert_eq!(
        wal_before, wal_after,
        "an expired-in-queue mutation reached the WAL"
    );
    // The directories provably do not exist.
    let mut ctx = CallCtx::new();
    for i in 0..4 {
        let r = ep
            .try_call(&mut ctx, DmsRequest::GetDir { path: format!("/late{i}") })
            .unwrap();
        assert!(
            matches!(r, DmsResponse::Dir(Err(_))),
            "expired mkdir was applied anyway"
        );
    }
    guard.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

// ---------------------------------------------------------------------
// 3. Admission control: mutations shed, reads drain
// ---------------------------------------------------------------------

/// A durable DMS whose group-commit fsync takes an extra 40 ms —
/// enough for parked replies to pile past a `max_inflight` of 1.
struct SlowCommitDms(DirServer);

impl Service for SlowCommitDms {
    type Req = DmsRequest;
    type Resp = DmsResponse;
    fn handle(&mut self, req: DmsRequest) -> DmsResponse {
        self.0.handle(req)
    }
    fn take_cost(&mut self) -> locofs::sim::time::Nanos {
        self.0.take_cost()
    }
    fn req_label(req: &DmsRequest) -> &'static str {
        DirServer::req_label(req)
    }
    fn tag_mutates(tag: u8) -> bool {
        DirServer::tag_mutates(tag)
    }
    fn req_idempotent(req: &DmsRequest) -> bool {
        DirServer::req_idempotent(req)
    }
    fn maintain(&mut self, drain: bool) -> Option<locofs::net::MaintainReport> {
        self.0.maintain(drain)
    }
    fn defer_sync(&mut self, on: bool) -> bool {
        self.0.defer_sync(on)
    }
    fn take_commit_ticket(&mut self) -> Option<u64> {
        self.0.take_commit_ticket()
    }
    fn commit_flush(&mut self) -> u64 {
        self.0.commit_flush()
    }
    fn commit_flush_begin(&mut self) -> Option<(u64, CommitFsync)> {
        self.0.commit_flush_begin().map(|(n, fsync)| {
            let slow: CommitFsync = Box::new(move || {
                std::thread::sleep(Duration::from_millis(40));
                fsync();
            });
            (n, slow)
        })
    }
}

#[test]
fn admission_control_sheds_mutations_while_reads_drain() {
    let scratch = std::env::temp_dir().join(format!("loco-overload-shed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    let id = ServerId::new(class::DMS, 0);
    let registry = Arc::new(MetricsRegistry::new());
    // EveryRecord sync: mutations take commit tickets, so their replies
    // park with the (artificially slow) group committer.
    let store = DurableStore::open(&scratch, BTreeDb::new(KvConfig::default()))
        .unwrap()
        .with_sync_policy(SyncPolicy::EveryRecord);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp(
        id,
        SlowCommitDms(DirServer::with_store(Box::new(store), 0)),
        listener,
        ServeOptions {
            registry: Some(Arc::clone(&registry)),
            workers: 1,
            max_inflight: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = guard.addr().to_string();

    // Warm-up: one durable mutation (also proves the happy path).
    let ep = TcpEndpoint::<SlowCommitDms>::with_policy(id, &addr, plain_policy());
    let mut ctx = CallCtx::new();
    let r = ep.try_call(&mut ctx, mkdir_local("/seed".into())).unwrap();
    assert!(matches!(r, DmsResponse::Done(Ok(_))));

    // Flood mutations from 6 connections while one read client keeps
    // polling. Reads must never be shed.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let ep = TcpEndpoint::<SlowCommitDms>::with_policy(id, &addr, plain_policy());
            let mut ctx = CallCtx::new();
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let r = ep
                    .try_call(&mut ctx, DmsRequest::GetDir { path: "/seed".into() })
                    .expect("reads must drain during overload");
                assert!(matches!(r, DmsResponse::Dir(Ok(_))));
                reads += 1;
            }
            reads
        })
    };

    let writers: Vec<_> = (0..6)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let ep = TcpEndpoint::<SlowCommitDms>::with_policy(id, &addr, plain_policy());
                let mut ctx = CallCtx::new();
                let (mut ok, mut overloaded) = (0u64, 0u64);
                for i in 0..6 {
                    match ep.try_call(&mut ctx, mkdir_local(format!("/w{t}-{i}"))) {
                        Ok(DmsResponse::Done(Ok(_))) => ok += 1,
                        Ok(other) => panic!("unexpected response {other:?}"),
                        Err(
                            RpcError::Overloaded
                            | RpcError::Exhausted { .. }
                            | RpcError::MaybeApplied { .. },
                        ) => overloaded += 1,
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
                (ok, overloaded)
            })
        })
        .collect();
    let mut total_ok = 0;
    let mut total_overloaded = 0;
    for w in writers {
        let (ok, overloaded) = w.join().unwrap();
        total_ok += ok;
        total_overloaded += overloaded;
    }
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().unwrap();

    assert!(total_ok > 0, "no mutation got through at all");
    assert!(
        total_overloaded > 0,
        "watermark 1 with a 40 ms fsync never shed ({total_ok} ok)"
    );
    assert!(
        shed_count(&registry) >= total_overloaded,
        "server shed counter ({}) below client-observed rejects ({total_overloaded})",
        shed_count(&registry)
    );
    assert!(reads > 0, "read loop never completed a poll");
    guard.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

// ---------------------------------------------------------------------
// 4. Retry budget bounds amplification under a brownout
// ---------------------------------------------------------------------

#[test]
fn retry_budget_caps_attempts_during_a_brownout() {
    let id = ServerId::new(class::DMS, 0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp(
        id,
        DirServer::with_sid(locofs::dms::DmsBackend::BTree, KvConfig::default(), 0),
        listener,
        ServeOptions::default(),
    )
    .unwrap();
    let proxy = ChaosProxy::start("127.0.0.1:0", &guard.addr().to_string(), None).unwrap();
    proxy.set_partition(true);

    let registry = Arc::new(MetricsRegistry::new());
    let metrics = EndpointMetrics::register(&registry, id);
    let policy = RetryPolicy {
        attempts: 3,
        backoff: Duration::from_millis(1),
        deadline: Duration::from_millis(40),
        connect_timeout: Duration::from_millis(500),
        reconnect_window: Duration::ZERO,
        retry_budget: 2,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    };
    let ep = TcpEndpoint::<DirServer>::with_policy(id, proxy.addr(), policy)
        .with_metrics(Arc::clone(&metrics));
    let mut ctx = CallCtx::new();
    const CALLS: u64 = 20;
    for i in 0..CALLS {
        let err = ep
            .try_call(&mut ctx, mkdir_local(format!("/b{i}")))
            .expect_err("partitioned call cannot succeed");
        // Timeouts on a non-idempotent mutation surface the ambiguity.
        assert!(
            matches!(err, RpcError::MaybeApplied { .. } | RpcError::Exhausted { .. }),
            "want MaybeApplied/Exhausted, got {err}"
        );
    }
    // Without the budget: (attempts-1) * CALLS = 40 retries. With a
    // budget of 2 and zero successes to refill it, only the first two
    // retries ever run.
    assert_eq!(
        metrics.retries(),
        2,
        "retry budget failed to cap amplification"
    );
    proxy.shutdown();
    guard.shutdown();
}

// ---------------------------------------------------------------------
// 5. Circuit breaker trips and recovers through half-open
// ---------------------------------------------------------------------

#[test]
fn breaker_trips_fails_fast_and_half_open_recovers() {
    let id = ServerId::new(class::DMS, 0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp(
        id,
        DirServer::with_sid(locofs::dms::DmsBackend::BTree, KvConfig::default(), 0),
        listener,
        ServeOptions::default(),
    )
    .unwrap();
    let proxy = ChaosProxy::start("127.0.0.1:0", &guard.addr().to_string(), None).unwrap();

    let policy = RetryPolicy {
        attempts: 2,
        backoff: Duration::from_millis(1),
        deadline: Duration::from_millis(40),
        connect_timeout: Duration::from_millis(500),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(150),
    };
    let ep = TcpEndpoint::<DirServer>::with_policy(id, proxy.addr(), policy);
    let mut ctx = CallCtx::new();

    proxy.set_partition(true);
    // Two consecutive exhaustions trip the breaker...
    for i in 0..2 {
        ep.try_call(&mut ctx, mkdir_local(format!("/t{i}")))
            .expect_err("partitioned call cannot succeed");
    }
    assert_eq!(ep.breaker_trips(), 1, "breaker did not trip");
    // ...after which calls fail fast without touching the network.
    let t0 = Instant::now();
    let err = ep
        .try_call(&mut ctx, mkdir_local("/fast".into()))
        .expect_err("open breaker must fail fast");
    assert!(
        matches!(err, RpcError::CircuitOpen { .. }),
        "want CircuitOpen, got {err}"
    );
    assert!(
        t0.elapsed() < Duration::from_millis(20),
        "open-breaker call was not fast: {:?}",
        t0.elapsed()
    );

    // Heal the network, let the cooldown lapse: the next call is the
    // half-open probe, its success closes the breaker for good.
    proxy.set_partition(false);
    proxy.kill_conns();
    std::thread::sleep(Duration::from_millis(200));
    let r = ep
        .try_call(&mut ctx, mkdir_local("/healed".into()))
        .expect("half-open probe should succeed after heal");
    assert!(matches!(r, DmsResponse::Done(Ok(_))));
    for i in 0..5 {
        ep.try_call(&mut ctx, mkdir_local(format!("/post{i}")))
            .expect("breaker must stay closed after recovery");
    }
    assert_eq!(ep.breaker_trips(), 1, "breaker re-tripped after recovery");
    proxy.shutdown();
    guard.shutdown();
}
