//! Failure injection: servers can be marked unreachable; clients must
//! surface I/O errors for affected operations, keep unaffected parts of
//! the namespace working, and recover when the server returns.

use locofs::client::{LocoCluster, LocoConfig};
use locofs::types::FsError;

fn is_io(e: &FsError) -> bool {
    matches!(e, FsError::Io(_))
}

#[test]
fn fms_outage_affects_only_its_files() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();

    // Create until we have files on several servers; remember which FMS
    // holds which file by inspecting the create traces.
    let mut placement = Vec::new();
    for i in 0..24 {
        let p = format!("/d/f{i}");
        fs.create(&p, 0o644).unwrap();
        let t = fs.take_trace();
        let fms_idx = t
            .visits
            .iter()
            .find(|v| v.server.class == locofs::net::class::FMS)
            .unwrap()
            .server
            .index;
        placement.push((p, fms_idx));
    }
    let victim = placement[0].1;
    cluster.fms[victim as usize].set_down(true);

    let mut failed = 0;
    let mut ok = 0;
    for (p, idx) in &placement {
        let res = fs.stat_file(p);
        if *idx == victim {
            assert!(is_io(&res.unwrap_err()), "{p} should be unreachable");
            failed += 1;
        } else {
            res.unwrap();
            ok += 1;
        }
    }
    assert!(failed > 0 && ok > 0, "failed={failed} ok={ok}");

    // Directory operations (DMS) are unaffected.
    fs.mkdir("/d2", 0o755).unwrap();

    // Recovery.
    cluster.fms[victim as usize].set_down(false);
    for (p, _) in &placement {
        fs.stat_file(p).unwrap();
    }
}

#[test]
fn dms_outage_blocks_namespace_but_cached_file_ops_survive() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/f1", 0o644).unwrap(); // warms the /d lease

    cluster.dms[0].set_down(true);

    // Directory metadata is gone: mkdir and cold lookups fail.
    assert!(is_io(&fs.mkdir("/x", 0o755).unwrap_err()));

    // But file ops under a *cached* directory keep working — the lease
    // cache is exactly what lets clients ride out short DMS outages.
    fs.create("/d/f2", 0o644).unwrap();
    fs.stat_file("/d/f1").unwrap();

    // Once the lease expires, file ops need the DMS again and fail.
    fs.advance_clock(31 * locofs::sim::time::SECS);
    assert!(is_io(&fs.create("/d/f3", 0o644).unwrap_err()));

    // Recovery restores everything.
    cluster.dms[0].set_down(false);
    fs.create("/d/f3", 0o644).unwrap();
    fs.mkdir("/x", 0o755).unwrap();
}

#[test]
fn rmdir_fails_cleanly_when_any_fms_is_down() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    // rmdir must confirm emptiness on EVERY FMS; one down server means
    // the check cannot complete.
    cluster.fms[2].set_down(true);
    assert!(is_io(&fs.rmdir("/d").unwrap_err()));
    cluster.fms[2].set_down(false);
    fs.rmdir("/d").unwrap();
}

#[test]
fn readdir_fails_cleanly_when_any_fms_is_down() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    for i in 0..8 {
        fs.create(&format!("/d/f{i}"), 0o644).unwrap();
    }
    cluster.fms[1].set_down(true);
    assert!(is_io(&fs.readdir("/d").unwrap_err()));
    cluster.fms[1].set_down(false);
    assert_eq!(fs.readdir("/d").unwrap().len(), 8);
}

#[test]
fn ost_outage_defers_gc_without_losing_work() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    let mut h = fs.create("/d/f", 0o644).unwrap();
    fs.write(&mut h, 0, &vec![0u8; 2 << 20]).unwrap();
    fs.unlink("/d/f").unwrap();
    assert_eq!(fs.gc_pending(), 1);

    // Every OST down: the flush requeues instead of dropping.
    for o in &cluster.ost {
        o.set_down(true);
    }
    fs.gc_flush();
    assert_eq!(fs.gc_pending(), 1, "GC work must not be lost");

    for o in &cluster.ost {
        o.set_down(false);
    }
    fs.gc_flush();
    assert_eq!(fs.gc_pending(), 0);
    let blocks: usize = cluster
        .ost
        .iter()
        .map(|o| o.with_service(|s| s.block_count()))
        .sum();
    assert_eq!(blocks, 0, "blocks reclaimed after recovery");
}

#[test]
fn data_path_outage_surfaces_on_write_and_read() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    let mut h = fs.create("/d/f", 0o644).unwrap();
    fs.write(&mut h, 0, b"persisted").unwrap();

    for o in &cluster.ost {
        o.set_down(true);
    }
    assert!(is_io(&fs.write(&mut h, 0, b"lost").unwrap_err()));
    assert!(is_io(&fs.read(&h, 0, 9).unwrap_err()));
    // Metadata remains reachable during a data-path outage.
    fs.stat_file("/d/f").unwrap();

    for o in &cluster.ost {
        o.set_down(false);
    }
    assert_eq!(fs.read(&h, 0, 9).unwrap(), b"persisted");
}
