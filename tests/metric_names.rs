//! Stable metric names: the Prometheus export surface is an API.
//!
//! Dashboards, `locotop`, `scripts/cluster.sh`, and the CI budget
//! checks all key on family names, so a rename is a breaking change
//! that must be made deliberately — by updating the golden lists here
//! alongside every consumer. The tests also enforce the naming
//! convention: every family carries the `loco_` prefix, so one scrape
//! of any registry yields a single consistently-named corpus.

use locofs::client::{LocoCluster, LocoConfig, TraceMode};
use locofs::net::{class, EndpointMetrics, ServerId, ServerMetrics};
use locofs::obs::MetricsRegistry;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Distinct family names in a registry (histogram suffixes collapse to
/// the family).
fn family_names(reg: &MetricsRegistry) -> Vec<String> {
    let set: BTreeSet<String> = reg
        .snapshot()
        .entries
        .iter()
        .map(|(id, _)| id.name.clone())
        .collect();
    set.into_iter().collect()
}

/// Every family a full in-process client workload (tracing on)
/// registers, in one shared registry. One scrape returns everything.
#[test]
fn client_workload_family_names_are_stable() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2).traced(TraceMode::All));
    let mut fs = cluster.client();
    fs.mkdir("/m", 0o755).unwrap();
    for i in 0..4 {
        let mut h = fs.create(&format!("/m/f{i}"), 0o644).unwrap();
        fs.write(&mut h, 0, b"payload").unwrap();
        fs.read(&h, 0, 7).unwrap();
        fs.stat_file(&format!("/m/f{i}")).unwrap();
        fs.chmod_file(&format!("/m/f{i}"), 0o600).unwrap();
    }
    fs.readdir("/m").unwrap();
    fs.rename_file("/m/f0", "/m/g0").unwrap();
    fs.unlink("/m/g0").unwrap();
    fs.rename_dir("/m", "/m2").unwrap();

    let got = family_names(fs.registry());
    let want = [
        "loco_alloc_bytes_per_op",
        "loco_alloc_per_op",
        "loco_client_alloc_bytes_per_op",
        "loco_client_alloc_per_op",
        "loco_client_cache_expired_leases_total",
        "loco_client_cache_hits_total",
        "loco_client_cache_misses_total",
        "loco_client_op_latency_nanos",
        "loco_op_kv_nanos",
        "loco_rpc_brkr_trips_total",
        "loco_rpc_inflight",
        "loco_rpc_op_service_nanos",
        "loco_rpc_queue_wait_nanos",
        "loco_rpc_requests_total",
        "loco_rpc_retries_total",
        "loco_rpc_service_nanos",
    ];
    assert_eq!(
        got,
        want.to_vec(),
        "metric families changed — update every consumer \
         (locotop, fold_snapshot, cluster.sh, CI budgets), then this golden"
    );
}

/// The daemon-side families (event-loop server core) follow the same
/// convention and stay stable too.
#[test]
fn server_core_family_names_are_stable() {
    let reg = Arc::new(MetricsRegistry::new());
    let id = ServerId::new(class::FMS, 0);
    let _ep = EndpointMetrics::register(&reg, id);
    let _srv = ServerMetrics::register(&reg, id);
    let got = family_names(&reg);
    let want = [
        "loco_epoll_wakeups_total",
        "loco_rpc_brkr_trips_total",
        "loco_rpc_inflight",
        "loco_rpc_queue_wait_nanos",
        "loco_rpc_requests_total",
        "loco_rpc_retries_total",
        "loco_rpc_service_nanos",
        "loco_server_expired",
        "loco_server_shed",
        "loco_srv_conns_shed_total",
        "loco_srv_open_conns",
        "loco_srv_pipeline_depth",
        "loco_wal_batch_size",
    ];
    assert_eq!(got, want.to_vec(), "server-core families changed");
}

/// Convention check across both surfaces: every family is `loco_`-
/// prefixed, so mixed scrapes sort and filter as one namespace.
#[test]
fn every_family_carries_the_loco_prefix() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2).traced(TraceMode::All));
    let mut fs = cluster.client();
    fs.mkdir("/p", 0o755).unwrap();
    fs.create("/p/f", 0o644).unwrap();
    let reg2 = Arc::new(MetricsRegistry::new());
    let _srv = ServerMetrics::register(&reg2, ServerId::new(class::DMS, 0));
    for name in family_names(fs.registry())
        .into_iter()
        .chain(family_names(&reg2))
    {
        assert!(name.starts_with("loco_"), "unprefixed family {name}");
    }
}
