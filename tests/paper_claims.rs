//! Headline claims of the paper, asserted as integration tests so the
//! reproduction cannot silently drift away from the published shapes.
//! Each test names the paper section/figure it guards.

use locofs::baselines::{CephFsModel, DistFs, GlusterFsModel, IndexFsModel, LocoAdapter, RawKvFs};
use locofs::client::{LocoCluster, LocoConfig};
use locofs::mdtest::{
    collect_traces, gen_phase, gen_setup, run_latency, run_setup, PhaseKind, TreeSpec,
};
use locofs::sim::des::ClosedLoopSim;
use locofs::sim::time::MICROS;

fn latency_rtts(fs: &mut dyn DistFs, phase: PhaseKind, items: usize) -> f64 {
    let spec = TreeSpec::new(1, items);
    run_setup(fs, &gen_setup(&spec)).unwrap();
    if phase.needs_files() {
        let pre = match phase {
            PhaseKind::DirStat | PhaseKind::DirRemove => PhaseKind::DirCreate,
            _ => PhaseKind::FileCreate,
        };
        for op in &gen_phase(&spec, pre)[0] {
            op.apply(fs).unwrap();
            let _ = fs.take_trace();
        }
    }
    let run = run_latency(fs, &gen_phase(&spec, phase)[0]);
    assert_eq!(run.errors, 0);
    run.mean_rtts(174 * MICROS)
}

fn create_throughput(fs: &mut dyn DistFs, clients: usize, items: usize) -> f64 {
    let spec = TreeSpec::new(clients, items);
    run_setup(fs, &gen_setup(&spec)).unwrap();
    let traces = collect_traces(fs, &gen_phase(&spec, PhaseKind::FileCreate));
    ClosedLoopSim {
        rtt: fs.rtt(),
        ..Default::default()
    }
    .run(traces)
    .iops()
}

/// §4.2.1 / Fig 6: "LocoFS-C and LocoFS-NC achieve an average latency
/// of 1.1× RTT for creating a directory" — mkdir is a single DMS round
/// trip regardless of FMS count.
#[test]
fn mkdir_is_about_one_rtt() {
    for servers in [1u16, 16] {
        let mut fs = LocoAdapter::new(LocoConfig::with_servers(servers));
        let rtts = latency_rtts(&mut fs, PhaseKind::DirCreate, 500);
        assert!(
            (1.0..1.6).contains(&rtts),
            "mkdir @{servers} FMS = {rtts} RTT"
        );
    }
}

/// §4.2.1 / Fig 6: touch latency rises with server count from client
/// connection overhead (≈1.3× → ≈3.2× RTT in the paper).
#[test]
fn touch_latency_grows_with_servers() {
    let mut one = LocoAdapter::new(LocoConfig::with_servers(1));
    let mut sixteen = LocoAdapter::new(LocoConfig::with_servers(16));
    let l1 = latency_rtts(&mut one, PhaseKind::FileCreate, 1000);
    let l16 = latency_rtts(&mut sixteen, PhaseKind::FileCreate, 1000);
    assert!((1.0..1.8).contains(&l1), "touch @1 = {l1} RTT");
    assert!(l16 > 1.5 * l1, "touch must grow with servers: {l1} → {l16}");
    assert!(l16 < 5.0, "but stay in the paper's range: {l16}");
}

/// Fig 9: single-server LocoFS create reaches ≈38 % of the raw KV
/// store (vs ≈3 % for IndexFS, ≈1 % for CephFS).
#[test]
fn single_server_bridges_the_kv_gap() {
    let mut raw = RawKvFs::new();
    let kv = create_throughput(&mut raw, 30, 200);
    let mut loco = LocoAdapter::new(LocoConfig::with_servers(1));
    let loco_iops = create_throughput(&mut loco, 30, 100);
    let mut indexfs = IndexFsModel::new(1);
    let idx_iops = create_throughput(&mut indexfs, 30, 100);
    let mut ceph = CephFsModel::new(1);
    let ceph_iops = create_throughput(&mut ceph, 30, 100);

    let loco_pct = loco_iops / kv;
    assert!(
        (0.20..0.60).contains(&loco_pct),
        "LocoFS = {:.0}% of KV (paper ≈38%)",
        loco_pct * 100.0
    );
    assert!(
        loco_iops > 8.0 * idx_iops,
        "paper: ≈16× IndexFS at 1 server"
    );
    assert!(loco_iops > 30.0 * ceph_iops, "paper: 67× CephFS");
}

/// §4.2.2 obs. 1: "The IOPS of LocoFS for create with one metadata
/// server ... is 23× Gluster and 8× Lustre" — order-of-magnitude check.
#[test]
fn single_server_create_ratios() {
    let mut loco = LocoAdapter::new(LocoConfig::with_servers(1));
    let loco_iops = create_throughput(&mut loco, 30, 100);
    let mut gluster = GlusterFsModel::new(1);
    let gl = create_throughput(&mut gluster, 30, 100);
    let ratio = loco_iops / gl;
    assert!(
        (8.0..40.0).contains(&ratio),
        "LocoFS/Gluster = {ratio:.1}× (paper 23×)"
    );
}

/// §4.2.2 obs. 2 / Fig 8: the client cache matters at scale — LocoFS-C
/// clearly out-creates LocoFS-NC at 16 servers (paper: 2.8×).
#[test]
fn cache_scales_touch_throughput() {
    let mut c = LocoAdapter::new(LocoConfig::with_servers(16));
    let with_cache = create_throughput(&mut c, 144, 50);
    let mut nc = LocoAdapter::new(LocoConfig::with_servers(16).no_cache());
    let without = create_throughput(&mut nc, 144, 50);
    let ratio = with_cache / without;
    assert!(
        (1.8..5.0).contains(&ratio),
        "C/NC @16 = {ratio:.2} (paper 2.8×)"
    );
}

/// Fig 13: create throughput vs directory depth — NC collapses, C holds.
#[test]
fn depth_sensitivity_matches_fig13() {
    let run = |cache: bool, depth: usize| {
        let cfg = if cache {
            LocoConfig::with_servers(4)
        } else {
            LocoConfig::with_servers(4).no_cache()
        };
        let mut fs = LocoAdapter::new(cfg);
        let spec = TreeSpec::new(70, 40).with_depth(depth);
        run_setup(&mut fs, &gen_setup(&spec)).unwrap();
        let traces = collect_traces(&mut fs, &gen_phase(&spec, PhaseKind::FileCreate));
        ClosedLoopSim::default().run(traces).iops()
    };
    let nc_1 = run(false, 1);
    let nc_32 = run(false, 32);
    let c_1 = run(true, 1);
    let c_32 = run(true, 32);
    assert!(
        nc_32 < nc_1 / 4.0,
        "NC must collapse with depth: {nc_1:.0} → {nc_32:.0}"
    );
    assert!(
        c_32 > c_1 / 2.0,
        "C must hold up with depth: {c_1:.0} → {c_32:.0}"
    );
}

/// §3.4.2: f-rename relocates only the file's metadata record; d-rename
/// relocates only directory inodes. Data blocks never move.
#[test]
fn rename_relocation_scope() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/a", 0o755).unwrap();
    for i in 0..10 {
        fs.mkdir(&format!("/a/sub{i}"), 0o755).unwrap();
        fs.create(&format!("/a/f{i}"), 0o644).unwrap();
    }
    let moved = fs.rename_dir("/a", "/b").unwrap();
    assert_eq!(moved, 11, "directory inodes only: /a + 10 subdirs");
    // All files reachable; uuid-keyed records untouched.
    for i in 0..10 {
        assert!(fs.stat_file(&format!("/b/f{i}")).is_ok());
    }
}

/// Fig 14: at DMS scale, hash-backend rename costs a full scan while
/// the B-tree backend stays range-local.
#[test]
fn btree_rename_beats_hash_at_scale() {
    use locofs::dms::{DirServer, DmsBackend, DmsRequest};
    use locofs::net::Service;
    let build = |backend| {
        let mut dms = DirServer::new(backend, locofs::kv::KvConfig::default());
        dms.handle(DmsRequest::Mkdir {
            path: "/small".into(),
            mode: 0o755,
            uid: 0,
            gid: 0,
            ts: 0,
        });
        for i in 0..20_000 {
            dms.handle(DmsRequest::Mkdir {
                path: format!("/fill{i:06}"),
                mode: 0o755,
                uid: 0,
                gid: 0,
                ts: 0,
            });
        }
        let _ = dms.take_cost();
        dms
    };
    let mut bt = build(DmsBackend::BTree);
    let mut hs = build(DmsBackend::Hash);
    bt.handle(DmsRequest::RenameDir {
        old_path: "/small".into(),
        new_path: "/renamed".into(),
        uid: 0,
        gid: 0,
        ts: 1,
    });
    let bt_cost = bt.take_cost();
    hs.handle(DmsRequest::RenameDir {
        old_path: "/small".into(),
        new_path: "/renamed".into(),
        uid: 0,
        gid: 0,
        ts: 1,
    });
    let hs_cost = hs.take_cost();
    assert!(
        hs_cost > 20 * bt_cost,
        "hash rename must pay the table scan: btree={bt_cost} hash={hs_cost}"
    );
}

/// Fig 11 mechanism: a decoupled chmod costs less server time than a
/// coupled one.
#[test]
fn decoupled_chmod_cheaper_than_coupled() {
    let measure = |coupled: bool| {
        let cfg = if coupled {
            LocoConfig::with_servers(4).coupled()
        } else {
            LocoConfig::with_servers(4)
        };
        let cluster = LocoCluster::new(cfg);
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        fs.create("/d/f", 0o644).unwrap();
        let _ = fs.take_trace();
        fs.chmod_file("/d/f", 0o600).unwrap();
        fs.take_trace().total_service()
    };
    let df = measure(false);
    let cf = measure(true);
    assert!(cf > df, "coupled {cf} must exceed decoupled {df}");
}

/// Fig 7: CephFS's client cache makes its stats the cheapest; LocoFS
/// beats Gluster on file-stat (no broadcast lookups).
#[test]
fn stat_ordering_matches_fig7() {
    let mut loco = LocoAdapter::new(LocoConfig::with_servers(8));
    let mut ceph = CephFsModel::new(8);
    let mut gluster = GlusterFsModel::new(8);
    let l = latency_rtts(&mut loco, PhaseKind::FileStat, 300);
    let c = latency_rtts(&mut ceph, PhaseKind::FileStat, 300);
    let g = latency_rtts(&mut gluster, PhaseKind::FileStat, 300);
    assert!(c < l, "CephFS caps cache wins stats: ceph={c} loco={l}");
    assert!(
        l < g,
        "LocoFS beats Gluster's two-fop stat: loco={l} gluster={g}"
    );
}
