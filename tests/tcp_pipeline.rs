//! Behaviour of the event-driven server core under concurrency,
//! pipelining and backpressure:
//!
//! * hundreds of concurrent client connections on a small worker pool;
//! * many outstanding pipelined requests on one connection, with
//!   responses free to return out of order;
//! * a slow reader hitting the per-connection write-buffer budget —
//!   the server must stop *reading* (bounded memory) instead of
//!   buffering unboundedly, and resume once the client drains;
//! * frames split across readiness events reassembling correctly;
//! * WAL group commit batching fsyncs across connections while every
//!   acknowledged mutation stays durable.

use locofs::dms::{DirServer, DmsRequest, DmsResponse};
use locofs::kv::{BTreeDb, DurableStore, KvConfig, SyncPolicy};
use locofs::net::frame::{encode_frame, read_frame, FrameKind};
use locofs::net::tcp::{serve_tcp, RetryPolicy, ServeOptions, TcpEndpoint};
use locofs::net::{class, CallCtx, Endpoint, EndpointMetrics, RpcRequest, RpcResponse, ServerId};
use locofs::obs::MetricsRegistry;
use locofs::ostore::{ObjectStore, OstoreRequest, OstoreResponse};
use locofs::types::wire::Wire;
use locofs::types::Uuid;
use std::collections::HashSet;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn patient_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        backoff: Duration::from_millis(20),
        deadline: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(10),
        reconnect_window: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 0,
        breaker_cooldown: Duration::from_millis(100),
    }
}

fn mkdir_local(path: String) -> DmsRequest {
    DmsRequest::MkdirLocal {
        path,
        mode: 0o755,
        uid: 0,
        gid: 0,
        ts: 1,
    }
}

#[test]
fn hundreds_of_clients_share_four_workers() {
    const CLIENTS: usize = 256;
    const OPS: usize = 4;
    let id = ServerId::new(class::DMS, 0);
    let registry = MetricsRegistry::shared();
    let metrics = EndpointMetrics::register(&registry, id);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp(
        id,
        DirServer::with_sid(locofs::dms::DmsBackend::BTree, KvConfig::default(), 0),
        listener,
        ServeOptions {
            metrics: Some(Arc::clone(&metrics)),
            registry: Some(Arc::clone(&registry)),
            workers: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = guard.addr().to_string();

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            // One endpoint per client thread = dedicated connections,
            // so the server really sees hundreds of sockets at once.
            let ep = TcpEndpoint::<DirServer>::with_policy(id, &addr, patient_policy());
            let mut ctx = CallCtx::new();
            for i in 0..OPS {
                let r = ep
                    .try_call(&mut ctx, mkdir_local(format!("/c{c}-{i}")))
                    .unwrap();
                assert!(matches!(r, DmsResponse::Done(Ok(_))), "mkdir: {r:?}");
            }
            let r = ep
                .try_call(
                    &mut ctx,
                    DmsRequest::GetDir {
                        path: format!("/c{c}-0"),
                    },
                )
                .unwrap();
            assert!(matches!(r, DmsResponse::Dir(Ok(_))), "getdir: {r:?}");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(metrics.requests(), (CLIENTS * (OPS + 1)) as u64);
    guard.shutdown();

    let labels: [(&str, &str); 2] = [("role", "dms"), ("server", "0")];
    assert_eq!(
        registry.gauge("loco_srv_open_conns", &labels).get(),
        0,
        "every connection must be closed after the drain"
    );
}

#[test]
fn one_connection_pipelines_many_inflight_requests() {
    const DEPTH: u64 = 64;
    let id = ServerId::new(class::DMS, 0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let _guard = serve_tcp(
        id,
        DirServer::with_sid(locofs::dms::DmsBackend::BTree, KvConfig::default(), 0),
        listener,
        ServeOptions::default(),
    )
    .unwrap();

    // Raw socket: write 64 request frames back-to-back without reading
    // a single response, then collect all 64 responses (any order).
    let mut stream = TcpStream::connect(_guard.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    for req_id in 1..=DEPTH {
        let payload = RpcRequest {
            budget_ms: 0,
            trace: None,
            body: mkdir_local(format!("/p{req_id}")),
        }
        .to_wire();
        let frame = encode_frame(FrameKind::Request, req_id, &payload);
        stream.write_all(&frame).unwrap();
    }
    let mut seen = HashSet::new();
    for _ in 0..DEPTH {
        let frame = read_frame(&mut stream).unwrap().expect("response frame");
        assert_eq!(frame.kind, FrameKind::Response);
        let resp = RpcResponse::<DmsResponse>::from_wire(&frame.payload).unwrap();
        assert!(matches!(resp.body, DmsResponse::Done(Ok(_))));
        assert!(
            (1..=DEPTH).contains(&frame.req_id) && seen.insert(frame.req_id),
            "unexpected or duplicate req_id {}",
            frame.req_id
        );
    }
    assert_eq!(seen.len(), DEPTH as usize);
}

#[test]
fn slow_reader_is_backpressured_not_buffered_unboundedly() {
    const BLOCK: usize = 1 << 20; // 1 MiB responses
    const READS: u64 = 50;
    let id = ServerId::new(class::OST, 0);
    let registry = MetricsRegistry::shared();
    let metrics = EndpointMetrics::register(&registry, id);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let _guard = serve_tcp(
        id,
        ObjectStore::new(KvConfig::default()),
        listener,
        ServeOptions {
            metrics: Some(Arc::clone(&metrics)),
            registry: Some(Arc::clone(&registry)),
            // Tight reply budget: ~a quarter of one response.
            write_buf_limit: 256 * 1024,
            ..Default::default()
        },
    )
    .unwrap();
    let uuid = Uuid::new(0, 9);

    let mut stream = TcpStream::connect(_guard.addr()).unwrap();
    let seed = RpcRequest {
        budget_ms: 0,
        trace: None,
        body: OstoreRequest::WriteBlock {
            uuid,
            blk: 0,
            data: vec![0xAB; BLOCK],
        },
    }
    .to_wire();
    stream
        .write_all(&encode_frame(FrameKind::Request, 1, &seed))
        .unwrap();
    let frame = read_frame(&mut stream).unwrap().unwrap();
    let resp = RpcResponse::<OstoreResponse>::from_wire(&frame.payload).unwrap();
    assert!(matches!(resp.body, OstoreResponse::Done(Ok(()))));

    // Pipeline 50 reads of the 1 MiB block and then refuse to read the
    // ~50 MiB of responses for a while.
    for req_id in 2..=(1 + READS) {
        let payload = RpcRequest {
            budget_ms: 0,
            trace: None,
            body: OstoreRequest::ReadBlock { uuid, blk: 0 },
        }
        .to_wire();
        stream
            .write_all(&encode_frame(FrameKind::Request, req_id, &payload))
            .unwrap();
    }
    // The server may buffer at most write_buf_limit per connection plus
    // what the kernel socket buffers absorb — far short of all 50.
    let deadline = Instant::now() + Duration::from_millis(600);
    let mut plateau = metrics.requests();
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
        plateau = metrics.requests();
    }
    assert!(
        plateau < 1 + READS,
        "server served all {READS} reads ({plateau} requests) while the \
         client read nothing — write backpressure is not applied"
    );

    // Start draining: the server resumes reading and serves the rest.
    let mut got = 0;
    while got < READS {
        let frame = read_frame(&mut stream).unwrap().expect("response");
        let resp = RpcResponse::<OstoreResponse>::from_wire(&frame.payload).unwrap();
        match resp.body {
            OstoreResponse::Block(Ok(data)) => assert_eq!(data.len(), BLOCK),
            other => panic!("unexpected {other:?}"),
        }
        got += 1;
    }
    assert_eq!(metrics.requests(), 1 + READS);
}

#[test]
fn half_written_frames_reassemble_across_readiness_events() {
    let id = ServerId::new(class::DMS, 0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let _guard = serve_tcp(
        id,
        DirServer::with_sid(locofs::dms::DmsBackend::BTree, KvConfig::default(), 0),
        listener,
        ServeOptions::default(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(_guard.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let payload = RpcRequest {
        budget_ms: 0,
        trace: None,
        body: mkdir_local("/split".into()),
    }
    .to_wire();
    let frame = encode_frame(FrameKind::Request, 42, &payload);
    // Dribble the frame: mid-header, then mid-payload, then the rest.
    // Each pause is long enough for the server to wake up, find the
    // frame incomplete, and go back to waiting.
    let cuts = [7, frame.len() / 2, frame.len()];
    let mut sent = 0;
    for cut in cuts {
        stream.write_all(&frame[sent..cut]).unwrap();
        sent = cut;
        std::thread::sleep(Duration::from_millis(60));
    }
    let reply = read_frame(&mut stream).unwrap().expect("response");
    assert_eq!(reply.req_id, 42);
    let resp = RpcResponse::<DmsResponse>::from_wire(&reply.payload).unwrap();
    assert!(matches!(resp.body, DmsResponse::Done(Ok(_))));

    // A second frame glued right behind a first in one write must also
    // parse as two requests.
    let p1 = RpcRequest {
        budget_ms: 0,
        trace: None,
        body: mkdir_local("/glued-1".into()),
    }
    .to_wire();
    let p2 = RpcRequest {
        budget_ms: 0,
        trace: None,
        body: mkdir_local("/glued-2".into()),
    }
    .to_wire();
    let mut both = encode_frame(FrameKind::Request, 43, &p1);
    both.extend_from_slice(&encode_frame(FrameKind::Request, 44, &p2));
    stream.write_all(&both).unwrap();
    let mut ids = HashSet::new();
    for _ in 0..2 {
        let reply = read_frame(&mut stream).unwrap().expect("response");
        ids.insert(reply.req_id);
    }
    assert_eq!(ids, HashSet::from([43, 44]));
}

#[test]
fn group_commit_batches_wal_fsyncs_across_connections() {
    const THREADS: usize = 16;
    const OPS: usize = 25;
    let scratch = std::env::temp_dir().join(format!("loco-tcp-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    let id = ServerId::new(class::DMS, 0);
    let registry = MetricsRegistry::shared();
    let metrics = EndpointMetrics::register(&registry, id);
    let store = DurableStore::open(&scratch, BTreeDb::new(KvConfig::default()))
        .unwrap()
        .with_sync_policy(SyncPolicy::EveryRecord);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut guard = serve_tcp(
        id,
        DirServer::with_store(Box::new(store), 0),
        listener,
        ServeOptions {
            metrics: Some(Arc::clone(&metrics)),
            registry: Some(Arc::clone(&registry)),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = guard.addr().to_string();

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let ep = TcpEndpoint::<DirServer>::with_policy(id, &addr, patient_policy());
            let mut ctx = CallCtx::new();
            for i in 0..OPS {
                let r = ep
                    .try_call(&mut ctx, mkdir_local(format!("/g{t}-{i}")))
                    .unwrap();
                assert!(matches!(r, DmsResponse::Done(Ok(_))));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    guard.shutdown();

    // The committer records every fsync'd batch: `sum` is WAL records
    // covered, `count` is fsyncs issued. Batching means sum > count —
    // under 16 concurrent durable writers at least one fsync must have
    // covered more than one record.
    let labels: [(&str, &str); 2] = [("role", "dms"), ("server", "0")];
    let batch = registry.histogram("loco_wal_batch_size", &labels);
    let total_ops = (THREADS * OPS) as u64;
    assert!(batch.count() > 0, "group committer never ran");
    assert!(
        batch.sum() > batch.count(),
        "no multi-record WAL batch observed: {} fsyncs covered {} records",
        batch.count(),
        batch.sum()
    );
    assert!(
        batch.count() < total_ops,
        "as many fsyncs as ops — group commit amortized nothing"
    );
    // Every mutation was acknowledged, so every record must be durable:
    // a cold reopen of the store replays them all.
    let reopened = DurableStore::open(&scratch, BTreeDb::new(KvConfig::default())).unwrap();
    let mut server = DirServer::with_store(Box::new(reopened), 0);
    use locofs::net::Service;
    for t in 0..THREADS {
        for i in 0..OPS {
            let r = server.handle(DmsRequest::GetDir {
                path: format!("/g{t}-{i}"),
            });
            assert!(
                matches!(r, DmsResponse::Dir(Ok(_))),
                "acked mkdir /g{t}-{i} lost after reopen: {r:?}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
