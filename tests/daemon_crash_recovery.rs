//! End-to-end crash recovery of the real `locod` daemon: spawn the
//! release binary with `--data-dir`, mutate over the wire, `kill -9`
//! it, restart on the same port over the same directory, and prove
//! every acknowledged mutation is still there. Also covers the
//! graceful path (a `Control::Shutdown` drain must checkpoint the WAL
//! down to its bare header) and a crash *during* the drain itself.

use locofs::dms::{DirServer, DmsRequest, DmsResponse};
use locofs::net::tcp::{RetryPolicy, TcpEndpoint};
use locofs::net::{class, control, CallCtx, Control, ControlReply, Endpoint, ServerId};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

fn locod() -> &'static str {
    env!("CARGO_BIN_EXE_locod")
}

static SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!(
            "loco-daemon-crash-{}-{n}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Reserve a localhost port: bind, read, release. The tiny window
/// before the daemon rebinds it is fine for a test on loopback.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// A spawned `locod serve` child that is SIGKILLed on drop so a failed
/// assertion never leaks a daemon.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_dms(addr: &str, data_dir: &Path, extra_env: &[(&str, &str)]) -> Daemon {
    let mut cmd = Command::new(locod());
    cmd.args([
        "serve",
        "--role",
        "dms",
        "--index",
        "0",
        "--listen",
        addr,
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--sync-policy",
        "every-record",
        "--checkpoint-every",
        "25",
    ])
    .env_remove("LOCO_CRASHPOINT")
    .env_remove("LOCO_IOFAULT")
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    Daemon(cmd.spawn().expect("spawn locod serve"))
}

fn wait_ping(addr: &str) {
    let start = Instant::now();
    loop {
        if let Ok(ControlReply::Pong) = control(addr, Control::Ping, Duration::from_millis(500)) {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "daemon at {addr} never answered a ping"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn endpoint(addr: &str) -> TcpEndpoint<DirServer> {
    TcpEndpoint::with_policy(
        ServerId::new(class::DMS, 0),
        addr,
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            reconnect_window: Duration::ZERO,
            retry_budget: 0,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(100),
        },
    )
}

fn mkdir(ep: &TcpEndpoint<DirServer>, path: &str) {
    let resp = ep
        .try_call(
            &mut CallCtx::new(),
            DmsRequest::Mkdir {
                path: path.into(),
                mode: 0o755,
                uid: 0,
                gid: 0,
                ts: 1,
            },
        )
        .expect("mkdir rpc");
    let DmsResponse::Done(r) = resp else {
        panic!("unexpected mkdir response");
    };
    r.expect("mkdir must succeed");
}

fn dir_exists(ep: &TcpEndpoint<DirServer>, path: &str) -> bool {
    matches!(
        ep.try_call(
            &mut CallCtx::new(),
            DmsRequest::GetDir { path: path.into() }
        ),
        Ok(DmsResponse::Dir(Ok(_)))
    )
}

#[test]
fn sigkill_mid_stream_then_restart_recovers_every_acked_mkdir() {
    let scratch = Scratch::new("sigkill");
    let addr = format!("127.0.0.1:{}", free_port());

    let mut d = spawn_dms(&addr, &scratch.0, &[]);
    wait_ping(&addr);
    let ep = endpoint(&addr);
    // 40 acked mkdirs: enough to cross the checkpoint-every=25
    // threshold, so recovery exercises snapshot + WAL-tail replay.
    for i in 0..40 {
        mkdir(&ep, &format!("/d{i}"));
    }

    // SIGKILL: no drain, no checkpoint, no flush beyond what each ack
    // already guaranteed.
    d.0.kill().unwrap();
    d.0.wait().unwrap();

    let _d2 = spawn_dms(&addr, &scratch.0, &[]);
    wait_ping(&addr);
    let ep = endpoint(&addr);
    for i in 0..40 {
        assert!(
            dir_exists(&ep, &format!("/d{i}")),
            "/d{i} was acked before the SIGKILL and must survive it"
        );
    }
    // The recovered daemon keeps working.
    mkdir(&ep, "/after-restart");
    assert!(dir_exists(&ep, "/after-restart"));
}

#[test]
fn graceful_shutdown_checkpoints_and_fsck_passes_offline() {
    let scratch = Scratch::new("graceful");
    let addr = format!("127.0.0.1:{}", free_port());

    let mut d = spawn_dms(&addr, &scratch.0, &[]);
    wait_ping(&addr);
    let ep = endpoint(&addr);
    for i in 0..10 {
        mkdir(&ep, &format!("/g{i}"));
    }

    assert!(matches!(
        control(&addr, Control::Shutdown, Duration::from_secs(5)),
        Ok(ControlReply::ShuttingDown)
    ));
    d.0.wait().unwrap();

    // The drain pass checkpoints: snapshot present, WAL rotated down to
    // its bare 5-byte header.
    let role_dir = scratch.0.join("dms0");
    assert!(role_dir.join("snapshot.db").exists());
    assert_eq!(
        std::fs::metadata(role_dir.join("wal.log")).unwrap().len(),
        5,
        "a drained WAL holds only the magic + version header"
    );

    // Offline fsck over the same data dir must come back clean.
    let out = Command::new(locod())
        .args(["fsck", "--data-dir", scratch.0.to_str().unwrap()])
        .env_remove("LOCO_CRASHPOINT")
        .env_remove("LOCO_IOFAULT")
        .output()
        .expect("spawn locod fsck");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("clean"),
        "offline fsck failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn crash_during_drain_loses_nothing() {
    let scratch = Scratch::new("drain-crash");
    let addr = format!("127.0.0.1:{}", free_port());

    // Arm the drain crash point: the daemon aborts after the listener
    // closes but *before* the final checkpointing maintain pass.
    let mut d = spawn_dms(&addr, &scratch.0, &[("LOCO_CRASHPOINT", "daemon_drain")]);
    wait_ping(&addr);
    let ep = endpoint(&addr);
    for i in 0..10 {
        mkdir(&ep, &format!("/x{i}"));
    }
    let _ = control(&addr, Control::Shutdown, Duration::from_secs(5));
    let status = d.0.wait().unwrap();
    assert!(!status.success(), "armed drain crash point must abort");

    // Recovery must come from the WAL alone.
    let _d2 = spawn_dms(&addr, &scratch.0, &[]);
    wait_ping(&addr);
    let ep = endpoint(&addr);
    for i in 0..10 {
        assert!(
            dir_exists(&ep, &format!("/x{i}")),
            "/x{i} must survive a crash during the drain"
        );
    }
}
