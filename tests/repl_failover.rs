//! End-to-end DMS warm-standby failover over real `locod` daemons:
//! SIGKILL the primary mid-workload, promote a standby, and prove
//! every *acknowledged* mutation survived and the promote completed in
//! under a second. Also covers split-brain fencing (a stale primary
//! can never ack a post-promotion mutation), standby cold-restart
//! catch-up through the snapshot path, and a chaos loop of repeated
//! kill → promote → rejoin rounds.
//!
//! Quorum shape matters: with `--repl-ack one` a primary can only ack
//! while at least one standby is alive, so the failover scenarios run
//! the CI topology (1 primary + 2 standbys, full mesh) — after losing
//! any single node the survivor pair still forms an ack quorum.

use locofs::dms::{DirServer, DmsRequest, DmsResponse};
use locofs::net::tcp::{RetryPolicy, TcpEndpoint};
use locofs::net::{class, control, CallCtx, Control, ControlReply, Endpoint, RpcError, ServerId};
use locofs::repl::Role;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

fn locod() -> &'static str {
    env!("CARGO_BIN_EXE_locod")
}

static SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!(
            "loco-repl-failover-{}-{n}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// A spawned `locod serve` child, SIGKILLed on drop so a failed
/// assertion never leaks a daemon.
struct Daemon(Child);

impl Daemon {
    fn kill(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawn one replicated DMS. `standby_of = Some(primary_addr)` boots
/// the node as a standby; `None` boots it as the primary. `peers` is
/// the comma-joined list this node ships to once it is primary.
fn spawn_dms(
    addr: &str,
    data_dir: &Path,
    index: u16,
    standby_of: Option<&str>,
    peers: &str,
    ack: &str,
    extra_env: &[(&str, &str)],
) -> Daemon {
    let mut cmd = Command::new(locod());
    cmd.args([
        "serve",
        "--role",
        "dms",
        "--index",
        &index.to_string(),
        "--listen",
        addr,
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--sync-policy",
        "every-record",
        "--replicate-to",
        peers,
        "--repl-ack",
        ack,
        "--repl-lease-ms",
        "200",
    ]);
    if let Some(primary) = standby_of {
        cmd.args(["--standby-of", primary]);
    }
    cmd.env_remove("LOCO_CRASHPOINT")
        .env_remove("LOCO_IOFAULT")
        .env_remove("LOCO_REPL_AUTO_PROMOTE")
        .env_remove("LOCO_REPL_RING_BYTES")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    Daemon(cmd.spawn().expect("spawn locod serve"))
}

fn wait_ping(addr: &str) {
    let start = Instant::now();
    loop {
        if let Ok(ControlReply::Pong) = control(addr, Control::Ping, Duration::from_millis(500)) {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "daemon at {addr} never answered a ping"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One attempt, short deadline: "acked" means exactly one reply frame
/// arrived — no retry ambiguity about which mutations count.
fn one_shot(addr: &str) -> TcpEndpoint<DirServer> {
    TcpEndpoint::with_policy(
        ServerId::new(class::DMS, 0),
        addr,
        RetryPolicy {
            attempts: 1,
            backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            reconnect_window: Duration::ZERO,
            retry_budget: 0,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(100),
        },
    )
}

fn mkdir(ep: &TcpEndpoint<DirServer>, path: &str) -> Result<(), RpcError> {
    match ep.try_call(
        &mut CallCtx::new(),
        DmsRequest::Mkdir {
            path: path.into(),
            mode: 0o755,
            uid: 0,
            gid: 0,
            ts: 1,
        },
    )? {
        DmsResponse::Done(Ok(_)) => Ok(()),
        other => panic!("unexpected mkdir response: {other:?}"),
    }
}

fn dir_exists(ep: &TcpEndpoint<DirServer>, path: &str) -> bool {
    matches!(
        ep.try_call(
            &mut CallCtx::new(),
            DmsRequest::GetDir { path: path.into() }
        ),
        Ok(DmsResponse::Dir(Ok(_)))
    )
}

/// (role, epoch, next_seq) from `ReplStatus` — answered by every role,
/// never fenced.
fn repl_status(ep: &TcpEndpoint<DirServer>) -> (u8, u64, u64) {
    match ep
        .try_call(&mut CallCtx::new(), DmsRequest::ReplStatus {})
        .expect("ReplStatus rpc")
    {
        DmsResponse::Repl(info) => (info.role, info.epoch, info.next_seq),
        other => panic!("unexpected ReplStatus response: {other:?}"),
    }
}

/// Promote the node behind `ep`, returning (epoch, elapsed).
fn promote(ep: &TcpEndpoint<DirServer>) -> (u64, Duration) {
    let start = Instant::now();
    match ep
        .try_call(&mut CallCtx::new(), DmsRequest::Promote {})
        .expect("Promote rpc")
    {
        DmsResponse::Repl(info) => {
            assert!(info.ok, "promote must succeed");
            assert_eq!(info.role, Role::Primary.as_u8());
            (info.epoch, start.elapsed())
        }
        other => panic!("unexpected Promote response: {other:?}"),
    }
}

/// Poll until the node no longer claims the primary role (fencing /
/// step-down propagates via heartbeats, not synchronously).
fn wait_not_primary(ep: &TcpEndpoint<DirServer>, why: &str) -> u8 {
    let start = Instant::now();
    loop {
        let (r, _, _) = repl_status(ep);
        if r != Role::Primary.as_u8() {
            return r;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "{why}: node still claims primary"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Poll until the node's applied WAL reaches `target_seq` at `epoch`.
fn wait_caught_up(ep: &TcpEndpoint<DirServer>, epoch: u64, target_seq: u64, why: &str) {
    let start = Instant::now();
    loop {
        let (_, e, next_seq) = repl_status(ep);
        if e >= epoch && next_seq >= target_seq {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "{why}: standby stuck at epoch {e} seq {next_seq}, want {epoch}/{target_seq}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The CI failover topology: three DMS replicas in a full replication
/// mesh. Node 0 boots as the primary, 1 and 2 as its standbys.
struct Trio {
    addrs: [String; 3],
    scratch: [Scratch; 3],
    daemons: [Option<Daemon>; 3],
    ack: &'static str,
}

impl Trio {
    fn boot(tag: &str, ack: &'static str) -> Self {
        let addrs = [
            format!("127.0.0.1:{}", free_port()),
            format!("127.0.0.1:{}", free_port()),
            format!("127.0.0.1:{}", free_port()),
        ];
        let scratch = [
            Scratch::new(&format!("{tag}-0")),
            Scratch::new(&format!("{tag}-1")),
            Scratch::new(&format!("{tag}-2")),
        ];
        let mut trio = Trio {
            addrs,
            scratch,
            daemons: [None, None, None],
            ack,
        };
        trio.daemons[0] = Some(trio.spawn(0, None));
        trio.daemons[1] = Some(trio.spawn(1, Some(0)));
        trio.daemons[2] = Some(trio.spawn(2, Some(0)));
        for a in &trio.addrs {
            wait_ping(a);
        }
        trio
    }

    /// Comma-joined addresses of every node except `index`.
    fn peers(&self, index: usize) -> String {
        let mut out = Vec::new();
        for (i, a) in self.addrs.iter().enumerate() {
            if i != index {
                out.push(a.clone());
            }
        }
        out.join(",")
    }

    fn spawn(&self, index: usize, standby_of: Option<usize>) -> Daemon {
        spawn_dms(
            &self.addrs[index],
            &self.scratch[index].0,
            index as u16,
            standby_of.map(|p| self.addrs[p].as_str()),
            &self.peers(index),
            self.ack,
            &[],
        )
    }

    fn kill(&mut self, index: usize) {
        if let Some(mut d) = self.daemons[index].take() {
            d.kill();
        }
    }

    /// Of the two survivors of `dead`, the one a zero-loss failover
    /// must promote: with ack=one only the furthest-ahead standby is
    /// guaranteed to hold every acked commit group.
    fn most_caught_up_survivor(&self, dead: usize) -> usize {
        (0..3)
            .filter(|&i| i != dead)
            .max_by_key(|&i| repl_status(&one_shot(&self.addrs[i])).2)
            .unwrap()
    }
}

#[test]
fn sigkill_primary_mid_workload_promote_loses_no_acked_mutation() {
    let mut trio = Trio::boot("kill", "one");

    // Workload thread: mkdirs against the primary until the kill cuts
    // it off. Every Ok(()) is an ack the cluster must never lose.
    let workload_addr = trio.addrs[0].clone();
    let worker = std::thread::spawn(move || {
        let ep = one_shot(&workload_addr);
        let mut acked = Vec::new();
        for i in 0..5000 {
            let path = format!("/w{i}");
            match mkdir(&ep, &path) {
                Ok(()) => acked.push(path),
                Err(_) => break,
            }
        }
        acked
    });

    // Let some mutations land, then SIGKILL the primary mid-stream.
    std::thread::sleep(Duration::from_millis(300));
    trio.kill(0);
    let acked = worker.join().unwrap();
    assert!(
        acked.len() >= 3,
        "workload never got going before the kill ({} acks)",
        acked.len()
    );

    // Operator failover: promote the furthest-ahead standby.
    // Sub-second promote is the headline number of the design.
    let target = trio.most_caught_up_survivor(0);
    let ep = one_shot(&trio.addrs[target]);
    let (epoch, took) = promote(&ep);
    assert_eq!(epoch, 2, "first promotion bumps the fencing epoch to 2");
    assert!(
        took < Duration::from_secs(1),
        "promote must complete sub-second, took {took:?}"
    );

    // Zero lost acked mutations: every ack implied a standby quorum
    // had the commit group durable before the client saw the reply.
    for path in &acked {
        assert!(
            dir_exists(&ep, path),
            "{path} was acked before the SIGKILL and must survive the failover"
        );
    }
    // The promoted primary keeps taking writes, acked by the other
    // surviving standby.
    mkdir(&ep, "/after-failover").unwrap();
    assert!(dir_exists(&ep, "/after-failover"));

    // Drain the new primary and fsck its data dir offline: the
    // replicated namespace must be structurally clean, not just
    // readable.
    assert!(matches!(
        control(
            &trio.addrs[target],
            Control::Shutdown,
            Duration::from_secs(5)
        ),
        Ok(ControlReply::ShuttingDown)
    ));
    trio.daemons[target].take().unwrap().0.wait().unwrap();
    let out = Command::new(locod())
        .args([
            "fsck",
            "--data-dir",
            trio.scratch[target].0.to_str().unwrap(),
            "--dms-index",
            &target.to_string(),
        ])
        .output()
        .expect("spawn locod fsck");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("clean"),
        "offline fsck of the promoted standby failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stale_primary_is_fenced_and_cannot_ack_post_promotion_mutations() {
    let s_pri = Scratch::new("fence-pri");
    let s_sby = Scratch::new("fence-sby");
    let pri_addr = format!("127.0.0.1:{}", free_port());
    let sby_addr = format!("127.0.0.1:{}", free_port());

    let _pri = spawn_dms(&pri_addr, &s_pri.0, 0, None, &sby_addr, "one", &[]);
    let _sby = spawn_dms(
        &sby_addr,
        &s_sby.0,
        1,
        Some(&pri_addr),
        &pri_addr,
        "one",
        &[],
    );
    wait_ping(&pri_addr);
    wait_ping(&sby_addr);

    let pri_ep = one_shot(&pri_addr);
    let sby_ep = one_shot(&sby_addr);
    mkdir(&pri_ep, "/before").unwrap();

    // Split brain: promote the standby while the old primary is STILL
    // RUNNING (the operator's view of liveness was wrong, or the lease
    // expired on a network partition).
    let (epoch, _) = promote(&sby_ep);
    assert_eq!(epoch, 2);

    // The stale primary must never ack a post-promotion mutation: its
    // commit groups need the peer's accept, and the epoch-2 node
    // rejects every epoch-1 append — the write either fences
    // immediately or times out with its reply dropped.
    assert!(
        mkdir(&pri_ep, "/split-brain").is_err(),
        "stale primary acked a mutation after the promotion"
    );
    assert!(
        !dir_exists(&sby_ep, "/split-brain"),
        "the unacked split-brain mutation must not leak to the new primary"
    );

    // The peer's epoch-2 rejections fence the stale primary within a
    // few heartbeats (it may then step down to standby once the new
    // primary's epoch-2 heartbeats reach it — either way it has lost
    // the primary claim for good).
    let role = wait_not_primary(&pri_ep, "stale primary");
    assert!(
        role == Role::Fenced.as_u8() || role == Role::Standby.as_u8(),
        "stale primary must end up fenced or demoted, got role {role}"
    );
    // From now on every client op on the stale node is refused with
    // the fencing epoch, fast — no retry budget burned.
    match mkdir(&pri_ep, "/post-fence") {
        Err(RpcError::FencedEpoch { epoch }) => assert!(epoch >= 1),
        other => panic!("fenced node must reject with FencedEpoch, got {other:?}"),
    }

    // Pre-promotion acked state is intact on the new primary.
    assert!(dir_exists(&sby_ep, "/before"));
}

#[test]
fn cold_standby_catches_up_from_snapshot_plus_wal_tail() {
    let s_pri = Scratch::new("snap-pri");
    let s_sby = Scratch::new("snap-sby");
    let pri_addr = format!("127.0.0.1:{}", free_port());
    let sby_addr = format!("127.0.0.1:{}", free_port());

    // Tiny replication ring: the backlog below overflows it, so the
    // late-joining standby CANNOT be served from buffered commit
    // groups and must take the snapshot + WAL-tail path. ack=none so
    // the primary acks while its only peer is still down.
    let mut pri = spawn_dms(
        &pri_addr,
        &s_pri.0,
        0,
        None,
        &sby_addr,
        "none",
        &[("LOCO_REPL_RING_BYTES", "1024")],
    );
    wait_ping(&pri_addr);

    let pri_ep = one_shot(&pri_addr);
    for i in 0..60 {
        mkdir(&pri_ep, &format!("/s{i}")).unwrap();
    }
    let (_, _, pri_seq) = repl_status(&pri_ep);

    // Cold standby: empty data dir, joins long after the backlog.
    let _sby = spawn_dms(
        &sby_addr,
        &s_sby.0,
        1,
        Some(&pri_addr),
        &pri_addr,
        "none",
        &[],
    );
    wait_ping(&sby_addr);
    let sby_ep = one_shot(&sby_addr);
    wait_caught_up(&sby_ep, 1, pri_seq, "snapshot catch-up");

    // A few more mutations ride the live tail after the snapshot.
    for i in 60..70 {
        mkdir(&pri_ep, &format!("/s{i}")).unwrap();
    }
    let (_, _, pri_seq) = repl_status(&pri_ep);
    wait_caught_up(&sby_ep, 1, pri_seq, "post-snapshot tail");

    // Fail over and prove the whole namespace (snapshot image + both
    // tails) is served by the promoted standby.
    pri.kill();
    let (epoch, _) = promote(&sby_ep);
    assert_eq!(epoch, 2);
    for i in 0..70 {
        assert!(
            dir_exists(&sby_ep, &format!("/s{i}")),
            "/s{i} must survive snapshot-path catch-up + failover"
        );
    }
}

#[test]
fn chaos_loop_of_kill_promote_rejoin_rounds_loses_nothing() {
    let mut trio = Trio::boot("chaos", "one");
    let mut primary = 0usize;
    let mut acked: Vec<String> = Vec::new();
    let mut expect_epoch = 1u64;

    for round in 0..3 {
        // Burst of acked mutations against the current primary.
        let ep = one_shot(&trio.addrs[primary]);
        for i in 0..10 {
            let path = format!("/r{round}-{i}");
            mkdir(&ep, &path).unwrap_or_else(|e| panic!("round {round} mkdir {path}: {e}"));
            acked.push(path);
        }

        // Kill the primary, promote the furthest-ahead survivor.
        let victim = primary;
        trio.kill(victim);
        primary = trio.most_caught_up_survivor(victim);
        let ep = one_shot(&trio.addrs[primary]);
        let (epoch, took) = promote(&ep);
        expect_epoch += 1;
        assert_eq!(epoch, expect_epoch, "each promotion bumps the epoch");
        assert!(
            took < Duration::from_secs(2),
            "round {round}: promote took {took:?}"
        );

        // Everything ever acked is present on the new primary.
        for path in &acked {
            assert!(
                dir_exists(&ep, path),
                "round {round}: {path} lost across failover"
            );
        }

        // The victim rejoins as a standby of the new primary (its
        // stale epoch is corrected by the first heartbeat) and must
        // catch up before the next round.
        trio.daemons[victim] = Some(trio.spawn(victim, Some(primary)));
        wait_ping(&trio.addrs[victim]);
        let sby_ep = one_shot(&trio.addrs[victim]);
        let rejoined = wait_not_primary(&sby_ep, "rejoined victim");
        assert_eq!(rejoined, Role::Standby.as_u8());
        let (_, _, pri_seq) = repl_status(&ep);
        wait_caught_up(&sby_ep, expect_epoch, pri_seq, "rejoined victim");
    }

    // Final state: 30 acked mutations, all present.
    let ep = one_shot(&trio.addrs[primary]);
    assert_eq!(acked.len(), 30);
    for path in &acked {
        assert!(dir_exists(&ep, path));
    }
}
