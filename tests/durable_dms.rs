//! End-to-end durability: a DMS running on a write-ahead-logged store
//! survives process "crashes" (drop without checkpoint) with its
//! namespace intact, recovered purely from disk.

use locofs::dms::{DirServer, DmsRequest, DmsResponse};
use locofs::kv::{BTreeDb, DurableStore, KvConfig};
use locofs::net::Service;
use std::path::PathBuf;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("loco-durable-dms-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_dms(dir: &PathBuf) -> DirServer {
    let store = DurableStore::open(dir, BTreeDb::new(KvConfig::default())).unwrap();
    DirServer::with_store(Box::new(store), 0)
}

fn mkdir(dms: &mut DirServer, path: &str) {
    let resp = dms.handle(DmsRequest::Mkdir {
        path: path.into(),
        mode: 0o755,
        uid: 1,
        gid: 1,
        ts: 0,
    });
    assert!(matches!(resp, DmsResponse::Done(Ok(_))), "{resp:?}");
}

#[test]
fn namespace_survives_crash_and_reopen() {
    let scratch = Scratch::new("crash");
    {
        let mut dms = open_dms(&scratch.0);
        mkdir(&mut dms, "/projects");
        mkdir(&mut dms, "/projects/alpha");
        mkdir(&mut dms, "/projects/beta");
        dms.handle(DmsRequest::RenameDir {
            old_path: "/projects/beta".into(),
            new_path: "/projects/gamma".into(),
            uid: 1,
            gid: 1,
            ts: 2,
        });
        // "Crash": drop without any explicit checkpoint or sync — the
        // OsManaged policy still leaves records in the OS cache, but
        // the BufWriter flushes on drop via the File close; to be
        // strict we only rely on what a reopen actually finds.
    }
    let mut dms = open_dms(&scratch.0);
    assert!(dms.lookup("/projects/alpha").is_some());
    assert!(dms.lookup("/projects/gamma").is_some());
    assert!(dms.lookup("/projects/beta").is_none());
    // Keep mutating after recovery and recover again.
    mkdir(&mut dms, "/projects/alpha/run1");
    drop(dms);
    let mut dms = open_dms(&scratch.0);
    assert!(dms.lookup("/projects/alpha/run1").is_some());
}

#[test]
fn uuid_continuity_across_restarts_via_watermark() {
    // A durable DirServer persists a uuid watermark alongside the
    // namespace (the watermark write rides in the same WAL commit
    // group as the allocation), so a crash-and-reopen resumes
    // allocation past every uuid it ever handed out — no snapshot
    // image required.
    let scratch = Scratch::new("uuid");
    let before = {
        let mut dms = open_dms(&scratch.0);
        mkdir(&mut dms, "/a");
        dms.lookup("/a").unwrap().uuid
        // crash: drop without checkpoint
    };
    let mut dms = open_dms(&scratch.0);
    mkdir(&mut dms, "/b");
    let after = dms.lookup("/b").unwrap().uuid;
    assert_ne!(
        before, after,
        "reopened allocator must not reissue a uuid that may name live state"
    );

    // The snapshot path preserves the allocator too.
    let image = dms.snapshot();
    let mut restored =
        DirServer::restore(locofs::dms::DmsBackend::BTree, KvConfig::default(), &image).unwrap();
    mkdir(&mut restored, "/c");
    let newest = restored.lookup("/c").unwrap().uuid;
    assert_ne!(newest, before);
    assert_ne!(
        newest, after,
        "snapshot restore resumed past persisted uuids"
    );
}
