//! Three-way transport equivalence: the same workload over
//! `SimEndpoint`, `ThreadEndpoint` and `TcpEndpoint` must yield
//! identical operation results and error codes, and — because servers
//! return their *virtual* service cost in every reply — structurally
//! identical flight-recorder span trees (same visit order, same
//! KV-vs-software attribution, same unloaded latency). Only queue-wait
//! is wall-clock and therefore excluded from comparison.

use locofs::client::{LocoClient, LocoConfig, TraceMode, Transport, TransportCluster};
use locofs::types::FsError;

/// A workload exercising every server role plus the error paths.
/// Returns a printable outcome per step so mismatches point at the op.
fn workload(c: &mut LocoClient) -> Vec<String> {
    let mut out = Vec::new();
    let mut push = |label: &str, r: Result<String, FsError>| {
        out.push(format!("{label}: {r:?}"));
    };

    push("mkdir /a", c.mkdir("/a", 0o755).map(|_| String::new()));
    push("mkdir /a/b", c.mkdir("/a/b", 0o755).map(|_| String::new()));
    push("mkdir dup", c.mkdir("/a", 0o755).map(|_| String::new()));
    for i in 0..8 {
        push(
            "create",
            c.create(&format!("/a/b/f{i}"), 0o644)
                .map(|_| String::new()),
        );
    }
    push(
        "stat file",
        c.stat_file("/a/b/f3")
            .map(|st| format!("{:o}", st.access.mode)),
    );
    push(
        "stat missing",
        c.stat_file("/a/b/nope").map(|_| String::new()),
    );
    push(
        "readdir",
        c.readdir("/a/b").map(|v| format!("{} entries", v.len())),
    );
    push(
        "chmod",
        c.chmod_file("/a/b/f0", 0o600).map(|_| String::new()),
    );
    push(
        "chown",
        c.chown_file("/a/b/f0", 1000, 1000).map(|_| String::new()),
    );
    push(
        "access",
        c.access_file("/a/b/f0", locofs::types::Perm::Read)
            .map(|ok| ok.to_string()),
    );
    // Data path: write crosses FMS + OST, read comes back verbatim.
    let mut h = c.create("/a/b/data", 0o644).unwrap();
    push(
        "write",
        c.write(&mut h, 0, b"equivalence").map(|_| String::new()),
    );
    push(
        "read",
        c.read(&h, 0, 11)
            .map(|d| String::from_utf8_lossy(&d).into_owned()),
    );
    push(
        "truncate",
        c.truncate_file("/a/b/data", 4).map(|_| String::new()),
    );
    push(
        "rename file",
        c.rename_file("/a/b/f7", "/a/b/g7").map(|_| String::new()),
    );
    push(
        "rename dir",
        c.rename_dir("/a/b", "/a/c").map(|n| n.to_string()),
    );
    push("rmdir nonempty", c.rmdir("/a").map(|_| String::new()));
    push("unlink", c.unlink("/a/c/g7").map(|_| String::new()));
    push("unlink missing", c.unlink("/a/c/g7").map(|_| String::new()));
    out
}

/// Structural digest of a span tree: everything except wall-clock
/// queue waits.
fn span_digest(cluster: &TransportCluster) -> Vec<String> {
    cluster
        .flight
        .recent()
        .iter()
        .map(|rec| {
            let visits: Vec<String> = rec
                .visits
                .iter()
                .map(|v| {
                    let mut attrs: Vec<String> = v
                        .attrs
                        .iter()
                        .map(|(k, val)| format!("{k}={val}"))
                        .collect();
                    attrs.sort();
                    format!(
                        "{}[{}] {} svc={} {{{}}}",
                        v.server,
                        v.index,
                        v.op,
                        v.service_ns,
                        attrs.join(",")
                    )
                })
                .collect();
            format!(
                "{} {} lat={} cw={} :: {}",
                rec.op,
                rec.detail,
                rec.latency_ns,
                rec.client_work_ns,
                visits.join(" -> ")
            )
        })
        .collect()
}

fn run(transport: Transport) -> (Vec<String>, Vec<String>) {
    let config = LocoConfig::with_servers(3).traced(TraceMode::All);
    let cluster = TransportCluster::new(config, transport);
    let mut client = cluster.client();
    let results = workload(&mut client);
    (results, span_digest(&cluster))
}

#[test]
fn sim_thread_and_tcp_agree_on_results_and_span_trees() {
    let (sim_results, sim_spans) = run(Transport::Sim);
    let (thr_results, thr_spans) = run(Transport::Thread);
    let (tcp_results, tcp_spans) = run(Transport::Tcp);

    assert!(!sim_results.is_empty());
    assert!(
        !sim_spans.is_empty(),
        "TraceMode::All must populate the flight recorder"
    );

    assert_eq!(sim_results, thr_results, "sim vs thread op results");
    assert_eq!(sim_results, tcp_results, "sim vs tcp op results");
    assert_eq!(sim_spans, thr_spans, "sim vs thread span trees");
    assert_eq!(sim_spans, tcp_spans, "sim vs tcp span trees");
}

#[test]
fn error_codes_survive_the_wire_byte_exactly() {
    let probe = |transport: Transport| {
        let cluster = TransportCluster::new(LocoConfig::with_servers(2), transport);
        let mut c = cluster.client();
        c.mkdir("/d", 0o755).unwrap();
        c.create("/d/f", 0o644).unwrap();
        vec![
            c.mkdir("/d", 0o755).unwrap_err(),
            c.create("/d/f", 0o644).unwrap_err(),
            c.stat_file("/ghost").unwrap_err(),
            c.rmdir("/d").unwrap_err(),
            c.rmdir("/nope").unwrap_err(),
            c.unlink("/d").unwrap_err(),
        ]
    };
    let sim = probe(Transport::Sim);
    assert_eq!(sim, probe(Transport::Thread));
    assert_eq!(sim, probe(Transport::Tcp));
    assert_eq!(
        sim,
        vec![
            FsError::AlreadyExists,
            FsError::AlreadyExists,
            FsError::NotFound,
            FsError::NotEmpty,
            FsError::NotFound,
            // unlink of a directory: the file lookup on the FMS misses
            // (directories are not f-inodes), so ENOENT, not EISDIR.
            FsError::NotFound,
        ]
    );
}

#[test]
fn mdtest_phases_agree_across_transports() {
    use locofs::baselines::LocoAdapter;
    use locofs::mdtest::{gen_phase, gen_setup, run_latency, run_setup, PhaseKind, TreeSpec};

    let run = |transport: Transport| {
        let mut fs = LocoAdapter::with_transport(LocoConfig::with_servers(2), transport);
        let spec = TreeSpec::new(2, 15);
        run_setup(&mut fs, &gen_setup(&spec)).unwrap();
        let mut digest = Vec::new();
        for kind in [
            PhaseKind::DirCreate,
            PhaseKind::FileCreate,
            PhaseKind::FileStat,
            PhaseKind::Readdir,
            PhaseKind::FileRemove,
            PhaseKind::DirRemove,
        ] {
            for stream in gen_phase(&spec, kind) {
                let r = run_latency(&mut fs, &stream);
                // Virtual latency sums are transport-invariant, so the
                // mean compares exactly, not just approximately.
                digest.push(format!("{} {} {:.3}", kind.label(), r.errors, r.mean_us()));
            }
        }
        digest
    };
    let sim = run(Transport::Sim);
    assert_eq!(sim, run(Transport::Thread), "sim vs thread mdtest digest");
    assert_eq!(sim, run(Transport::Tcp), "sim vs tcp mdtest digest");
}
