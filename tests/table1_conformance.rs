//! Table 1 conformance: each filesystem operation, driven through the
//! full client, touches exactly the metadata record classes the paper's
//! Table 1 assigns it. Measured at the servers via KV access counters.

use locofs::client::{LocoCluster, LocoConfig};
use locofs::kv::AccessStats;
use locofs::types::Perm;

struct Harness {
    cluster: LocoCluster,
}

impl Harness {
    fn new() -> Self {
        Self {
            cluster: LocoCluster::new(LocoConfig::with_servers(2)),
        }
    }

    fn reset(&self) {
        self.cluster.dms[0].with_service(|s| s.reset_kv_stats());
        for f in &self.cluster.fms {
            f.with_service(|s| s.reset_kv_stats());
        }
    }

    fn dms_stats(&self) -> AccessStats {
        self.cluster.dms[0].with_service(|s| s.kv_stats())
    }

    fn fms_stats(&self) -> AccessStats {
        let mut total = AccessStats::default();
        for f in &self.cluster.fms {
            let s = f.with_service(|s| s.kv_stats());
            total.gets += s.gets;
            total.puts += s.puts;
            total.deletes += s.deletes;
            total.scans += s.scans;
            total.partial_reads += s.partial_reads;
            total.partial_writes += s.partial_writes;
        }
        total
    }
}

/// mkdir: d-inode + parent dirent writes on the DMS; no FMS access.
#[test]
fn mkdir_touches_dms_only() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/warm", 0o755).unwrap();
    h.reset();
    fs.mkdir("/d", 0o755).unwrap();
    let fms = h.fms_stats();
    assert_eq!(fms.total(), 0, "mkdir must not touch any FMS: {fms:?}");
    let dms = h.dms_stats();
    assert!(dms.puts >= 2, "d-inode + dirent list: {dms:?}");
}

/// create: access + content + dirent on one FMS; DMS only for the
/// (uncached) parent resolve.
#[test]
fn create_touches_fms_records() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/warm", 0o644).unwrap();
    h.reset();
    fs.create("/d/f", 0o644).unwrap();
    let dms = h.dms_stats();
    assert_eq!(dms.total(), 0, "warm cache: no DMS traffic: {dms:?}");
    let fms = h.fms_stats();
    assert_eq!(fms.puts, 3, "access + content + dirent append: {fms:?}");
    assert_eq!(fms.deletes, 0);
}

/// chmod(file): one access-record read + one in-place span write; the
/// content record is never touched (Table 1 row "chmod").
#[test]
fn chmod_file_touches_access_only() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/f", 0o644).unwrap();
    h.reset();
    fs.chmod_file("/d/f", 0o600).unwrap();
    let fms = h.fms_stats();
    assert_eq!(fms.gets, 1, "{fms:?}");
    assert_eq!(fms.partial_writes, 1, "{fms:?}");
    assert_eq!(fms.puts, 0, "no whole-value writes: {fms:?}");
}

/// write (metadata half): content-record read + in-place size/mtime
/// write; access record untouched (Table 1 row "write").
#[test]
fn write_touches_content_only() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    let mut fh = fs.create("/d/f", 0o644).unwrap();
    h.reset();
    fs.write(&mut fh, 0, b"xyz").unwrap();
    let fms = h.fms_stats();
    assert_eq!(fms.gets, 1, "content read: {fms:?}");
    assert_eq!(fms.partial_writes, 1, "size+mtime span poke: {fms:?}");
    assert_eq!(fms.puts, 0, "{fms:?}");
}

/// remove: both file records deleted + dirent tombstone (Table 1 row
/// "remove" touches access, content, dirent).
#[test]
fn remove_touches_both_parts_and_dirent() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/f", 0o644).unwrap();
    h.reset();
    fs.unlink("/d/f").unwrap();
    let fms = h.fms_stats();
    assert_eq!(fms.deletes, 2, "access + content: {fms:?}");
    assert_eq!(fms.puts, 1, "dirent tombstone append: {fms:?}");
}

/// getattr(file): reads both parts, writes nothing.
#[test]
fn stat_reads_both_parts_writes_nothing() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/f", 0o644).unwrap();
    h.reset();
    fs.stat_file("/d/f").unwrap();
    let fms = h.fms_stats();
    assert_eq!(fms.gets, 2, "access + content reads: {fms:?}");
    assert_eq!(fms.puts + fms.partial_writes + fms.deletes, 0, "{fms:?}");
}

/// access(2): reads exactly one record (the access part).
#[test]
fn access_reads_one_record() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/f", 0o644).unwrap();
    h.reset();
    assert!(fs.access_file("/d/f", Perm::Read).unwrap());
    let fms = h.fms_stats();
    assert_eq!(fms.total(), 1, "{fms:?}");
    assert_eq!(fms.gets, 1, "{fms:?}");
}

/// open without content: access part only (Table 1 marks content as
/// optional for open).
#[test]
fn open_reads_access_content_optional() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    fs.create("/d/f", 0o644).unwrap();
    h.reset();
    // The public API open() fetches content (needed for the handle);
    // that is the "optional" content access of Table 1.
    fs.open("/d/f", Perm::Read).unwrap();
    let fms = h.fms_stats();
    assert_eq!(
        fms.gets, 2,
        "access (required) + content (optional): {fms:?}"
    );
    assert_eq!(fms.puts + fms.partial_writes, 0, "{fms:?}");
}

/// readdir: dirent lists only — never file access/content records.
#[test]
fn readdir_touches_dirents_only() {
    let h = Harness::new();
    let mut fs = h.cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    for i in 0..6 {
        fs.create(&format!("/d/f{i}"), 0o644).unwrap();
    }
    h.reset();
    fs.readdir("/d").unwrap();
    let fms = h.fms_stats();
    assert_eq!(fms.gets, 2, "one dirent list per FMS: {fms:?}");
    assert_eq!(fms.partial_reads, 0, "{fms:?}");
    let dms = h.dms_stats();
    assert!(dms.gets >= 1, "subdir dirent list: {dms:?}");
}
