//! Cross-crate integration tests: full LocoFS cluster driven through the
//! public API, multiple clients, mixed metadata + data workloads.

use locofs::client::{LocoCluster, LocoConfig};
use locofs::types::{DirentKind, FsError, Perm};

#[test]
fn deep_tree_lifecycle() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(8));
    let mut fs = cluster.client();

    // Build a 4-level tree with files at every level.
    let mut dirs = vec!["".to_string()];
    for level in 0..4 {
        let mut next = Vec::new();
        for d in &dirs {
            for i in 0..3 {
                let p = format!("{d}/L{level}-{i}");
                fs.mkdir(&p, 0o755).unwrap();
                fs.create(&format!("{p}/data.bin"), 0o644).unwrap();
                next.push(p);
            }
        }
        dirs = next;
    }
    assert_eq!(dirs.len(), 81);

    // Spot-check stats and listings.
    let st = fs.stat_file("/L0-0/L1-1/data.bin").unwrap();
    assert_eq!(st.access.mode, 0o644);
    let entries = fs.readdir("/L0-0").unwrap();
    let (d, f): (Vec<_>, Vec<_>) = entries.iter().partition(|(_, k)| *k == DirentKind::Dir);
    assert_eq!(d.len(), 3);
    assert_eq!(f.len(), 1);

    // Tear down one subtree bottom-up.
    for i in 0..3 {
        for j in 0..3 {
            for k in 0..3 {
                let p = format!("/L0-2/L1-{i}/L2-{j}/L3-{k}");
                fs.unlink(&format!("{p}/data.bin")).unwrap();
                fs.rmdir(&p).unwrap();
            }
            let p = format!("/L0-2/L1-{i}/L2-{j}");
            fs.unlink(&format!("{p}/data.bin")).unwrap();
            fs.rmdir(&p).unwrap();
        }
        let p = format!("/L0-2/L1-{i}");
        fs.unlink(&format!("{p}/data.bin")).unwrap();
        fs.rmdir(&p).unwrap();
    }
    fs.unlink("/L0-2/data.bin").unwrap();
    fs.rmdir("/L0-2").unwrap();
    assert_eq!(fs.stat_dir("/L0-2"), Err(FsError::NotFound));
    assert!(fs.stat_dir("/L0-1").is_ok());
}

#[test]
fn two_clients_share_one_namespace() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut a = cluster.client();
    let mut b = cluster.client();

    a.mkdir("/shared", 0o777).unwrap();
    let mut fh = a.create("/shared/note", 0o666).unwrap();
    a.write(&mut fh, 0, b"from a").unwrap();

    // b sees a's file immediately (servers are shared state).
    let fh_b = b.open("/shared/note", Perm::Read).unwrap();
    assert_eq!(b.read(&fh_b, 0, 6).unwrap(), b"from a");

    // b deletes; a's next stat fails.
    b.unlink("/shared/note").unwrap();
    assert_eq!(a.stat_file("/shared/note"), Err(FsError::NotFound));
}

#[test]
fn data_survives_file_and_dir_renames() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(4));
    let mut fs = cluster.client();
    fs.mkdir("/src", 0o755).unwrap();
    fs.mkdir("/dst", 0o755).unwrap();
    let mut fh = fs.create("/src/blob", 0o644).unwrap();
    let payload: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
    fs.write(&mut fh, 0, &payload).unwrap();

    fs.rename_file("/src/blob", "/dst/blob2").unwrap();
    fs.rename_dir("/dst", "/dst-final").unwrap();

    let fh = fs.open("/dst-final/blob2", Perm::Read).unwrap();
    assert_eq!(fs.read(&fh, 0, fh.size).unwrap(), payload);
    // Original uuid means the object store never moved a block.
    assert_eq!(fh.uuid, fh.uuid);
}

#[test]
fn sparse_writes_and_overwrite_regions() {
    let mut cfg = LocoConfig::with_servers(2);
    cfg.block_size = 64; // small blocks to cross many boundaries
    let cluster = LocoCluster::new(cfg);
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    let mut fh = fs.create("/d/sparse", 0o644).unwrap();

    // Write a region far from the start: the gap reads back as zeros.
    fs.write(&mut fh, 1000, b"tail").unwrap();
    assert_eq!(fh.size, 1004);
    let head = fs.read(&fh, 0, 10).unwrap();
    assert!(head.iter().all(|&b| b == 0));
    assert_eq!(fs.read(&fh, 1000, 4).unwrap(), b"tail");

    // Overwrite across the gap boundary.
    fs.write(&mut fh, 998, b"XXXX").unwrap();
    assert_eq!(fs.read(&fh, 998, 6).unwrap(), b"XXXXil");
}

#[test]
fn rmdir_refuses_until_every_fms_is_empty() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(8));
    let mut fs = cluster.client();
    fs.mkdir("/busy", 0o755).unwrap();
    // Spread enough files that several FMS hold some.
    for i in 0..32 {
        fs.create(&format!("/busy/f{i}"), 0o644).unwrap();
    }
    assert_eq!(fs.rmdir("/busy"), Err(FsError::NotEmpty));
    for i in 0..32 {
        fs.unlink(&format!("/busy/f{i}")).unwrap();
    }
    fs.rmdir("/busy").unwrap();
}

#[test]
fn errors_surface_correctly() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    assert_eq!(fs.mkdir("/a/b", 0o755), Err(FsError::NotFound));
    fs.mkdir("/a", 0o755).unwrap();
    assert_eq!(fs.mkdir("/a", 0o755), Err(FsError::AlreadyExists));
    assert_eq!(fs.unlink("/a/missing"), Err(FsError::NotFound));
    assert_eq!(
        fs.open("/a/missing", Perm::Read).err(),
        Some(FsError::NotFound)
    );
    assert_eq!(fs.rmdir("/"), Err(FsError::Busy));
    assert_eq!(
        fs.rename_dir("/a", "/a/inside").err(),
        Some(FsError::Busy),
        "cannot move a directory beneath itself"
    );
}

#[test]
fn deferred_gc_reclaims_blocks() {
    let cluster = LocoCluster::new(LocoConfig::with_servers(2));
    let mut fs = cluster.client();
    fs.mkdir("/d", 0o755).unwrap();
    let mut fh = fs.create("/d/f", 0o644).unwrap();
    fs.write(&mut fh, 0, &vec![1u8; 3 << 20]).unwrap(); // 3 blocks
    let blocks_before: usize = cluster
        .ost
        .iter()
        .map(|o| o.with_service(|s| s.block_count()))
        .sum();
    assert!(blocks_before >= 3);
    fs.unlink("/d/f").unwrap();
    assert!(fs.gc_pending() > 0);
    fs.gc_flush();
    let blocks_after: usize = cluster
        .ost
        .iter()
        .map(|o| o.with_service(|s| s.block_count()))
        .sum();
    assert_eq!(blocks_after, 0);
}
