#![warn(missing_docs)]
//! # loco-posix — the LocoLib application interface
//!
//! The paper's default client path (§3.1): applications are recompiled
//! against LocoLib, a library exposing a POSIX-style file-descriptor
//! API that talks to the metadata servers directly (the FUSE client is
//! described but abandoned for its overhead, §4.1.2). This crate is
//! that library: a file-descriptor table, open flags, offsets, and
//! errno-mapped errors over [`loco_client::LocoClient`].
//!
//! ```
//! use loco_client::{LocoCluster, LocoConfig};
//! use loco_posix::{OpenFlags, PosixFs};
//!
//! let cluster = LocoCluster::new(LocoConfig::with_servers(2));
//! let mut fs = PosixFs::new(cluster.client());
//! fs.mkdir("/tmp", 0o777).unwrap();
//! let fd = fs
//!     .open("/tmp/x", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
//!     .unwrap();
//! assert_eq!(fs.write(fd, b"hello").unwrap(), 5);
//! fs.lseek(fd, 0, Whence::Set).unwrap();
//! let mut buf = [0u8; 5];
//! assert_eq!(fs.read(fd, &mut buf).unwrap(), 5);
//! assert_eq!(&buf, b"hello");
//! fs.close(fd).unwrap();
//! # use loco_posix::Whence;
//! ```

use loco_client::{FileHandle, LocoClient};
use loco_types::{FsError, Perm};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// open(2) flags (subset LocoLib supports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open read-only.
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Open write-only.
    pub const WRONLY: OpenFlags = OpenFlags(1);
    /// Open read-write.
    pub const RDWR: OpenFlags = OpenFlags(2);
    /// Create the file if missing.
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    /// With CREAT: fail if the file exists.
    pub const EXCL: OpenFlags = OpenFlags(0o200);
    /// Truncate to zero length on open.
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);
    /// All writes go to end of file.
    pub const APPEND: OpenFlags = OpenFlags(0o2000);

    /// Whether `other` is set (access mode compared as a value).
    pub fn contains(self, other: OpenFlags) -> bool {
        // Access mode (low 2 bits) is a value, not a bitmask.
        if other.0 <= 2 {
            self.0 & 0b11 == other.0
        } else {
            self.0 & other.0 == other.0
        }
    }

    fn readable(self) -> bool {
        self.contains(OpenFlags::RDONLY) || self.contains(OpenFlags::RDWR)
    }

    fn writable(self) -> bool {
        self.contains(OpenFlags::WRONLY) || self.contains(OpenFlags::RDWR)
    }
}

impl std::ops::BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

/// lseek(2) origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Whence {
    /// Absolute offset.
    Set,
    /// Relative to the current offset.
    Cur,
    /// Relative to end of file.
    End,
}

/// errno-style error codes, mapped from [`FsError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Errno {
    /// No such file or directory.
    ENOENT,
    /// Entry already exists.
    EEXIST,
    /// A path component is not a directory.
    ENOTDIR,
    /// Target is a directory.
    EISDIR,
    /// Directory not empty.
    ENOTEMPTY,
    /// Permission denied.
    EACCES,
    /// Invalid argument.
    EINVAL,
    /// Resource busy.
    EBUSY,
    /// Bad file descriptor.
    EBADF,
    /// I/O error (server unreachable or internal fault).
    EIO,
}

impl From<FsError> for Errno {
    fn from(e: FsError) -> Self {
        match e {
            FsError::NotFound => Errno::ENOENT,
            FsError::AlreadyExists => Errno::EEXIST,
            FsError::NotADirectory => Errno::ENOTDIR,
            FsError::IsADirectory => Errno::EISDIR,
            FsError::NotEmpty => Errno::ENOTEMPTY,
            FsError::PermissionDenied => Errno::EACCES,
            FsError::InvalidArgument => Errno::EINVAL,
            FsError::Busy => Errno::EBUSY,
            FsError::Io(_) => Errno::EIO,
        }
    }
}

/// Result alias with errno-style errors.
pub type Result<T> = std::result::Result<T, Errno>;

/// Shared per-file state: like a kernel inode, all descriptors on the
/// same path observe one size/handle (so O_TRUNC or a write through one
/// fd is visible to the others).
type SharedHandle = Rc<RefCell<FileHandle>>;

struct OpenFile {
    handle: SharedHandle,
    path: String,
    offset: u64,
    flags: OpenFlags,
}

/// stat(2)-shaped attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    /// POSIX permission bits.
    pub mode: u32,
    /// Caller user id (permission checks).
    pub uid: u32,
    /// Caller group id (permission checks).
    pub gid: u32,
    /// File size in bytes.
    pub size: u64,
    /// New access timestamp.
    pub atime: u64,
    /// New modification timestamp.
    pub mtime: u64,
    /// Change timestamp.
    pub ctime: u64,
    /// Whether the node is a directory.
    pub is_dir: bool,
}

/// The LocoLib file-descriptor layer.
pub struct PosixFs {
    client: LocoClient,
    fds: HashMap<i32, OpenFile>,
    /// path → shared handle, for descriptors currently open on it.
    inodes: HashMap<String, SharedHandle>,
    next_fd: i32,
}

impl PosixFs {
    /// Create a new instance with default settings.
    pub fn new(client: LocoClient) -> Self {
        Self {
            client,
            fds: HashMap::new(),
            inodes: HashMap::new(),
            next_fd: 3, // 0..2 conventionally taken
        }
    }

    /// Access the underlying LocoFS client (trace inspection etc.).
    pub fn client_mut(&mut self) -> &mut LocoClient {
        &mut self.client
    }

    /// Number of open descriptors.
    pub fn open_fds(&self) -> usize {
        self.fds.len()
    }

    fn file(&mut self, fd: i32) -> Result<&mut OpenFile> {
        self.fds.get_mut(&fd).ok_or(Errno::EBADF)
    }

    // ---- namespace ---------------------------------------------------

    /// mkdir(2).
    pub fn mkdir(&mut self, path: &str, mode: u32) -> Result<()> {
        self.client.mkdir(path, mode).map_err(Into::into)
    }

    /// rmdir(2).
    pub fn rmdir(&mut self, path: &str) -> Result<()> {
        self.client.rmdir(path).map_err(Into::into)
    }

    /// unlink(2).
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        self.client.unlink(path).map_err(Into::into)
    }

    /// rename(2): tries a file rename, falls back to directory rename.
    pub fn rename(&mut self, old: &str, new: &str) -> Result<()> {
        // Try as a file first, fall back to directory rename.
        match self.client.rename_file(old, new) {
            Ok(()) => Ok(()),
            Err(FsError::NotFound) => self
                .client
                .rename_dir(old, new)
                .map(|_| ())
                .map_err(Into::into),
            Err(e) => Err(e.into()),
        }
    }

    /// readdir(3): list entry names.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>> {
        Ok(self
            .client
            .readdir(path)
            .map_err(Errno::from)?
            .into_iter()
            .map(|(name, _)| name)
            .collect())
    }

    /// stat(2): file attributes, falling back to directory attributes.
    pub fn stat(&mut self, path: &str) -> Result<Stat> {
        match self.client.stat_file(path) {
            Ok(st) => Ok(Stat {
                mode: st.access.mode,
                uid: st.access.uid,
                gid: st.access.gid,
                size: st.content.size,
                atime: st.content.atime,
                mtime: st.content.mtime,
                ctime: st.access.ctime,
                is_dir: false,
            }),
            Err(FsError::NotFound) => {
                let d = self.client.stat_dir(path).map_err(Errno::from)?;
                Ok(Stat {
                    mode: d.mode,
                    uid: d.uid,
                    gid: d.gid,
                    size: 0,
                    atime: 0,
                    mtime: 0,
                    ctime: d.ctime,
                    is_dir: true,
                })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// chmod(2) on a file or directory.
    pub fn chmod(&mut self, path: &str, mode: u32) -> Result<()> {
        match self.client.chmod_file(path, mode) {
            Ok(()) => Ok(()),
            Err(FsError::NotFound) => self.client.chmod_dir(path, mode).map_err(Into::into),
            Err(e) => Err(e.into()),
        }
    }

    /// access(2): permission probe.
    pub fn access(&mut self, path: &str, perm: Perm) -> Result<bool> {
        self.client.access_file(path, perm).map_err(Into::into)
    }

    /// truncate(2): set file size (tail blocks reclaimed lazily).
    pub fn truncate(&mut self, path: &str, size: u64) -> Result<()> {
        self.client.truncate_file(path, size).map_err(Into::into)
    }

    // ---- descriptors ---------------------------------------------------

    /// open(2). Honours CREAT/EXCL/TRUNC/APPEND and the access mode.
    pub fn open(&mut self, path: &str, flags: OpenFlags, mode: u32) -> Result<i32> {
        let want = if flags.writable() {
            Perm::Write
        } else {
            Perm::Read
        };
        let handle = match self.client.open(path, want) {
            Ok(h) => {
                if flags.contains(OpenFlags::CREAT) && flags.contains(OpenFlags::EXCL) {
                    return Err(Errno::EEXIST);
                }
                h
            }
            Err(FsError::NotFound) if flags.contains(OpenFlags::CREAT) => {
                self.client.create(path, mode).map_err(Errno::from)?
            }
            Err(e) => return Err(e.into()),
        };
        // Share one inode state across every descriptor on this path.
        let shared = match self.inodes.get(path) {
            Some(existing) => Rc::clone(existing),
            None => {
                let rc = Rc::new(RefCell::new(handle));
                self.inodes.insert(path.to_string(), Rc::clone(&rc));
                rc
            }
        };
        if flags.contains(OpenFlags::TRUNC) && flags.writable() && shared.borrow().size > 0 {
            self.client.truncate_file(path, 0).map_err(Errno::from)?;
            shared.borrow_mut().size = 0;
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        let offset = if flags.contains(OpenFlags::APPEND) {
            shared.borrow().size
        } else {
            0
        };
        self.fds.insert(
            fd,
            OpenFile {
                handle: shared,
                path: path.to_string(),
                offset,
                flags,
            },
        );
        Ok(fd)
    }

    /// close(2).
    pub fn close(&mut self, fd: i32) -> Result<()> {
        let open = self.fds.remove(&fd).ok_or(Errno::EBADF)?;
        // Drop the inode entry once the last descriptor closes.
        if !self.fds.values().any(|f| f.path == open.path) {
            self.inodes.remove(&open.path);
        }
        Ok(())
    }

    /// read(2): reads at the current offset and advances it.
    pub fn read(&mut self, fd: i32, buf: &mut [u8]) -> Result<usize> {
        let (shared, offset, flags) = {
            let f = self.file(fd)?;
            (Rc::clone(&f.handle), f.offset, f.flags)
        };
        if !flags.readable() {
            return Err(Errno::EACCES);
        }
        let handle = shared.borrow().clone();
        let data = self
            .client
            .read(&handle, offset, buf.len() as u64)
            .map_err(Errno::from)?;
        buf[..data.len()].copy_from_slice(&data);
        self.file(fd)?.offset += data.len() as u64;
        Ok(data.len())
    }

    /// write(2): writes at the current offset (end of file for APPEND)
    /// and advances it.
    pub fn write(&mut self, fd: i32, data: &[u8]) -> Result<usize> {
        let (shared, mut offset, flags) = {
            let f = self.file(fd)?;
            (Rc::clone(&f.handle), f.offset, f.flags)
        };
        if !flags.writable() {
            return Err(Errno::EACCES);
        }
        let mut handle = shared.borrow().clone();
        if flags.contains(OpenFlags::APPEND) {
            offset = handle.size;
        }
        self.client
            .write(&mut handle, offset, data)
            .map_err(Errno::from)?;
        *shared.borrow_mut() = handle;
        self.file(fd)?.offset = offset + data.len() as u64;
        Ok(data.len())
    }

    /// pread(2): positional read, does not move the offset.
    pub fn pread(&mut self, fd: i32, buf: &mut [u8], offset: u64) -> Result<usize> {
        let shared = {
            let f = self.file(fd)?;
            if !f.flags.readable() {
                return Err(Errno::EACCES);
            }
            Rc::clone(&f.handle)
        };
        let handle = shared.borrow().clone();
        let data = self
            .client
            .read(&handle, offset, buf.len() as u64)
            .map_err(Errno::from)?;
        buf[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }

    /// pwrite(2): positional write, does not move the offset.
    pub fn pwrite(&mut self, fd: i32, data: &[u8], offset: u64) -> Result<usize> {
        let shared = {
            let f = self.file(fd)?;
            if !f.flags.writable() {
                return Err(Errno::EACCES);
            }
            Rc::clone(&f.handle)
        };
        let mut handle = shared.borrow().clone();
        self.client
            .write(&mut handle, offset, data)
            .map_err(Errno::from)?;
        *shared.borrow_mut() = handle;
        Ok(data.len())
    }

    /// lseek(2).
    pub fn lseek(&mut self, fd: i32, offset: i64, whence: Whence) -> Result<u64> {
        let f = self.file(fd)?;
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => f.offset as i64,
            Whence::End => f.handle.borrow().size as i64,
        };
        let new = base.checked_add(offset).ok_or(Errno::EINVAL)?;
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        f.offset = new as u64;
        Ok(f.offset)
    }

    /// fstat(2).
    pub fn fstat(&mut self, fd: i32) -> Result<Stat> {
        let path = self.file(fd)?.path.clone();
        self.stat(&path)
    }

    /// ftruncate(2).
    pub fn ftruncate(&mut self, fd: i32, size: u64) -> Result<()> {
        let (path, writable) = {
            let f = self.file(fd)?;
            (f.path.clone(), f.flags.writable())
        };
        if !writable {
            return Err(Errno::EACCES);
        }
        self.client
            .truncate_file(&path, size)
            .map_err(Errno::from)?;
        self.file(fd)?.handle.borrow_mut().size = size;
        Ok(())
    }

    /// Run deferred block reclamation.
    pub fn sync(&mut self) {
        self.client.gc_flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_client::{LocoCluster, LocoConfig};

    fn fs() -> PosixFs {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        PosixFs::new(cluster.client())
    }

    #[test]
    fn open_create_write_read_close() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs
            .open("/d/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        assert_eq!(fs.write(fd, b"hello world").unwrap(), 11);
        assert_eq!(fs.lseek(fd, 0, Whence::Set).unwrap(), 0);
        let mut buf = [0u8; 5];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        // Offset advanced.
        let mut buf2 = [0u8; 6];
        assert_eq!(fs.read(fd, &mut buf2).unwrap(), 6);
        assert_eq!(&buf2, b" world");
        fs.close(fd).unwrap();
        assert_eq!(fs.close(fd), Err(Errno::EBADF));
    }

    #[test]
    fn excl_and_missing_semantics() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        assert_eq!(fs.open("/d/f", OpenFlags::RDONLY, 0), Err(Errno::ENOENT));
        let fd = fs
            .open(
                "/d/f",
                OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::EXCL,
                0o644,
            )
            .unwrap();
        fs.close(fd).unwrap();
        assert_eq!(
            fs.open(
                "/d/f",
                OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::EXCL,
                0o644
            ),
            Err(Errno::EEXIST)
        );
    }

    #[test]
    fn access_mode_enforcement() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs
            .open("/d/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
            .unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(fd, &mut buf), Err(Errno::EACCES));
        fs.write(fd, b"data").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/d/f", OpenFlags::RDONLY, 0).unwrap();
        assert_eq!(fs.write(fd, b"nope"), Err(Errno::EACCES));
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 4);
    }

    #[test]
    fn trunc_and_append() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs
            .open("/d/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        fs.write(fd, b"0123456789").unwrap();
        fs.close(fd).unwrap();

        // O_TRUNC empties the file.
        let fd = fs
            .open("/d/f", OpenFlags::RDWR | OpenFlags::TRUNC, 0)
            .unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, 0);
        fs.write(fd, b"ab").unwrap();
        fs.close(fd).unwrap();

        // O_APPEND writes at EOF regardless of seeks.
        let fd = fs
            .open("/d/f", OpenFlags::RDWR | OpenFlags::APPEND, 0)
            .unwrap();
        fs.lseek(fd, 0, Whence::Set).unwrap();
        fs.write(fd, b"cd").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.pread(fd, &mut buf, 0).unwrap(), 4);
        assert_eq!(&buf, b"abcd");
        fs.close(fd).unwrap();
    }

    #[test]
    fn pread_pwrite_do_not_move_offset() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs
            .open("/d/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        fs.write(fd, b"XXXXXX").unwrap();
        fs.pwrite(fd, b"ab", 1).unwrap();
        assert_eq!(fs.lseek(fd, 0, Whence::Cur).unwrap(), 6, "offset untouched");
        let mut buf = [0u8; 6];
        fs.pread(fd, &mut buf, 0).unwrap();
        assert_eq!(&buf, b"XabXXX");
    }

    #[test]
    fn lseek_variants_and_bounds() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs
            .open("/d/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        fs.write(fd, b"123456").unwrap();
        assert_eq!(fs.lseek(fd, -2, Whence::End).unwrap(), 4);
        assert_eq!(fs.lseek(fd, 1, Whence::Cur).unwrap(), 5);
        assert_eq!(fs.lseek(fd, -10, Whence::Set), Err(Errno::EINVAL));
        // Seeking past EOF is allowed; reads there are empty.
        assert_eq!(fs.lseek(fd, 100, Whence::Set).unwrap(), 100);
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 0);
    }

    #[test]
    fn stat_and_fstat_and_chmod() {
        let mut fs = fs();
        fs.mkdir("/d", 0o750).unwrap();
        let st = fs.stat("/d").unwrap();
        assert!(st.is_dir);
        assert_eq!(st.mode, 0o750);
        let fd = fs
            .open("/d/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
            .unwrap();
        fs.write(fd, b"abc").unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, 3);
        fs.chmod("/d/f", 0o600).unwrap();
        assert_eq!(fs.stat("/d/f").unwrap().mode, 0o600);
        assert_eq!(fs.stat("/nope"), Err(Errno::ENOENT));
    }

    #[test]
    fn rename_dispatches_file_vs_dir() {
        let mut fs = fs();
        fs.mkdir("/a", 0o755).unwrap();
        fs.mkdir("/b", 0o755).unwrap();
        let fd = fs
            .open("/a/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
            .unwrap();
        fs.close(fd).unwrap();
        fs.rename("/a/f", "/b/g").unwrap();
        assert!(fs.stat("/b/g").is_ok());
        fs.rename("/a", "/a2").unwrap();
        assert!(fs.stat("/a2").unwrap().is_dir);
    }

    #[test]
    fn ftruncate_updates_size() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        let fd = fs
            .open("/d/f", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        fs.write(fd, &[7u8; 100]).unwrap();
        fs.ftruncate(fd, 10).unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, 10);
        fs.sync();
    }

    #[test]
    fn readdir_names() {
        let mut fs = fs();
        fs.mkdir("/d", 0o755).unwrap();
        fs.mkdir("/d/sub", 0o755).unwrap();
        let fd = fs
            .open("/d/f", OpenFlags::WRONLY | OpenFlags::CREAT, 0o644)
            .unwrap();
        fs.close(fd).unwrap();
        let mut names = fs.readdir("/d").unwrap();
        names.sort();
        assert_eq!(names, vec!["f", "sub"]);
    }

    #[test]
    fn flags_matrix() {
        assert!(OpenFlags::RDWR.readable() && OpenFlags::RDWR.writable());
        assert!(OpenFlags::RDONLY.readable() && !OpenFlags::RDONLY.writable());
        assert!(!OpenFlags::WRONLY.readable() && OpenFlags::WRONLY.writable());
        let f = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::APPEND;
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.contains(OpenFlags::APPEND));
        assert!(!f.contains(OpenFlags::TRUNC));
        assert!(f.contains(OpenFlags::WRONLY));
        assert!(!f.contains(OpenFlags::RDWR));
    }
}
