//! The LocoLib client: every filesystem operation with the paper's
//! communication pattern.
//!
//! Operation → RPC mapping (cache hit case in brackets):
//!
//! | op | visits |
//! |---|---|
//! | mkdir, rmdir, chmod/chown(dir), rename(dir) | DMS |
//! | readdir | DMS + every FMS (dirent lists are per-server) |
//! | rmdir emptiness check | every FMS + DMS |
//! | create, open, unlink, stat(file), chmod/chown/access/utimens/truncate(file) | [0 or] DMS + 1 FMS |
//! | write/read data | object store, one visit per block batch + 1 FMS |
//! | rename(file) | [0 or] DMS + source FMS + destination FMS |
//!
//! Unlink/truncate block reclamation is deferred (queued and executed
//! outside the op trace), matching how distributed file systems GC
//! object data asynchronously; `gc_flush` runs the queue explicitly.

use crate::cache::DirCache;
use crate::{LocoCluster, LocoConfig};
use loco_dms::{DmsRequest, DmsResponse};
use loco_fms::{FmsRequest, FmsResponse};
use loco_net::{CallCtx, Endpoint, JobTrace, ServerId};
use loco_obs::{
    Counter, FlightRecorder, LogHistogram, MetricsRegistry, OpRecord, Tracer, Watchdog,
};
use loco_ostore::{OstoreRequest, OstoreResponse};
use loco_sim::time::Nanos;
use loco_types::meta::FileStat;
use loco_types::{
    normalize, parent, path, DirInode, DirentKind, FileContent, FsError, FsResult, HashRing, Perm,
    Uuid,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// An open file: everything needed to reach its metadata and data
/// without further lookups.
#[derive(Clone, Debug)]
pub struct FileHandle {
    /// Uuid of the parent directory (placement-key half).
    pub dir_uuid: Uuid,
    /// File name within the directory (placement-key half).
    pub name: String,
    /// Object uuid (`sid` + `fid`).
    pub uuid: Uuid,
    /// File size in bytes.
    pub size: u64,
    /// Data block size in bytes.
    pub bsize: u32,
}

/// Deferred block-reclamation work.
#[derive(Clone, Debug)]
enum GcItem {
    Remove(Uuid),
    Truncate(Uuid, u64),
}

/// The observability stack a client reports into: shared with the
/// cluster wiring that created it (and, in-process, with the servers).
pub struct ObsWiring {
    /// Metrics registry for op-latency histograms and cache counters.
    pub registry: Arc<MetricsRegistry>,
    /// Head-based span-trace sampler.
    pub tracer: Arc<Tracer>,
    /// Flight recorder keeping the slowest sampled op span trees.
    pub flight: Arc<FlightRecorder>,
    /// Tail-anomaly watchdog.
    pub watchdog: Arc<Watchdog>,
}

/// A DMS endpoint of any transport (sim, thread, or TCP).
pub type DmsEndpoint = Arc<dyn Endpoint<DmsRequest, DmsResponse>>;
/// An FMS endpoint of any transport.
pub type FmsEndpoint = Arc<dyn Endpoint<FmsRequest, FmsResponse>>;
/// An object-store endpoint of any transport.
pub type OstEndpoint = Arc<dyn Endpoint<OstoreRequest, OstoreResponse>>;

/// A LocoFS client (one application process in the paper's terms).
/// Holds type-erased endpoints, so the same client logic runs over
/// in-process simulated servers, server threads, or TCP sockets.
pub struct LocoClient {
    cfg: LocoConfig,
    dms: Vec<DmsEndpoint>,
    fms: Vec<FmsEndpoint>,
    ost: Vec<OstEndpoint>,
    ring: HashRing,
    cache: DirCache,
    ctx: CallCtx,
    last_trace: JobTrace,
    /// Client virtual clock: advanced by each op's unloaded latency;
    /// drives lease expiry.
    clock: Nanos,
    contacted: HashSet<ServerId>,
    gc_queue: Vec<GcItem>,
    /// Cluster-wide metrics registry; per-POSIX-op end-to-end latency
    /// histograms are recorded here from `finish`.
    registry: Arc<MetricsRegistry>,
    /// Per-op histogram cache, avoiding the registry lock on the hot
    /// path (one lookup per op name, ever).
    op_hists: HashMap<&'static str, Arc<LogHistogram>>,
    m_cache_hits: Arc<Counter>,
    m_cache_misses: Arc<Counter>,
    m_cache_expired: Arc<Counter>,
    /// Head-based sampler deciding at `begin` whether this op collects
    /// a span tree (complete-or-absent; no partial traces).
    tracer: Arc<Tracer>,
    /// Where sampled completed ops go (K slowest per op class).
    flight: Arc<FlightRecorder>,
    /// Tail-anomaly detector fed from `finish`.
    watchdog: Arc<Watchdog>,
    /// Virtual-clock timestamp of the op in flight (trace timeline).
    op_start: Nanos,
    /// Allocation counters at `begin`, taken only for sampled ops so
    /// the unsampled path stays two branches with no TLS reads.
    op_alloc0: Option<loco_obs::AllocSnapshot>,
    /// Per-op wall-clock budget (`LOCO_OP_DEADLINE_MS`), stamped onto
    /// the call context at `begin` so every RPC the op fans out to
    /// carries its remaining share and servers can drop it once stale.
    op_deadline: Option<std::time::Duration>,
    /// Caller user id (permission checks).
    pub uid: u32,
    /// Caller group id (permission checks).
    pub gid: u32,
}

impl LocoClient {
    /// Create a new instance with default settings.
    pub fn new(cluster: &LocoCluster, uid: u32, gid: u32) -> Self {
        Self::with_endpoints(
            cluster.config.clone(),
            cluster
                .dms
                .iter()
                .map(|e| Arc::new(e.clone()) as DmsEndpoint)
                .collect(),
            cluster
                .fms
                .iter()
                .map(|e| Arc::new(e.clone()) as FmsEndpoint)
                .collect(),
            cluster
                .ost
                .iter()
                .map(|e| Arc::new(e.clone()) as OstEndpoint)
                .collect(),
            ObsWiring {
                registry: cluster.registry.clone(),
                tracer: cluster.tracer.clone(),
                flight: cluster.flight.clone(),
                watchdog: cluster.watchdog.clone(),
            },
            uid,
            gid,
        )
    }

    /// Build a client over arbitrary transport endpoints — how the
    /// remote/TCP cluster wiring hands out clients. `cfg.num_*` must
    /// match the endpoint vector lengths.
    pub fn with_endpoints(
        cfg: LocoConfig,
        dms: Vec<DmsEndpoint>,
        fms: Vec<FmsEndpoint>,
        ost: Vec<OstEndpoint>,
        obs: ObsWiring,
        uid: u32,
        gid: u32,
    ) -> Self {
        let ring = HashRing::new(fms.len() as u16);
        Self {
            cache: DirCache::new(cfg.lease, 64 * 1024),
            cfg,
            dms,
            fms,
            ost,
            ring,
            ctx: CallCtx::new(),
            last_trace: JobTrace::default(),
            clock: 0,
            contacted: HashSet::new(),
            gc_queue: Vec::new(),
            op_hists: HashMap::new(),
            m_cache_hits: obs.registry.counter("loco_client_cache_hits_total", &[]),
            m_cache_misses: obs.registry.counter("loco_client_cache_misses_total", &[]),
            m_cache_expired: obs
                .registry
                .counter("loco_client_cache_expired_leases_total", &[]),
            registry: obs.registry,
            tracer: obs.tracer,
            flight: obs.flight,
            watchdog: obs.watchdog,
            op_start: 0,
            op_alloc0: None,
            op_deadline: std::env::var("LOCO_OP_DEADLINE_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(std::time::Duration::from_millis),
            uid,
            gid,
        }
    }

    // ----- op/trace bookkeeping -------------------------------------

    fn begin(&mut self) {
        debug_assert_eq!(self.ctx.round_trips(), 0, "nested op");
        self.op_start = self.clock;
        // The ctx is reused across ops, so the budget is re-armed (or
        // cleared) here rather than inherited from the previous op.
        match self.op_deadline {
            Some(d) => self.ctx.set_deadline(d),
            None => self.ctx.clear_deadline(),
        }
        // Head-based sampling: the decision is made once here, so a
        // sampled op carries a complete span tree and an unsampled op
        // costs a single branch.
        if let Some(tc) = self.tracer.begin_op() {
            self.ctx.start_trace(tc.trace_id);
            self.watchdog.begin_inflight(tc.trace_id, self.clock);
            self.op_alloc0 = Some(loco_obs::alloc::snapshot());
        }
        self.ctx.charge_client(self.cfg.client_work);
    }

    fn finish(&mut self, op: &'static str) {
        // Delta first, before trace post-processing allocates, so a
        // sampled op is charged only the heap traffic of its own work.
        let client_alloc = self.op_alloc0.take().map(|s| s.delta());
        let mut trace = self.ctx.take_trace();
        // Per-op client overhead grows with the number of server
        // connections beyond the baseline pair (DMS + one FMS) — the
        // effect §4.2.1 blames for touch latency rising with server
        // count. Only ops that reached the network pay it; cache-hit
        // ops are purely local.
        if !trace.visits.is_empty() {
            let extra_conns = self.contacted.len().saturating_sub(2) as Nanos;
            trace.client_work += self.cfg.conn_poll * extra_conns;
        }
        let latency = trace.unloaded_latency(self.cfg.rtt);
        let registry = &self.registry;
        let hist = self
            .op_hists
            .entry(op)
            .or_insert_with(|| registry.histogram("loco_client_op_latency_nanos", &[("op", op)]))
            .clone();
        if let Some(t) = self.ctx.take_op_trace() {
            let mut rec = OpRecord::from_trace(
                *t,
                op,
                self.op_start,
                latency,
                trace.client_work,
                self.cfg.rtt,
            );
            if let Some((allocs, bytes)) = client_alloc {
                rec.allocs = allocs;
                rec.alloc_bytes = bytes;
                self.registry
                    .histogram("loco_client_alloc_per_op", &[("op", op)])
                    .record(allocs);
                self.registry
                    .histogram("loco_client_alloc_bytes_per_op", &[("op", op)])
                    .record(bytes);
            }
            self.watchdog.end_inflight(rec.trace_id);
            // Judge against the histogram *before* this sample lands in
            // it — an outlier must not raise its own bar.
            self.watchdog.complete(&hist, &rec);
            self.flight.offer(rec);
        }
        hist.record(latency);
        self.clock += latency;
        self.last_trace = trace;
    }

    /// Replace one FMS endpoint in place. Fault-injection and chaos
    /// tests use this to point an existing client (warm cache, live
    /// handles) at a replacement server for the same ring slot.
    pub fn swap_fms_endpoint(&mut self, idx: usize, ep: FmsEndpoint) {
        self.fms[idx] = ep;
    }

    /// The sampler deciding which ops collect span traces.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The flight recorder holding the slowest sampled op span trees.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// The tail-anomaly watchdog fed by this client's completed ops.
    pub fn watchdog(&self) -> &Arc<Watchdog> {
        &self.watchdog
    }

    /// The metrics registry shared with the cluster's servers.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Trace of the most recently completed operation.
    pub fn take_trace(&mut self) -> JobTrace {
        std::mem::take(&mut self.last_trace)
    }

    /// Replace the stored last-op trace. Used by adapters that fuse a
    /// multi-call sequence (open + write + setsize) into one logical
    /// operation for the benchmark driver.
    pub fn set_last_trace(&mut self, trace: JobTrace) {
        self.last_trace = trace;
    }

    /// Client virtual time elapsed so far.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// Advance the client's virtual clock (used by tests/benches to
    /// force lease expiry or to model think time).
    pub fn advance_clock(&mut self, delta: Nanos) {
        self.clock += delta;
    }

    /// (hits, misses) of the d-inode cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// d-inode cache misses caused by an expired lease (subset of the
    /// miss count).
    pub fn cache_expired(&self) -> u64 {
        self.cache.expired()
    }

    /// Network round-trip time this client charges per visit.
    pub fn rtt(&self) -> Nanos {
        self.cfg.rtt
    }

    /// Override the RTT (0 = co-located client and servers, Fig 10).
    pub fn set_rtt(&mut self, rtt: Nanos) {
        self.cfg.rtt = rtt;
    }

    /// Discard the d-inode cache (fresh-mount semantics).
    pub fn drop_caches(&mut self) {
        self.cache = DirCache::new(self.cfg.lease, 64 * 1024);
    }

    // ----- RPC helpers ----------------------------------------------

    /// Shard holding a directory path (always 0 in the paper's design).
    fn dms_of(&self, path: &str) -> usize {
        if self.dms.len() == 1 {
            return 0;
        }
        // FNV-1a + finalizer, same spread properties as the FMS ring.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in path.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % self.dms.len() as u64) as usize
    }

    fn dms_call_at(&mut self, idx: usize, req: DmsRequest) -> FsResult<DmsResponse> {
        if self.dms[idx].is_down() {
            return Err(FsError::Io(format!("DMS shard {idx} unreachable")));
        }
        self.contacted.insert(self.dms[idx].id());
        self.dms[idx]
            .try_call(&mut self.ctx, req)
            .map_err(|e| FsError::Io(format!("DMS shard {idx}: {e}")))
    }

    fn dms_call(&mut self, req: DmsRequest) -> FsResult<DmsResponse> {
        self.dms_call_at(0, req)
    }

    fn fms_idx(&self, dir_uuid: Uuid, name: &str) -> usize {
        self.ring.place_file(dir_uuid.raw(), name) as usize
    }

    fn fms_call(&mut self, idx: usize, req: FmsRequest) -> FsResult<FmsResponse> {
        if self.fms[idx].is_down() {
            return Err(FsError::Io(format!("FMS {idx} unreachable")));
        }
        self.contacted.insert(self.fms[idx].id());
        self.fms[idx]
            .try_call(&mut self.ctx, req)
            .map_err(|e| FsError::Io(format!("FMS {idx}: {e}")))
    }

    /// Object-store server for block `blk` of object `uuid`: blocks
    /// stripe round-robin across OSTs from a per-object base offset, so
    /// large files engage every data server (Ceph/Lustre-style striping).
    fn ost_of(&self, uuid: Uuid, blk: u64) -> usize {
        ((uuid.raw().wrapping_add(blk)) % self.ost.len() as u64) as usize
    }

    fn ost_call(&mut self, idx: usize, req: OstoreRequest) -> FsResult<OstoreResponse> {
        if self.ost[idx].is_down() {
            return Err(FsError::Io(format!("object store {idx} unreachable")));
        }
        self.contacted.insert(self.ost[idx].id());
        self.ost[idx]
            .try_call(&mut self.ctx, req)
            .map_err(|e| FsError::Io(format!("object store {idx}: {e}")))
    }

    /// Cache lookup that mirrors the outcome into the metrics registry
    /// (hit/miss/expired-lease counters).
    fn cache_get(&mut self, path: &str, now: Nanos) -> Option<DirInode> {
        let expired_before = self.cache.expired();
        let got = self.cache.get(path, now);
        if got.is_some() {
            self.m_cache_hits.inc();
            self.ctx.annotate("cache", "hit");
        } else {
            self.m_cache_misses.inc();
            if self.cache.expired() > expired_before {
                self.m_cache_expired.inc();
                self.ctx.annotate("cache", "expired");
            } else {
                self.ctx.annotate("cache", "miss");
            }
        }
        got
    }

    /// Resolve a directory path to its d-inode: client cache when
    /// enabled and fresh, otherwise one DMS RPC (with server-side
    /// ancestor ACL walk), refreshing the cache.
    fn resolve_dir(&mut self, dir_path: &str) -> FsResult<DirInode> {
        if self.cfg.cache_enabled {
            if let Some(d) = self.cache_get(dir_path, self.clock) {
                self.ctx.charge_client(300);
                return Ok(d);
            }
        }
        if self.dms.len() > 1 {
            return self.resolve_dir_sharded(dir_path);
        }
        let resp = self.dms_call(DmsRequest::StatDir {
            path: dir_path.to_string(),
            uid: self.uid,
            gid: self.gid,
        })?;
        let DmsResponse::Dir(res) = resp else {
            unreachable!("StatDir returns Dir")
        };
        let inode = res?;
        if self.cfg.cache_enabled {
            self.cache.put(dir_path, inode, self.clock);
        }
        Ok(inode)
    }

    /// Sharded-DMS ablation: the single-RPC ancestor ACL walk is gone —
    /// each uncached path component is a lookup RPC to the shard that
    /// owns it (the "long locating latency" of the paper's Fig 2),
    /// with the exec check done client-side per component.
    fn resolve_dir_sharded(&mut self, dir_path: &str) -> FsResult<DirInode> {
        let mut chain = loco_types::path::ancestors(dir_path);
        chain.push(dir_path.to_string());
        let mut result = None;
        for p in chain {
            let inode = if self.cfg.cache_enabled {
                self.cache_get(&p, self.clock)
            } else {
                None
            };
            let inode = match inode {
                Some(i) => i,
                None => {
                    let idx = self.dms_of(&p);
                    let resp = self.dms_call_at(idx, DmsRequest::GetDir { path: p.clone() })?;
                    let DmsResponse::Dir(res) = resp else {
                        unreachable!()
                    };
                    let i = res?;
                    if self.cfg.cache_enabled {
                        self.cache.put(&p, i, self.clock);
                    }
                    i
                }
            };
            if p != dir_path {
                self.require(&inode, Perm::Exec)?;
            }
            result = Some(inode);
        }
        Ok(result.expect("chain nonempty"))
    }

    /// Resolve the parent directory of `file_path`, returning
    /// `(parent_inode, file_name)`. Enforces exec (search) permission on
    /// the parent — the DMS walk covers the ancestors, and this covers
    /// the parent itself, including on cache hits.
    fn resolve_parent<'a>(&mut self, file_path: &'a str) -> FsResult<(DirInode, &'a str)> {
        let dir = parent(file_path).ok_or(FsError::InvalidArgument)?;
        let inode = self.resolve_dir(dir)?;
        self.require(&inode, Perm::Exec)?;
        Ok((inode, path::basename(file_path)))
    }

    /// Permission check against an already-resolved d-inode (client-side
    /// half of the ACL protocol; costs no RPC).
    fn require(&self, dir: &DirInode, perm: Perm) -> FsResult<()> {
        if loco_types::acl::may_access(dir.mode, dir.uid, dir.gid, self.uid, self.gid, perm) {
            Ok(())
        } else {
            Err(FsError::PermissionDenied)
        }
    }

    // ----- directory operations --------------------------------------

    /// Create a directory.
    pub fn mkdir(&mut self, raw_path: &str, mode: u32) -> FsResult<()> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        if self.dms.len() > 1 {
            let res = self.mkdir_sharded(&p, mode);
            self.finish("mkdir");
            return res;
        }
        let ts = self.clock;
        let (uid, gid) = (self.uid, self.gid);
        let res = (|| {
            let resp = self.dms_call(DmsRequest::Mkdir {
                path: p,
                mode,
                uid,
                gid,
                ts,
            })?;
            let DmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r.map(|_| ())
        })();
        self.finish("mkdir");
        res
    }

    /// Sharded-DMS mkdir: d-inode insert at the directory's shard plus a
    /// dirent append at the parent's shard — the cross-server dependency
    /// the single-DMS design avoids.
    fn mkdir_sharded(&mut self, p: &str, mode: u32) -> FsResult<()> {
        let dir = parent(p).ok_or(FsError::AlreadyExists)?;
        let parent_inode = self.resolve_dir(dir)?;
        self.require(&parent_inode, Perm::Write)?;
        let ts = self.clock;
        let (uid, gid) = (self.uid, self.gid);
        let idx = self.dms_of(p);
        let resp = self.dms_call_at(
            idx,
            DmsRequest::MkdirLocal {
                path: p.to_string(),
                mode,
                uid,
                gid,
                ts,
            },
        )?;
        let DmsResponse::Done(res) = resp else {
            unreachable!()
        };
        res?;
        // Fetch the new uuid for the parent dirent (same RPC in a real
        // implementation; modeled as part of the MkdirLocal response by
        // reading it back locally at zero extra round trip is not
        // possible here, so the dirent carries a lookup).
        let resp = self.dms_call_at(
            idx,
            DmsRequest::GetDir {
                path: p.to_string(),
            },
        )?;
        let DmsResponse::Dir(Ok(inode)) = resp else {
            return Err(FsError::Io("mkdir readback failed".into()));
        };
        let pidx = self.dms_of(dir);
        let resp = self.dms_call_at(
            pidx,
            DmsRequest::AddDirent {
                dir_uuid: parent_inode.uuid,
                name: loco_types::basename(p).to_string(),
                child_uuid: inode.uuid,
            },
        )?;
        let DmsResponse::Done(res) = resp else {
            unreachable!()
        };
        res.map(|_| ())
    }

    /// Remove an empty directory. Checks every FMS for leftover files
    /// first (the paper's explanation for rmdir's poor scaling).
    pub fn rmdir(&mut self, raw_path: &str) -> FsResult<()> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let inode = self.resolve_dir(&p)?;
            for i in 0..self.fms.len() {
                let resp = self.fms_call(
                    i,
                    FmsRequest::CountFiles {
                        dir_uuid: inode.uuid,
                    },
                )?;
                let FmsResponse::Count(n) = resp else {
                    unreachable!()
                };
                if n > 0 {
                    return Err(FsError::NotEmpty);
                }
            }
            if self.dms.len() > 1 {
                let idx = self.dms_of(&p);
                let resp = self.dms_call_at(idx, DmsRequest::RmdirLocal { path: p.clone() })?;
                let DmsResponse::Done(r) = resp else {
                    unreachable!()
                };
                r?;
                let dir = parent(&p).expect("non-root");
                let parent_inode = self.resolve_dir(dir)?;
                let pidx = self.dms_of(dir);
                let resp = self.dms_call_at(
                    pidx,
                    DmsRequest::RemoveDirent {
                        dir_uuid: parent_inode.uuid,
                        name: loco_types::basename(&p).to_string(),
                    },
                )?;
                let DmsResponse::Done(r) = resp else {
                    unreachable!()
                };
                return r.map(|_| ());
            }
            let resp = self.dms_call(DmsRequest::Rmdir {
                path: p.clone(),
                uid: self.uid,
                gid: self.gid,
            })?;
            let DmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r.map(|_| ())
        })();
        self.cache.invalidate(&p);
        self.finish("rmdir");
        res
    }

    /// List a directory: subdirectories from the DMS, files from every
    /// FMS (per-server dirent lists, §3.2.1).
    pub fn readdir(&mut self, raw_path: &str) -> FsResult<Vec<(String, DirentKind)>> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let inode = self.resolve_dir(&p)?;
            let mut out = Vec::new();
            let shard = self.dms_of(&p);
            let resp = self.dms_call_at(
                shard,
                DmsRequest::ReaddirSubdirs {
                    dir_uuid: inode.uuid,
                },
            )?;
            let DmsResponse::Dirents(subdirs) = resp else {
                unreachable!()
            };
            for (name, _) in subdirs? {
                out.push((name, DirentKind::Dir));
            }
            for i in 0..self.fms.len() {
                let resp = self.fms_call(
                    i,
                    FmsRequest::ListFiles {
                        dir_uuid: inode.uuid,
                    },
                )?;
                let FmsResponse::Names(names) = resp else {
                    unreachable!()
                };
                for (name, _) in names {
                    out.push((name, DirentKind::File));
                }
            }
            Ok(out)
        })();
        self.finish("readdir");
        res
    }

    /// readdirplus: list a directory together with every file's full
    /// attributes — one RPC to the DMS plus one per FMS, independent of
    /// entry count. The batched alternative to a per-file stat storm
    /// (an extension beyond the paper's API; dirents and records are
    /// co-located per server, so the batch is a local join).
    pub fn readdir_plus(
        &mut self,
        raw_path: &str,
    ) -> FsResult<Vec<(String, loco_types::meta::FileStat)>> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let inode = self.resolve_dir(&p)?;
            let mut out = Vec::new();
            for i in 0..self.fms.len() {
                let resp = self.fms_call(
                    i,
                    FmsRequest::ListFilesPlus {
                        dir_uuid: inode.uuid,
                    },
                )?;
                let FmsResponse::NamesPlus(rows) = resp else {
                    unreachable!()
                };
                for (name, access, content) in rows {
                    out.push((name, FileStat { access, content }));
                }
            }
            Ok(out)
        })();
        self.finish("readdir_plus");
        res
    }

    /// stat(2) on a directory.
    pub fn stat_dir(&mut self, raw_path: &str) -> FsResult<DirInode> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = self.resolve_dir(&p);
        self.finish("stat_dir");
        res
    }

    /// chmod on a directory.
    pub fn chmod_dir(&mut self, raw_path: &str, mode: u32) -> FsResult<()> {
        self.set_dir_attr(raw_path, Some(mode), None)
    }

    /// chown on a directory.
    pub fn chown_dir(&mut self, raw_path: &str, uid: u32, gid: u32) -> FsResult<()> {
        self.set_dir_attr(raw_path, None, Some((uid, gid)))
    }

    fn set_dir_attr(
        &mut self,
        raw_path: &str,
        new_mode: Option<u32>,
        new_owner: Option<(u32, u32)>,
    ) -> FsResult<()> {
        let p = normalize(raw_path)?;
        if self.dms.len() > 1 {
            return Err(FsError::Busy); // not supported in the ablation
        }
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let ts = self.clock;
        let (uid, gid) = (self.uid, self.gid);
        let res = (|| {
            let resp = self.dms_call(DmsRequest::SetDirAttr {
                path: p.clone(),
                uid,
                gid,
                new_mode,
                new_owner,
                ts,
            })?;
            let DmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r.map(|_| ())
        })();
        self.cache.invalidate(&p);
        self.finish("setattr_dir");
        res
    }

    // ----- file metadata operations ----------------------------------

    /// Create (touch) a file.
    pub fn create(&mut self, raw_path: &str, mode: u32) -> FsResult<FileHandle> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            self.require(&dir, Perm::Write)?;
            let idx = self.fms_idx(dir.uuid, name);
            let ts = self.clock;
            let resp = self.fms_call(
                idx,
                FmsRequest::Create {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                    mode,
                    uid: self.uid,
                    gid: self.gid,
                    ts,
                },
            )?;
            let FmsResponse::Created(r) = resp else {
                unreachable!()
            };
            let uuid = r?;
            Ok(FileHandle {
                dir_uuid: dir.uuid,
                name: name.to_string(),
                uuid,
                size: 0,
                bsize: self.cfg.block_size,
            })
        })();
        self.finish("create");
        res
    }

    /// Open a file, checking `perm` and fetching the content record.
    pub fn open(&mut self, raw_path: &str, perm: Perm) -> FsResult<FileHandle> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            let idx = self.fms_idx(dir.uuid, name);
            let resp = self.fms_call(
                idx,
                FmsRequest::Open {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                    uid: self.uid,
                    gid: self.gid,
                    perm,
                    with_content: true,
                },
            )?;
            let FmsResponse::Opened(r) = resp else {
                unreachable!()
            };
            let (_, content) = r?;
            let c: FileContent = content.expect("with_content");
            Ok(FileHandle {
                dir_uuid: dir.uuid,
                name: name.to_string(),
                uuid: c.uuid,
                size: c.size,
                bsize: c.bsize,
            })
        })();
        self.finish("open");
        res
    }

    /// Remove (rm) a file. Block reclamation is queued for deferred GC.
    pub fn unlink(&mut self, raw_path: &str) -> FsResult<()> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            self.require(&dir, Perm::Write)?;
            let idx = self.fms_idx(dir.uuid, name);
            let resp = self.fms_call(
                idx,
                FmsRequest::Remove {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                },
            )?;
            let FmsResponse::Removed(r) = resp else {
                unreachable!()
            };
            let uuid = r?;
            self.gc_queue.push(GcItem::Remove(uuid));
            Ok(())
        })();
        self.finish("unlink");
        res
    }

    /// stat(2) on a file: both metadata parts.
    pub fn stat_file(&mut self, raw_path: &str) -> FsResult<FileStat> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            let idx = self.fms_idx(dir.uuid, name);
            let resp = self.fms_call(
                idx,
                FmsRequest::Stat {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                },
            )?;
            let FmsResponse::Statted(r) = resp else {
                unreachable!()
            };
            let (access, content) = r?;
            Ok(FileStat { access, content })
        })();
        self.finish("stat");
        res
    }

    /// access(2) on a file.
    pub fn access_file(&mut self, raw_path: &str, perm: Perm) -> FsResult<bool> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            let idx = self.fms_idx(dir.uuid, name);
            let resp = self.fms_call(
                idx,
                FmsRequest::Access {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                    uid: self.uid,
                    gid: self.gid,
                    perm,
                },
            )?;
            let FmsResponse::Bool(ok) = resp else {
                unreachable!()
            };
            Ok(ok)
        })();
        self.finish("access");
        res
    }

    /// chmod on a file (access part only, Table 1).
    pub fn chmod_file(&mut self, raw_path: &str, mode: u32) -> FsResult<()> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            let idx = self.fms_idx(dir.uuid, name);
            let ts = self.clock;
            let resp = self.fms_call(
                idx,
                FmsRequest::Chmod {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                    uid: self.uid,
                    mode,
                    ts,
                },
            )?;
            let FmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r
        })();
        self.finish("chmod");
        res
    }

    /// chown on a file.
    pub fn chown_file(&mut self, raw_path: &str, uid: u32, gid: u32) -> FsResult<()> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            let idx = self.fms_idx(dir.uuid, name);
            let ts = self.clock;
            let resp = self.fms_call(
                idx,
                FmsRequest::Chown {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                    uid: self.uid,
                    new_uid: uid,
                    new_gid: gid,
                    ts,
                },
            )?;
            let FmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r
        })();
        self.finish("chown");
        res
    }

    /// utimens on a file (content part only).
    pub fn utimens_file(&mut self, raw_path: &str, atime: u64, mtime: u64) -> FsResult<()> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            let idx = self.fms_idx(dir.uuid, name);
            let resp = self.fms_call(
                idx,
                FmsRequest::Utimens {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                    atime,
                    mtime,
                },
            )?;
            let FmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r
        })();
        self.finish("utimens");
        res
    }

    /// truncate(2): content-part size update; tail blocks are queued
    /// for deferred reclamation.
    pub fn truncate_file(&mut self, raw_path: &str, size: u64) -> FsResult<()> {
        let p = normalize(raw_path)?;
        self.begin();
        self.ctx.annotate("path", p.as_str());
        let res = (|| {
            let (dir, name) = self.resolve_parent(&p)?;
            let idx = self.fms_idx(dir.uuid, name);
            let ts = self.clock;
            // One content read is needed to learn the uuid for GC; the
            // size/mtime update itself is the in-place field poke.
            let resp = self.fms_call(
                idx,
                FmsRequest::GetContent {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                },
            )?;
            let FmsResponse::Content(c) = resp else {
                unreachable!()
            };
            let c = c?;
            let resp = self.fms_call(
                idx,
                FmsRequest::SetSize {
                    dir_uuid: dir.uuid,
                    name: name.to_string(),
                    size,
                    ts,
                },
            )?;
            let FmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r?;
            let keep = size.div_ceil(c.bsize as u64);
            self.gc_queue.push(GcItem::Truncate(c.uuid, keep));
            Ok(())
        })();
        self.finish("truncate");
        res
    }

    /// Rename a file: relocate its metadata record (key changes), leave
    /// its data blocks alone (uuid unchanged, §3.4.2).
    pub fn rename_file(&mut self, raw_old: &str, raw_new: &str) -> FsResult<()> {
        let old = normalize(raw_old)?;
        let new = normalize(raw_new)?;
        self.begin();
        self.ctx.annotate("src", old.as_str());
        self.ctx.annotate("dst", new.as_str());
        let res = (|| {
            let (src_dir, src_name) = self.resolve_parent(&old)?;
            let (dst_dir, dst_name) = self.resolve_parent(&new)?;
            self.require(&src_dir, Perm::Write)?;
            self.require(&dst_dir, Perm::Write)?;
            let src_idx = self.fms_idx(src_dir.uuid, src_name);
            let dst_idx = self.fms_idx(dst_dir.uuid, dst_name);
            let resp = self.fms_call(
                src_idx,
                FmsRequest::TakeFile {
                    dir_uuid: src_dir.uuid,
                    name: src_name.to_string(),
                },
            )?;
            let FmsResponse::Taken(r) = resp else {
                unreachable!()
            };
            let (access, content) = r?;
            let resp = self.fms_call(
                dst_idx,
                FmsRequest::PutFile {
                    dir_uuid: dst_dir.uuid,
                    name: dst_name.to_string(),
                    access,
                    content,
                },
            )?;
            let FmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r
        })();
        self.finish("rename_file");
        res
    }

    /// Rename a directory: one DMS range move (§3.4.3). Files and data
    /// blocks never relocate. Returns the number of directory inodes
    /// moved.
    pub fn rename_dir(&mut self, raw_old: &str, raw_new: &str) -> FsResult<usize> {
        let old = normalize(raw_old)?;
        let new = normalize(raw_new)?;
        if self.dms.len() > 1 {
            // The hash-sharded ablation cannot range-move a subtree —
            // exactly the property the single B+-tree DMS buys (§3.4.3).
            return Err(FsError::Busy);
        }
        self.begin();
        self.ctx.annotate("src", old.as_str());
        self.ctx.annotate("dst", new.as_str());
        let ts = self.clock;
        let (uid, gid) = (self.uid, self.gid);
        let res = (|| {
            let resp = self.dms_call(DmsRequest::RenameDir {
                old_path: old.clone(),
                new_path: new.clone(),
                uid,
                gid,
                ts,
            })?;
            let DmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r
        })();
        self.cache.invalidate_subtree(&old);
        self.cache.invalidate_subtree(&new);
        self.finish("rename_dir");
        res
    }

    // ----- data path --------------------------------------------------

    /// Write `data` at byte `offset`. Blocks go to the object store;
    /// the content record's size/mtime are updated on the FMS.
    pub fn write(&mut self, h: &mut FileHandle, offset: u64, data: &[u8]) -> FsResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.begin();
        self.ctx.annotate("path", h.name.as_str());
        let res = (|| {
            let bs = h.bsize as u64;
            let first = offset / bs;
            let last = (offset + data.len() as u64 - 1) / bs;
            for blk in first..=last {
                let ost = self.ost_of(h.uuid, blk);
                let blk_start = blk * bs;
                let lo = offset.max(blk_start);
                let hi = (offset + data.len() as u64).min(blk_start + bs);
                let chunk = &data[(lo - offset) as usize..(hi - offset) as usize];
                let full_block = lo == blk_start && (hi - lo) == bs;
                // No read-modify-write needed when the block is fully
                // overwritten or holds no prior data (fresh file tail).
                let block_data = if full_block || (h.size <= blk_start && lo == blk_start) {
                    chunk.to_vec()
                } else {
                    // Partial block: read-modify-write.
                    let resp =
                        self.ost_call(ost, OstoreRequest::ReadBlock { uuid: h.uuid, blk })?;
                    let mut base = match resp {
                        OstoreResponse::Block(Ok(b)) => b,
                        OstoreResponse::Block(Err(FsError::NotFound)) => Vec::new(),
                        other => unreachable!("{other:?}"),
                    };
                    // Never resurrect bytes beyond the file's logical
                    // size: truncation reclaims blocks lazily, so a
                    // stored block may be longer than the file.
                    let logical = h.size.saturating_sub(blk_start) as usize;
                    base.truncate(logical.min(base.len()));
                    let need = (hi - blk_start) as usize;
                    if base.len() < need {
                        base.resize(need, 0);
                    }
                    base[(lo - blk_start) as usize..need].copy_from_slice(chunk);
                    base
                };
                let resp = self.ost_call(
                    ost,
                    OstoreRequest::WriteBlock {
                        uuid: h.uuid,
                        blk,
                        data: block_data,
                    },
                )?;
                let OstoreResponse::Done(r) = resp else {
                    unreachable!()
                };
                r?;
            }
            let new_size = h.size.max(offset + data.len() as u64);
            let idx = self.fms_idx(h.dir_uuid, &h.name);
            let ts = self.clock;
            let resp = self.fms_call(
                idx,
                FmsRequest::SetSize {
                    dir_uuid: h.dir_uuid,
                    name: h.name.clone(),
                    size: new_size,
                    ts,
                },
            )?;
            let FmsResponse::Done(r) = resp else {
                unreachable!()
            };
            r?;
            h.size = new_size;
            Ok(())
        })();
        self.finish("write");
        res
    }

    /// Read `len` bytes at `offset` (short reads at EOF).
    pub fn read(&mut self, h: &FileHandle, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.begin();
        self.ctx.annotate("path", h.name.as_str());
        let res = (|| {
            let end = (offset + len).min(h.size);
            if offset >= end {
                return Ok(Vec::new());
            }
            let bs = h.bsize as u64;
            let first = offset / bs;
            let last = (end - 1) / bs;
            let mut out = Vec::with_capacity((end - offset) as usize);
            for blk in first..=last {
                let ost = self.ost_of(h.uuid, blk);
                let resp = self.ost_call(ost, OstoreRequest::ReadBlock { uuid: h.uuid, blk })?;
                let block = match resp {
                    OstoreResponse::Block(Ok(b)) => b,
                    OstoreResponse::Block(Err(FsError::NotFound)) => Vec::new(),
                    other => unreachable!("{other:?}"),
                };
                let blk_start = blk * bs;
                let lo = offset.max(blk_start);
                let hi = end.min(blk_start + bs);
                for i in lo..hi {
                    let off_in_blk = (i - blk_start) as usize;
                    out.push(block.get(off_in_blk).copied().unwrap_or(0));
                }
            }
            Ok(out)
        })();
        self.finish("read");
        res
    }

    /// Execute deferred block reclamation (outside any op trace). Items
    /// whose object-store server is down stay queued for the next flush.
    pub fn gc_flush(&mut self) {
        let items = std::mem::take(&mut self.gc_queue);
        let mut ctx = CallCtx::new();
        for item in items {
            // Blocks stripe across every OST, so reclamation fans out.
            if self.ost.iter().any(|o| o.is_down()) {
                self.gc_queue.push(item);
                continue;
            }
            for idx in 0..self.ost.len() {
                let req = match &item {
                    GcItem::Remove(uuid) => OstoreRequest::RemoveObject { uuid: *uuid },
                    GcItem::Truncate(uuid, keep) => OstoreRequest::TruncateBlocks {
                        uuid: *uuid,
                        keep_blocks: *keep,
                    },
                };
                if self.ost[idx].try_call(&mut ctx, req).is_err() {
                    // Transport failure: keep the item queued, same as
                    // an injected outage.
                    self.gc_queue.push(item);
                    break;
                }
            }
        }
    }

    /// Number of deferred GC items queued (for tests).
    pub fn gc_pending(&self) -> usize {
        self.gc_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocoCluster, LocoConfig};
    use loco_sim::time::{MICROS, SECS};

    fn cluster(n: u16) -> LocoCluster {
        LocoCluster::new(LocoConfig::with_servers(n))
    }

    #[test]
    fn mkdir_create_stat_unlink_lifecycle() {
        let cl = cluster(4);
        let mut c = cl.client();
        c.mkdir("/dir", 0o755).unwrap();
        let h = c.create("/dir/file", 0o644).unwrap();
        assert_eq!(h.size, 0);
        let st = c.stat_file("/dir/file").unwrap();
        assert_eq!(st.access.mode, 0o644);
        assert_eq!(st.content.uuid, h.uuid);
        c.unlink("/dir/file").unwrap();
        assert_eq!(c.stat_file("/dir/file"), Err(FsError::NotFound));
        c.rmdir("/dir").unwrap();
        assert_eq!(c.stat_dir("/dir"), Err(FsError::NotFound));
    }

    #[test]
    fn create_trace_is_one_rpc_with_warm_cache() {
        let cl = cluster(8);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        c.create("/d/warmup", 0o644).unwrap();
        let _ = c.take_trace();
        c.create("/d/f2", 0o644).unwrap();
        let t = c.take_trace();
        assert_eq!(t.visits.len(), 1, "cached parent → only the FMS visit");
        assert_eq!(t.visits[0].server.class, loco_net::class::FMS);
    }

    #[test]
    fn create_trace_is_two_rpcs_without_cache() {
        let cl = LocoCluster::new(LocoConfig::with_servers(8).no_cache());
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        c.create("/d/f1", 0o644).unwrap();
        let t = c.take_trace();
        assert_eq!(t.visits.len(), 2, "DMS resolve + FMS create");
        assert_eq!(t.visits[0].server.class, loco_net::class::DMS);
        assert_eq!(t.visits[1].server.class, loco_net::class::FMS);
    }

    #[test]
    fn mkdir_is_always_one_dms_rpc() {
        let cl = cluster(16);
        let mut c = cl.client();
        c.mkdir("/a", 0o755).unwrap();
        let t = c.take_trace();
        assert_eq!(t.visits.len(), 1);
        assert_eq!(t.visits[0].server.class, loco_net::class::DMS);
    }

    #[test]
    fn lease_expiry_causes_dms_revisit() {
        let cl = cluster(2);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        c.create("/d/a", 0o644).unwrap();
        let _ = c.take_trace();
        // Within lease: cache hit.
        c.create("/d/b", 0o644).unwrap();
        assert_eq!(c.take_trace().visits.len(), 1);
        // Push past the 30 s lease.
        c.advance_clock(31 * SECS);
        c.create("/d/c", 0o644).unwrap();
        assert_eq!(c.take_trace().visits.len(), 2, "lease expired → DMS again");
    }

    #[test]
    fn files_spread_across_fms() {
        let cl = cluster(8);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        let mut servers = std::collections::HashSet::new();
        for i in 0..64 {
            c.create(&format!("/d/f{i}"), 0o644).unwrap();
            let t = c.take_trace();
            servers.insert(t.visits.last().unwrap().server.index);
        }
        assert!(servers.len() >= 5, "placement too skewed: {servers:?}");
    }

    #[test]
    fn readdir_visits_dms_plus_every_fms() {
        let cl = cluster(8);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        c.mkdir("/d/sub", 0o755).unwrap();
        for i in 0..20 {
            c.create(&format!("/d/f{i}"), 0o644).unwrap();
        }
        let _ = c.take_trace();
        let entries = c.readdir("/d").unwrap();
        assert_eq!(entries.len(), 21);
        let t = c.take_trace();
        // Cached dir + 1 DMS dirent fetch + 8 FMS list fetches.
        assert_eq!(t.visits.len(), 1 + 8);
        let files = entries
            .iter()
            .filter(|(_, k)| *k == DirentKind::File)
            .count();
        assert_eq!(files, 20);
    }

    #[test]
    fn rmdir_checks_every_fms() {
        let cl = cluster(4);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        c.create("/d/f", 0o644).unwrap();
        assert_eq!(c.rmdir("/d"), Err(FsError::NotEmpty));
        c.unlink("/d/f").unwrap();
        let _ = c.take_trace();
        c.rmdir("/d").unwrap();
        let t = c.take_trace();
        // cached resolve + 4 CountFiles + 1 DMS rmdir
        assert_eq!(t.visits.len(), 5);
    }

    #[test]
    fn chmod_access_chown_on_files() {
        let cl = cluster(4);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        c.create("/d/f", 0o600).unwrap();
        assert!(c.access_file("/d/f", Perm::Read).unwrap());
        c.chmod_file("/d/f", 0o000).unwrap();
        assert!(!c.access_file("/d/f", Perm::Read).unwrap());
        let st = c.stat_file("/d/f").unwrap();
        assert_eq!(st.access.mode, 0);
        // chown requires ownership; owner is uid 1000 (the client).
        c.chown_file("/d/f", 1000, 55).unwrap();
        assert_eq!(c.stat_file("/d/f").unwrap().access.gid, 55);
    }

    #[test]
    fn write_read_roundtrip_small() {
        let cl = cluster(2);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        let mut h = c.create("/d/f", 0o644).unwrap();
        let payload = b"hello, loco".to_vec();
        c.write(&mut h, 0, &payload).unwrap();
        assert_eq!(h.size, payload.len() as u64);
        let back = c.read(&h, 0, payload.len() as u64).unwrap();
        assert_eq!(back, payload);
        // Size visible via stat and a fresh open.
        assert_eq!(c.stat_file("/d/f").unwrap().content.size, 11);
        let h2 = c.open("/d/f", Perm::Read).unwrap();
        assert_eq!(h2.size, 11);
    }

    #[test]
    fn write_read_multi_block_and_offsets() {
        let mut cfg = LocoConfig::with_servers(2);
        cfg.block_size = 16; // tiny blocks to exercise chunking
        let cl = LocoCluster::new(cfg);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        let mut h = c.create("/d/f", 0o644).unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        c.write(&mut h, 0, &data).unwrap();
        assert_eq!(c.read(&h, 0, 100).unwrap(), data);
        // Overwrite a span crossing block boundaries.
        c.write(&mut h, 10, &[0xAA; 30]).unwrap();
        let back = c.read(&h, 0, 100).unwrap();
        assert_eq!(&back[..10], &data[..10]);
        assert!(back[10..40].iter().all(|&b| b == 0xAA));
        assert_eq!(&back[40..], &data[40..]);
        // Read past EOF is short.
        assert_eq!(c.read(&h, 90, 50).unwrap().len(), 10);
    }

    #[test]
    fn truncate_then_read_sees_zeros_gone() {
        let mut cfg = LocoConfig::with_servers(2);
        cfg.block_size = 16;
        let cl = LocoCluster::new(cfg);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        let mut h = c.create("/d/f", 0o644).unwrap();
        c.write(&mut h, 0, &[7u8; 64]).unwrap();
        c.truncate_file("/d/f", 20).unwrap();
        assert_eq!(c.stat_file("/d/f").unwrap().content.size, 20);
        let h2 = c.open("/d/f", Perm::Read).unwrap();
        assert_eq!(c.read(&h2, 0, 100).unwrap().len(), 20);
        assert!(c.gc_pending() > 0);
        c.gc_flush();
        assert_eq!(c.gc_pending(), 0);
    }

    #[test]
    fn rename_file_keeps_uuid_and_data() {
        let cl = cluster(4);
        let mut c = cl.client();
        c.mkdir("/a", 0o755).unwrap();
        c.mkdir("/b", 0o755).unwrap();
        let mut h = c.create("/a/f", 0o644).unwrap();
        c.write(&mut h, 0, b"payload").unwrap();
        c.rename_file("/a/f", "/b/g").unwrap();
        assert_eq!(c.stat_file("/a/f"), Err(FsError::NotFound));
        let st = c.stat_file("/b/g").unwrap();
        assert_eq!(st.content.uuid, h.uuid, "uuid survives rename");
        assert_eq!(st.content.size, 7);
        let h2 = c.open("/b/g", Perm::Read).unwrap();
        assert_eq!(c.read(&h2, 0, 7).unwrap(), b"payload");
    }

    #[test]
    fn rename_dir_then_old_paths_fail_and_new_work() {
        let cl = cluster(4);
        let mut c = cl.client();
        c.mkdir("/a", 0o755).unwrap();
        c.mkdir("/a/sub", 0o755).unwrap();
        c.create("/a/sub/f", 0o644).unwrap();
        let moved = c.rename_dir("/a", "/a2").unwrap();
        assert_eq!(moved, 2);
        assert_eq!(c.stat_dir("/a"), Err(FsError::NotFound));
        assert!(c.stat_dir("/a2/sub").is_ok());
        // Files re-resolve through the *new* parent path but identical
        // dir uuid, so metadata is found without relocation.
        assert!(c.stat_file("/a2/sub/f").is_ok());
    }

    #[test]
    fn permissions_respected_across_clients() {
        let cl = cluster(2);
        let mut owner = cl.client_as(10, 10);
        let mut other = cl.client_as(20, 20);
        owner.mkdir("/priv", 0o700).unwrap();
        owner.create("/priv/f", 0o600).unwrap();
        assert_eq!(
            other.create("/priv/g", 0o644).err(),
            Some(FsError::PermissionDenied)
        );
        assert_eq!(other.stat_dir("/priv").unwrap().mode, 0o700);
        assert_eq!(
            other.stat_file("/priv/f"),
            Err(FsError::PermissionDenied),
            "ancestor walk blocks resolve"
        );
    }

    #[test]
    fn conn_poll_overhead_grows_with_contacted_servers() {
        let cl = cluster(16);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        c.create("/d/first", 0o644).unwrap();
        let early = c.take_trace().client_work;
        for i in 0..64 {
            c.create(&format!("/d/f{i}"), 0o644).unwrap();
        }
        c.create("/d/last", 0o644).unwrap();
        let late = c.take_trace().client_work;
        assert!(
            late > early + 10 * MICROS,
            "touch client work must grow with connections: {early} → {late}"
        );
    }

    #[test]
    fn clock_advances_with_operations() {
        let cl = cluster(2);
        let mut c = cl.client();
        assert_eq!(c.now(), 0);
        c.mkdir("/d", 0o755).unwrap();
        let t1 = c.now();
        assert!(t1 >= 174 * MICROS, "at least one RTT: {t1}");
        c.create("/d/f", 0o644).unwrap();
        assert!(c.now() > t1);
    }

    #[test]
    fn readdir_plus_batches_the_stat_storm() {
        let cl = cluster(8);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        for i in 0..50 {
            c.create(&format!("/d/f{i:02}"), 0o600 + (i % 8) as u32)
                .unwrap();
        }
        let _ = c.take_trace();
        let rows = c.readdir_plus("/d").unwrap();
        let t = c.take_trace();
        assert_eq!(rows.len(), 50);
        // One visit per FMS (cached parent): visit count independent of
        // the 50 entries.
        assert_eq!(t.visits.len(), 8, "{:?}", t.visits.len());
        // Attributes are real.
        let f7 = rows.iter().find(|(n, _)| n == "f07").unwrap();
        assert_eq!(f7.1.access.mode, 0o607);
        // Per-file stats would have cost ≥50 visits instead.
        for i in 0..50 {
            c.stat_file(&format!("/d/f{i:02}")).unwrap();
        }
        // (just exercising the comparison path; trace drained per op)
    }

    #[test]
    fn blocks_stripe_across_object_servers() {
        let mut cfg = LocoConfig::with_servers(2);
        cfg.num_ost = 4;
        cfg.block_size = 1024;
        let cl = LocoCluster::new(cfg);
        let mut c = cl.client();
        c.mkdir("/d", 0o755).unwrap();
        let mut h = c.create("/d/big", 0o644).unwrap();
        let data: Vec<u8> = (0..8 * 1024u32).map(|i| i as u8).collect();
        c.write(&mut h, 0, &data).unwrap();
        // 8 blocks over 4 OSTs: every server holds some.
        let counts: Vec<usize> = cl
            .ost
            .iter()
            .map(|o| o.with_service(|s| s.block_count()))
            .collect();
        assert!(counts.iter().all(|&n| n > 0), "striping skewed: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 8);
        // Reads reassemble correctly across the stripe.
        assert_eq!(c.read(&h, 0, data.len() as u64).unwrap(), data);
        // GC reclaims from every server.
        c.unlink("/d/big").unwrap();
        c.gc_flush();
        let left: usize = cl
            .ost
            .iter()
            .map(|o| o.with_service(|s| s.block_count()))
            .sum();
        assert_eq!(left, 0);
    }

    #[test]
    fn sharded_dms_semantics_match_single() {
        let cl = LocoCluster::new(LocoConfig::with_servers(4).sharded_dms(4));
        let mut c = cl.client();
        c.mkdir("/a", 0o755).unwrap();
        c.mkdir("/a/b", 0o755).unwrap();
        c.create("/a/b/f", 0o644).unwrap();
        assert!(c.stat_dir("/a/b").is_ok());
        assert!(c.stat_file("/a/b/f").is_ok());
        let names = c.readdir("/a").unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(c.rmdir("/a"), Err(FsError::NotEmpty));
        c.unlink("/a/b/f").unwrap();
        c.rmdir("/a/b").unwrap();
        c.rmdir("/a").unwrap();
        assert_eq!(c.stat_dir("/a"), Err(FsError::NotFound));
    }

    #[test]
    fn sharded_dms_pays_per_component_lookups() {
        // The ablation's cost: deep cold lookups are one RPC per
        // component, vs one RPC total on the single DMS.
        let mk = |num_dms: u16| {
            let cfg = LocoConfig::with_servers(2).sharded_dms(num_dms).no_cache();
            let cl = LocoCluster::new(cfg);
            let mut c = cl.client();
            let mut p = String::new();
            for i in 0..6 {
                p.push_str(&format!("/L{i}"));
                c.mkdir(&p, 0o755).unwrap();
            }
            c.create(&format!("{p}/f"), 0o644).unwrap();
            c.take_trace().visits.len()
        };
        let single = mk(1);
        let sharded = mk(4);
        assert_eq!(single, 2, "single DMS: resolve + create");
        assert!(
            sharded >= 7,
            "sharded: per-component walk + create, got {sharded}"
        );
    }

    #[test]
    fn sharded_dms_cannot_range_rename() {
        let cl = LocoCluster::new(LocoConfig::with_servers(2).sharded_dms(4));
        let mut c = cl.client();
        c.mkdir("/a", 0o755).unwrap();
        assert_eq!(c.rename_dir("/a", "/b"), Err(FsError::Busy));
    }

    #[test]
    fn sharded_dms_mkdir_spreads_load() {
        let cl = LocoCluster::new(LocoConfig::with_servers(1).sharded_dms(4));
        let mut c = cl.client();
        let mut shards = std::collections::HashSet::new();
        for i in 0..32 {
            c.mkdir(&format!("/d{i}"), 0o755).unwrap();
            for v in c.take_trace().visits {
                if v.server.class == loco_net::class::DMS {
                    shards.insert(v.server.index);
                }
            }
        }
        assert!(shards.len() >= 3, "directories must spread: {shards:?}");
    }

    #[test]
    fn invalid_paths_rejected_without_rpcs() {
        let cl = cluster(2);
        let mut c = cl.client();
        assert_eq!(c.mkdir("no-slash", 0o755), Err(FsError::InvalidArgument));
        assert_eq!(
            c.create("/a/../b", 0o644).err(),
            Some(FsError::InvalidArgument)
        );
        assert_eq!(c.take_trace().visits.len(), 0);
    }
}
