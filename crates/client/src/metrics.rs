//! Cluster observability: aggregate per-server statistics into a
//! printable report (the `loco-admin`-style view an operator would use
//! to see load balance across the metadata tier).

use crate::{LocoClient, LocoCluster};
use loco_kv::AccessStats;
use std::fmt;

/// Per-server row of a [`ClusterReport`].
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Server role label (DMS/FMS).
    pub role: &'static str,
    /// Server index within its role.
    pub index: u16,
    /// KV access counters of the backing store.
    pub kv: AccessStats,
}

impl ServerStats {
    /// Total KV operations on this server.
    pub fn total_ops(&self) -> u64 {
        self.kv.total()
    }
}

/// Client d-inode cache counters (§3.2.2): hits, misses, and the
/// subset of misses caused by an expired lease.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups served from the cache within the lease.
    pub hits: u64,
    /// Lookups that had to go to the DMS.
    pub misses: u64,
    /// Misses where the entry was cached but its lease had lapsed.
    pub expired: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; `None` when no lookups happened.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Snapshot of cluster-wide KV activity.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-server statistics rows.
    pub servers: Vec<ServerStats>,
    /// d-inode cache counters of the observed client, when one was
    /// supplied via [`ClusterReport::collect_with_client`].
    pub cache: Option<CacheStats>,
}

impl ClusterReport {
    /// Gather statistics from every metadata server.
    pub fn collect(cluster: &LocoCluster) -> Self {
        let mut servers = Vec::new();
        for (i, d) in cluster.dms.iter().enumerate() {
            servers.push(ServerStats {
                role: "DMS",
                index: i as u16,
                kv: d.with_service(|s| s.kv_stats()),
            });
        }
        for (i, f) in cluster.fms.iter().enumerate() {
            servers.push(ServerStats {
                role: "FMS",
                index: i as u16,
                kv: f.with_service(|s| s.kv_stats()),
            });
        }
        Self {
            servers,
            cache: None,
        }
    }

    /// Gather server statistics plus the d-inode cache counters of one
    /// client (the paper's observability view: server load and the
    /// client-side cache effectiveness that shapes it).
    pub fn collect_with_client(cluster: &LocoCluster, client: &LocoClient) -> Self {
        let mut report = Self::collect(cluster);
        let (hits, misses) = client.cache_stats();
        report.cache = Some(CacheStats {
            hits,
            misses,
            expired: client.cache_expired(),
        });
        report
    }

    /// Reset every server's counters (benchmark phase boundaries).
    pub fn reset(cluster: &LocoCluster) {
        for d in &cluster.dms {
            d.with_service(|s| s.reset_kv_stats());
        }
        for f in &cluster.fms {
            f.with_service(|s| s.reset_kv_stats());
        }
    }

    /// Total KV operations across the cluster.
    pub fn total_ops(&self) -> u64 {
        self.servers.iter().map(|s| s.total_ops()).sum()
    }

    /// Load imbalance across the FMS tier: max/mean of per-server op
    /// counts (1.0 = perfectly balanced). Returns `None` with fewer
    /// than two FMS.
    pub fn fms_imbalance(&self) -> Option<f64> {
        let fms: Vec<u64> = self
            .servers
            .iter()
            .filter(|s| s.role == "FMS")
            .map(|s| s.total_ops())
            .collect();
        if fms.len() < 2 {
            return None;
        }
        let mean = fms.iter().sum::<u64>() as f64 / fms.len() as f64;
        if mean == 0.0 {
            return Some(1.0);
        }
        Some(*fms.iter().max().unwrap() as f64 / mean)
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<5} {:>3} {:>10} {:>10} {:>9} {:>7} {:>9} {:>9} {:>11} {:>11}",
            "role",
            "idx",
            "gets",
            "puts",
            "deletes",
            "scans",
            "pr-reads",
            "pr-writes",
            "bytes-rd",
            "bytes-wr"
        )?;
        for s in &self.servers {
            writeln!(
                f,
                "{:<5} {:>3} {:>10} {:>10} {:>9} {:>7} {:>9} {:>9} {:>11} {:>11}",
                s.role,
                s.index,
                s.kv.gets,
                s.kv.puts,
                s.kv.deletes,
                s.kv.scans,
                s.kv.partial_reads,
                s.kv.partial_writes,
                s.kv.bytes_read,
                s.kv.bytes_written
            )?;
        }
        if let Some(im) = self.fms_imbalance() {
            writeln!(f, "FMS load imbalance (max/mean): {im:.2}")?;
        }
        if let Some(c) = &self.cache {
            write!(
                f,
                "d-inode cache: {} hits, {} misses ({} expired leases)",
                c.hits, c.misses, c.expired
            )?;
            match c.hit_rate() {
                Some(r) => writeln!(f, ", hit rate {:.1}%", 100.0 * r)?,
                None => writeln!(f)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocoConfig;

    #[test]
    fn collects_per_server_activity() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(4));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        for i in 0..40 {
            fs.create(&format!("/d/f{i}"), 0o644).unwrap();
        }
        let report = ClusterReport::collect(&cluster);
        assert_eq!(report.servers.len(), 5); // 1 DMS + 4 FMS
        assert!(report.total_ops() > 40);
        let dms_ops = report.servers[0].total_ops();
        assert!(dms_ops >= 2, "mkdir + resolve hit the DMS");
        // Every FMS saw some creates (balance).
        for s in report.servers.iter().filter(|s| s.role == "FMS") {
            assert!(s.kv.puts > 0, "server {} idle", s.index);
        }
        let im = report.fms_imbalance().unwrap();
        assert!(im < 3.0, "imbalance = {im}");
    }

    #[test]
    fn reset_clears_counters() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        ClusterReport::reset(&cluster);
        let report = ClusterReport::collect(&cluster);
        assert_eq!(report.total_ops(), 0);
    }

    #[test]
    fn display_renders_rows() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        let text = ClusterReport::collect(&cluster).to_string();
        assert!(text.contains("DMS"));
        assert!(text.contains("FMS"));
        assert!(text.contains("bytes-rd"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn report_with_client_shows_cache_counters() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        fs.create("/d/a", 0o644).unwrap(); // miss (cold)
        fs.create("/d/b", 0o644).unwrap(); // hit
        fs.advance_clock(31 * loco_sim::time::SECS);
        fs.create("/d/c", 0o644).unwrap(); // miss (expired lease)
        let report = ClusterReport::collect_with_client(&cluster, &fs);
        let c = report.cache.expect("cache stats attached");
        assert!(c.hits >= 1, "{c:?}");
        assert!(c.misses >= 2, "{c:?}");
        assert!(c.expired >= 1, "{c:?}");
        assert!(c.expired <= c.misses, "expired is a subset of misses");
        let text = report.to_string();
        assert!(text.contains("d-inode cache:"), "{text}");
        assert!(text.contains("expired leases"), "{text}");
        // Plain collect() has no cache line.
        assert!(ClusterReport::collect(&cluster).cache.is_none());
    }

    #[test]
    fn byte_volume_counters_reach_the_report() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(1));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        fs.create("/d/f", 0o644).unwrap();
        fs.stat_file("/d/f").unwrap();
        let report = ClusterReport::collect(&cluster);
        let written: u64 = report.servers.iter().map(|s| s.kv.bytes_written).sum();
        let read: u64 = report.servers.iter().map(|s| s.kv.bytes_read).sum();
        assert!(written > 0, "creates write metadata bytes");
        assert!(read > 0, "stat reads metadata bytes");
    }
}
