//! Cluster observability: aggregate per-server statistics into a
//! printable report (the `loco-admin`-style view an operator would use
//! to see load balance across the metadata tier).

use crate::LocoCluster;
use loco_kv::AccessStats;
use std::fmt;

/// Per-server row of a [`ClusterReport`].
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Server role label (DMS/FMS).
    pub role: &'static str,
    /// Server index within its role.
    pub index: u16,
    /// KV access counters of the backing store.
    pub kv: AccessStats,
}

impl ServerStats {
    /// Total KV operations on this server.
    pub fn total_ops(&self) -> u64 {
        self.kv.total()
    }
}

/// Snapshot of cluster-wide KV activity.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-server statistics rows.
    pub servers: Vec<ServerStats>,
}

impl ClusterReport {
    /// Gather statistics from every metadata server.
    pub fn collect(cluster: &LocoCluster) -> Self {
        let mut servers = Vec::new();
        for (i, d) in cluster.dms.iter().enumerate() {
            servers.push(ServerStats {
                role: "DMS",
                index: i as u16,
                kv: d.with_service(|s| s.kv_stats()),
            });
        }
        for (i, f) in cluster.fms.iter().enumerate() {
            servers.push(ServerStats {
                role: "FMS",
                index: i as u16,
                kv: f.with_service(|s| s.kv_stats()),
            });
        }
        Self { servers }
    }

    /// Reset every server's counters (benchmark phase boundaries).
    pub fn reset(cluster: &LocoCluster) {
        for d in &cluster.dms {
            d.with_service(|s| s.reset_kv_stats());
        }
        for f in &cluster.fms {
            f.with_service(|s| s.reset_kv_stats());
        }
    }

    /// Total KV operations across the cluster.
    pub fn total_ops(&self) -> u64 {
        self.servers.iter().map(|s| s.total_ops()).sum()
    }

    /// Load imbalance across the FMS tier: max/mean of per-server op
    /// counts (1.0 = perfectly balanced). Returns `None` with fewer
    /// than two FMS.
    pub fn fms_imbalance(&self) -> Option<f64> {
        let fms: Vec<u64> = self
            .servers
            .iter()
            .filter(|s| s.role == "FMS")
            .map(|s| s.total_ops())
            .collect();
        if fms.len() < 2 {
            return None;
        }
        let mean = fms.iter().sum::<u64>() as f64 / fms.len() as f64;
        if mean == 0.0 {
            return Some(1.0);
        }
        Some(*fms.iter().max().unwrap() as f64 / mean)
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<5} {:>3} {:>10} {:>10} {:>9} {:>7} {:>9} {:>9}",
            "role", "idx", "gets", "puts", "deletes", "scans", "pr-reads", "pr-writes"
        )?;
        for s in &self.servers {
            writeln!(
                f,
                "{:<5} {:>3} {:>10} {:>10} {:>9} {:>7} {:>9} {:>9}",
                s.role,
                s.index,
                s.kv.gets,
                s.kv.puts,
                s.kv.deletes,
                s.kv.scans,
                s.kv.partial_reads,
                s.kv.partial_writes
            )?;
        }
        if let Some(im) = self.fms_imbalance() {
            writeln!(f, "FMS load imbalance (max/mean): {im:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocoConfig;

    #[test]
    fn collects_per_server_activity() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(4));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        for i in 0..40 {
            fs.create(&format!("/d/f{i}"), 0o644).unwrap();
        }
        let report = ClusterReport::collect(&cluster);
        assert_eq!(report.servers.len(), 5); // 1 DMS + 4 FMS
        assert!(report.total_ops() > 40);
        let dms_ops = report.servers[0].total_ops();
        assert!(dms_ops >= 2, "mkdir + resolve hit the DMS");
        // Every FMS saw some creates (balance).
        for s in report.servers.iter().filter(|s| s.role == "FMS") {
            assert!(s.kv.puts > 0, "server {} idle", s.index);
        }
        let im = report.fms_imbalance().unwrap();
        assert!(im < 3.0, "imbalance = {im}");
    }

    #[test]
    fn reset_clears_counters() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        ClusterReport::reset(&cluster);
        let report = ClusterReport::collect(&cluster);
        assert_eq!(report.total_ops(), 0);
    }

    #[test]
    fn display_renders_rows() {
        let cluster = LocoCluster::new(LocoConfig::with_servers(2));
        let mut fs = cluster.client();
        fs.mkdir("/d", 0o755).unwrap();
        let text = ClusterReport::collect(&cluster).to_string();
        assert!(text.contains("DMS"));
        assert!(text.contains("FMS"));
        assert!(text.lines().count() >= 4);
    }
}
