//! fsck — namespace consistency checking and reconstruction.
//!
//! The flattened directory tree stores *backward* indices: each inode
//! carries its own dirent, and the per-directory dirent lists are
//! derived data. That is the ReconFS idea the paper builds on (§5:
//! "ReconFS redesigns the namespace management … and makes it
//! reconstructable"), and it makes LocoFS unusually repair-friendly:
//! **every dirent list can be rebuilt from the primary inode records
//! alone** — d-inode full-path keys encode the directory tree, and FMS
//! record keys encode each file's parent uuid and name.
//!
//! [`fsck`] verifies four invariants; [`fsck_repair`] reconstructs the
//! dirent lists from primary records:
//!
//! 1. every subdirectory dirent on the DMS names an existing d-inode
//!    (and vice versa: every non-root d-inode appears in its parent's
//!    list);
//! 2. every d-inode's parent path exists;
//! 3. every file dirent on each FMS has a backing metadata record, and
//!    every record has a dirent;
//! 4. every file's `directory_uuid` refers to a live directory
//!    (otherwise the file is an orphan, unreachable by any path).

use crate::LocoCluster;
use loco_types::{basename, parent, DirentKind, DirentList, Uuid};
use std::collections::{HashMap, HashSet};

/// Findings of a consistency pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Directories inspected.
    pub directories: usize,
    /// Files inspected.
    pub files: usize,
    /// Subdirectory dirents pointing at missing d-inodes.
    pub dangling_dir_dirents: Vec<String>,
    /// d-inodes missing from their parent's dirent list.
    pub unlisted_dirs: Vec<String>,
    /// d-inodes whose parent path does not exist.
    pub detached_dirs: Vec<String>,
    /// File dirents without a backing metadata record (per FMS).
    pub dangling_file_dirents: Vec<String>,
    /// File records missing from their server's dirent list.
    pub unlisted_files: Vec<String>,
    /// Files whose directory uuid has no live d-inode.
    pub orphan_files: Vec<String>,
}

impl FsckReport {
    /// No inconsistencies found?
    pub fn is_clean(&self) -> bool {
        self.dangling_dir_dirents.is_empty()
            && self.unlisted_dirs.is_empty()
            && self.detached_dirs.is_empty()
            && self.dangling_file_dirents.is_empty()
            && self.unlisted_files.is_empty()
            && self.orphan_files.is_empty()
    }

    /// Total number of findings.
    pub fn findings(&self) -> usize {
        self.dangling_dir_dirents.len()
            + self.unlisted_dirs.len()
            + self.detached_dirs.len()
            + self.dangling_file_dirents.len()
            + self.unlisted_files.len()
            + self.orphan_files.len()
    }
}

/// Run a read-only consistency pass over the whole metadata tier.
pub fn fsck(cluster: &LocoCluster) -> FsckReport {
    let mut report = FsckReport::default();

    // --- gather DMS state (shard 0 holds everything in the paper's
    // design; the sharded ablation is out of scope for fsck) ---
    let dirs: Vec<(String, loco_types::DirInode)> =
        cluster.dms[0].with_service(|s| s.export_dirs());
    let dms_lists: Vec<(Uuid, DirentList)> =
        cluster.dms[0].with_service(|s| s.export_dirent_lists());
    report.directories = dirs.len();

    let by_path: HashMap<&str, &loco_types::DirInode> =
        dirs.iter().map(|(p, i)| (p.as_str(), i)).collect();
    let live_uuids: HashSet<Uuid> = dirs.iter().map(|(_, i)| i.uuid).collect();
    let uuid_to_path: HashMap<Uuid, &str> =
        dirs.iter().map(|(p, i)| (i.uuid, p.as_str())).collect();

    // Invariant 1a: every subdir dirent points at a real d-inode.
    for (dir_uuid, list) in &dms_lists {
        let Some(dir_path) = uuid_to_path.get(dir_uuid) else {
            continue; // list for a removed dir; harmless garbage
        };
        for e in list.entries() {
            let child = loco_types::join(dir_path, &e.name);
            match by_path.get(child.as_str()) {
                Some(inode) if inode.uuid == e.uuid => {}
                _ => report.dangling_dir_dirents.push(child),
            }
        }
    }

    // Invariants 1b + 2: every non-root dir is listed by its parent,
    // and its parent exists.
    let lists_by_uuid: HashMap<Uuid, &DirentList> =
        dms_lists.iter().map(|(u, l)| (*u, l)).collect();
    for (path, inode) in &dirs {
        let Some(parent_path) = parent(path) else {
            continue; // root
        };
        let Some(parent_inode) = by_path.get(parent_path) else {
            report.detached_dirs.push(path.clone());
            continue;
        };
        let listed = lists_by_uuid
            .get(&parent_inode.uuid)
            .and_then(|l| l.find(basename(path)))
            .map(|e| e.uuid == inode.uuid)
            .unwrap_or(false);
        if !listed {
            report.unlisted_dirs.push(path.clone());
        }
    }

    // --- per-FMS checks ---
    for fms in &cluster.fms {
        let files: Vec<(Uuid, String, Uuid)> = fms.with_service(|s| s.export_files());
        let lists: Vec<(Uuid, DirentList)> = fms.with_service(|s| s.export_dirent_lists());
        report.files += files.len();

        let record_names: HashSet<(Uuid, &str)> =
            files.iter().map(|(d, n, _)| (*d, n.as_str())).collect();
        // Invariant 3a: dirents → records.
        for (dir_uuid, list) in &lists {
            for e in list.entries() {
                if e.kind == DirentKind::File
                    && !record_names.contains(&(*dir_uuid, e.name.as_str()))
                {
                    report
                        .dangling_file_dirents
                        .push(format!("{dir_uuid}:{}", e.name));
                }
            }
        }
        // Invariant 3b: records → dirents; invariant 4: live parent.
        let lists_by_uuid: HashMap<Uuid, &DirentList> =
            lists.iter().map(|(u, l)| (*u, l)).collect();
        for (dir_uuid, name, _) in &files {
            let listed = lists_by_uuid
                .get(dir_uuid)
                .and_then(|l| l.find(name))
                .is_some();
            if !listed {
                report.unlisted_files.push(format!("{dir_uuid}:{name}"));
            }
            if !live_uuids.contains(dir_uuid) {
                report.orphan_files.push(format!("{dir_uuid}:{name}"));
            }
        }
    }
    report
}

/// Reconstruct every dirent list from the primary inode records — the
/// backward-index rebuild the flattened-tree design makes possible.
/// Returns the number of lists rewritten.
pub fn fsck_repair(cluster: &LocoCluster) -> usize {
    let mut rewritten = 0;

    // DMS: rebuild subdir lists from d-inode paths.
    let dirs: Vec<(String, loco_types::DirInode)> =
        cluster.dms[0].with_service(|s| s.export_dirs());
    let by_path: HashMap<&str, Uuid> = dirs.iter().map(|(p, i)| (p.as_str(), i.uuid)).collect();
    let mut rebuilt: HashMap<Uuid, DirentList> = dirs
        .iter()
        .map(|(_, i)| (i.uuid, DirentList::new()))
        .collect();
    for (path, inode) in &dirs {
        let Some(parent_path) = parent(path) else {
            continue;
        };
        if let Some(parent_uuid) = by_path.get(parent_path) {
            rebuilt
                .get_mut(parent_uuid)
                .expect("all uuids present")
                .upsert(basename(path), inode.uuid, DirentKind::Dir);
        }
    }
    for (uuid, list) in &rebuilt {
        cluster.dms[0].with_service(|s| s.repair_dirent_list(*uuid, list));
        rewritten += 1;
    }

    // FMS: rebuild per-server file lists from record keys.
    for fms in &cluster.fms {
        let files: Vec<(Uuid, String, Uuid)> = fms.with_service(|s| s.export_files());
        let mut rebuilt: HashMap<Uuid, DirentList> = HashMap::new();
        for (dir_uuid, name, uuid) in &files {
            rebuilt
                .entry(*dir_uuid)
                .or_default()
                .upsert(name, *uuid, DirentKind::File);
        }
        // Also clear lists for directories that no longer have files on
        // this server.
        let existing: Vec<(Uuid, DirentList)> = fms.with_service(|s| s.export_dirent_lists());
        for (uuid, _) in existing {
            rebuilt.entry(uuid).or_default();
        }
        for (uuid, list) in &rebuilt {
            fms.with_service(|s| s.repair_dirent_list(*uuid, list));
            rewritten += 1;
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocoConfig;

    fn populated() -> LocoCluster {
        let cluster = LocoCluster::new(LocoConfig::with_servers(4));
        let mut fs = cluster.client();
        fs.mkdir("/a", 0o755).unwrap();
        fs.mkdir("/a/b", 0o755).unwrap();
        fs.mkdir("/c", 0o755).unwrap();
        for i in 0..12 {
            fs.create(&format!("/a/f{i}"), 0o644).unwrap();
            fs.create(&format!("/a/b/g{i}"), 0o644).unwrap();
        }
        cluster
    }

    #[test]
    fn healthy_namespace_is_clean() {
        let cluster = populated();
        let report = fsck(&cluster);
        assert!(report.is_clean(), "{report:#?}");
        assert_eq!(report.directories, 4); // root, /a, /a/b, /c
        assert_eq!(report.files, 24);
    }

    #[test]
    fn detects_and_repairs_lost_dms_dirent_list() {
        let cluster = populated();
        let mut fs = cluster.client();
        let a = fs.stat_dir("/a").unwrap();
        // Corruption: the subdir dirent list of /a vanishes.
        cluster.dms[0].with_service(|s| s.drop_dirent_list(a.uuid));
        let report = fsck(&cluster);
        assert!(!report.is_clean());
        assert!(
            report.unlisted_dirs.contains(&"/a/b".to_string()),
            "{report:#?}"
        );

        fsck_repair(&cluster);
        let report = fsck(&cluster);
        assert!(report.is_clean(), "{report:#?}");
        // And the namespace actually works again.
        let entries = fs.readdir("/a").unwrap();
        assert_eq!(entries.len(), 13); // b + 12 files
    }

    #[test]
    fn detects_and_repairs_lost_fms_dirent_list() {
        let cluster = populated();
        let mut fs = cluster.client();
        let a = fs.stat_dir("/a").unwrap();
        for f in &cluster.fms {
            f.with_service(|s| s.drop_dirent_list(a.uuid));
        }
        let report = fsck(&cluster);
        assert!(!report.is_clean());
        assert_eq!(report.unlisted_files.len(), 12, "{report:#?}");
        // readdir is now missing the files…
        assert_eq!(fs.readdir("/a").unwrap().len(), 1);

        fsck_repair(&cluster);
        assert!(fsck(&cluster).is_clean());
        // …and reconstruction brings them back, with uuids intact.
        assert_eq!(fs.readdir("/a").unwrap().len(), 13);
        assert!(fs.stat_file("/a/f3").is_ok());
    }

    #[test]
    fn detects_orphan_files() {
        let cluster = populated();
        let mut fs = cluster.client();
        // Create a file, then force-remove its directory behind the
        // client's back (leaving the file's records in place).
        fs.mkdir("/doomed", 0o755).unwrap();
        fs.create("/doomed/survivor", 0o644).unwrap();
        cluster.dms[0].with_service(|s| {
            let doomed = s.lookup("/doomed").unwrap();
            s.drop_dirent_list(doomed.uuid);
        });
        // Delete the d-inode record itself via a rename trick is not
        // possible; use the export/repair surface: rebuild the DMS
        // without /doomed by dropping it through the raw handler.
        cluster.dms[0].with_service(|s| {
            use loco_dms::DmsRequest;
            use loco_net::Service;
            s.handle(DmsRequest::RmdirLocal {
                path: "/doomed".into(),
            });
        });
        let report = fsck(&cluster);
        assert_eq!(report.orphan_files.len(), 1, "{report:#?}");
        assert!(report.orphan_files[0].ends_with(":survivor"));
    }

    #[test]
    fn detects_dangling_dir_dirent() {
        let cluster = populated();
        // Corruption: /c listed under root but its d-inode vanishes.
        cluster.dms[0].with_service(|s| {
            use loco_dms::DmsRequest;
            use loco_net::Service;
            s.handle(DmsRequest::RmdirLocal { path: "/c".into() });
        });
        let report = fsck(&cluster);
        assert!(
            report.dangling_dir_dirents.contains(&"/c".to_string()),
            "{report:#?}"
        );
        fsck_repair(&cluster);
        assert!(fsck(&cluster).is_clean());
    }
}
