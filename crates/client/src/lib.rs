#![warn(missing_docs)]
//! # loco-client — LocoLib, the LocoFS client library
//!
//! The paper's default client interface (§3.1): applications link
//! LocoLib and talk directly to the metadata servers — directory
//! operations to the single DMS, file operations to the consistent-hash
//!-selected FMS, data operations to the object store. (The paper also
//! describes a FUSE client but abandons it for all evaluations because
//! of FUSE overhead; we implement LocoLib only.)
//!
//! What lives here:
//!
//! * [`LocoConfig`] / [`LocoCluster`] — build a simulated cluster (one
//!   DMS, *n* FMS, *m* object-store servers) and hand out clients;
//! * [`LocoClient`] — the full filesystem API (mkdir, rmdir, readdir,
//!   create, open, unlink, stat, chmod, chown, access, utimens,
//!   truncate, read, write, rename) with the paper's communication
//!   pattern per operation;
//! * [`cache`] — the client directory-metadata cache (§3.2.2):
//!   d-inodes only, 30 s leases, no f-inode or dirent caching.
//!
//! Every operation records a visit trace ([`LocoClient::take_trace`])
//! that the benchmark harness either sums (single-client latency) or
//! replays through the closed-loop simulator (throughput).

pub mod cache;
pub mod client;
pub mod failover;
pub mod fsck;
pub mod metrics;
pub mod remote;

pub use cache::DirCache;
pub use client::{DmsEndpoint, FileHandle, FmsEndpoint, LocoClient, ObsWiring, OstEndpoint};
pub use failover::FailoverDms;
pub use fsck::{fsck, fsck_repair, FsckReport};
pub use metrics::{CacheStats, ClusterReport};
pub use remote::{ClusterAddrs, Transport, TransportCluster};

pub use loco_dms::DmsBackend;
pub use loco_fms::FmsMode;
pub use loco_obs::{
    FlightRecorder as OpFlightRecorder, OpRecord, SampleMode as TraceMode, Watchdog as OpWatchdog,
    WatchdogEvent, WatchdogKind,
};

use loco_dms::DirServer;
use loco_fms::FileServer;
use loco_kv::KvConfig;
use loco_net::{class, EndpointMetrics, ServerId, SimEndpoint};
use loco_obs::recorder::DEFAULT_K;
use loco_obs::{FlightRecorder, MetricsRegistry, SampleMode, Tracer, Watchdog, WatchdogConfig};
use loco_ostore::ObjectStore;
use loco_sim::time::{Nanos, MICROS, SECS};
use loco_types::HashRing;
use std::sync::Arc;

/// Cluster and client configuration. Defaults match the paper's
/// evaluation setup (§4.1): RTT 174 µs, 30 s leases, cache enabled,
/// decoupled file metadata, B+ tree DMS.
#[derive(Clone, Debug)]
pub struct LocoConfig {
    /// Number of Directory Metadata Servers. The paper's design uses
    /// exactly one (§3.1); values >1 enable the *sharded-DMS ablation*
    /// (directories hash-placed by path), which trades the single-RPC
    /// ancestor ACL check for per-component cross-shard lookups and
    /// loses range-move rename. See `ablation_dms_shards` in loco-bench.
    pub num_dms: u16,
    /// Number of File Metadata Servers.
    pub num_fms: u16,
    /// Number of object-store servers.
    pub num_ost: u16,
    /// Client directory-metadata cache (LocoFS-C vs LocoFS-NC).
    pub cache_enabled: bool,
    /// Decoupled (LocoFS-DF) vs coupled (LocoFS-CF) file metadata.
    pub fms_mode: FmsMode,
    /// DMS key-value backend (B+ tree vs hash; Fig 14).
    pub dms_backend: DmsBackend,
    /// Network round-trip time.
    pub rtt: Nanos,
    /// d-inode cache lease (§3.2.2: 30 s default).
    pub lease: Nanos,
    /// Data block size.
    pub block_size: u32,
    /// KV store configuration (cost model + device).
    pub kv: KvConfig,
    /// Client-side per-operation overhead per connected server
    /// (connection polling/multiplexing — the effect the paper blames
    /// for touch latency growing with server count, §4.2.1 obs. 2).
    pub conn_poll: Nanos,
    /// Fixed client CPU per operation.
    pub client_work: Nanos,
    /// When set, in-process TCP clusters ([`Transport::Tcp`] without
    /// `LOCO_CLUSTER`) persist every role under
    /// `<root>/<role><index>/` behind a `loco_kv::DurableStore` —
    /// the same WAL + checkpoint composition `locod --data-dir` uses.
    /// Benchmarks use this to measure wire throughput at real
    /// durability. Ignored by the Sim/Thread transports.
    pub durable_root: Option<std::path::PathBuf>,
    /// WAL fsync policy for `durable_root` clusters
    /// (`EveryRecord` = the paper-honest durable configuration;
    /// group commit amortizes the fsyncs across connections).
    pub wal_sync: loco_kv::SyncPolicy,
    /// Span-trace sampling policy. `None` reads the `LOCO_TRACE`
    /// environment variable (`off|slow|sample:N|all`, default `off`);
    /// `Some(mode)` pins it programmatically (tests, shell).
    pub trace: Option<SampleMode>,
}

impl Default for LocoConfig {
    fn default() -> Self {
        Self {
            num_dms: 1,
            num_fms: 1,
            num_ost: 1,
            cache_enabled: true,
            fms_mode: FmsMode::Decoupled,
            dms_backend: DmsBackend::BTree,
            rtt: 174 * MICROS,
            lease: 30 * SECS,
            block_size: 1 << 20,
            kv: KvConfig::default(),
            conn_poll: 20 * MICROS,
            client_work: 2 * MICROS,
            durable_root: None,
            wal_sync: loco_kv::SyncPolicy::OsManaged,
            trace: None,
        }
    }
}

impl LocoConfig {
    /// Paper-style shorthand: LocoFS-C with `n` metadata servers.
    pub fn with_servers(n: u16) -> Self {
        Self {
            num_fms: n,
            ..Self::default()
        }
    }

    /// Disable the client d-inode cache (LocoFS-NC).
    pub fn no_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Persist in-process TCP clusters under `root` with the given WAL
    /// fsync policy (see [`LocoConfig::durable_root`]).
    pub fn durable(
        mut self,
        root: impl Into<std::path::PathBuf>,
        policy: loco_kv::SyncPolicy,
    ) -> Self {
        self.durable_root = Some(root.into());
        self.wal_sync = policy;
        self
    }

    /// Store file metadata as one coupled record (LocoFS-CF).
    pub fn coupled(mut self) -> Self {
        self.fms_mode = FmsMode::Coupled;
        self
    }

    /// Sharded-DMS ablation with `n` directory servers.
    pub fn sharded_dms(mut self, n: u16) -> Self {
        self.num_dms = n.max(1);
        self
    }

    /// Pin the span-trace sampling policy (overrides `LOCO_TRACE`).
    pub fn traced(mut self, mode: SampleMode) -> Self {
        self.trace = Some(mode);
        self
    }
}

/// A simulated LocoFS cluster: one DMS, `num_fms` FMS, `num_ost` object
/// stores. Cheap to clone handles out of; all clients share the same
/// server state.
pub struct LocoCluster {
    /// Configuration the cluster was built with.
    pub config: LocoConfig,
    /// Directory metadata servers — exactly one in the paper's design;
    /// more only in the sharded-DMS ablation.
    pub dms: Vec<SimEndpoint<DirServer>>,
    /// File metadata servers.
    pub fms: Vec<SimEndpoint<FileServer>>,
    /// Object-store servers.
    pub ost: Vec<SimEndpoint<ObjectStore>>,
    /// Consistent-hash ring placing file metadata on FMS.
    pub ring: HashRing,
    /// Shared metrics registry every server endpoint (and every client
    /// created from this cluster) records into.
    pub registry: Arc<MetricsRegistry>,
    /// Head-based sampling decisions for loco-trace span collection.
    pub tracer: Arc<Tracer>,
    /// Flight recorder holding the K slowest sampled op span trees per
    /// op class (plus a recent-ops ring when sampling everything).
    pub flight: Arc<FlightRecorder>,
    /// Online tail-anomaly watchdog fed by every sampled completed op.
    pub watchdog: Arc<Watchdog>,
}

impl LocoCluster {
    /// Build a cluster per `config`.
    pub fn new(config: LocoConfig) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let dms = (0..config.num_dms.max(1))
            .map(|i| {
                let id = ServerId::new(class::DMS, i);
                SimEndpoint::new(
                    id,
                    DirServer::with_sid(config.dms_backend, config.kv.clone(), i),
                )
                .with_metrics(EndpointMetrics::register(&registry, id))
            })
            .collect();
        let fms = (0..config.num_fms)
            .map(|i| {
                let id = ServerId::new(class::FMS, i);
                SimEndpoint::new(
                    id,
                    FileServer::new(i + 1, config.fms_mode, config.kv.clone()),
                )
                .with_metrics(EndpointMetrics::register(&registry, id))
            })
            .collect();
        let ost = (0..config.num_ost)
            .map(|i| {
                let id = ServerId::new(class::OST, i);
                SimEndpoint::new(id, ObjectStore::new(config.kv.clone()))
                    .with_metrics(EndpointMetrics::register(&registry, id))
            })
            .collect();
        let ring = HashRing::new(config.num_fms);
        let mode = config.trace.unwrap_or_else(SampleMode::from_env);
        let flight = if mode == SampleMode::All {
            // Sampling everything: also keep a recent-ops ring so a
            // full timeline (not just tail outliers) can be dumped.
            FlightRecorder::new(DEFAULT_K).with_recent(1024)
        } else {
            FlightRecorder::new(DEFAULT_K)
        };
        Self {
            config,
            dms,
            fms,
            ost,
            ring,
            registry,
            tracer: Arc::new(Tracer::new(mode)),
            flight: Arc::new(flight),
            watchdog: Arc::new(Watchdog::new(WatchdogConfig::default())),
        }
    }

    /// Create a client with the given identity.
    pub fn client_as(&self, uid: u32, gid: u32) -> LocoClient {
        LocoClient::new(self, uid, gid)
    }

    /// Create a client with the default benchmark identity (uid 1000).
    pub fn client(&self) -> LocoClient {
        self.client_as(1000, 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_builds_with_requested_shape() {
        let c = LocoCluster::new(LocoConfig::with_servers(4));
        assert_eq!(c.fms.len(), 4);
        assert_eq!(c.ost.len(), 1);
        assert_eq!(c.ring.servers(), 4);
    }

    #[test]
    fn config_builders() {
        let c = LocoConfig::with_servers(8).no_cache().coupled();
        assert_eq!(c.num_fms, 8);
        assert!(!c.cache_enabled);
        assert_eq!(c.fms_mode, FmsMode::Coupled);
        assert_eq!(c.rtt, 174 * MICROS);
        assert_eq!(c.lease, 30 * SECS);
    }
}
