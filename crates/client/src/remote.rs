//! Transport selection: run the same LocoFS cluster over in-process
//! simulated endpoints, per-server threads, or real TCP sockets.
//!
//! The client logic is transport-blind ([`LocoClient`] holds
//! `Arc<dyn Endpoint>`s); this module is the wiring that decides what
//! those endpoints actually are:
//!
//! * [`Transport::Sim`] — the execute-then-replay default; identical to
//!   [`LocoCluster`].
//! * [`Transport::Thread`] — each server on its own OS thread behind a
//!   channel.
//! * [`Transport::Tcp`] — each server behind a real listening socket.
//!   By default the cluster is booted *in this process* on ephemeral
//!   localhost ports (every RPC still crosses the loopback wire); when
//!   `LOCO_CLUSTER` is set, no servers are started and the endpoints
//!   dial the given `locod` daemons instead:
//!
//!   ```text
//!   LOCO_CLUSTER="dms=127.0.0.1:7100;fms=127.0.0.1:7101,127.0.0.1:7102;ost=127.0.0.1:7103"
//!   ```
//!
//! Because servers return their *virtual* `Service::take_cost` in every
//! reply, visit traces — and everything replayed from them — are
//! identical across all three transports; the transport-equivalence
//! integration test pins that down.

use crate::client::{DmsEndpoint, FmsEndpoint, ObsWiring, OstEndpoint};
use crate::{LocoClient, LocoCluster, LocoConfig};
use loco_dms::DirServer;
use loco_fms::FileServer;
use loco_net::{class, tcp, EndpointMetrics, ServerId, TcpServerGuard, ThreadServerGuard};
use loco_obs::recorder::DEFAULT_K;
use loco_obs::{FlightRecorder, MetricsRegistry, SampleMode, Tracer, Watchdog, WatchdogConfig};
use loco_ostore::ObjectStore;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Wrap `inner` in a [`loco_kv::DurableStore`] under `root/<role><i>/`
/// with the cluster's WAL sync policy — the same composition `locod
/// --data-dir` uses, so in-process benchmark clusters measure the wire
/// at real durability.
fn durable_store(
    root: &std::path::Path,
    policy: loco_kv::SyncPolicy,
    role: &str,
    i: u16,
    inner: Box<dyn loco_kv::KvStore>,
) -> Box<dyn loco_kv::KvStore> {
    Box::new(
        loco_kv::DurableStore::open(root.join(format!("{role}{i}")), inner)
            .unwrap_or_else(|e| panic!("open durable {role}{i} store: {e}"))
            .with_sync_policy(policy),
    )
}

/// Which endpoint flavour a cluster (or benchmark run) uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Transport {
    /// In-process synchronous endpoints (execute-then-replay default).
    #[default]
    Sim,
    /// One OS thread per server, mpsc channels.
    Thread,
    /// Real TCP sockets (in-process localhost servers, or external
    /// `locod` daemons via `LOCO_CLUSTER`).
    Tcp,
}

impl Transport {
    /// Parse a `--transport` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sim" => Some(Transport::Sim),
            "thread" | "threaded" => Some(Transport::Thread),
            "tcp" => Some(Transport::Tcp),
            _ => None,
        }
    }

    /// Flag-style name (`sim`/`thread`/`tcp`).
    pub fn name(self) -> &'static str {
        match self {
            Transport::Sim => "sim",
            Transport::Thread => "thread",
            Transport::Tcp => "tcp",
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Addresses of an externally launched cluster, parsed from
/// `LOCO_CLUSTER` (`dms=a;fms=a,b;ost=a,b` — whitespace ignored).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterAddrs {
    /// DMS listen addresses (the paper's design has exactly one).
    pub dms: Vec<String>,
    /// Warm-standby DMS replicas (`dms_standby=a,b`; optional). Not
    /// dialed for normal traffic — failover candidates only.
    pub dms_standby: Vec<String>,
    /// FMS listen addresses, in ring order.
    pub fms: Vec<String>,
    /// Object-store listen addresses.
    pub ost: Vec<String>,
}

impl ClusterAddrs {
    /// Parse the `LOCO_CLUSTER` format. Returns `None` when any role is
    /// missing or empty.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut dms = Vec::new();
        let mut dms_standby = Vec::new();
        let mut fms = Vec::new();
        let mut ost = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (role, addrs) = part.split_once('=')?;
            let list: Vec<String> = addrs
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            match role.trim() {
                "dms" => dms = list,
                "dms_standby" => dms_standby = list,
                "fms" => fms = list,
                "ost" => ost = list,
                _ => return None,
            }
        }
        if dms.is_empty() || fms.is_empty() || ost.is_empty() {
            return None;
        }
        Some(Self {
            dms,
            dms_standby,
            fms,
            ost,
        })
    }

    /// Read the cluster view from the environment. `LOCO_CLUSTER_FILE`
    /// (a path whose contents are one `LOCO_CLUSTER` line) takes
    /// precedence over `LOCO_CLUSTER`: a file can be rewritten after a
    /// failover, so clients that re-read the view mid-run pick up the
    /// promoted primary without restarting.
    pub fn from_env() -> Option<Self> {
        if let Ok(path) = std::env::var("LOCO_CLUSTER_FILE") {
            if let Ok(contents) = std::fs::read_to_string(path.trim()) {
                if let Some(addrs) = ClusterAddrs::parse(contents.trim()) {
                    return Some(addrs);
                }
            }
        }
        ClusterAddrs::parse(&std::env::var("LOCO_CLUSTER").ok()?)
    }
}

/// Keeps transport-specific server halves alive for the cluster's
/// lifetime; dropping it shuts the servers down (threads joined, TCP
/// listeners drained).
enum ServerGuards {
    /// Sim endpoints own their services; external TCP daemons outlive us.
    None,
    Thread {
        _dms: Vec<ThreadServerGuard<loco_dms::DmsRequest, loco_dms::DmsResponse>>,
        _fms: Vec<ThreadServerGuard<loco_fms::FmsRequest, loco_fms::FmsResponse>>,
        _ost: Vec<ThreadServerGuard<loco_ostore::OstoreRequest, loco_ostore::OstoreResponse>>,
    },
    Tcp(#[allow(dead_code)] Vec<TcpServerGuard>),
}

/// A LocoFS cluster over a chosen [`Transport`], handing out
/// transport-blind [`LocoClient`]s. The equivalent of [`LocoCluster`]
/// when the endpoints are not (necessarily) simulated.
pub struct TransportCluster {
    /// Configuration the cluster was built with (`num_fms`/`num_ost`
    /// reflect the actual endpoint counts for external clusters).
    pub config: LocoConfig,
    /// Which transport the endpoints speak.
    pub transport: Transport,
    /// Directory metadata server endpoints.
    pub dms: Vec<DmsEndpoint>,
    /// File metadata server endpoints.
    pub fms: Vec<FmsEndpoint>,
    /// Object-store endpoints.
    pub ost: Vec<OstEndpoint>,
    /// Client-side metrics registry. For in-process transports the
    /// servers record here too; external daemons keep their own
    /// registries, scraped via `Control::Metrics`.
    pub registry: Arc<MetricsRegistry>,
    /// Head-based span-trace sampler shared by all clients.
    pub tracer: Arc<Tracer>,
    /// Flight recorder for the slowest sampled ops.
    pub flight: Arc<FlightRecorder>,
    /// Tail-anomaly watchdog.
    pub watchdog: Arc<Watchdog>,
    _guards: ServerGuards,
}

fn obs_stack(
    config: &LocoConfig,
) -> (
    Arc<MetricsRegistry>,
    Arc<Tracer>,
    Arc<FlightRecorder>,
    Arc<Watchdog>,
) {
    let mode = config.trace.unwrap_or_else(SampleMode::from_env);
    let flight = if mode == SampleMode::All {
        FlightRecorder::new(DEFAULT_K).with_recent(1024)
    } else {
        FlightRecorder::new(DEFAULT_K)
    };
    // Route watchdog firings into the structured log ring (tagged with
    // the slow op's trace id) instead of the default raw stderr line.
    loco_obs::watchdog::set_fire_hook(|ev| {
        let _span = loco_log::span_scope(ev.trace_id, 0);
        loco_log::warn!("watchdog", "tail anomaly";
            kind = format_args!("{:?}", ev.kind),
            op = format_args!("{}", ev.op),
            latency_ns = ev.latency_ns,
            threshold_ns = ev.threshold_ns,
            baseline_p99_ns = ev.baseline_p99_ns);
    });
    (
        Arc::new(MetricsRegistry::new()),
        Arc::new(Tracer::new(mode)),
        Arc::new(flight),
        Arc::new(Watchdog::new(WatchdogConfig::default())),
    )
}

impl TransportCluster {
    /// Build a cluster per `config` over `transport`. For
    /// [`Transport::Tcp`] this boots in-process localhost servers on
    /// ephemeral ports unless `LOCO_CLUSTER` points at external
    /// daemons.
    pub fn new(config: LocoConfig, transport: Transport) -> Self {
        match transport {
            Transport::Sim => Self::sim(config),
            Transport::Thread => Self::threaded(config),
            Transport::Tcp => match ClusterAddrs::from_env() {
                Some(addrs) => Self::tcp_external(config, &addrs),
                None => Self::tcp_local(config),
            },
        }
    }

    fn sim(config: LocoConfig) -> Self {
        let cluster = LocoCluster::new(config);
        Self {
            config: cluster.config.clone(),
            transport: Transport::Sim,
            dms: cluster
                .dms
                .iter()
                .map(|e| Arc::new(e.clone()) as DmsEndpoint)
                .collect(),
            fms: cluster
                .fms
                .iter()
                .map(|e| Arc::new(e.clone()) as FmsEndpoint)
                .collect(),
            ost: cluster
                .ost
                .iter()
                .map(|e| Arc::new(e.clone()) as OstEndpoint)
                .collect(),
            registry: cluster.registry,
            tracer: cluster.tracer,
            flight: cluster.flight,
            watchdog: cluster.watchdog,
            _guards: ServerGuards::None,
        }
    }

    fn threaded(config: LocoConfig) -> Self {
        let (registry, tracer, flight, watchdog) = obs_stack(&config);
        let mut dms = Vec::new();
        let mut dms_guards = Vec::new();
        for i in 0..config.num_dms.max(1) {
            let id = ServerId::new(class::DMS, i);
            let m = EndpointMetrics::register(&registry, id);
            let (ep, guard) = loco_net::spawn_with_metrics(
                id,
                DirServer::with_sid(config.dms_backend, config.kv.clone(), i),
                Some(m),
            );
            dms.push(Arc::new(ep) as DmsEndpoint);
            dms_guards.push(guard);
        }
        let mut fms = Vec::new();
        let mut fms_guards = Vec::new();
        for i in 0..config.num_fms {
            let id = ServerId::new(class::FMS, i);
            let m = EndpointMetrics::register(&registry, id);
            let (ep, guard) = loco_net::spawn_with_metrics(
                id,
                FileServer::new(i + 1, config.fms_mode, config.kv.clone()),
                Some(m),
            );
            fms.push(Arc::new(ep) as FmsEndpoint);
            fms_guards.push(guard);
        }
        let mut ost = Vec::new();
        let mut ost_guards = Vec::new();
        for i in 0..config.num_ost {
            let id = ServerId::new(class::OST, i);
            let m = EndpointMetrics::register(&registry, id);
            let (ep, guard) =
                loco_net::spawn_with_metrics(id, ObjectStore::new(config.kv.clone()), Some(m));
            ost.push(Arc::new(ep) as OstEndpoint);
            ost_guards.push(guard);
        }
        Self {
            config,
            transport: Transport::Thread,
            dms,
            fms,
            ost,
            registry,
            tracer,
            flight,
            watchdog,
            _guards: ServerGuards::Thread {
                _dms: dms_guards,
                _fms: fms_guards,
                _ost: ost_guards,
            },
        }
    }

    /// Boot every server of the cluster inside this process, each on
    /// its own ephemeral localhost port, and dial them over TCP — the
    /// full wire protocol without external process management.
    fn tcp_local(config: LocoConfig) -> Self {
        let (registry, tracer, flight, watchdog) = obs_stack(&config);
        // Durable clusters publish their WAL counters (fsyncs, batch
        // sizes) into the shared registry on a short maintenance beat
        // so benchmarks can read them without a drain.
        let maintain = config
            .durable_root
            .as_deref()
            .map(|_| Duration::from_millis(200));
        let opts = |m: Arc<EndpointMetrics>| tcp::ServeOptions {
            metrics: Some(m),
            registry: Some(registry.clone()),
            maintain_every: maintain,
            ..Default::default()
        };
        let mut guards = Vec::new();
        let mut dms = Vec::new();
        for i in 0..config.num_dms.max(1) {
            let id = ServerId::new(class::DMS, i);
            let m = EndpointMetrics::register(&registry, id);
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
            let server = match config.durable_root.as_deref() {
                Some(root) => {
                    let inner: Box<dyn loco_kv::KvStore> = match config.dms_backend {
                        loco_dms::DmsBackend::BTree => {
                            Box::new(loco_kv::BTreeDb::new(config.kv.clone()))
                        }
                        loco_dms::DmsBackend::Hash => {
                            Box::new(loco_kv::HashDb::new(config.kv.clone()))
                        }
                    };
                    DirServer::with_store(durable_store(root, config.wal_sync, "dms", i, inner), i)
                }
                None => DirServer::with_sid(config.dms_backend, config.kv.clone(), i),
            };
            let guard = tcp::serve_tcp(id, server, listener, opts(m)).expect("serve dms");
            dms.push(Arc::new(tcp::TcpEndpoint::<DirServer>::connect(
                id,
                &guard.addr().to_string(),
            )) as DmsEndpoint);
            guards.push(guard);
        }
        let mut fms = Vec::new();
        for i in 0..config.num_fms {
            let id = ServerId::new(class::FMS, i);
            let m = EndpointMetrics::register(&registry, id);
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
            let server = match config.durable_root.as_deref() {
                Some(root) => {
                    let cfg = FileServer::tune_cfg(config.fms_mode, config.kv.clone());
                    let inner: Box<dyn loco_kv::KvStore> = Box::new(loco_kv::HashDb::new(cfg));
                    FileServer::with_store(
                        durable_store(root, config.wal_sync, "fms", i, inner),
                        i + 1,
                        config.fms_mode,
                    )
                }
                None => FileServer::new(i + 1, config.fms_mode, config.kv.clone()),
            };
            let guard = tcp::serve_tcp(id, server, listener, opts(m)).expect("serve fms");
            fms.push(Arc::new(tcp::TcpEndpoint::<FileServer>::connect(
                id,
                &guard.addr().to_string(),
            )) as FmsEndpoint);
            guards.push(guard);
        }
        let mut ost = Vec::new();
        for i in 0..config.num_ost {
            let id = ServerId::new(class::OST, i);
            let m = EndpointMetrics::register(&registry, id);
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
            let server = match config.durable_root.as_deref() {
                Some(root) => {
                    let inner: Box<dyn loco_kv::KvStore> =
                        Box::new(loco_kv::HashDb::new(config.kv.clone()));
                    ObjectStore::with_store(durable_store(root, config.wal_sync, "ost", i, inner))
                }
                None => ObjectStore::new(config.kv.clone()),
            };
            let guard = tcp::serve_tcp(id, server, listener, opts(m)).expect("serve ost");
            ost.push(Arc::new(tcp::TcpEndpoint::<ObjectStore>::connect(
                id,
                &guard.addr().to_string(),
            )) as OstEndpoint);
            guards.push(guard);
        }
        Self {
            config,
            transport: Transport::Tcp,
            dms,
            fms,
            ost,
            registry,
            tracer,
            flight,
            watchdog,
            _guards: ServerGuards::Tcp(guards),
        }
    }

    /// Dial an externally launched cluster (the `scripts/cluster.sh`
    /// shape): no servers are started here, and `config.num_*` are
    /// overridden by the address counts.
    pub fn tcp_external(mut config: LocoConfig, addrs: &ClusterAddrs) -> Self {
        let (registry, tracer, flight, watchdog) = obs_stack(&config);
        config.num_dms = addrs.dms.len() as u16;
        config.num_fms = addrs.fms.len() as u16;
        config.num_ost = addrs.ost.len() as u16;
        // The daemons keep their own registries (scraped out of band
        // via Control::Metrics), so the client-side endpoints record
        // the *client's* view of each RPC into the local registry —
        // without this, `loco_rpc_*` families would be empty
        // client-side.
        //
        // The DMS dials through [`crate::failover::FailoverDms`] so a
        // fenced or dead primary triggers a redial to the promoted
        // standby instead of surfacing a hard error.
        let dms = addrs
            .dms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let id = ServerId::new(class::DMS, i as u16);
                let m = EndpointMetrics::register(&registry, id);
                Arc::new(crate::failover::FailoverDms::new(id, a, Some(m))) as DmsEndpoint
            })
            .collect();
        let fms = addrs
            .fms
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let id = ServerId::new(class::FMS, i as u16);
                let m = EndpointMetrics::register(&registry, id);
                Arc::new(tcp::TcpEndpoint::<FileServer>::connect(id, a).with_metrics(m))
                    as FmsEndpoint
            })
            .collect();
        let ost = addrs
            .ost
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let id = ServerId::new(class::OST, i as u16);
                let m = EndpointMetrics::register(&registry, id);
                Arc::new(tcp::TcpEndpoint::<ObjectStore>::connect(id, a).with_metrics(m))
                    as OstEndpoint
            })
            .collect();
        Self {
            config,
            transport: Transport::Tcp,
            dms,
            fms,
            ost,
            registry,
            tracer,
            flight,
            watchdog,
            _guards: ServerGuards::None,
        }
    }

    /// Create a client with the given identity.
    pub fn client_as(&self, uid: u32, gid: u32) -> LocoClient {
        LocoClient::with_endpoints(
            self.config.clone(),
            self.dms.clone(),
            self.fms.clone(),
            self.ost.clone(),
            ObsWiring {
                registry: self.registry.clone(),
                tracer: self.tracer.clone(),
                flight: self.flight.clone(),
                watchdog: self.watchdog.clone(),
            },
            uid,
            gid,
        )
    }

    /// Create a client with the default benchmark identity (uid 1000).
    pub fn client(&self) -> LocoClient {
        self.client_as(1000, 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_parses_flag_values() {
        assert_eq!(Transport::parse("sim"), Some(Transport::Sim));
        assert_eq!(Transport::parse("Thread"), Some(Transport::Thread));
        assert_eq!(Transport::parse("TCP"), Some(Transport::Tcp));
        assert_eq!(Transport::parse("carrier-pigeon"), None);
        assert_eq!(Transport::Tcp.name(), "tcp");
    }

    #[test]
    fn cluster_addrs_parse() {
        let a = ClusterAddrs::parse(
            "dms=127.0.0.1:7100;fms=127.0.0.1:7101, 127.0.0.1:7102;ost=127.0.0.1:7103",
        )
        .unwrap();
        assert_eq!(a.dms.len(), 1);
        assert_eq!(a.fms, vec!["127.0.0.1:7101", "127.0.0.1:7102"]);
        assert_eq!(a.ost.len(), 1);
        assert!(a.dms_standby.is_empty(), "standbys default to none");
        assert!(ClusterAddrs::parse("dms=;fms=a;ost=b").is_none());
        assert!(ClusterAddrs::parse("fms=a;ost=b").is_none());
        assert!(ClusterAddrs::parse("bogus").is_none());
    }

    #[test]
    fn cluster_addrs_parse_standbys() {
        let a = ClusterAddrs::parse(
            "dms=127.0.0.1:7100;dms_standby=127.0.0.1:7110,127.0.0.1:7111;\
             fms=127.0.0.1:7101;ost=127.0.0.1:7103",
        )
        .unwrap();
        assert_eq!(a.dms, vec!["127.0.0.1:7100"]);
        assert_eq!(a.dms_standby, vec!["127.0.0.1:7110", "127.0.0.1:7111"]);
    }

    #[test]
    fn same_ops_agree_across_all_transports() {
        let run = |transport: Transport| {
            let cluster = TransportCluster::new(LocoConfig::with_servers(2), transport);
            let mut c = cluster.client();
            c.mkdir("/d", 0o755).unwrap();
            c.create("/d/f", 0o644).unwrap();
            let st = c.stat_file("/d/f").unwrap();
            let missing = c.stat_file("/d/nope").unwrap_err();
            let t = c.take_trace();
            (st.access.mode, missing, t.visits)
        };
        let sim = run(Transport::Sim);
        let thread = run(Transport::Thread);
        let tcp = run(Transport::Tcp);
        assert_eq!(sim, thread);
        assert_eq!(sim, tcp);
    }
}
