//! DMS failover: redial the current primary after a fence.
//!
//! With warm-standby replication (`loco-repl`), the DMS a client is
//! talking to can stop being the primary at any moment — it crashed
//! and a standby was promoted, or it got fenced by a higher epoch. The
//! transport surfaces both as [`RpcError::FencedEpoch`] (the server
//! answered but refused) or a connection-class failure (the server is
//! gone). [`FailoverDms`] wraps the DMS endpoint and, on either, re-
//! reads the cluster view (`LOCO_CLUSTER_FILE`, falling back to
//! `LOCO_CLUSTER`), probes every DMS replica with `ReplStatus`, and
//! redials whichever one claims `Primary` at the highest epoch.
//!
//! FMS/OST endpoints are untouched: the paper's design replicates only
//! the directory service here, and file/data servers shard rather than
//! replicate.

use crate::remote::ClusterAddrs;
use loco_dms::{DirServer, DmsRequest, DmsResponse};
use loco_net::tcp::{RetryPolicy, TcpEndpoint};
use loco_net::{CallCtx, Endpoint, EndpointMetrics, RpcError, ServerId};
use loco_repl::Role;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long a fenced/unreachable client keeps hunting for a new
/// primary before surfacing the error. `LOCO_DMS_FAILOVER_MS`
/// overrides (the failover tests shrink it; chaos runs widen it).
fn failover_window() -> Duration {
    std::env::var("LOCO_DMS_FAILOVER_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(5))
}

/// Short single-attempt policy for `ReplStatus` probes: resolving a
/// primary must never inherit the data path's retry budget.
fn probe_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 1,
        backoff: Duration::from_millis(5),
        deadline: Duration::from_millis(300),
        connect_timeout: Duration::from_millis(300),
        reconnect_window: Duration::ZERO,
        ..RetryPolicy::default()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Current {
    addr: String,
    ep: Arc<TcpEndpoint<DirServer>>,
}

/// A DMS endpoint that follows the primary across failovers.
pub struct FailoverDms {
    id: ServerId,
    metrics: Option<Arc<EndpointMetrics>>,
    current: Mutex<Current>,
}

impl FailoverDms {
    /// Wrap a DMS address; `metrics`, when given, ride every redial.
    pub fn new(id: ServerId, addr: &str, metrics: Option<Arc<EndpointMetrics>>) -> Self {
        Self {
            id,
            metrics: metrics.clone(),
            current: Mutex::new(Current {
                addr: addr.to_string(),
                ep: Arc::new(Self::dial(id, addr, metrics)),
            }),
        }
    }

    fn dial(
        id: ServerId,
        addr: &str,
        metrics: Option<Arc<EndpointMetrics>>,
    ) -> TcpEndpoint<DirServer> {
        let ep = TcpEndpoint::<DirServer>::connect(id, addr);
        match metrics {
            Some(m) => ep.with_metrics(m),
            None => ep,
        }
    }

    /// The address currently believed to be the primary.
    pub fn current_addr(&self) -> String {
        lock(&self.current).addr.clone()
    }

    /// Every DMS replica address from the (re-read) cluster view, the
    /// current address included so a flapping view never strands us.
    fn candidates(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(view) = ClusterAddrs::from_env() {
            out.extend(view.dms);
            out.extend(view.dms_standby);
        }
        let cur = self.current_addr();
        if !out.contains(&cur) {
            out.push(cur);
        }
        out
    }

    /// Probe every candidate with `ReplStatus`; adopt the `Primary`
    /// claim with the highest epoch. Returns the endpoint to retry on.
    fn resolve_primary(&self) -> Option<Arc<TcpEndpoint<DirServer>>> {
        let mut best: Option<(u64, String)> = None;
        for addr in self.candidates() {
            let probe = TcpEndpoint::<DirServer>::with_policy(self.id, &addr, probe_policy());
            let mut ctx = CallCtx::new();
            if let Ok(DmsResponse::Repl(info)) = probe.try_call(&mut ctx, DmsRequest::ReplStatus {})
            {
                if info.role == Role::Primary.as_u8()
                    && best.as_ref().is_none_or(|(e, _)| info.epoch > *e)
                {
                    best = Some((info.epoch, addr));
                }
            }
        }
        let (epoch, addr) = best?;
        let mut cur = lock(&self.current);
        if cur.addr != addr {
            loco_log::info!("client.failover", "dms primary moved; redialing";
                addr = addr.clone(), epoch = epoch);
            cur.addr = addr.clone();
            cur.ep = Arc::new(Self::dial(self.id, &addr, self.metrics.clone()));
        }
        Some(Arc::clone(&cur.ep))
    }

    fn failover_worthy(e: &RpcError) -> bool {
        match e {
            RpcError::FencedEpoch { .. }
            | RpcError::Connect(_)
            | RpcError::ConnectionLost(_)
            | RpcError::Timeout { .. } => true,
            RpcError::Exhausted { last, .. } => Self::failover_worthy(last),
            // The breaker only opens after repeated exhaustion against one
            // address — exactly when hunting for a new primary pays off.
            RpcError::CircuitOpen { .. } => true,
            RpcError::MaybeApplied { last, .. } => Self::failover_worthy(last),
            // Overloaded/Expired mean the server is alive and answering;
            // redialing another address would just spread the load spike.
            RpcError::Overloaded | RpcError::Expired => false,
            RpcError::Decode(_) => false,
        }
    }
}

impl Endpoint<DmsRequest, DmsResponse> for FailoverDms {
    fn call(&self, ctx: &mut CallCtx, req: DmsRequest) -> DmsResponse {
        match self.try_call(ctx, req) {
            Ok(resp) => resp,
            Err(e) => panic!("dms rpc failed after failover hunt: {e}"),
        }
    }

    fn id(&self) -> ServerId {
        self.id
    }

    fn try_call(&self, ctx: &mut CallCtx, req: DmsRequest) -> Result<DmsResponse, RpcError> {
        let ep = Arc::clone(&lock(&self.current).ep);
        let mut last = match ep.try_call(ctx, req.clone()) {
            Ok(resp) => return Ok(resp),
            Err(e) => e,
        };
        let window = failover_window();
        let start = Instant::now();
        while Self::failover_worthy(&last) && start.elapsed() < window {
            if let Some(ep) = self.resolve_primary() {
                match ep.try_call(ctx, req.clone()) {
                    Ok(resp) => return Ok(resp),
                    Err(e) => last = e,
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        Err(last)
    }
}
