//! Client directory-metadata cache (§3.2.2).
//!
//! Caches **directory inodes only** — never file inodes or dirent lists
//! — under a lease (30 s by default). The paper sizes d-inodes at 256 B
//! and argues a client touches a bounded set of directories, so the
//! cache stays small; we additionally enforce a capacity with FIFO-ish
//! eviction as a safety net.
//!
//! Time is the client's *virtual* clock: leases expire as simulated
//! time advances, reproducing the paper's observation that the strict
//! lease causes d-inode cache misses for stat-heavy workloads (§4.2.2
//! obs. 4).

use loco_sim::time::Nanos;
use loco_types::DirInode;
use std::collections::HashMap;

/// Lease-based d-inode cache keyed by full path.
#[derive(Debug)]
pub struct DirCache {
    entries: HashMap<String, (DirInode, Nanos)>,
    lease: Nanos,
    capacity: usize,
    hits: u64,
    misses: u64,
    expired: u64,
}

impl DirCache {
    /// Create a new instance with default settings.
    pub fn new(lease: Nanos, capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            lease,
            capacity,
            hits: 0,
            misses: 0,
            expired: 0,
        }
    }

    /// Look up a d-inode; returns it only while its lease is valid.
    pub fn get(&mut self, path: &str, now: Nanos) -> Option<DirInode> {
        match self.entries.get(path) {
            Some((inode, expiry)) if *expiry > now => {
                self.hits += 1;
                Some(*inode)
            }
            Some(_) => {
                // A present-but-stale entry is the §4.2.2 obs. 4 case:
                // counted both as a miss and as an expired lease.
                self.entries.remove(path);
                self.misses += 1;
                self.expired += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert/refresh a d-inode with a fresh lease.
    pub fn put(&mut self, path: &str, inode: DirInode, now: Nanos) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(path) {
            // Capacity safety net: drop expired entries first, then an
            // arbitrary one (bounded client memory, §3.2.2).
            let expired: Vec<String> = self
                .entries
                .iter()
                .filter(|(_, (_, exp))| *exp <= now)
                .map(|(k, _)| k.clone())
                .collect();
            for k in expired {
                self.entries.remove(&k);
            }
            if self.entries.len() >= self.capacity {
                if let Some(k) = self.entries.keys().next().cloned() {
                    self.entries.remove(&k);
                }
            }
        }
        self.entries
            .insert(path.to_string(), (inode, now + self.lease));
    }

    /// Drop one path (rmdir, failed lookups).
    pub fn invalidate(&mut self, path: &str) {
        self.entries.remove(path);
    }

    /// Drop a path and everything beneath it (directory rename).
    pub fn invalidate_subtree(&mut self, path: &str) {
        self.entries
            .retain(|k, _| !loco_types::path::is_same_or_descendant(k, path));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Misses caused specifically by an expired lease (a subset of the
    /// miss count): the entry was cached but its lease had lapsed.
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_sim::time::SECS;
    use loco_types::Uuid;

    fn inode(fid: u64) -> DirInode {
        DirInode::new(Uuid::new(0, fid), 0o755, 1, 1, 0)
    }

    fn cache() -> DirCache {
        DirCache::new(30 * SECS, 1024)
    }

    #[test]
    fn hit_within_lease() {
        let mut c = cache();
        c.put("/a", inode(1), 0);
        assert_eq!(c.get("/a", 29 * SECS).unwrap().uuid, Uuid::new(0, 1));
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 0));
    }

    #[test]
    fn miss_after_lease_expiry() {
        let mut c = cache();
        c.put("/a", inode(1), 0);
        assert!(c.get("/a", 30 * SECS).is_none());
        assert!(c.is_empty(), "expired entry evicted");
        let (h, m) = c.stats();
        assert_eq!((h, m), (0, 1));
        assert_eq!(c.expired(), 1, "stale entry counts as an expired lease");
        // A cold miss is not an expired lease.
        assert!(c.get("/never-cached", 1).is_none());
        assert_eq!(c.expired(), 1);
        assert_eq!(c.stats().1, 2);
    }

    #[test]
    fn refresh_extends_lease() {
        let mut c = cache();
        c.put("/a", inode(1), 0);
        c.put("/a", inode(1), 20 * SECS);
        assert!(c.get("/a", 45 * SECS).is_some());
    }

    #[test]
    fn invalidate_single_and_subtree() {
        let mut c = cache();
        for p in ["/a", "/a/b", "/a/b/c", "/ab", "/z"] {
            c.put(p, inode(1), 0);
        }
        c.invalidate("/z");
        assert!(c.get("/z", 1).is_none());
        c.invalidate_subtree("/a");
        assert!(c.get("/a", 1).is_none());
        assert!(c.get("/a/b/c", 1).is_none());
        // Sibling sharing the string prefix survives.
        assert!(c.get("/ab", 1).is_some());
    }

    #[test]
    fn capacity_is_bounded() {
        let mut c = DirCache::new(30 * SECS, 8);
        for i in 0..100 {
            c.put(&format!("/d{i}"), inode(i), 0);
        }
        assert!(c.len() <= 8);
    }

    #[test]
    fn eviction_prefers_expired_entries() {
        let mut c = DirCache::new(10 * SECS, 2);
        c.put("/old", inode(1), 0);
        c.put("/fresh", inode(2), 15 * SECS);
        // Inserting at t=15 s: /old (expired at 10 s) must be the victim.
        c.put("/new", inode(3), 15 * SECS);
        assert!(c.get("/fresh", 16 * SECS).is_some());
        assert!(c.get("/new", 16 * SECS).is_some());
    }
}
