//! GlusterFS model — serverless hash-distributed metadata (DHT).
//!
//! Modeled design points:
//!
//! * **no metadata server**: metadata lives as xattrs on the bricks;
//!   files are placed by hashing their path onto one brick;
//! * **directories exist on every brick**: mkdir/rmdir must update all
//!   N bricks — which is why the paper measures Gluster's mkdir latency
//!   as the worst of all systems and *growing* with server count
//!   (§4.2.1: "Gluster gets the highest latency in mkdir due to its
//!   directory synchronization operation in every node");
//! * **lookup broadcast**: a fresh lookup consults every brick
//!   (self-heal check), then entry locks bracket the update — several
//!   round trips per create even before the update itself;
//! * per-brick update cost [`calib::GLUSTER_UPDATE`] anchors
//!   single-server create ≈4.3 K IOPS (LocoFS = 23×, §4.2.2).

use crate::calib;
use crate::fs_trait::DistFs;
use crate::mds::{MdsReq, MdsResp, MdsStore, ModelMds};
use crate::model_util::{place, FatInode, ModelBase};
use loco_kv::KvConfig;
use loco_net::{class, Endpoint, JobTrace, Nanos, ServerId, SimEndpoint};
use loco_ostore::{ObjectStore, OstoreRequest, OstoreResponse};
use loco_sim::time::MICROS;
use loco_types::{normalize, parent, FsError, FsResult, UuidGen};
use std::collections::HashSet;

/// The GlusterFS baseline model.
pub struct GlusterFsModel {
    bricks: Vec<SimEndpoint<ModelMds>>,
    ost: Vec<SimEndpoint<ObjectStore>>,
    base: ModelBase,
    uuids: UuidGen,
    block_size: u64,
}

impl GlusterFsModel {
    /// Create a new instance with default settings.
    pub fn new(num_bricks: u16) -> Self {
        let bricks = (0..num_bricks)
            .map(|i| {
                SimEndpoint::new(
                    ServerId::new(class::MDS, i),
                    ModelMds::new(MdsStore::Hash, KvConfig::default()),
                )
            })
            .collect::<Vec<_>>();
        let ost = vec![SimEndpoint::new(
            ServerId::new(class::OST, 0),
            ObjectStore::new(KvConfig::default()),
        )];
        let mut s = Self {
            bricks,
            ost,
            base: ModelBase::new(174 * MICROS, 2 * MICROS),
            uuids: UuidGen::new(0),
            block_size: 1 << 20,
        };
        for i in 0..s.bricks.len() {
            let ep = s.bricks[i].clone();
            s.base.call(
                &ep,
                MdsReq::Put(b"/".to_vec(), FatInode::dir(0o777).encode()),
            );
        }
        let _ = s.base.ctx.take_trace();
        s
    }

    fn brick_of(&self, p: &str) -> usize {
        place(p, self.bricks.len())
    }

    fn call_at(&mut self, idx: usize, req: MdsReq) -> MdsResp {
        let ep = self.bricks[idx].clone();
        self.base.call(&ep, req)
    }

    /// Broadcast lookup of a directory (the DHT self-heal check): one
    /// RPC to every brick. Fails with `NotADirectory` when the path
    /// names a file.
    fn lookup_dir_everywhere(&mut self, dir: &str) -> FsResult<()> {
        let mut found: Option<FatInode> = None;
        for i in 0..self.bricks.len() {
            let v = self
                .call_at(
                    i,
                    MdsReq::Multi(vec![
                        MdsReq::Get(dir.as_bytes().to_vec()),
                        MdsReq::Work(calib::GLUSTER_LOOKUP),
                    ]),
                )
                .multi()
                .remove(0)
                .value();
            if let Some(v) = v {
                found = FatInode::decode(&v);
            }
        }
        match found {
            Some(inode) if inode.is_dir => Ok(()),
            Some(_) => Err(FsError::NotADirectory),
            None => Err(FsError::NotFound),
        }
    }

    /// Entry-lock round trip at the brick owning the entry.
    fn entrylk(&mut self, idx: usize) {
        self.call_at(idx, MdsReq::Work(5 * MICROS));
    }

    fn get_file_inode(&mut self, p: &str) -> FsResult<FatInode> {
        let idx = self.brick_of(p);
        let v = self
            .call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Get(p.as_bytes().to_vec()),
                    MdsReq::Work(calib::GLUSTER_LOOKUP),
                ]),
            )
            .multi()
            .remove(0)
            .value()
            .ok_or(FsError::NotFound)?;
        let inode = FatInode::decode(&v).ok_or_else(|| FsError::Io("bad inode".into()))?;
        if inode.is_dir {
            return Err(FsError::IsADirectory);
        }
        Ok(inode)
    }

    /// Count children of `dir` across all bricks, deduplicating
    /// directory records (which exist on every brick).
    fn children(&mut self, dir: &str) -> Vec<String> {
        let mut prefix = dir.as_bytes().to_vec();
        if *prefix.last().unwrap() != b'/' {
            prefix.push(b'/');
        }
        let mut names: HashSet<String> = HashSet::new();
        for i in 0..self.bricks.len() {
            for (k, _) in self
                .call_at(i, MdsReq::ScanPrefix(prefix.clone()))
                .entries()
            {
                let rest = &k[prefix.len()..];
                if !rest.contains(&b'/') {
                    if let Ok(s) = std::str::from_utf8(rest) {
                        names.insert(s.to_string());
                    }
                }
            }
        }
        names.into_iter().collect()
    }
}

impl DistFs for GlusterFsModel {
    fn name(&self) -> String {
        "Gluster".into()
    }

    fn rtt(&self) -> Nanos {
        self.base.rtt
    }

    fn mkdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::AlreadyExists)?;
            self.lookup_dir_everywhere(dir)?;
            if self
                .call_at(self.brick_of(&p), MdsReq::Contains(p.as_bytes().to_vec()))
                .bool()
            {
                return Err(FsError::AlreadyExists);
            }
            // Directory synchronization on EVERY brick.
            for i in 0..self.bricks.len() {
                self.call_at(
                    i,
                    MdsReq::Multi(vec![
                        MdsReq::Put(p.as_bytes().to_vec(), FatInode::dir(0o755).encode()),
                        MdsReq::Work(calib::GLUSTER_UPDATE),
                    ]),
                );
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn rmdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            self.lookup_dir_everywhere(&p)?;
            if !self.children(&p).is_empty() {
                return Err(FsError::NotEmpty);
            }
            for i in 0..self.bricks.len() {
                self.call_at(
                    i,
                    MdsReq::Multi(vec![
                        MdsReq::Delete(p.as_bytes().to_vec()),
                        MdsReq::Work(calib::GLUSTER_UPDATE),
                    ]),
                );
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn create(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            self.lookup_dir_everywhere(dir)?;
            let idx = self.brick_of(&p);
            self.entrylk(idx);
            let uuid = self.uuids.alloc();
            let mut parts = self
                .call_at(
                    idx,
                    MdsReq::Guarded(vec![
                        MdsReq::PutIfAbsent(
                            p.as_bytes().to_vec(),
                            FatInode::file(0o644, uuid).encode(),
                        ),
                        MdsReq::Work(calib::GLUSTER_UPDATE),
                    ]),
                )
                .multi();
            self.entrylk(idx); // unlock
            if !parts.remove(0).bool() {
                return Err(FsError::AlreadyExists);
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn unlink(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            self.get_file_inode(&p)?; // rejects directories
            let idx = self.brick_of(&p);
            self.entrylk(idx);
            let ok = self
                .call_at(
                    idx,
                    MdsReq::Multi(vec![
                        MdsReq::Delete(p.as_bytes().to_vec()),
                        MdsReq::Work(calib::GLUSTER_UPDATE),
                    ]),
                )
                .multi()
                .remove(0)
                .bool();
            self.entrylk(idx);
            if ok {
                Ok(())
            } else {
                Err(FsError::NotFound)
            }
        })();
        self.base.finish();
        res
    }

    fn stat_file(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        // No client metadata cache: a LOOKUP fop resolves the file on
        // its hashed brick, then a STAT fop fetches the iatt — two
        // round trips per stat.
        let res = self.get_file_inode(&p).map(|_| ());
        if res.is_ok() {
            let idx = self.brick_of(&p);
            self.call_at(idx, MdsReq::Work(calib::GLUSTER_LOOKUP));
        }
        self.base.finish();
        res
    }

    fn stat_dir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = self.lookup_dir_everywhere(&p);
        self.base.finish();
        res
    }

    fn readdir(&mut self, raw: &str) -> FsResult<usize> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            self.lookup_dir_everywhere(&p)?;
            Ok(self.children(&p).len())
        })();
        self.base.finish();
        res
    }

    fn chmod_file(&mut self, raw: &str, mode: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let mut inode = self.get_file_inode(&p)?;
            inode.mode = mode;
            let idx = self.brick_of(&p);
            self.call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Put(p.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::GLUSTER_UPDATE),
                ]),
            );
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn chown_file(&mut self, raw: &str, uid: u32, gid: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let mut inode = self.get_file_inode(&p)?;
            inode.uid = uid;
            inode.gid = gid;
            let idx = self.brick_of(&p);
            self.call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Put(p.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::GLUSTER_UPDATE),
                ]),
            );
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn truncate_file(&mut self, raw: &str, size: u64) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let mut inode = self.get_file_inode(&p)?;
            inode.size = size;
            let idx = self.brick_of(&p);
            self.call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Put(p.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::GLUSTER_UPDATE),
                ]),
            );
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn access_file(&mut self, raw: &str) -> FsResult<bool> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = self.get_file_inode(&p).map(|_| true);
        if res.is_ok() {
            let idx = self.brick_of(&p);
            self.call_at(idx, MdsReq::Work(calib::GLUSTER_LOOKUP));
        }
        self.base.finish();
        res
    }

    fn rename_file(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_file_inode(&o)?;
            let oi = self.brick_of(&o);
            let ni = self.brick_of(&n);
            self.entrylk(oi);
            self.call_at(oi, MdsReq::Delete(o.as_bytes().to_vec()));
            // DHT leaves a linkto file at the old hashed location.
            self.call_at(oi, MdsReq::Multi(vec![MdsReq::Work(calib::GLUSTER_UPDATE)]));
            self.call_at(
                ni,
                MdsReq::Multi(vec![
                    MdsReq::Put(n.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::GLUSTER_UPDATE),
                ]),
            );
            self.entrylk(oi);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn rename_dir(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        let res = (|| {
            self.lookup_dir_everywhere(&o)?;
            let mut prefix = o.as_bytes().to_vec();
            prefix.push(b'/');
            // Every brick renames its local portion (dir records + its
            // files); file records may then live on the "wrong" brick,
            // which real Gluster papers over with linkto files — we
            // keep them reachable by rehashing on lookup misses, which
            // the model approximates by rehoming them now.
            let mut moved = Vec::new();
            for i in 0..self.bricks.len() {
                for (k, v) in self
                    .call_at(i, MdsReq::ScanPrefix(prefix.clone()))
                    .entries()
                {
                    self.call_at(i, MdsReq::Delete(k.clone()));
                    moved.push((k, v));
                }
                self.call_at(
                    i,
                    MdsReq::Multi(vec![
                        MdsReq::Delete(o.as_bytes().to_vec()),
                        MdsReq::Put(n.as_bytes().to_vec(), FatInode::dir(0o755).encode()),
                        MdsReq::Work(calib::GLUSTER_UPDATE),
                    ]),
                );
            }
            let mut seen_dirs: HashSet<Vec<u8>> = HashSet::new();
            for (k, v) in moved {
                let suffix = &k[prefix.len()..];
                let mut nk = n.as_bytes().to_vec();
                nk.push(b'/');
                nk.extend_from_slice(suffix);
                let inode = FatInode::decode(&v);
                let is_dir = inode.map(|i| i.is_dir).unwrap_or(false);
                if is_dir {
                    if !seen_dirs.insert(nk.clone()) {
                        continue; // dir records exist on every brick
                    }
                    for i in 0..self.bricks.len() {
                        self.call_at(i, MdsReq::Put(nk.clone(), v.clone()));
                    }
                } else {
                    let idx = place(std::str::from_utf8(&nk).unwrap(), self.bricks.len());
                    self.call_at(idx, MdsReq::Put(nk, v));
                }
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn write_file(&mut self, raw: &str, data: &[u8]) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let mut inode = self.get_file_inode(&p)?;
            let bs = self.block_size as usize;
            for (i, chunk) in data.chunks(bs.max(1)).enumerate() {
                let ep = self.ost[0].clone();
                let resp = ep.call(
                    &mut self.base.ctx,
                    OstoreRequest::WriteBlock {
                        uuid: inode.uuid,
                        blk: i as u64,
                        data: chunk.to_vec(),
                    },
                );
                let OstoreResponse::Done(r) = resp else {
                    unreachable!()
                };
                r?;
            }
            inode.size = data.len() as u64;
            let idx = self.brick_of(&p);
            self.call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Put(p.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::GLUSTER_UPDATE),
                ]),
            );
            // flush + release fop on close.
            self.call_at(idx, MdsReq::Work(calib::GLUSTER_LOOKUP));
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn read_file(&mut self, raw: &str) -> FsResult<Vec<u8>> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_file_inode(&p)?;
            let mut out = Vec::with_capacity(inode.size as usize);
            let blocks = inode.size.div_ceil(self.block_size.max(1));
            for blk in 0..blocks {
                let ep = self.ost[0].clone();
                let resp = ep.call(
                    &mut self.base.ctx,
                    OstoreRequest::ReadBlock {
                        uuid: inode.uuid,
                        blk,
                    },
                );
                match resp {
                    OstoreResponse::Block(Ok(b)) => out.extend_from_slice(&b),
                    OstoreResponse::Block(Err(_)) => break,
                    other => unreachable!("{other:?}"),
                }
            }
            out.truncate(inode.size as usize);
            // release fop on close.
            let idx = self.brick_of(&p);
            self.call_at(idx, MdsReq::Work(calib::GLUSTER_LOOKUP));
            Ok(out)
        })();
        self.base.finish();
        res
    }

    fn take_trace(&mut self) -> JobTrace {
        self.base.take_trace()
    }

    fn advance_clock(&mut self, delta: Nanos) {
        self.base.clock += delta;
    }

    fn set_rtt(&mut self, rtt: Nanos) {
        self.base.rtt = rtt;
    }

    fn drop_caches(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut fs = GlusterFsModel::new(4);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.stat_file("/d/f").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), 1);
        assert_eq!(fs.create("/d/f"), Err(FsError::AlreadyExists));
        assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.stat_dir("/d"), Err(FsError::NotFound));
    }

    #[test]
    fn mkdir_touches_every_brick() {
        let mut fs = GlusterFsModel::new(8);
        fs.mkdir("/d").unwrap();
        let t = fs.take_trace();
        // broadcast lookup of "/" (8) + contains (1) + 8 brick updates
        assert!(t.visits.len() >= 16, "got {}", t.visits.len());
        // Latency grows with brick count — the paper's worst-mkdir shape.
        let small = GlusterFsModel::new(2);
        drop(small);
        let mut fs2 = GlusterFsModel::new(2);
        fs2.mkdir("/d").unwrap();
        let t2 = fs2.take_trace();
        assert!(t.visits.len() > t2.visits.len());
    }

    #[test]
    fn create_includes_lock_roundtrips() {
        let mut fs = GlusterFsModel::new(4);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        let t = fs.take_trace();
        // 4 lookups + lock + create + unlock = 7
        assert_eq!(t.visits.len(), 7, "{:?}", t.visits);
    }

    #[test]
    fn rename_dir_keeps_files_reachable() {
        let mut fs = GlusterFsModel::new(4);
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/sub").unwrap();
        fs.create("/a/f").unwrap();
        fs.rename_dir("/a", "/b").unwrap();
        fs.stat_file("/b/f").unwrap();
        fs.stat_dir("/b/sub").unwrap();
        assert_eq!(fs.stat_file("/a/f"), Err(FsError::NotFound));
        assert_eq!(fs.readdir("/b").unwrap(), 2);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = GlusterFsModel::new(2);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.write_file("/d/f", &[5u8; 100]).unwrap();
        assert_eq!(fs.read_file("/d/f").unwrap(), vec![5u8; 100]);
    }
}
