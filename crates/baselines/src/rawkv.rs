//! Raw key-value "filesystem": the upper bound the paper measures
//! against (Kyoto Cabinet tree DB on a single node, Figs 1 and 9).
//!
//! Each filesystem operation maps to the minimal raw KV operation —
//! create is one `put` of an inode-sized value, stat is one `get`,
//! remove is one `delete` — with **no network** (`rtt() == 0`): the KV
//! store is a local library. Throughput saturates at the store's
//! single-node service rate, which is exactly the bar the other systems
//! are normalized to.

use crate::fs_trait::DistFs;
use crate::mds::{MdsReq, MdsStore, ModelMds};
use crate::model_util::{FatInode, ModelBase};
use loco_kv::KvConfig;
use loco_net::{class, JobTrace, Nanos, ServerId, SimEndpoint};
use loco_types::{normalize, FsError, FsResult, UuidGen};

/// The raw-KV baseline (one node, one ordered store).
pub struct RawKvFs {
    server: SimEndpoint<ModelMds>,
    base: ModelBase,
    uuids: UuidGen,
}

impl Default for RawKvFs {
    fn default() -> Self {
        Self::new()
    }
}

impl RawKvFs {
    /// Create a new instance with default settings.
    pub fn new() -> Self {
        let server = SimEndpoint::new(
            ServerId::new(class::MDS, 0),
            ModelMds::new(MdsStore::BTree, KvConfig::default()),
        );
        let mut s = Self {
            server,
            base: ModelBase::new(0, 300),
            uuids: UuidGen::new(0),
        };
        // Root directory record.
        s.base.call(
            &s.server.clone(),
            MdsReq::Put(b"/".to_vec(), FatInode::dir(0o777).encode()),
        );
        let _ = s.base.ctx.take_trace();
        s
    }

    fn get_inode(&mut self, path: &str) -> FsResult<FatInode> {
        let v = self
            .base
            .call(&self.server.clone(), MdsReq::Get(path.as_bytes().to_vec()))
            .value()
            .ok_or(FsError::NotFound)?;
        FatInode::decode(&v).ok_or_else(|| FsError::Io("bad inode".into()))
    }

    fn put_inode(&mut self, path: &str, inode: &FatInode) {
        self.base.call(
            &self.server.clone(),
            MdsReq::Put(path.as_bytes().to_vec(), inode.encode()),
        );
    }
}

impl DistFs for RawKvFs {
    fn name(&self) -> String {
        "RawKV".into()
    }

    fn rtt(&self) -> Nanos {
        0
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let inode = FatInode::dir(0o755);
        self.put_inode(&p, &inode);
        self.base.finish();
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let ok = self
            .base
            .call(&self.server.clone(), MdsReq::Delete(p.into_bytes()))
            .bool();
        self.base.finish();
        if ok {
            Ok(())
        } else {
            Err(FsError::NotFound)
        }
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let inode = FatInode::file(0o644, self.uuids.alloc());
        self.put_inode(&p, &inode);
        self.base.finish();
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.rmdir(path)
    }

    fn stat_file(&mut self, path: &str) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let res = self.get_inode(&p).map(|_| ());
        self.base.finish();
        res
    }

    fn stat_dir(&mut self, path: &str) -> FsResult<()> {
        self.stat_file(path)
    }

    fn readdir(&mut self, path: &str) -> FsResult<usize> {
        let p = normalize(path)?;
        self.base.begin();
        let mut prefix = p.into_bytes();
        if *prefix.last().unwrap() != b'/' {
            prefix.push(b'/');
        }
        let n = self
            .base
            .call(&self.server.clone(), MdsReq::ScanPrefix(prefix))
            .entries()
            .len();
        self.base.finish();
        Ok(n)
    }

    fn chmod_file(&mut self, path: &str, mode: u32) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let res = self.get_inode(&p).map(|mut inode| {
            inode.mode = mode;
            self.put_inode(&p, &inode);
        });
        self.base.finish();
        res
    }

    fn chown_file(&mut self, path: &str, uid: u32, gid: u32) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let res = self.get_inode(&p).map(|mut inode| {
            inode.uid = uid;
            inode.gid = gid;
            self.put_inode(&p, &inode);
        });
        self.base.finish();
        res
    }

    fn truncate_file(&mut self, path: &str, size: u64) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let res = self.get_inode(&p).map(|mut inode| {
            inode.size = size;
            self.put_inode(&p, &inode);
        });
        self.base.finish();
        res
    }

    fn access_file(&mut self, path: &str) -> FsResult<bool> {
        let p = normalize(path)?;
        self.base.begin();
        let res = self.get_inode(&p).map(|_| true);
        self.base.finish();
        res
    }

    fn rename_file(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        let res = self.get_inode(&o).map(|inode| {
            self.base
                .call(&self.server.clone(), MdsReq::Delete(o.clone().into_bytes()));
            self.put_inode(&n, &inode);
        });
        self.base.finish();
        res
    }

    fn rename_dir(&mut self, old: &str, new: &str) -> FsResult<()> {
        self.rename_file(old, new)
    }

    fn write_file(&mut self, path: &str, data: &[u8]) -> FsResult<()> {
        let p = normalize(path)?;
        self.base.begin();
        let mut key = b"D".to_vec();
        key.extend_from_slice(p.as_bytes());
        self.base
            .call(&self.server.clone(), MdsReq::Put(key, data.to_vec()));
        let res = self.get_inode(&p).map(|mut inode| {
            inode.size = data.len() as u64;
            self.put_inode(&p, &inode);
        });
        self.base.finish();
        res
    }

    fn read_file(&mut self, path: &str) -> FsResult<Vec<u8>> {
        let p = normalize(path)?;
        self.base.begin();
        let mut key = b"D".to_vec();
        key.extend_from_slice(p.as_bytes());
        let v = self
            .base
            .call(&self.server.clone(), MdsReq::Get(key))
            .value();
        self.base.finish();
        v.ok_or(FsError::NotFound)
    }

    fn take_trace(&mut self) -> JobTrace {
        self.base.take_trace()
    }

    fn advance_clock(&mut self, delta: Nanos) {
        self.base.clock += delta;
    }

    fn set_rtt(&mut self, rtt: Nanos) {
        self.base.rtt = rtt;
    }

    fn drop_caches(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut fs = RawKvFs::new();
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.stat_file("/d/f").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), 1);
        fs.chmod_file("/d/f", 0o600).unwrap();
        fs.unlink("/d/f").unwrap();
        assert_eq!(fs.stat_file("/d/f"), Err(FsError::NotFound));
    }

    #[test]
    fn create_is_one_local_put() {
        let mut fs = RawKvFs::new();
        fs.create("/f").unwrap();
        let t = fs.take_trace();
        assert_eq!(t.visits.len(), 1, "one KV op");
        assert_eq!(fs.rtt(), 0, "no network");
        // Unloaded latency is pure service time — the KC anchor.
        let lat = t.unloaded_latency(fs.rtt());
        assert!(lat < 10_000, "raw create must be a few µs, got {lat}");
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = RawKvFs::new();
        fs.create("/f").unwrap();
        fs.write_file("/f", b"abc").unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"abc");
    }
}
