//! The common filesystem interface the workload driver (loco-mdtest)
//! speaks, implemented by LocoFS and every baseline model.

use loco_net::{JobTrace, Nanos};
use loco_types::FsResult;

/// One distributed filesystem under test. All methods record a visit
/// trace retrievable with [`DistFs::take_trace`] after each call.
///
/// The driver distinguishes file and directory variants explicitly
/// (like mdtest does), so implementations never need type-sniffing
/// lookups.
pub trait DistFs {
    /// Display name for benchmark tables ("LocoFS-C", "CephFS", …).
    fn name(&self) -> String;

    /// Network round-trip time this system is deployed over. The raw-KV
    /// baseline returns 0 (it is a local library, not a service).
    fn rtt(&self) -> Nanos;

    /// Override the network RTT (0 = co-located clients and servers,
    /// the paper's Fig 10 configuration).
    fn set_rtt(&mut self, rtt: Nanos);

    /// mkdir(2).
    fn mkdir(&mut self, path: &str) -> FsResult<()>;
    /// rmdir(2).
    fn rmdir(&mut self, path: &str) -> FsResult<()>;
    /// creat(2) — create an empty file.
    fn create(&mut self, path: &str) -> FsResult<()>;
    /// unlink(2).
    fn unlink(&mut self, path: &str) -> FsResult<()>;
    /// stat(2) on a file.
    fn stat_file(&mut self, path: &str) -> FsResult<()>;
    /// stat(2) on a directory.
    fn stat_dir(&mut self, path: &str) -> FsResult<()>;
    /// Returns the number of entries listed.
    fn readdir(&mut self, path: &str) -> FsResult<usize>;
    /// chmod(2) on a file.
    fn chmod_file(&mut self, path: &str, mode: u32) -> FsResult<()>;
    /// chown(2) on a file.
    fn chown_file(&mut self, path: &str, uid: u32, gid: u32) -> FsResult<()>;
    /// truncate(2) on a file.
    fn truncate_file(&mut self, path: &str, size: u64) -> FsResult<()>;
    /// access(2) on a file.
    fn access_file(&mut self, path: &str) -> FsResult<bool>;
    /// rename(2) on a file.
    fn rename_file(&mut self, old: &str, new: &str) -> FsResult<()>;
    /// rename(2) on a directory (subtree move).
    fn rename_dir(&mut self, old: &str, new: &str) -> FsResult<()>;
    /// Write whole-file contents (create/open + write + close).
    fn write_file(&mut self, path: &str, data: &[u8]) -> FsResult<()>;
    /// Read whole-file contents (open + read + close).
    fn read_file(&mut self, path: &str) -> FsResult<Vec<u8>>;

    /// Drain the trace of the last completed operation.
    fn take_trace(&mut self) -> JobTrace;

    /// Advance this client's virtual clock (lease expiry, think time).
    fn advance_clock(&mut self, delta: Nanos);

    /// Discard all client-side caches (fresh-mount semantics, as when a
    /// benchmark phase runs as a separate process).
    fn drop_caches(&mut self);

    /// Prometheus-format metrics snapshot, for systems that carry a
    /// metrics registry (LocoFS). Baseline cost models return `None`.
    fn metrics_text(&mut self) -> Option<String> {
        None
    }

    /// JSON dump of the flight recorder's slowest sampled op span
    /// trees, for systems that carry a tracer (LocoFS with `LOCO_TRACE`
    /// enabled). Baselines and untraced runs return `None`.
    fn slow_ops_json(&mut self) -> Option<String> {
        None
    }

    /// Flamegraph-ready folded stacks (`frame;frame value` lines).
    /// With tracing on this folds the recorded span trees (client
    /// work, network, per-RPC service and kv time); without tracing it
    /// falls back to the always-on server-side attribution counters.
    /// Baseline cost models return `None`.
    fn folded_stacks(&mut self) -> Option<String> {
        None
    }
}
