//! CephFS model (Weil et al., OSDI'06) — directory-based metadata
//! distribution.
//!
//! Modeled design points:
//!
//! * **subtree/directory locality**: one MDS is authoritative for a
//!   directory; all files of that directory live with it (approximated
//!   by hashing the directory path to an MDS — the load-balance limit
//!   of dynamic subtree partitioning). readdir and rmdir are single-
//!   server operations (the locality advantage the paper concedes to
//!   CephFS), while load balance suffers;
//! * **aggressive client caching**: clients cache both d-inodes *and*
//!   f-inodes (capabilities), so repeat stats are client-local — the
//!   reason CephFS wins dir-stat/file-stat in the paper's Fig 7/8;
//! * **journaled updates**: every namespace mutation pays
//!   [`calib::CEPH_JOURNAL`] (EMetaBlob journaling + MDCache locking),
//!   anchoring single-server create ≈1.5 K IOPS (LocoFS = 67×, §4.2.2).

use crate::calib;
use crate::fs_trait::DistFs;
use crate::lease::LeaseCache;
use crate::mds::{MdsReq, MdsResp, MdsStore, ModelMds};
use crate::model_util::{place, FatInode, ModelBase};
use loco_kv::KvConfig;
use loco_net::{class, Endpoint, JobTrace, Nanos, ServerId, SimEndpoint};
use loco_ostore::{ObjectStore, OstoreRequest, OstoreResponse};
use loco_sim::time::MICROS;
use loco_types::{normalize, parent, FsError, FsResult, Uuid, UuidGen};

/// The CephFS baseline model.
pub struct CephFsModel {
    mds: Vec<SimEndpoint<ModelMds>>,
    ost: Vec<SimEndpoint<ObjectStore>>,
    base: ModelBase,
    /// Capability cache: path → inode (files AND directories).
    cache: LeaseCache<FatInode>,
    uuids: UuidGen,
    block_size: u64,
}

impl CephFsModel {
    /// Create a new instance with default settings.
    pub fn new(num_mds: u16) -> Self {
        let mds = (0..num_mds)
            .map(|i| {
                SimEndpoint::new(
                    ServerId::new(class::MDS, i),
                    ModelMds::new(MdsStore::BTree, KvConfig::default()),
                )
            })
            .collect::<Vec<_>>();
        let ost = vec![SimEndpoint::new(
            ServerId::new(class::OST, 0),
            ObjectStore::new(KvConfig::default()),
        )];
        let mut s = Self {
            mds,
            ost,
            base: ModelBase::new(174 * MICROS, 2 * MICROS),
            // Ceph capabilities are revocation-based, not time-leased:
            // they stay valid until the MDS recalls them. Model as an
            // effectively infinite lease (this is what makes CephFS win
            // the stat phases in the paper's Figs 7/8).
            cache: LeaseCache::new(u64::MAX / 4),
            uuids: UuidGen::new(0),
            block_size: 1 << 20,
        };
        let idx = s.mds_of("/");
        let ep = s.mds[idx].clone();
        s.base.call(
            &ep,
            MdsReq::Put(b"/".to_vec(), FatInode::dir(0o777).encode()),
        );
        let _ = s.base.ctx.take_trace();
        s
    }

    /// MDS authoritative for a directory (and for all file records in
    /// it — directory locality).
    fn mds_of(&self, dir: &str) -> usize {
        place(dir, self.mds.len())
    }

    fn call_at(&mut self, idx: usize, req: MdsReq) -> MdsResp {
        let ep = self.mds[idx].clone();
        self.base.call(&ep, req)
    }

    /// Fetch an inode by path from the MDS owning its parent directory
    /// (files co-locate with their directory), with capability caching.
    fn get_inode(&mut self, p: &str, home_dir: &str) -> FsResult<FatInode> {
        if let Some(i) = self.cache.get(p, self.base.clock) {
            return Ok(i);
        }
        let idx = self.mds_of(home_dir);
        let v = self
            .call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Get(p.as_bytes().to_vec()),
                    MdsReq::Work(calib::CEPH_READ_WORK),
                ]),
            )
            .multi()
            .remove(0)
            .value()
            .ok_or(FsError::NotFound)?;
        let inode = FatInode::decode(&v).ok_or_else(|| FsError::Io("bad inode".into()))?;
        self.cache.put(p, inode, self.base.clock);
        Ok(inode)
    }

    /// Journaled namespace update at the owning MDS.
    fn journaled(&mut self, dir: &str, ops: Vec<MdsReq>) -> Vec<MdsResp> {
        let idx = self.mds_of(dir);
        let mut all = ops;
        all.push(MdsReq::Work(calib::CEPH_JOURNAL));
        self.call_at(idx, MdsReq::Multi(all)).multi()
    }

    fn dirent_key(dir: &str) -> Vec<u8> {
        let mut k = b"E".to_vec();
        k.extend_from_slice(dir.as_bytes());
        k
    }
}

impl DistFs for CephFsModel {
    fn name(&self) -> String {
        "CephFS".into()
    }

    fn rtt(&self) -> Nanos {
        self.base.rtt
    }

    fn mkdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::AlreadyExists)?;
            let parent_inode = self.get_inode(dir, dir)?;
            if !parent_inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            // Create the directory record at ITS OWN authority (the new
            // subtree) and the dirent at the parent's authority. When
            // they differ this is a two-MDS operation.
            let parent_idx = self.mds_of(dir);
            let self_idx = self.mds_of(&p);
            // Dir record would live at self_idx; a same-named FILE
            // record would live at the parent's authority.
            if self
                .call_at(self_idx, MdsReq::Contains(p.as_bytes().to_vec()))
                .bool()
            {
                return Err(FsError::AlreadyExists);
            }
            if parent_idx != self_idx
                && self
                    .call_at(parent_idx, MdsReq::Contains(p.as_bytes().to_vec()))
                    .bool()
            {
                return Err(FsError::AlreadyExists);
            }
            let dinode = FatInode::dir(0o755);
            self.journaled(
                &p,
                vec![MdsReq::Put(p.as_bytes().to_vec(), dinode.encode())],
            );
            // The client receives caps on the directory it just made.
            self.cache.put(&p, dinode, self.base.clock);
            if parent_idx != self_idx {
                self.journaled(
                    dir,
                    vec![MdsReq::Append(
                        Self::dirent_key(dir),
                        loco_types::encode_entry(
                            loco_types::basename(&p),
                            Uuid::ROOT,
                            loco_types::DirentKind::Dir,
                        ),
                    )],
                );
            } else {
                // Same MDS: dirent folded into the same journal entry.
                self.call_at(
                    self_idx,
                    MdsReq::Append(
                        Self::dirent_key(dir),
                        loco_types::encode_entry(
                            loco_types::basename(&p),
                            Uuid::ROOT,
                            loco_types::DirentKind::Dir,
                        ),
                    ),
                );
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn rmdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::Busy)?;
            let inode = self.get_inode(&p, &p.clone())?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            // Directory locality: the owning MDS can check emptiness
            // alone (one server, unlike LocoFS's fan-out).
            let idx = self.mds_of(&p);
            let ents = self
                .call_at(idx, MdsReq::Get(Self::dirent_key(&p)))
                .value()
                .and_then(|v| loco_types::DirentList::decode(&v))
                .unwrap_or_default();
            if !ents.is_empty() {
                return Err(FsError::NotEmpty);
            }
            let ok = self.journaled(&p, vec![MdsReq::Delete(p.as_bytes().to_vec())])[0]
                .clone()
                .bool();
            self.journaled(
                dir,
                vec![MdsReq::Append(
                    Self::dirent_key(dir),
                    loco_types::encode_tombstone(loco_types::basename(&p)),
                )],
            );
            self.cache.invalidate(&p);
            if ok {
                Ok(())
            } else {
                Err(FsError::NotFound)
            }
        })();
        self.base.finish();
        res
    }

    fn create(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let parent_inode = self.get_inode(dir, dir)?;
            if !parent_inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            let idx = self.mds_of(dir);
            // A directory of the same name would live at its own
            // authority; check there when it is a different MDS (same
            // MDS collisions are caught by the guarded insert below).
            let self_idx = self.mds_of(&p);
            if self_idx != idx
                && self
                    .call_at(self_idx, MdsReq::Contains(p.as_bytes().to_vec()))
                    .bool()
            {
                return Err(FsError::AlreadyExists);
            }
            let uuid = self.uuids.alloc();
            let inode = FatInode::file(0o644, uuid);
            let mut parts = self
                .call_at(
                    idx,
                    MdsReq::Guarded(vec![
                        MdsReq::PutIfAbsent(p.as_bytes().to_vec(), inode.encode()),
                        MdsReq::Append(
                            Self::dirent_key(dir),
                            loco_types::encode_entry(
                                loco_types::basename(&p),
                                uuid,
                                loco_types::DirentKind::File,
                            ),
                        ),
                        MdsReq::Work(calib::CEPH_JOURNAL),
                    ]),
                )
                .multi();
            if !parts.remove(0).bool() {
                return Err(FsError::AlreadyExists);
            }
            // Client receives caps on the new file.
            self.cache.put(&p, inode, self.base.clock);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn unlink(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let inode = self.get_inode(&p, dir)?;
            if inode.is_dir {
                return Err(FsError::IsADirectory);
            }
            let ok = {
                let parts = self.journaled(
                    dir,
                    vec![
                        MdsReq::Delete(p.as_bytes().to_vec()),
                        MdsReq::Append(
                            Self::dirent_key(dir),
                            loco_types::encode_tombstone(loco_types::basename(&p)),
                        ),
                    ],
                );
                parts[0].clone().bool()
            };
            self.cache.invalidate(&p);
            if ok {
                Ok(())
            } else {
                Err(FsError::NotFound)
            }
        })();
        self.base.finish();
        res
    }

    fn stat_file(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let inode = self.get_inode(&p, dir)?;
            if inode.is_dir {
                return Err(FsError::IsADirectory);
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn stat_dir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_inode(&p, &p.clone())?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn readdir(&mut self, raw: &str) -> FsResult<usize> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_inode(&p, &p.clone())?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            // One RPC: the owning MDS has the whole directory.
            let idx = self.mds_of(&p);
            let ents = self
                .call_at(
                    idx,
                    MdsReq::Multi(vec![
                        MdsReq::Get(Self::dirent_key(&p)),
                        MdsReq::Work(calib::CEPH_READ_WORK),
                    ]),
                )
                .multi()
                .remove(0)
                .value()
                .and_then(|v| loco_types::DirentList::decode(&v))
                .unwrap_or_default();
            Ok(ents.len())
        })();
        self.base.finish();
        res
    }

    fn chmod_file(&mut self, raw: &str, mode: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let mut inode = self.get_inode(&p, dir)?;
            inode.mode = mode;
            self.journaled(
                dir,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
            );
            self.cache.put(&p, inode, self.base.clock);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn chown_file(&mut self, raw: &str, uid: u32, gid: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let mut inode = self.get_inode(&p, dir)?;
            inode.uid = uid;
            inode.gid = gid;
            self.journaled(
                dir,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
            );
            self.cache.put(&p, inode, self.base.clock);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn truncate_file(&mut self, raw: &str, size: u64) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let mut inode = self.get_inode(&p, dir)?;
            inode.size = size;
            self.journaled(
                dir,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
            );
            self.cache.put(&p, inode, self.base.clock);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn access_file(&mut self, raw: &str) -> FsResult<bool> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            self.get_inode(&p, dir).map(|_| true)
        })();
        self.base.finish();
        res
    }

    fn rename_file(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        let res = (|| {
            let od = parent(&o).ok_or(FsError::InvalidArgument)?.to_string();
            let nd = parent(&n).ok_or(FsError::InvalidArgument)?.to_string();
            let inode = self.get_inode(&o, &od)?;
            self.journaled(
                &od,
                vec![
                    MdsReq::Delete(o.as_bytes().to_vec()),
                    MdsReq::Append(
                        Self::dirent_key(&od),
                        loco_types::encode_tombstone(loco_types::basename(&o)),
                    ),
                ],
            );
            self.journaled(
                &nd,
                vec![
                    MdsReq::Put(n.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Append(
                        Self::dirent_key(&nd),
                        loco_types::encode_entry(
                            loco_types::basename(&n),
                            inode.uuid,
                            loco_types::DirentKind::File,
                        ),
                    ),
                ],
            );
            self.cache.invalidate(&o);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn rename_dir(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_inode(&o, &o.clone())?;
            // Directory authority is path-hashed in this model, so a
            // rename relocates the subtree's records across MDSes.
            let mut prefix = o.as_bytes().to_vec();
            prefix.push(b'/');
            let mut moved = Vec::new();
            for i in 0..self.mds.len() {
                for (k, v) in self
                    .call_at(i, MdsReq::ScanPrefix(prefix.clone()))
                    .entries()
                {
                    self.call_at(i, MdsReq::Delete(k.clone()));
                    moved.push((k, v));
                }
                let mut ek = b"E".to_vec();
                ek.extend_from_slice(&prefix);
                for (k, v) in self.call_at(i, MdsReq::ScanPrefix(ek)).entries() {
                    self.call_at(i, MdsReq::Delete(k.clone()));
                    moved.push((k, v));
                }
            }
            self.journaled(&o, vec![MdsReq::Delete(o.as_bytes().to_vec())]);
            self.journaled(&n, vec![MdsReq::Put(n.as_bytes().to_vec(), inode.encode())]);
            // Move the directory's own dirent list.
            let oid = self.mds_of(&o);
            if let Some(v) = self.call_at(oid, MdsReq::Get(Self::dirent_key(&o))).value() {
                self.call_at(oid, MdsReq::Delete(Self::dirent_key(&o)));
                let nid = self.mds_of(&n);
                self.call_at(nid, MdsReq::Put(Self::dirent_key(&n), v));
            }
            for (k, v) in moved {
                let is_dirent = k.first() == Some(&b'E');
                let key_path = if is_dirent { &k[1..] } else { &k[..] };
                let suffix = &key_path[prefix.len()..];
                let mut np = n.as_bytes().to_vec();
                np.push(b'/');
                np.extend_from_slice(suffix);
                let target_dir = String::from_utf8_lossy(&np).to_string();
                let idx = if is_dirent {
                    self.mds_of(&target_dir)
                } else {
                    self.mds_of(parent(&target_dir).unwrap_or("/"))
                };
                let nk = if is_dirent {
                    let mut e = b"E".to_vec();
                    e.extend_from_slice(&np);
                    e
                } else {
                    np
                };
                self.call_at(idx, MdsReq::Put(nk, v));
            }
            self.cache.invalidate_subtree(&o);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn write_file(&mut self, raw: &str, data: &[u8]) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let mut inode = self.get_inode(&p, dir)?;
            // Data to RADOS objects, block by block.
            let bs = self.block_size as usize;
            for (i, chunk) in data.chunks(bs.max(1)).enumerate() {
                let ep = self.ost[0].clone();
                let resp = ep.call(
                    &mut self.base.ctx,
                    OstoreRequest::WriteBlock {
                        uuid: inode.uuid,
                        blk: i as u64,
                        data: chunk.to_vec(),
                    },
                );
                let OstoreResponse::Done(r) = resp else {
                    unreachable!()
                };
                r?;
            }
            inode.size = data.len() as u64;
            self.journaled(
                dir,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
            );
            self.cache.put(&p, inode, self.base.clock);
            // close(2): cap flush round trip to the MDS.
            let idx = self.mds_of(dir);
            self.call_at(idx, MdsReq::Work(calib::CEPH_READ_WORK));
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn read_file(&mut self, raw: &str) -> FsResult<Vec<u8>> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let inode = self.get_inode(&p, dir)?;
            let mut out = Vec::with_capacity(inode.size as usize);
            let blocks = inode.size.div_ceil(self.block_size.max(1));
            for blk in 0..blocks {
                let ep = self.ost[0].clone();
                let resp = ep.call(
                    &mut self.base.ctx,
                    OstoreRequest::ReadBlock {
                        uuid: inode.uuid,
                        blk,
                    },
                );
                match resp {
                    OstoreResponse::Block(Ok(b)) => out.extend_from_slice(&b),
                    OstoreResponse::Block(Err(_)) => break,
                    other => unreachable!("{other:?}"),
                }
            }
            out.truncate(inode.size as usize);
            // close(2): cap release round trip.
            let idx = self.mds_of(dir);
            self.call_at(idx, MdsReq::Work(calib::CEPH_READ_WORK));
            Ok(out)
        })();
        self.base.finish();
        res
    }

    fn take_trace(&mut self) -> JobTrace {
        self.base.take_trace()
    }

    fn advance_clock(&mut self, delta: Nanos) {
        self.base.clock += delta;
    }

    fn set_rtt(&mut self, rtt: Nanos) {
        self.base.rtt = rtt;
    }

    fn drop_caches(&mut self) {
        self.cache = LeaseCache::new(u64::MAX / 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut fs = CephFsModel::new(4);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.stat_file("/d/f").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), 1);
        assert_eq!(fs.create("/d/f"), Err(FsError::AlreadyExists));
        assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
    }

    #[test]
    fn stat_hits_client_cache() {
        let mut fs = CephFsModel::new(4);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        let _ = fs.take_trace();
        // create cached the caps → first stat is already local.
        fs.stat_file("/d/f").unwrap();
        let t = fs.take_trace();
        assert_eq!(t.visits.len(), 0, "cap cache hit, no RPC");
    }

    #[test]
    fn create_pays_journal() {
        let mut fs = CephFsModel::new(1);
        fs.mkdir("/d").unwrap();
        fs.create("/d/a").unwrap();
        let _ = fs.take_trace();
        fs.create("/d/b").unwrap();
        let t = fs.take_trace();
        assert!(t.total_service() >= calib::CEPH_JOURNAL);
    }

    #[test]
    fn readdir_is_single_server() {
        let mut fs = CephFsModel::new(8);
        fs.mkdir("/d").unwrap();
        for i in 0..10 {
            fs.create(&format!("/d/f{i}")).unwrap();
        }
        assert_eq!(fs.readdir("/d").unwrap(), 10);
        let t = fs.take_trace();
        assert_eq!(t.visits.len(), 1, "directory locality");
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = CephFsModel::new(2);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.write_file("/d/f", &[9u8; 3000]).unwrap();
        assert_eq!(fs.read_file("/d/f").unwrap(), vec![9u8; 3000]);
    }

    #[test]
    fn rename_dir_moves_files() {
        let mut fs = CephFsModel::new(4);
        fs.mkdir("/a").unwrap();
        fs.create("/a/f").unwrap();
        fs.rename_dir("/a", "/b").unwrap();
        fs.advance_clock(2 * calib::BASELINE_LEASE); // drop stale caps
        assert_eq!(fs.stat_file("/a/f"), Err(FsError::NotFound));
        fs.stat_file("/b/f").unwrap();
        assert_eq!(fs.readdir("/b").unwrap(), 1);
    }
}
