//! Lustre model — single MDS, DNE1 (manual remote directories) and
//! DNE2 (striped directories).
//!
//! Modeled design points:
//!
//! * **Single**: every metadata operation goes to MDT0.
//! * **DNE1** (the paper's "Lustre D1"): each *top-level* directory is
//!   manually pinned to an MDT; its whole subtree stays there. Per-
//!   subtree parallelism with perfect locality inside a subtree.
//! * **DNE2** ("Lustre D2"): directories are striped — a directory's
//!   entries are hash-distributed over all MDTs, so creates/unlinks may
//!   span two MDTs (parent stripe + entry) as a distributed
//!   transaction, and readdir must visit every MDT.
//! * Every update pays [`calib::LUSTRE_UPDATE`] (ldiskfs journal + LDLM
//!   locking), anchoring single-server create ≈12.5 K IOPS (LocoFS =
//!   8×, §4.2.2). Cross-MDT DNE2 transactions pay it on both MDTs.

use crate::calib;
use crate::fs_trait::DistFs;
use crate::lease::LeaseCache;
use crate::mds::{MdsReq, MdsResp, MdsStore, ModelMds};
use crate::model_util::{place, FatInode, ModelBase};
use loco_kv::KvConfig;
use loco_net::{class, Endpoint, JobTrace, Nanos, ServerId, SimEndpoint};
use loco_ostore::{ObjectStore, OstoreRequest, OstoreResponse};
use loco_sim::time::MICROS;
use loco_types::{normalize, parent, path, FsError, FsResult, UuidGen};

/// Which Lustre metadata layout to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LustreVariant {
    /// One MDS.
    Single,
    /// DNE phase 1: remote directories pinned per top-level directory.
    Dne1,
    /// DNE phase 2: striped directories.
    Dne2,
}

impl LustreVariant {
    /// Paper-facing display label.
    pub fn label(self) -> &'static str {
        match self {
            LustreVariant::Single => "Lustre",
            LustreVariant::Dne1 => "Lustre-D1",
            LustreVariant::Dne2 => "Lustre-D2",
        }
    }
}

/// The Lustre baseline model.
pub struct LustreFsModel {
    mdts: Vec<SimEndpoint<ModelMds>>,
    ost: Vec<SimEndpoint<ObjectStore>>,
    variant: LustreVariant,
    base: ModelBase,
    /// Client dentry/inode cache (Lustre LDLM-protected client cache).
    cache: LeaseCache<FatInode>,
    uuids: UuidGen,
    block_size: u64,
}

impl LustreFsModel {
    /// Create a new instance with default settings.
    pub fn new(variant: LustreVariant, num_mdts: u16) -> Self {
        let n = match variant {
            LustreVariant::Single => 1,
            _ => num_mdts,
        };
        let mdts = (0..n)
            .map(|i| {
                SimEndpoint::new(
                    ServerId::new(class::MDS, i),
                    ModelMds::new(MdsStore::Hash, KvConfig::default()),
                )
            })
            .collect::<Vec<_>>();
        let ost = vec![SimEndpoint::new(
            ServerId::new(class::OST, 0),
            ObjectStore::new(KvConfig::default()),
        )];
        let mut s = Self {
            mdts,
            ost,
            variant,
            base: ModelBase::new(174 * MICROS, 2 * MICROS),
            cache: LeaseCache::new(calib::BASELINE_LEASE),
            uuids: UuidGen::new(0),
            block_size: 1 << 20,
        };
        let ep = s.mdts[0].clone();
        s.base.call(
            &ep,
            MdsReq::Put(b"/".to_vec(), FatInode::dir(0o777).encode()),
        );
        let _ = s.base.ctx.take_trace();
        s
    }

    /// MDT holding the record for `p` (a file or directory path).
    fn mdt_of(&self, p: &str) -> usize {
        if p == "/" {
            return 0;
        }
        match self.variant {
            LustreVariant::Single => 0,
            // Whole top-level subtree pinned to one MDT.
            LustreVariant::Dne1 => {
                let top = path::components(p).next().unwrap_or("");
                place(top, self.mdts.len())
            }
            // Striped: every entry hashed independently.
            LustreVariant::Dne2 => place(p, self.mdts.len()),
        }
    }

    fn call_at(&mut self, idx: usize, req: MdsReq) -> MdsResp {
        let ep = self.mdts[idx].clone();
        self.base.call(&ep, req)
    }

    fn get_inode(&mut self, p: &str) -> FsResult<FatInode> {
        if let Some(i) = self.cache.get(p, self.base.clock) {
            return Ok(i);
        }
        let idx = self.mdt_of(p);
        let v = self
            .call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Get(p.as_bytes().to_vec()),
                    MdsReq::Work(calib::LUSTRE_LOOKUP),
                ]),
            )
            .multi()
            .remove(0)
            .value()
            .ok_or(FsError::NotFound)?;
        let inode = FatInode::decode(&v).ok_or_else(|| FsError::Io("bad inode".into()))?;
        self.cache.put(p, inode, self.base.clock);
        Ok(inode)
    }

    /// Update at one MDT, optionally as a cross-MDT transaction with a
    /// second MDT (DNE2's distributed updates): the second MDT pays the
    /// journal too, and one extra round trip happens.
    fn update(&mut self, idx: usize, ops: Vec<MdsReq>, cross: Option<usize>) -> Vec<MdsResp> {
        let mut all = ops;
        all.push(MdsReq::Work(calib::LUSTRE_UPDATE));
        let out = self.call_at(idx, MdsReq::Multi(all)).multi();
        if let Some(other) = cross {
            if other != idx {
                self.call_at(other, MdsReq::Work(calib::LUSTRE_UPDATE));
            }
        }
        out
    }

    /// MDTs that can hold entries of `dir` (for scans).
    fn dir_span(&self, dir: &str) -> Vec<usize> {
        match self.variant {
            LustreVariant::Single => vec![0],
            LustreVariant::Dne1 => {
                if dir == "/" {
                    // Top-level dirs spread across MDTs.
                    (0..self.mdts.len()).collect()
                } else {
                    vec![self.mdt_of(dir)]
                }
            }
            LustreVariant::Dne2 => (0..self.mdts.len()).collect(),
        }
    }

    fn children(&mut self, dir: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut prefix = dir.as_bytes().to_vec();
        if *prefix.last().unwrap() != b'/' {
            prefix.push(b'/');
        }
        let mut out = Vec::new();
        for idx in self.dir_span(dir) {
            for (k, v) in self
                .call_at(idx, MdsReq::ScanPrefix(prefix.clone()))
                .entries()
            {
                if !k[prefix.len()..].contains(&b'/') {
                    out.push((k, v));
                }
            }
        }
        out
    }
}

impl DistFs for LustreFsModel {
    fn name(&self) -> String {
        self.variant.label().into()
    }

    fn rtt(&self) -> Nanos {
        self.base.rtt
    }

    fn mkdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::AlreadyExists)?;
            let parent_inode = self.get_inode(dir)?;
            if !parent_inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            let self_idx = self.mdt_of(&p);
            let parent_idx = self.mdt_of(dir);
            // Intent lock round trip, then the (possibly cross-MDT)
            // directory creation, guarded against existing entries.
            self.call_at(self_idx, MdsReq::Work(calib::LUSTRE_LOOKUP));
            let mut parts = self
                .call_at(
                    self_idx,
                    MdsReq::Guarded(vec![
                        MdsReq::PutIfAbsent(p.as_bytes().to_vec(), FatInode::dir(0o755).encode()),
                        MdsReq::Work(calib::LUSTRE_UPDATE),
                    ]),
                )
                .multi();
            if !parts.remove(0).bool() {
                return Err(FsError::AlreadyExists);
            }
            if parent_idx != self_idx {
                self.call_at(parent_idx, MdsReq::Work(calib::LUSTRE_UPDATE));
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn rmdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_inode(&p)?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            if !self.children(&p).is_empty() {
                return Err(FsError::NotEmpty);
            }
            let idx = self.mdt_of(&p);
            let parent_idx = self.mdt_of(parent(&p).unwrap_or("/"));
            let ok = self.update(
                idx,
                vec![MdsReq::Delete(p.as_bytes().to_vec())],
                Some(parent_idx),
            )[0]
            .clone()
            .bool();
            self.cache.invalidate(&p);
            if ok {
                Ok(())
            } else {
                Err(FsError::NotFound)
            }
        })();
        self.base.finish();
        res
    }

    fn create(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let parent_inode = self.get_inode(dir)?;
            if !parent_inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            let idx = self.mdt_of(&p);
            let parent_idx = self.mdt_of(dir);
            let uuid = self.uuids.alloc();
            let cross = if self.variant == LustreVariant::Dne2 {
                Some(parent_idx)
            } else {
                None
            };
            // Intent lookup + LDLM lock acquisition round trip precedes
            // the create; the lock cancel follows it.
            self.call_at(idx, MdsReq::Work(calib::LUSTRE_LOOKUP));
            let mut parts = self
                .call_at(
                    idx,
                    MdsReq::Guarded(vec![
                        MdsReq::PutIfAbsent(
                            p.as_bytes().to_vec(),
                            FatInode::file(0o644, uuid).encode(),
                        ),
                        MdsReq::Work(calib::LUSTRE_UPDATE),
                    ]),
                )
                .multi();
            if !parts.remove(0).bool() {
                return Err(FsError::AlreadyExists);
            }
            if let Some(other) = cross {
                if other != idx {
                    self.call_at(other, MdsReq::Work(calib::LUSTRE_UPDATE));
                }
            }
            self.call_at(idx, MdsReq::Work(2 * MICROS)); // lock cancel
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn unlink(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            let idx = self.mdt_of(&p);
            let cross = if self.variant == LustreVariant::Dne2 {
                Some(self.mdt_of(dir))
            } else {
                None
            };
            // Lookup-intent + lock round trip precedes the unlink.
            let inode = self.get_inode(&p)?;
            if inode.is_dir {
                return Err(FsError::IsADirectory);
            }
            let ok = self.update(idx, vec![MdsReq::Delete(p.as_bytes().to_vec())], cross)[0]
                .clone()
                .bool();
            self.cache.invalidate(&p);
            if ok {
                Ok(())
            } else {
                Err(FsError::NotFound)
            }
        })();
        self.base.finish();
        res
    }

    fn stat_file(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        // Lustre getattr revalidates at the MDS even with a cached
        // dentry: a lookup-intent RPC resolves the dentry, then a
        // getattr/glimpse RPC fetches attributes — two round trips.
        self.cache.invalidate(&p);
        let res = self.get_inode(&p).and_then(|inode| {
            if inode.is_dir {
                Err(FsError::IsADirectory)
            } else {
                Ok(())
            }
        });
        if res.is_ok() {
            let idx = self.mdt_of(&p);
            self.call_at(idx, MdsReq::Work(calib::LUSTRE_LOOKUP));
        }
        self.base.finish();
        res
    }

    fn stat_dir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        self.cache.invalidate(&p);
        let res = self.get_inode(&p).and_then(|inode| {
            if inode.is_dir {
                Ok(())
            } else {
                Err(FsError::NotADirectory)
            }
        });
        if res.is_ok() {
            let idx = self.mdt_of(&p);
            self.call_at(idx, MdsReq::Work(calib::LUSTRE_LOOKUP));
        }
        self.base.finish();
        res
    }

    fn readdir(&mut self, raw: &str) -> FsResult<usize> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_inode(&p)?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            Ok(self.children(&p).len())
        })();
        self.base.finish();
        res
    }

    fn chmod_file(&mut self, raw: &str, mode: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        self.cache.invalidate(&p);
        let res = (|| {
            let mut inode = self.get_inode(&p)?;
            inode.mode = mode;
            let idx = self.mdt_of(&p);
            self.update(
                idx,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
                None,
            );
            self.cache.invalidate(&p);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn chown_file(&mut self, raw: &str, uid: u32, gid: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        self.cache.invalidate(&p);
        let res = (|| {
            let mut inode = self.get_inode(&p)?;
            inode.uid = uid;
            inode.gid = gid;
            let idx = self.mdt_of(&p);
            self.update(
                idx,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
                None,
            );
            self.cache.invalidate(&p);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn truncate_file(&mut self, raw: &str, size: u64) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        self.cache.invalidate(&p);
        let res = (|| {
            let mut inode = self.get_inode(&p)?;
            inode.size = size;
            let idx = self.mdt_of(&p);
            self.update(
                idx,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
                None,
            );
            self.cache.invalidate(&p);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn access_file(&mut self, raw: &str) -> FsResult<bool> {
        let p = normalize(raw)?;
        self.base.begin();
        self.cache.invalidate(&p);
        let res = self.get_inode(&p).map(|_| true);
        self.base.finish();
        res
    }

    fn rename_file(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        self.cache.invalidate(&o);
        let res = (|| {
            let inode = self.get_inode(&o)?;
            let oi = self.mdt_of(&o);
            let ni = self.mdt_of(&n);
            self.update(oi, vec![MdsReq::Delete(o.as_bytes().to_vec())], Some(ni));
            self.update(
                ni,
                vec![MdsReq::Put(n.as_bytes().to_vec(), inode.encode())],
                None,
            );
            self.cache.invalidate(&o);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn rename_dir(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        self.cache.invalidate(&o);
        let res = (|| {
            let inode = self.get_inode(&o)?;
            let mut prefix = o.as_bytes().to_vec();
            prefix.push(b'/');
            let mut moved = Vec::new();
            for i in 0..self.mdts.len() {
                for (k, v) in self
                    .call_at(i, MdsReq::ScanPrefix(prefix.clone()))
                    .entries()
                {
                    self.call_at(i, MdsReq::Delete(k.clone()));
                    moved.push((k, v));
                }
            }
            let oi = self.mdt_of(&o);
            self.update(oi, vec![MdsReq::Delete(o.as_bytes().to_vec())], None);
            let ni = self.mdt_of(&n);
            self.update(
                ni,
                vec![MdsReq::Put(n.as_bytes().to_vec(), inode.encode())],
                None,
            );
            for (k, v) in moved {
                let suffix = &k[prefix.len()..];
                let mut nk = n.as_bytes().to_vec();
                nk.push(b'/');
                nk.extend_from_slice(suffix);
                let idx = self.mdt_of(std::str::from_utf8(&nk).unwrap());
                self.call_at(idx, MdsReq::Put(nk, v));
            }
            self.cache.invalidate_subtree(&o);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn write_file(&mut self, raw: &str, data: &[u8]) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        self.cache.invalidate(&p);
        let res = (|| {
            // open intent RPC
            let mut inode = self.get_inode(&p)?;
            let bs = self.block_size as usize;
            for (i, chunk) in data.chunks(bs.max(1)).enumerate() {
                let ep = self.ost[0].clone();
                let resp = ep.call(
                    &mut self.base.ctx,
                    OstoreRequest::WriteBlock {
                        uuid: inode.uuid,
                        blk: i as u64,
                        data: chunk.to_vec(),
                    },
                );
                let OstoreResponse::Done(r) = resp else {
                    unreachable!()
                };
                r?;
            }
            inode.size = data.len() as u64;
            let idx = self.mdt_of(&p);
            self.update(
                idx,
                vec![MdsReq::Put(p.as_bytes().to_vec(), inode.encode())],
                None,
            );
            self.cache.invalidate(&p);
            // mdc close RPC.
            self.call_at(idx, MdsReq::Work(calib::LUSTRE_LOOKUP));
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn read_file(&mut self, raw: &str) -> FsResult<Vec<u8>> {
        let p = normalize(raw)?;
        self.base.begin();
        self.cache.invalidate(&p);
        let res = (|| {
            let inode = self.get_inode(&p)?;
            let mut out = Vec::with_capacity(inode.size as usize);
            let blocks = inode.size.div_ceil(self.block_size.max(1));
            for blk in 0..blocks {
                let ep = self.ost[0].clone();
                let resp = ep.call(
                    &mut self.base.ctx,
                    OstoreRequest::ReadBlock {
                        uuid: inode.uuid,
                        blk,
                    },
                );
                match resp {
                    OstoreResponse::Block(Ok(b)) => out.extend_from_slice(&b),
                    OstoreResponse::Block(Err(_)) => break,
                    other => unreachable!("{other:?}"),
                }
            }
            out.truncate(inode.size as usize);
            // mdc close RPC.
            let idx = self.mdt_of(&p);
            self.call_at(idx, MdsReq::Work(calib::LUSTRE_LOOKUP));
            Ok(out)
        })();
        self.base.finish();
        res
    }

    fn take_trace(&mut self) -> JobTrace {
        self.base.take_trace()
    }

    fn advance_clock(&mut self, delta: Nanos) {
        self.base.clock += delta;
    }

    fn set_rtt(&mut self, rtt: Nanos) {
        self.base.rtt = rtt;
    }

    fn drop_caches(&mut self) {
        self.cache = LeaseCache::new(calib::BASELINE_LEASE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants(n: u16) -> Vec<LustreFsModel> {
        vec![
            LustreFsModel::new(LustreVariant::Single, n),
            LustreFsModel::new(LustreVariant::Dne1, n),
            LustreFsModel::new(LustreVariant::Dne2, n),
        ]
    }

    #[test]
    fn lifecycle_all_variants() {
        for mut fs in all_variants(4) {
            fs.mkdir("/d").unwrap();
            fs.create("/d/f").unwrap();
            fs.stat_file("/d/f").unwrap();
            assert_eq!(fs.readdir("/d").unwrap(), 1, "{}", fs.name());
            assert_eq!(fs.create("/d/f"), Err(FsError::AlreadyExists));
            assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
            fs.unlink("/d/f").unwrap();
            fs.rmdir("/d").unwrap();
        }
    }

    #[test]
    fn single_variant_uses_one_mdt() {
        let mut fs = LustreFsModel::new(LustreVariant::Single, 8);
        fs.mkdir("/a").unwrap();
        fs.create("/a/f").unwrap();
        let servers: std::collections::HashSet<u16> = fs
            .take_trace()
            .visits
            .iter()
            .map(|v| v.server.index)
            .collect();
        assert_eq!(servers, [0u16].into_iter().collect());
    }

    #[test]
    fn dne1_pins_subtrees() {
        let fs = LustreFsModel::new(LustreVariant::Dne1, 8);
        // Different top-level dirs land on different MDTs (usually).
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            seen.insert(fs.mdt_of(&format!("/top{i}")));
        }
        assert!(seen.len() > 2, "DNE1 must spread top-level dirs");
        // Everything under one top dir shares its MDT.
        assert_eq!(fs.mdt_of("/top1/a/b"), fs.mdt_of("/top1"));
    }

    #[test]
    fn dne2_create_is_cross_mdt_transaction() {
        let mut fs = LustreFsModel::new(LustreVariant::Dne2, 8);
        fs.mkdir("/d").unwrap();
        let _ = fs.take_trace();
        // Find a file whose shard differs from the parent's.
        for i in 0..32 {
            let p = format!("/d/f{i}");
            let fi = fs.mdt_of(&p);
            let di = fs.mdt_of("/d");
            fs.create(&p).unwrap();
            let t = fs.take_trace();
            if fi != di {
                assert!(
                    t.visits.len() >= 2,
                    "cross-MDT create needs 2 visits: {:?}",
                    t.visits
                );
                return;
            }
        }
        panic!("no cross-MDT placement found in 32 tries");
    }

    #[test]
    fn dne2_readdir_fans_out() {
        let mut fs = LustreFsModel::new(LustreVariant::Dne2, 8);
        fs.mkdir("/d").unwrap();
        for i in 0..10 {
            fs.create(&format!("/d/f{i}")).unwrap();
        }
        assert_eq!(fs.readdir("/d").unwrap(), 10);
        let t = fs.take_trace();
        assert!(t.visits.len() >= 8, "striped dir scan");
        // DNE1 keeps it local.
        let mut fs1 = LustreFsModel::new(LustreVariant::Dne1, 8);
        fs1.mkdir("/d").unwrap();
        for i in 0..10 {
            fs1.create(&format!("/d/f{i}")).unwrap();
        }
        assert_eq!(fs1.readdir("/d").unwrap(), 10);
        let t1 = fs1.take_trace();
        assert!(
            t1.visits.len() <= 2,
            "DNE1 readdir is local: {:?}",
            t1.visits
        );
    }

    #[test]
    fn update_pays_ldiskfs_journal() {
        let mut fs = LustreFsModel::new(LustreVariant::Single, 1);
        fs.mkdir("/d").unwrap();
        fs.create("/d/warm").unwrap();
        let _ = fs.take_trace();
        fs.create("/d/f").unwrap();
        let t = fs.take_trace();
        assert!(t.total_service() >= calib::LUSTRE_UPDATE);
    }

    #[test]
    fn rename_dir_moves_subtree_all_variants() {
        for mut fs in all_variants(4) {
            fs.mkdir("/a").unwrap();
            fs.mkdir("/a/s").unwrap();
            fs.create("/a/s/f").unwrap();
            fs.rename_dir("/a", "/b").unwrap();
            fs.advance_clock(2 * calib::BASELINE_LEASE);
            fs.stat_file("/b/s/f").unwrap();
            assert_eq!(fs.stat_dir("/a"), Err(FsError::NotFound), "{}", fs.name());
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = LustreFsModel::new(LustreVariant::Dne1, 2);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.write_file("/d/f", &[3u8; 2048]).unwrap();
        assert_eq!(fs.read_file("/d/f").unwrap(), vec![3u8; 2048]);
    }
}
