//! Generic metadata-server service used by every baseline model.
//!
//! A `ModelMds` is a key-value store plus a charge-only `Work` request
//! for modeled software costs. Baseline filesystems differ in *which
//! servers they send which sequences to*, not in the server container,
//! so one service type serves all four models. `Multi` bundles several
//! KV operations into one RPC (one network round trip), which is how
//! real servers batch the inode+dirent+journal updates of an operation.

use loco_kv::{BTreeDb, HashDb, KvConfig, KvStore, LsmDb};
use loco_net::{Nanos, Service};
use loco_sim::time::CostAcc;

/// Store flavour behind a model MDS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MdsStore {
    /// LSM tree (LevelDB) — IndexFS.
    Lsm,
    /// B+ tree — generic ordered store.
    BTree,
    /// Hash store — Gluster bricks, Lustre MDT metadata.
    Hash,
}

/// One KV-or-work request.
#[derive(Clone, Debug)]
pub enum MdsReq {
    /// Point read of a key.
    Get(Vec<u8>),
    /// Insert or overwrite a record.
    Put(Vec<u8>, Vec<u8>),
    /// Remove a record.
    Delete(Vec<u8>),
    /// Append bytes to a record (dirent logs).
    Append(Vec<u8>, Vec<u8>),
    /// Existence probe.
    Contains(Vec<u8>),
    /// Ordered prefix scan.
    ScanPrefix(Vec<u8>),
    /// Insert only if the key is absent; responds `Bool(inserted)`.
    PutIfAbsent(Vec<u8>, Vec<u8>),
    /// Pure modeled software cost (journal flush, lock manager, stack).
    Work(Nanos),
    /// Several requests handled in one round trip.
    Multi(Vec<MdsReq>),
    /// Several requests in one round trip, executed as a server-side
    /// mini-transaction: execution stops at the first request that
    /// responds `Bool(false)` (e.g. a failed [`MdsReq::PutIfAbsent`]).
    Guarded(Vec<MdsReq>),
}

/// Response mirror of [`MdsReq`].
#[derive(Clone, Debug)]
pub enum MdsResp {
    /// Optional value of a point read.
    Value(Option<Vec<u8>>),
    /// Boolean probe result.
    Bool(bool),
    /// Records of a scan.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// Unit acknowledgment.
    Unit,
    /// Batch executed in one round trip.
    Multi(Vec<MdsResp>),
}

impl MdsResp {
    /// Unwrap a `Value` response (panics on other variants).
    pub fn value(self) -> Option<Vec<u8>> {
        match self {
            MdsResp::Value(v) => v,
            other => panic!("expected Value, got {other:?}"),
        }
    }

    /// Unwrap a `Bool` response (panics on other variants).
    pub fn bool(self) -> bool {
        match self {
            MdsResp::Bool(b) => b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Borrow the entries.
    pub fn entries(self) -> Vec<(Vec<u8>, Vec<u8>)> {
        match self {
            MdsResp::Entries(e) => e,
            other => panic!("expected Entries, got {other:?}"),
        }
    }

    /// Unwrap a `Multi` response (panics on other variants).
    pub fn multi(self) -> Vec<MdsResp> {
        match self {
            MdsResp::Multi(v) => v,
            other => panic!("expected Multi, got {other:?}"),
        }
    }
}

/// The generic model metadata server.
pub struct ModelMds {
    db: Box<dyn KvStore>,
    extra: CostAcc,
    rpc_overhead: Nanos,
}

impl ModelMds {
    /// Create a new instance with default settings.
    pub fn new(store: MdsStore, cfg: KvConfig) -> Self {
        let db: Box<dyn KvStore> = match store {
            MdsStore::Lsm => Box::new(LsmDb::new(cfg)),
            MdsStore::BTree => Box::new(BTreeDb::new(cfg)),
            MdsStore::Hash => Box::new(HashDb::new(cfg)),
        };
        Self {
            db,
            extra: CostAcc::new(),
            rpc_overhead: loco_sim::CostModel::default().rpc_handler,
        }
    }

    fn exec(&mut self, req: MdsReq) -> MdsResp {
        match req {
            MdsReq::Get(k) => MdsResp::Value(self.db.get(&k)),
            MdsReq::Put(k, v) => {
                self.db.put(&k, &v);
                MdsResp::Unit
            }
            MdsReq::Delete(k) => MdsResp::Bool(self.db.delete(&k)),
            MdsReq::Append(k, d) => {
                self.db.append(&k, &d);
                MdsResp::Unit
            }
            MdsReq::Contains(k) => MdsResp::Bool(self.db.contains(&k)),
            MdsReq::ScanPrefix(p) => MdsResp::Entries(self.db.scan_prefix(&p)),
            MdsReq::PutIfAbsent(k, v) => {
                if self.db.contains(&k) {
                    MdsResp::Bool(false)
                } else {
                    self.db.put(&k, &v);
                    MdsResp::Bool(true)
                }
            }
            MdsReq::Work(ns) => {
                self.extra.charge(ns);
                MdsResp::Unit
            }
            MdsReq::Multi(reqs) => MdsResp::Multi(reqs.into_iter().map(|r| self.exec(r)).collect()),
            MdsReq::Guarded(reqs) => {
                let mut out = Vec::with_capacity(reqs.len());
                for r in reqs {
                    let resp = self.exec(r);
                    let abort = matches!(resp, MdsResp::Bool(false));
                    out.push(resp);
                    if abort {
                        break;
                    }
                }
                MdsResp::Multi(out)
            }
        }
    }

    /// Record count (tests).
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Service for ModelMds {
    type Req = MdsReq;
    type Resp = MdsResp;

    fn handle(&mut self, req: MdsReq) -> MdsResp {
        self.extra.charge(self.rpc_overhead);
        self.exec(req)
    }

    fn take_cost(&mut self) -> Nanos {
        self.extra.take() + self.db.take_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_net::{CallCtx, Endpoint, ServerId, SimEndpoint};
    use loco_sim::time::MICROS;

    #[test]
    fn kv_ops_roundtrip_through_service() {
        let ep = SimEndpoint::new(
            ServerId::new(3, 0),
            ModelMds::new(MdsStore::Hash, KvConfig::default()),
        );
        let mut ctx = CallCtx::new();
        ep.call(&mut ctx, MdsReq::Put(b"k".to_vec(), b"v".to_vec()));
        let v = ep.call(&mut ctx, MdsReq::Get(b"k".to_vec())).value();
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
        assert!(ep.call(&mut ctx, MdsReq::Delete(b"k".to_vec())).bool());
        assert_eq!(ctx.round_trips(), 3);
    }

    #[test]
    fn multi_is_one_round_trip() {
        let ep = SimEndpoint::new(
            ServerId::new(3, 1),
            ModelMds::new(MdsStore::BTree, KvConfig::default()),
        );
        let mut ctx = CallCtx::new();
        let resp = ep.call(
            &mut ctx,
            MdsReq::Multi(vec![
                MdsReq::Put(b"a".to_vec(), b"1".to_vec()),
                MdsReq::Get(b"a".to_vec()),
                MdsReq::Work(10 * MICROS),
            ]),
        );
        let parts = resp.multi();
        assert_eq!(parts.len(), 3);
        assert_eq!(ctx.round_trips(), 1);
        // The work charge lands in the single visit's service time.
        assert!(ctx.visits()[0].service >= 10 * MICROS);
    }

    #[test]
    fn work_charges_service_time() {
        let ep = SimEndpoint::new(
            ServerId::new(3, 2),
            ModelMds::new(MdsStore::Hash, KvConfig::default()),
        );
        let mut ctx = CallCtx::new();
        ep.call(&mut ctx, MdsReq::Work(650 * MICROS));
        assert!(ctx.visits()[0].service >= 650 * MICROS);
    }

    #[test]
    fn scan_prefix_on_ordered_store() {
        let ep = SimEndpoint::new(
            ServerId::new(3, 3),
            ModelMds::new(MdsStore::Lsm, KvConfig::default()),
        );
        let mut ctx = CallCtx::new();
        for k in ["/d/a", "/d/b", "/e/c"] {
            ep.call(&mut ctx, MdsReq::Put(k.as_bytes().to_vec(), vec![]));
        }
        let entries = ep
            .call(&mut ctx, MdsReq::ScanPrefix(b"/d/".to_vec()))
            .entries();
        assert_eq!(entries.len(), 2);
    }
}
