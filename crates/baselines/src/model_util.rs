//! Shared plumbing for the baseline models: per-client bookkeeping and
//! the fat-inode encoding conventional systems store.

use crate::mds::{MdsReq, MdsResp, ModelMds};
use loco_net::{CallCtx, Endpoint, JobTrace, Nanos, SimEndpoint};
use loco_types::meta::BASELINE_INODE_SIZE;
use loco_types::Uuid;

/// A conventional ~256 B inode record: type, mode, size, object uuid,
/// padded with the block-index/xattr area real systems keep inline
/// (§3.3's "file metadata object consumes hundreds of bytes").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatInode {
    /// Whether the node is a directory.
    pub is_dir: bool,
    /// POSIX permission bits.
    pub mode: u32,
    /// Caller user id (permission checks).
    pub uid: u32,
    /// Caller group id (permission checks).
    pub gid: u32,
    /// File size in bytes.
    pub size: u64,
    /// Object uuid (`sid` + `fid`).
    pub uuid: Uuid,
}

impl FatInode {
    /// A directory inode with benchmark-default ownership.
    pub fn dir(mode: u32) -> Self {
        Self {
            is_dir: true,
            mode,
            uid: 1000,
            gid: 1000,
            size: 0,
            uuid: Uuid::ROOT,
        }
    }

    /// A file inode with benchmark-default ownership.
    pub fn file(mode: u32, uuid: Uuid) -> Self {
        Self {
            is_dir: false,
            mode,
            uid: 1000,
            gid: 1000,
            size: 0,
            uuid,
        }
    }

    /// Serialize to the stored byte image.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; BASELINE_INODE_SIZE];
        buf[0] = self.is_dir as u8;
        buf[1..5].copy_from_slice(&self.mode.to_le_bytes());
        buf[5..9].copy_from_slice(&self.uid.to_le_bytes());
        buf[9..13].copy_from_slice(&self.gid.to_le_bytes());
        buf[13..21].copy_from_slice(&self.size.to_le_bytes());
        buf[21..29].copy_from_slice(&self.uuid.raw().to_le_bytes());
        buf
    }

    /// Parse from a stored byte image; `None` on corrupt input.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < 29 {
            return None;
        }
        Some(Self {
            is_dir: buf[0] != 0,
            mode: u32::from_le_bytes(buf[1..5].try_into().unwrap()),
            uid: u32::from_le_bytes(buf[5..9].try_into().unwrap()),
            gid: u32::from_le_bytes(buf[9..13].try_into().unwrap()),
            size: u64::from_le_bytes(buf[13..21].try_into().unwrap()),
            uuid: Uuid::from_raw(u64::from_le_bytes(buf[21..29].try_into().unwrap())),
        })
    }
}

/// Per-client trace/clock bookkeeping shared by all models (the same
/// scheme `LocoClient` uses), including the per-connection client
/// overhead the paper observes growing with server count for every
/// system (§4.2.1 obs. 2: "CephFS and Lustre also show the similar
/// pattern with LocoFS for the touch operations").
#[derive(Debug, Default)]
pub struct ModelBase {
    /// Trace context of the operation in flight.
    pub ctx: CallCtx,
    /// Trace of the last completed operation.
    pub last_trace: JobTrace,
    /// Client virtual clock (drives lease expiry).
    pub clock: Nanos,
    /// Network round-trip time charged per visit.
    pub rtt: Nanos,
    /// Fixed client CPU per operation.
    pub client_work: Nanos,
    /// Per-op client overhead per connected server beyond the first two.
    pub conn_poll: Nanos,
    contacted: std::collections::HashSet<loco_net::ServerId>,
}

impl ModelBase {
    /// Create a new instance with default settings.
    pub fn new(rtt: Nanos, client_work: Nanos) -> Self {
        Self {
            ctx: CallCtx::new(),
            last_trace: JobTrace::default(),
            clock: 0,
            rtt,
            client_work,
            conn_poll: 20_000,
            contacted: std::collections::HashSet::new(),
        }
    }

    /// Start a new operation (charges fixed client work).
    pub fn begin(&mut self) {
        self.ctx.charge_client(self.client_work);
    }

    /// Finish the operation: fold connection overhead into the trace and advance the clock.
    pub fn finish(&mut self) {
        let mut trace = self.ctx.take_trace();
        // Connection-poll overhead applies to ops that talked to the
        // network; purely client-local (cache-hit) ops pay nothing.
        if !trace.visits.is_empty() {
            let extra = self.contacted.len().saturating_sub(2) as Nanos;
            trace.client_work += self.conn_poll * extra;
        }
        self.clock += trace.unloaded_latency(self.rtt);
        self.last_trace = trace;
    }

    /// Drain the trace of the last completed operation.
    pub fn take_trace(&mut self) -> JobTrace {
        std::mem::take(&mut self.last_trace)
    }

    /// One RPC to `server`, recording the visit.
    pub fn call(&mut self, server: &SimEndpoint<ModelMds>, req: MdsReq) -> MdsResp {
        self.contacted.insert(server.id());
        server.call(&mut self.ctx, req)
    }
}

/// Deterministic path→server placement hash shared by the models.
pub fn place(s: &str, n: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_inode_roundtrip() {
        let i = FatInode {
            is_dir: false,
            mode: 0o644,
            uid: 5,
            gid: 6,
            size: 1234,
            uuid: Uuid::new(2, 9),
        };
        let buf = i.encode();
        assert_eq!(buf.len(), BASELINE_INODE_SIZE);
        assert_eq!(FatInode::decode(&buf), Some(i));
        assert_eq!(FatInode::decode(&[0u8; 4]), None);
    }

    #[test]
    fn place_is_deterministic_and_spread() {
        assert_eq!(place("/a/b", 8), place("/a/b", 8));
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(place(&format!("/dir/f{i}"), 8));
        }
        assert!(seen.len() >= 6);
    }
}
