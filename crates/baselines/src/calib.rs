//! Calibration constants for the baseline models.
//!
//! Each constant is a per-operation *software* cost (journal writes,
//! serialization stacks, lock managers) charged on the server in
//! addition to the real KV work the model performs. Values are chosen
//! so that single-server results land where the paper (or the paper's
//! cited sources) put them; every scaling and shape effect then emerges
//! from the communication patterns, not from these numbers.
//!
//! Anchors from the paper:
//!
//! * §4.2.2 obs. 1 — single-MDS create IOPS: LocoFS ≈100 K, which is
//!   "67× CephFS" (≈1.5 K), "23× Gluster" (≈4.3 K), "8× Lustre"
//!   (≈12.5 K).
//! * §1 / §2.1 — IndexFS creates at ≈6 K IOPS per node despite
//!   LevelDB's 128 K random puts, i.e. ≈160 µs of software per create.
//! * Fig 10 — co-located (no network) latency ordering:
//!   LocoFS < IndexFS < Lustre < CephFS/Gluster, with LocoFS ≈1/27 of
//!   CephFS and ≈1/25 of Gluster.

use loco_sim::time::{Nanos, MICROS};

/// CephFS MDS: every namespace update is journaled to the object store
/// (EMetaBlob events) and touches the MDCache locking stack.
/// ≈650 µs/update → ≈1.5 K creates/s/server (paper: LocoFS = 67×).
pub const CEPH_JOURNAL: Nanos = 650 * MICROS;

/// CephFS read-path software cost (cap acquisition, MDCache lookup).
pub const CEPH_READ_WORK: Nanos = 80 * MICROS;

/// Gluster brick-side update cost: the xlator stack plus xattr
/// (trusted.gfid, dht linkto) updates on the backing local FS.
/// ≈230 µs/update → ≈4.3 K creates/s/server (paper: LocoFS = 23×).
pub const GLUSTER_UPDATE: Nanos = 230 * MICROS;

/// Gluster brick-side lookup cost.
pub const GLUSTER_LOOKUP: Nanos = 60 * MICROS;

/// Lustre MDT update cost: ldiskfs journal + distributed lock manager.
/// ≈78 µs/update → ≈12.5 K creates/s/server (paper: LocoFS = 8×).
pub const LUSTRE_UPDATE: Nanos = 78 * MICROS;

/// Lustre MDT getattr/lookup cost.
pub const LUSTRE_LOOKUP: Nanos = 25 * MICROS;

/// IndexFS per-create software cost above LevelDB itself: column-style
/// metadata encoding, SSTable bulk-insertion bookkeeping, lease tables.
/// ≈155 µs → ≈6 K creates/s/server (paper §1: 6 K ≈ 1.7 % of LevelDB).
pub const INDEXFS_CREATE_WORK: Nanos = 155 * MICROS;

/// IndexFS read-path software cost.
pub const INDEXFS_READ_WORK: Nanos = 30 * MICROS;

/// Lease used by baseline client caches (IndexFS stateless client
/// caching, CephFS capabilities, Lustre dentry cache). Matches LocoFS's
/// 30 s default so cache effects compare fairly.
pub const BASELINE_LEASE: Nanos = 30 * loco_sim::time::SECS;

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's single-server create ratios must be recoverable from
    /// the constants (within slack — KV and RPC costs add on top).
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn single_server_create_ordering_matches_paper() {
        // software cost ordering: ceph > gluster > indexfs > lustre
        assert!(CEPH_JOURNAL > GLUSTER_UPDATE);
        assert!(GLUSTER_UPDATE > INDEXFS_CREATE_WORK);
        assert!(INDEXFS_CREATE_WORK > LUSTRE_UPDATE);
    }

    #[test]
    fn implied_iops_anchors() {
        let iops = |ns: Nanos| 1_000_000_000 / ns;
        assert!((1_300..1_800).contains(&iops(CEPH_JOURNAL)), "ceph ≈1.5K");
        assert!(
            (4_000..4_800).contains(&iops(GLUSTER_UPDATE)),
            "gluster ≈4.3K"
        );
        assert!(
            (11_000..14_500).contains(&iops(LUSTRE_UPDATE)),
            "lustre ≈12.5K"
        );
        assert!(
            (6_000..7_000).contains(&iops(INDEXFS_CREATE_WORK)),
            "indexfs ≈6K"
        );
    }
}
