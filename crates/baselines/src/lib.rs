#![warn(missing_docs)]
//! # loco-baselines — models of the systems LocoFS is compared against
//!
//! The paper evaluates LocoFS against CephFS 0.94, Gluster 3.7, Lustre
//! 2.9 (plain / DNE1 / DNE2), IndexFS, and raw Kyoto Cabinet. Porting
//! those systems is out of scope for any reproduction; what the figures
//! actually compare is each system's **metadata communication pattern**
//! (how many servers an operation touches, in what order) and its
//! **per-operation software cost** (journaling, serialization, stack
//! depth). Both are well documented, so this crate reimplements each
//! system as a *behavioural model*:
//!
//! * state is real — every model maintains a working namespace in real
//!   key-value stores and passes the same functional test suite, so the
//!   comparison isn't against a stub;
//! * communication follows the system's published design —
//!   per-component path traversal (IndexFS/Giga+ lineage), one-MDS-per-
//!   subtree (CephFS), all-server directory broadcast (Gluster), intent
//!   RPCs (Lustre), striped directories (Lustre DNE2);
//! * per-op software costs are single-number calibrations anchored to
//!   the paper's own single-server measurements ([`calib`]).
//!
//! All models speak through the same [`ModelMds`] RPC service over
//! `loco-net`, so their traces replay through the same simulator as
//! LocoFS itself.

pub mod calib;
pub mod cephfs;
pub mod fs_trait;
pub mod gluster;
pub mod indexfs;
pub mod lease;
pub mod loco_adapter;
pub mod lustre;
pub mod mds;
pub mod model_util;
pub mod rawkv;

pub use cephfs::CephFsModel;
pub use fs_trait::DistFs;
pub use gluster::GlusterFsModel;
pub use indexfs::IndexFsModel;
pub use lease::LeaseCache;
pub use loco_adapter::LocoAdapter;
pub use lustre::{LustreFsModel, LustreVariant};
pub use mds::{MdsReq, MdsResp, ModelMds};
pub use rawkv::RawKvFs;
