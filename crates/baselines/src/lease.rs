//! Generic lease-based client cache used by the baseline models
//! (IndexFS stateless client caching, CephFS capabilities, Lustre
//! dentry cache). Same lease semantics as LocoFS's d-inode cache so the
//! systems compare under equal caching assumptions.

use loco_sim::time::Nanos;
use std::collections::HashMap;

/// Path-keyed cache with per-entry lease expiry.
#[derive(Debug)]
pub struct LeaseCache<V: Clone> {
    entries: HashMap<String, (V, Nanos)>,
    lease: Nanos,
}

impl<V: Clone> LeaseCache<V> {
    /// Create a new instance with default settings.
    pub fn new(lease: Nanos) -> Self {
        Self {
            entries: HashMap::new(),
            lease,
        }
    }

    /// Look up a cached value while its lease is valid.
    pub fn get(&mut self, key: &str, now: Nanos) -> Option<V> {
        match self.entries.get(key) {
            Some((v, exp)) if *exp > now => Some(v.clone()),
            Some(_) => {
                self.entries.remove(key);
                None
            }
            None => None,
        }
    }

    /// Insert or refresh a value with a fresh lease.
    pub fn put(&mut self, key: &str, value: V, now: Nanos) {
        self.entries
            .insert(key.to_string(), (value, now + self.lease));
    }

    /// Drop one cached key.
    pub fn invalidate(&mut self, key: &str) {
        self.entries.remove(key);
    }

    /// Drop a path and everything beneath it.
    pub fn invalidate_subtree(&mut self, path: &str) {
        self.entries
            .retain(|k, _| !loco_types::path::is_same_or_descendant(k, path));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_expiry() {
        let mut c: LeaseCache<u32> = LeaseCache::new(100);
        c.put("/a", 7, 0);
        assert_eq!(c.get("/a", 99), Some(7));
        assert_eq!(c.get("/a", 100), None);
        assert!(c.is_empty());
    }

    #[test]
    fn subtree_invalidation() {
        let mut c: LeaseCache<u32> = LeaseCache::new(1000);
        c.put("/a", 1, 0);
        c.put("/a/b", 2, 0);
        c.put("/ax", 3, 0);
        c.invalidate_subtree("/a");
        assert_eq!(c.get("/a/b", 1), None);
        assert_eq!(c.get("/ax", 1), Some(3));
    }
}
