//! [`DistFs`] adapter over the real LocoFS client, so the workload
//! driver can run LocoFS and the baseline models interchangeably.

use crate::fs_trait::DistFs;
use loco_client::{FileHandle, LocoClient, LocoCluster, LocoConfig, Transport, TransportCluster};
use loco_net::{JobTrace, Nanos};
use loco_types::{FsResult, Perm};

/// LocoFS behind the common benchmark interface. Owns its cluster; use
/// [`LocoAdapter::from_cluster`] to share one cluster across clients.
pub struct LocoAdapter {
    client: LocoClient,
    label: String,
    // Keeps thread/TCP server halves alive for non-sim transports
    // (dropping the TransportCluster shuts its servers down).
    _cluster: Option<TransportCluster>,
}

fn base_label(config: &LocoConfig) -> &'static str {
    if config.cache_enabled {
        "LocoFS-C"
    } else {
        "LocoFS-NC"
    }
}

impl LocoAdapter {
    /// Build a fresh single-client cluster from `config`.
    pub fn new(config: LocoConfig) -> Self {
        let label = base_label(&config);
        let cluster = LocoCluster::new(config);
        Self {
            client: cluster.client(),
            label: label.to_string(),
            _cluster: None,
        }
    }

    /// Build a cluster over an explicit [`Transport`]. For
    /// [`Transport::Sim`] this is identical to [`LocoAdapter::new`];
    /// the other transports run the same servers behind threads or TCP
    /// sockets while the benchmark interface stays unchanged.
    pub fn with_transport(config: LocoConfig, transport: Transport) -> Self {
        let label = base_label(&config);
        let cluster = TransportCluster::new(config, transport);
        Self {
            client: cluster.client(),
            label: label.to_string(),
            _cluster: Some(cluster),
        }
    }

    /// Wrap a client of an existing (shared) cluster.
    pub fn from_cluster(cluster: &LocoCluster) -> Self {
        let label = if cluster.config.cache_enabled {
            "LocoFS-C"
        } else {
            "LocoFS-NC"
        };
        Self {
            client: cluster.client(),
            label: label.to_string(),
            _cluster: None,
        }
    }

    /// Borrow the underlying client.
    pub fn client_mut(&mut self) -> &mut LocoClient {
        &mut self.client
    }
}

impl DistFs for LocoAdapter {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn rtt(&self) -> Nanos {
        self.client.rtt()
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.client.mkdir(path, 0o755)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.client.rmdir(path)
    }

    fn create(&mut self, path: &str) -> FsResult<()> {
        self.client.create(path, 0o644).map(|_| ())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.client.unlink(path)
    }

    fn stat_file(&mut self, path: &str) -> FsResult<()> {
        self.client.stat_file(path).map(|_| ())
    }

    fn stat_dir(&mut self, path: &str) -> FsResult<()> {
        self.client.stat_dir(path).map(|_| ())
    }

    fn readdir(&mut self, path: &str) -> FsResult<usize> {
        self.client.readdir(path).map(|v| v.len())
    }

    fn chmod_file(&mut self, path: &str, mode: u32) -> FsResult<()> {
        self.client.chmod_file(path, mode)
    }

    fn chown_file(&mut self, path: &str, uid: u32, gid: u32) -> FsResult<()> {
        self.client.chown_file(path, uid, gid)
    }

    fn truncate_file(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.client.truncate_file(path, size)
    }

    fn access_file(&mut self, path: &str) -> FsResult<bool> {
        self.client.access_file(path, Perm::Read)
    }

    fn rename_file(&mut self, old: &str, new: &str) -> FsResult<()> {
        self.client.rename_file(old, new)
    }

    fn rename_dir(&mut self, old: &str, new: &str) -> FsResult<()> {
        self.client.rename_dir(old, new).map(|_| ())
    }

    fn write_file(&mut self, path: &str, data: &[u8]) -> FsResult<()> {
        // create-or-open + write: the paper's full-system workload does
        // create/write/close per file. The trace of the *write* is what
        // the caller reads after this returns; the open/create trace is
        // folded in by summing visits client-side.
        let mut h: FileHandle = match self.client.open(path, Perm::Write) {
            Ok(h) => h,
            Err(loco_types::FsError::NotFound) => self.client.create(path, 0o644)?,
            Err(e) => return Err(e),
        };
        let open_trace = self.client.take_trace();
        self.client.write(&mut h, 0, data)?;
        let mut write_trace = self.client.take_trace();
        let mut visits = open_trace.visits;
        visits.append(&mut write_trace.visits);
        self.client.set_last_trace(JobTrace {
            visits,
            client_work: open_trace.client_work + write_trace.client_work,
        });
        Ok(())
    }

    fn read_file(&mut self, path: &str) -> FsResult<Vec<u8>> {
        let h = self.client.open(path, Perm::Read)?;
        let open_trace = self.client.take_trace();
        let data = self.client.read(&h, 0, h.size)?;
        let mut read_trace = self.client.take_trace();
        let mut visits = open_trace.visits;
        visits.append(&mut read_trace.visits);
        self.client.set_last_trace(JobTrace {
            visits,
            client_work: open_trace.client_work + read_trace.client_work,
        });
        Ok(data)
    }

    fn take_trace(&mut self) -> JobTrace {
        self.client.take_trace()
    }

    fn advance_clock(&mut self, delta: Nanos) {
        self.client.advance_clock(delta);
    }

    fn set_rtt(&mut self, rtt: Nanos) {
        self.client.set_rtt(rtt);
    }

    fn drop_caches(&mut self) {
        self.client.drop_caches();
    }

    fn metrics_text(&mut self) -> Option<String> {
        Some(self.client.registry().render_prometheus())
    }

    fn slow_ops_json(&mut self) -> Option<String> {
        if self.client.tracer().mode() == loco_client::TraceMode::Off {
            return None;
        }
        Some(self.client.flight_recorder().dump_json())
    }

    fn folded_stacks(&mut self) -> Option<String> {
        if self.client.tracer().mode() != loco_client::TraceMode::Off {
            // Fold the recorded span trees: the recent ring (complete
            // under LOCO_TRACE=all) when present, the slowest rings
            // otherwise.
            let flight = self.client.flight_recorder();
            let mut records = flight.recent();
            if records.is_empty() {
                records = flight.slowest();
            }
            if !records.is_empty() {
                return Some(loco_obs::render_folded(&loco_obs::fold_records(&records)));
            }
        }
        // Tracing off (or nothing sampled): the always-on server-side
        // service/kv counters still yield per-role stacks.
        let snap = self.client.registry().snapshot();
        Some(loco_obs::render_folded(&loco_obs::fold_snapshot(&snap)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_lifecycle_through_trait() {
        let mut fs: Box<dyn DistFs> = Box::new(LocoAdapter::new(LocoConfig::with_servers(4)));
        assert_eq!(fs.name(), "LocoFS-C");
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.stat_file("/d/f").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), 1);
        fs.write_file("/d/f", b"hello").unwrap();
        assert_eq!(fs.read_file("/d/f").unwrap(), b"hello");
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
    }

    #[test]
    fn write_trace_includes_open_and_data_visits() {
        let mut fs = LocoAdapter::new(LocoConfig::with_servers(2));
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.write_file("/d/f", &[1u8; 100]).unwrap();
        let t = fs.take_trace();
        // open (FMS) + block write (OST) + setsize (FMS) ≥ 3 visits.
        assert!(t.visits.len() >= 3, "got {:?}", t.visits);
    }

    #[test]
    fn no_cache_label() {
        let fs = LocoAdapter::new(LocoConfig::with_servers(2).no_cache());
        assert_eq!(fs.name(), "LocoFS-NC");
    }

    #[test]
    fn metrics_text_exposes_op_and_rpc_families() {
        let mut fs = LocoAdapter::new(LocoConfig::with_servers(2));
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        let text = fs.metrics_text().expect("LocoFS carries a registry");
        assert!(
            text.contains(r#"loco_client_op_latency_nanos{op="mkdir",quantile="0.5"}"#),
            "{text}"
        );
        assert!(text.contains("loco_rpc_requests_total"), "{text}");
        assert!(text.contains(r#"role="dms""#), "{text}");
        assert!(text.contains(r#"role="fms""#), "{text}");
        // Baselines have none.
        let mut base = crate::CephFsModel::new(2);
        assert!(DistFs::metrics_text(&mut base).is_none());
    }
}
