//! IndexFS model (Ren et al., SC'14) — the Giga+-lineage, LevelDB-backed
//! system the paper positions itself against.
//!
//! Modeled design points:
//!
//! * every dentry+inode lives as one fat record in a **LevelDB** store
//!   ([`MdsStore::Lsm`], varlen codec → (de)serialization charges and
//!   compaction write amplification);
//! * directories are hash-partitioned **per entry** across servers (the
//!   fully-split Giga+ state large directories reach), so one directory
//!   spreads over all servers: readdir/rmdir fan out everywhere;
//! * pathname resolution walks the directory tree **component by
//!   component** — each uncached component is a lookup RPC to the
//!   server owning that component's record (the paper's Fig 2 "long
//!   locating latency"); resolved components are cached with a lease
//!   (IndexFS's stateless client caching);
//! * every namespace update pays [`calib::INDEXFS_CREATE_WORK`] of
//!   server software cost (column-style encoding, bulk-insertion
//!   bookkeeping), anchoring single-server create at ≈6 K IOPS (§1).

use crate::calib;
use crate::fs_trait::DistFs;
use crate::lease::LeaseCache;
use crate::mds::{MdsReq, MdsResp, MdsStore, ModelMds};
use crate::model_util::{place, FatInode, ModelBase};
use loco_kv::{CodecKind, KvConfig};
use loco_net::{class, JobTrace, Nanos, ServerId, SimEndpoint};
use loco_sim::time::MICROS;
use loco_types::{normalize, parent, path, FsError, FsResult, UuidGen};

/// The IndexFS baseline model.
pub struct IndexFsModel {
    servers: Vec<SimEndpoint<ModelMds>>,
    base: ModelBase,
    /// Stateless client lookup cache: path → is_dir.
    cache: LeaseCache<bool>,
    uuids: UuidGen,
}

impl IndexFsModel {
    /// Create a new instance with default settings.
    pub fn new(num_servers: u16) -> Self {
        let cfg = KvConfig::default().with_codec(CodecKind::Varlen);
        let servers = (0..num_servers)
            .map(|i| {
                SimEndpoint::new(
                    ServerId::new(class::MDS, i),
                    ModelMds::new(MdsStore::Lsm, cfg.clone()),
                )
            })
            .collect::<Vec<_>>();
        let mut s = Self {
            servers,
            base: ModelBase::new(174 * MICROS, 2 * MICROS),
            cache: LeaseCache::new(calib::BASELINE_LEASE),
            uuids: UuidGen::new(0),
        };
        let root = FatInode::dir(0o777).encode();
        let idx = s.server_of("/");
        s.base
            .call(&s.servers[idx].clone(), MdsReq::Put(b"/".to_vec(), root));
        let _ = s.base.ctx.take_trace();
        s
    }

    fn server_of(&self, p: &str) -> usize {
        place(p, self.servers.len())
    }

    fn call_at(&mut self, idx: usize, req: MdsReq) -> MdsResp {
        let ep = self.servers[idx].clone();
        self.base.call(&ep, req)
    }

    /// Component-by-component resolution of a *directory* path. Each
    /// uncached component costs one lookup RPC to its owning server.
    fn resolve_dir(&mut self, dir: &str) -> FsResult<()> {
        let mut acc = String::new();
        let comps: Vec<String> = path::components(dir).map(str::to_string).collect();
        // Root is implicit.
        let mut partials = vec!["/".to_string()];
        for c in &comps {
            if acc.is_empty() {
                acc = format!("/{c}");
            } else {
                acc = format!("{acc}/{c}");
            }
            partials.push(acc.clone());
        }
        for p in partials {
            if self.cache.get(&p, self.base.clock).is_some() {
                continue;
            }
            let idx = self.server_of(&p);
            let v = self
                .call_at(
                    idx,
                    MdsReq::Multi(vec![
                        MdsReq::Get(p.as_bytes().to_vec()),
                        MdsReq::Work(calib::INDEXFS_READ_WORK),
                    ]),
                )
                .multi()
                .remove(0)
                .value();
            let Some(v) = v else {
                return Err(FsError::NotFound);
            };
            let inode = FatInode::decode(&v).ok_or_else(|| FsError::Io("bad inode".into()))?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            self.cache.put(&p, true, self.base.clock);
        }
        Ok(())
    }

    fn get_inode(&mut self, p: &str) -> FsResult<FatInode> {
        let idx = self.server_of(p);
        let v = self
            .call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Get(p.as_bytes().to_vec()),
                    MdsReq::Work(calib::INDEXFS_READ_WORK),
                ]),
            )
            .multi()
            .remove(0)
            .value()
            .ok_or(FsError::NotFound)?;
        FatInode::decode(&v).ok_or_else(|| FsError::Io("bad inode".into()))
    }

    fn put_new(&mut self, p: &str, inode: FatInode) -> FsResult<()> {
        let idx = self.server_of(p);
        let mut parts = self
            .call_at(
                idx,
                MdsReq::Guarded(vec![
                    MdsReq::PutIfAbsent(p.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::INDEXFS_CREATE_WORK),
                ]),
            )
            .multi();
        if !parts.remove(0).bool() {
            return Err(FsError::AlreadyExists);
        }
        Ok(())
    }

    /// Read-modify-write of a fat inode (the coupled-value update the
    /// decoupled LocoFS design avoids).
    fn rmw(&mut self, p: &str, f: impl Fn(&mut FatInode)) -> FsResult<()> {
        let parent_dir = parent(p).ok_or(FsError::InvalidArgument)?;
        self.resolve_dir(parent_dir)?;
        let mut inode = self.get_inode(p)?;
        f(&mut inode);
        let idx = self.server_of(p);
        self.call_at(
            idx,
            MdsReq::Multi(vec![
                MdsReq::Put(p.as_bytes().to_vec(), inode.encode()),
                MdsReq::Work(calib::INDEXFS_CREATE_WORK),
            ]),
        );
        Ok(())
    }
}

impl DistFs for IndexFsModel {
    fn name(&self) -> String {
        "IndexFS".into()
    }

    fn rtt(&self) -> Nanos {
        self.base.rtt
    }

    fn mkdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::AlreadyExists)?;
            self.resolve_dir(dir)?;
            self.put_new(&p, FatInode::dir(0o755))
        })();
        self.base.finish();
        res
    }

    fn rmdir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::Busy)?;
            self.resolve_dir(dir)?;
            let inode = self.get_inode(&p)?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            // Split directory: every server may hold entries.
            let mut prefix = p.as_bytes().to_vec();
            prefix.push(b'/');
            for i in 0..self.servers.len() {
                let entries = self
                    .call_at(i, MdsReq::ScanPrefix(prefix.clone()))
                    .entries();
                if !entries.is_empty() {
                    return Err(FsError::NotEmpty);
                }
            }
            let idx = self.server_of(&p);
            let ok = self
                .call_at(
                    idx,
                    MdsReq::Multi(vec![
                        MdsReq::Delete(p.as_bytes().to_vec()),
                        MdsReq::Work(calib::INDEXFS_CREATE_WORK),
                    ]),
                )
                .multi()
                .remove(0)
                .bool();
            self.cache.invalidate(&p);
            if ok {
                Ok(())
            } else {
                Err(FsError::NotFound)
            }
        })();
        self.base.finish();
        res
    }

    fn create(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            self.resolve_dir(dir)?;
            let uuid = self.uuids.alloc();
            self.put_new(&p, FatInode::file(0o644, uuid))
        })();
        self.base.finish();
        res
    }

    fn unlink(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            self.resolve_dir(dir)?;
            let inode = self.get_inode(&p)?;
            if inode.is_dir {
                return Err(FsError::IsADirectory);
            }
            let idx = self.server_of(&p);
            let ok = self
                .call_at(
                    idx,
                    MdsReq::Multi(vec![
                        MdsReq::Delete(p.as_bytes().to_vec()),
                        MdsReq::Work(calib::INDEXFS_CREATE_WORK),
                    ]),
                )
                .multi()
                .remove(0)
                .bool();
            if ok {
                Ok(())
            } else {
                Err(FsError::NotFound)
            }
        })();
        self.base.finish();
        res
    }

    fn stat_file(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            self.resolve_dir(dir)?;
            let inode = self.get_inode(&p)?;
            if inode.is_dir {
                return Err(FsError::IsADirectory);
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn stat_dir(&mut self, raw: &str) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            if let Some(dir) = parent(&p) {
                self.resolve_dir(dir)?;
            }
            let inode = self.get_inode(&p)?;
            if !inode.is_dir {
                return Err(FsError::NotADirectory);
            }
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn readdir(&mut self, raw: &str) -> FsResult<usize> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            self.resolve_dir(&p)?;
            let mut prefix = p.clone().into_bytes();
            if *prefix.last().unwrap() != b'/' {
                prefix.push(b'/');
            }
            let mut n = 0;
            for i in 0..self.servers.len() {
                n += self
                    .call_at(i, MdsReq::ScanPrefix(prefix.clone()))
                    .entries()
                    .iter()
                    // Direct children only (no deeper slash).
                    .filter(|(k, _)| !k[prefix.len()..].contains(&b'/'))
                    .count();
            }
            Ok(n)
        })();
        self.base.finish();
        res
    }

    fn chmod_file(&mut self, raw: &str, mode: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = self.rmw(&p, |i| i.mode = mode);
        self.base.finish();
        res
    }

    fn chown_file(&mut self, raw: &str, uid: u32, gid: u32) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = self.rmw(&p, |i| {
            i.uid = uid;
            i.gid = gid;
        });
        self.base.finish();
        res
    }

    fn truncate_file(&mut self, raw: &str, size: u64) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = self.rmw(&p, |i| i.size = size);
        self.base.finish();
        res
    }

    fn access_file(&mut self, raw: &str) -> FsResult<bool> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let dir = parent(&p).ok_or(FsError::InvalidArgument)?;
            self.resolve_dir(dir)?;
            self.get_inode(&p).map(|_| true)
        })();
        self.base.finish();
        res
    }

    fn rename_file(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        let res = (|| {
            self.resolve_dir(parent(&o).ok_or(FsError::InvalidArgument)?)?;
            self.resolve_dir(parent(&n).ok_or(FsError::InvalidArgument)?)?;
            let inode = self.get_inode(&o)?;
            let oi = self.server_of(&o);
            self.call_at(oi, MdsReq::Delete(o.as_bytes().to_vec()));
            let ni = self.server_of(&n);
            self.call_at(
                ni,
                MdsReq::Multi(vec![
                    MdsReq::Put(n.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::INDEXFS_CREATE_WORK),
                ]),
            );
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn rename_dir(&mut self, old: &str, new: &str) -> FsResult<()> {
        let o = normalize(old)?;
        let n = normalize(new)?;
        self.base.begin();
        let res = (|| {
            let inode = self.get_inode(&o)?;
            // Hash placement: every descendant record relocates; each
            // server is scanned for the old prefix.
            let mut prefix = o.as_bytes().to_vec();
            prefix.push(b'/');
            let mut moved: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            for i in 0..self.servers.len() {
                for (k, v) in self
                    .call_at(i, MdsReq::ScanPrefix(prefix.clone()))
                    .entries()
                {
                    self.call_at(i, MdsReq::Delete(k.clone()));
                    moved.push((k, v));
                }
            }
            let oi = self.server_of(&o);
            self.call_at(oi, MdsReq::Delete(o.as_bytes().to_vec()));
            for (k, v) in moved {
                let suffix = &k[prefix.len()..];
                let mut nk = n.as_bytes().to_vec();
                nk.push(b'/');
                nk.extend_from_slice(suffix);
                let idx = place(std::str::from_utf8(&nk).unwrap(), self.servers.len());
                self.call_at(idx, MdsReq::Put(nk, v));
            }
            let ni = self.server_of(&n);
            self.call_at(ni, MdsReq::Put(n.as_bytes().to_vec(), inode.encode()));
            self.cache.invalidate_subtree(&o);
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn write_file(&mut self, raw: &str, data: &[u8]) -> FsResult<()> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = (|| {
            let mut inode = self.get_inode(&p)?;
            inode.size = data.len() as u64;
            let idx = self.server_of(&p);
            let mut dk = b"D".to_vec();
            dk.extend_from_slice(p.as_bytes());
            self.call_at(
                idx,
                MdsReq::Multi(vec![
                    MdsReq::Put(dk, data.to_vec()),
                    MdsReq::Put(p.as_bytes().to_vec(), inode.encode()),
                    MdsReq::Work(calib::INDEXFS_CREATE_WORK),
                ]),
            );
            Ok(())
        })();
        self.base.finish();
        res
    }

    fn read_file(&mut self, raw: &str) -> FsResult<Vec<u8>> {
        let p = normalize(raw)?;
        self.base.begin();
        let res = {
            let idx = self.server_of(&p);
            let mut dk = b"D".to_vec();
            dk.extend_from_slice(p.as_bytes());
            self.call_at(idx, MdsReq::Get(dk))
                .value()
                .ok_or(FsError::NotFound)
        };
        self.base.finish();
        res
    }

    fn take_trace(&mut self) -> JobTrace {
        self.base.take_trace()
    }

    fn advance_clock(&mut self, delta: Nanos) {
        self.base.clock += delta;
    }

    fn set_rtt(&mut self, rtt: Nanos) {
        self.base.rtt = rtt;
    }

    fn drop_caches(&mut self) {
        self.cache = LeaseCache::new(calib::BASELINE_LEASE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut fs = IndexFsModel::new(4);
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        fs.stat_file("/d/f").unwrap();
        assert_eq!(fs.readdir("/d").unwrap(), 1);
        assert_eq!(fs.create("/d/f"), Err(FsError::AlreadyExists));
        fs.chmod_file("/d/f", 0o600).unwrap();
        assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
    }

    #[test]
    fn cold_resolution_walks_components() {
        let mut fs = IndexFsModel::new(8);
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        fs.mkdir("/a/b/c").unwrap();
        // New client state: wipe the cache by advancing past the lease.
        fs.advance_clock(2 * calib::BASELINE_LEASE);
        fs.create("/a/b/c/file").unwrap();
        let t = fs.take_trace();
        // Lookup /, /a, /a/b, /a/b/c + the create itself = 5 visits.
        assert_eq!(t.visits.len(), 5, "{:?}", t.visits);
        // Warm: only the create RPC.
        fs.create("/a/b/c/file2").unwrap();
        assert_eq!(fs.take_trace().visits.len(), 1);
    }

    #[test]
    fn readdir_fans_out_to_all_servers() {
        let mut fs = IndexFsModel::new(8);
        fs.mkdir("/d").unwrap();
        for i in 0..20 {
            fs.create(&format!("/d/f{i}")).unwrap();
        }
        assert_eq!(fs.readdir("/d").unwrap(), 20);
        let t = fs.take_trace();
        assert!(t.visits.len() >= 8, "split dir → every server scanned");
    }

    #[test]
    fn create_slower_than_raw_leveldb() {
        // §1: IndexFS creates at ≈6 K IOPS vs LevelDB's 128 K.
        let mut fs = IndexFsModel::new(1);
        fs.mkdir("/d").unwrap();
        fs.create("/d/warm").unwrap();
        let _ = fs.take_trace();
        fs.create("/d/f").unwrap();
        let t = fs.take_trace();
        let service = t.total_service();
        assert!(
            service > 150 * MICROS,
            "IndexFS create service must be ≈160 µs, got {service}"
        );
    }

    #[test]
    fn rename_dir_relocates_descendants() {
        let mut fs = IndexFsModel::new(4);
        fs.mkdir("/a").unwrap();
        fs.create("/a/f").unwrap();
        fs.rename_dir("/a", "/b").unwrap();
        assert_eq!(fs.stat_file("/a/f"), Err(FsError::NotFound));
        fs.stat_file("/b/f").unwrap();
    }
}
