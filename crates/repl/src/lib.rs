//! `loco-repl` — warm-standby WAL replication for the DMS.
//!
//! The paper's loosely-coupled design leaves the directory metadata
//! server as the one component every operation routes through; this
//! crate makes it survive node loss. The primary's `DurableStore`
//! already seals every mutation into a crc-complete *commit group*
//! (PR 5's group commit); a commit tap hands those sealed bytes to a
//! [`GroupRing`], and per-standby shipper threads forward them verbatim
//! over loco-rpc (`ReplAppend`). Standbys apply them torn-tail-safely
//! into a live shadow store and ack with their durable high-water mark;
//! the primary's group-commit fsync then waits on a configurable
//! [`AckPolicy`] quorum before any client sees an acknowledgement.
//!
//! ## Epochs and fencing
//!
//! Every promotion bumps a monotonically increasing **epoch** (persisted
//! through the replicated KV itself, so it survives restarts and rides
//! the WAL to every replica). The epoch travels on every replicated
//! record batch and every client-visible reply:
//!
//! * a standby rejects `ReplAppend` from a lower epoch — the stale
//!   primary sees the higher epoch in the rejection and **self-fences**
//!   (stops acking client mutations, permanently);
//! * clients that receive a fenced reply redial through the updated
//!   `LOCO_CLUSTER` view (`FencedEpoch` fast-path in the TCP endpoint).
//!
//! ## Leases
//!
//! The primary heartbeats each standby every `lease/3` even when idle.
//! A standby whose last valid primary contact is older than `2×lease`
//! considers the lease expired and becomes *promotion-eligible*; with
//! auto-promotion enabled (`LOCO_REPL_AUTO_PROMOTE=1`, fleet-wide)
//! standby rank `r` promotes itself after `(2 + r) × lease` of
//! silence, so the fleet picks a single winner without a coordinator
//! in the common case. Two guards keep an automatic promotion from
//! racing a primary that is alive but unreachable:
//!
//! * **isolation fence** — with auto-promotion armed, a primary that
//!   has not completed an exchange with *any* standby for one lease
//!   self-fences (stops acking, for the rest of the process lifetime),
//!   a full lease before the earliest standby timer (`2×lease`) can
//!   fire on the same silence. This is a CP trade: in a 1+1 fleet a
//!   *dead* peer also fences the survivor until the peer is restarted
//!   (boot role comes from flags, so a reboot heals the fleet);
//! * **promotion gate** — before self-promoting, a standby probes its
//!   peers (`ReplStatus`): a reachable live primary, a standby that
//!   heard the primary within the last lease, or any higher epoch
//!   vetoes the promotion, and in fleets of three or more replicas a
//!   majority of the replica set must corroborate the loss — a lone
//!   partitioned standby cannot crown itself.
//!
//! Operator-driven promotion (auto-promotion off, the default) has no
//! silent-primary fence: a stale primary fences only on first contact
//! with the new epoch. With `--repl-ack one|all` it still cannot ack
//! in the interim (no standby at its epoch covers its batches), which
//! is what the zero-acked-loss guarantee rests on; `--repl-ack none`
//! explicitly trades that guarantee for latency.
//!
//! The crate is transport-agnostic: `loco-dms` carries the frames and
//! `locod` supplies a [`ReplTransport`] per peer, so `loco-repl`
//! depends only on the logging/metrics substrate.

use loco_obs::metrics::MetricsRegistry;
use loco_types::wire::{Wire, WireResult};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default byte cap on the in-memory ring of sealed commit groups
/// (override with `LOCO_REPL_RING_BYTES`). A standby that falls further
/// behind than the ring covers is caught up with a full snapshot.
pub const DEFAULT_RING_BYTES: usize = 4 << 20;

/// Largest batch of ring bytes shipped in one `ReplAppend`.
pub const MAX_SHIP_BYTES: usize = 1 << 20;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ----- roles + policies -------------------------------------------------

/// Replication role of a DMS daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Serving clients, shipping groups to standbys.
    Primary,
    /// Applying replicated groups; rejects client operations.
    Standby,
    /// A former primary that observed a higher epoch: rejects client
    /// operations forever (until an operator re-promotes it).
    Fenced,
}

impl Role {
    /// Stable wire byte (rides `ReplInfo`).
    pub fn as_u8(self) -> u8 {
        match self {
            Role::Primary => 1,
            Role::Standby => 2,
            Role::Fenced => 3,
        }
    }

    /// Decode the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Role::Primary),
            2 => Some(Role::Standby),
            3 => Some(Role::Fenced),
            _ => None,
        }
    }

    /// Human spelling (logs, `locotop`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Standby => "standby",
            Role::Fenced => "fenced",
        }
    }
}

/// How many standby acks the primary's group-commit fsync waits for
/// before client acks release (`--repl-ack`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Asynchronous replication: ack after the local fsync only. A
    /// failover can lose the unshipped tail (documented trade-off).
    None,
    /// Ack once the local fsync plus at least one standby covered the
    /// batch — survives any single node loss without losing acks.
    One,
    /// Ack only when every standby covered the batch (CP choice: a
    /// dead standby stalls writes until it returns or is removed).
    All,
}

impl AckPolicy {
    /// Parse a CLI/env spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" | "async" => Some(Self::None),
            "one" | "quorum" => Some(Self::One),
            "all" | "sync" => Some(Self::All),
            _ => None,
        }
    }

    /// Canonical CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::One => "one",
            Self::All => "all",
        }
    }
}

// ----- wire types -------------------------------------------------------

/// Replication control reply: every `ReplAppend`/`ReplSnapshot`/
/// `ReplStatus` answers with the replica's view of the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplInfo {
    /// The request was accepted (`false`: epoch rejected or seq
    /// mismatch — consult `epoch` and `next_seq` to decide between
    /// fencing and back-fill).
    pub ok: bool,
    /// The replica's current epoch.
    pub epoch: u64,
    /// The next WAL sequence number the replica expects.
    pub next_seq: u64,
    /// The replica's [`Role`] byte.
    pub role: u8,
    /// Ms since the replica last heard a valid primary (0 on a primary
    /// — it *is* the feed; `u64::MAX` when unreplicated). Peers use
    /// this to corroborate a primary loss before auto-promoting.
    pub silence_ms: u64,
}

impl Wire for ReplInfo {
    fn put(&self, out: &mut Vec<u8>) {
        self.ok.put(out);
        self.epoch.put(out);
        self.next_seq.put(out);
        self.role.put(out);
        self.silence_ms.put(out);
    }
    fn get(buf: &mut &[u8]) -> WireResult<Self> {
        Ok(ReplInfo {
            ok: bool::get(buf)?,
            epoch: u64::get(buf)?,
            next_seq: u64::get(buf)?,
            role: u8::get(buf)?,
            silence_ms: u64::get(buf)?,
        })
    }
}

// ----- the commit-group ring --------------------------------------------

struct RingEntry {
    first: u64,
    last: u64,
    bytes: Vec<u8>,
}

/// Byte-capped in-memory buffer of sealed commit groups, contiguous in
/// sequence space. Shippers replay from it; when a standby needs
/// records the ring no longer holds, the primary falls back to a full
/// snapshot.
pub struct GroupRing {
    entries: VecDeque<RingEntry>,
    bytes: usize,
    cap: usize,
}

impl GroupRing {
    /// Empty ring with the given byte cap.
    pub fn new(cap: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            bytes: 0,
            cap: cap.max(1),
        }
    }

    /// Append one sealed group. A discontinuity (snapshot install,
    /// ring handed between roles) drops the stale prefix rather than
    /// ever serving a gap.
    pub fn push(&mut self, first: u64, last: u64, bytes: &[u8]) {
        if let Some(back) = self.entries.back() {
            if first != back.last + 1 {
                self.entries.clear();
                self.bytes = 0;
            }
        }
        self.bytes += bytes.len();
        self.entries.push_back(RingEntry {
            first,
            last,
            bytes: bytes.to_vec(),
        });
        while self.bytes > self.cap && self.entries.len() > 1 {
            if let Some(old) = self.entries.pop_front() {
                self.bytes -= old.bytes.len();
            }
        }
    }

    /// Sealed groups currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no groups are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently buffered.
    pub fn byte_len(&self) -> usize {
        self.bytes
    }

    /// Highest sequence number buffered (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.entries.back().map(|e| e.last).unwrap_or(0)
    }

    /// Collect up to `max_bytes` of groups starting exactly at `seq`.
    /// `None` means the ring no longer covers `seq` (snapshot needed);
    /// an empty vec means the peer is already caught up.
    pub fn collect_from(&self, seq: u64, max_bytes: usize) -> Option<Vec<(u64, u64, Vec<u8>)>> {
        let Some(front) = self.entries.front() else {
            return Some(Vec::new());
        };
        if seq > self.last_seq() {
            return Some(Vec::new());
        }
        if seq < front.first {
            return None;
        }
        let mut out = Vec::new();
        let mut total = 0usize;
        let mut expect = seq;
        for e in &self.entries {
            if e.last < seq {
                continue;
            }
            if e.first != expect {
                // `seq` falls mid-group (a snapshot boundary drifted):
                // groups are atomic, so back-fill with a snapshot.
                return if out.is_empty() { None } else { Some(out) };
            }
            if total + e.bytes.len() > max_bytes && !out.is_empty() {
                break;
            }
            total += e.bytes.len();
            out.push((e.first, e.last, e.bytes.clone()));
            expect = e.last + 1;
        }
        Some(out)
    }
}

// ----- shared control state ---------------------------------------------

/// Per-standby replication state tracked by the primary.
pub struct PeerState {
    /// The standby's RPC address.
    pub addr: String,
    /// Highest sequence number known durable on the peer.
    acked: AtomicU64,
    /// The peer's next expected sequence (0 = unknown, probe first).
    next: AtomicU64,
    /// The last exchange succeeded.
    up: AtomicBool,
    /// Monotonic ms of the last successful exchange.
    last_ok_ms: AtomicU64,
}

impl PeerState {
    /// Highest sequence number known durable on this peer.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Whether the last exchange with this peer succeeded.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }
}

/// Shared replication control block: epoch, role, lease clocks, the
/// commit-group ring, and the ack quorum the group committer waits on.
/// One per DMS daemon, shared between the `DirServer` (under the
/// service lock) and the [`Replicator`] threads (outside it).
pub struct ReplCtl {
    epoch: AtomicU64,
    role: AtomicU8,
    ack: AckPolicy,
    lease: Duration,
    peers: Vec<PeerState>,
    ring: Mutex<GroupRing>,
    /// Paired with `ring`: signalled on new groups and role changes.
    work: Condvar,
    acks: Mutex<()>,
    ack_cv: Condvar,
    /// A quorum wait failed: the committer must drop (not send) the
    /// parked replies of that batch.
    abort_pending: AtomicBool,
    /// Monotonic ms of the last valid contact from a primary
    /// (standby-side lease clock).
    last_primary_ms: AtomicU64,
    /// Highest epoch ever observed (local or remote) — promotion bumps
    /// past it.
    max_seen_epoch: AtomicU64,
    start: Instant,
    shutdown: AtomicBool,
}

impl ReplCtl {
    /// New control block. `peers` are the standby RPC addresses (for a
    /// booting standby: the other replicas it would ship to *after* a
    /// promotion).
    pub fn new(
        epoch: u64,
        role: Role,
        ack: AckPolicy,
        lease: Duration,
        peers: Vec<String>,
    ) -> Self {
        let ring_cap = std::env::var("LOCO_REPL_RING_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_RING_BYTES);
        let now = Instant::now();
        Self {
            epoch: AtomicU64::new(epoch),
            role: AtomicU8::new(role.as_u8()),
            ack,
            lease,
            peers: peers
                .into_iter()
                .map(|addr| PeerState {
                    addr,
                    acked: AtomicU64::new(0),
                    next: AtomicU64::new(0),
                    up: AtomicBool::new(false),
                    last_ok_ms: AtomicU64::new(0),
                })
                .collect(),
            ring: Mutex::new(GroupRing::new(ring_cap)),
            work: Condvar::new(),
            acks: Mutex::new(()),
            ack_cv: Condvar::new(),
            abort_pending: AtomicBool::new(false),
            last_primary_ms: AtomicU64::new(0),
            max_seen_epoch: AtomicU64::new(epoch),
            start: now,
            shutdown: AtomicBool::new(false),
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Current role.
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire)).unwrap_or(Role::Fenced)
    }

    /// The configured ack policy.
    pub fn ack_policy(&self) -> AckPolicy {
        self.ack
    }

    /// The configured lease duration.
    pub fn lease(&self) -> Duration {
        self.lease
    }

    /// The tracked peers (shippers index into this).
    pub fn peers(&self) -> &[PeerState] {
        &self.peers
    }

    /// Record an epoch observed anywhere in the system.
    pub fn observe_epoch(&self, epoch: u64) {
        self.max_seen_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Highest epoch ever observed.
    pub fn max_seen_epoch(&self) -> u64 {
        self.max_seen_epoch.load(Ordering::Acquire)
    }

    /// Adopt a role + epoch (promotion, demotion, or adopting a higher
    /// epoch from a legitimate primary). Logs the transition and wakes
    /// every waiter so shippers/committers re-evaluate immediately.
    pub fn transition(&self, role: Role, epoch: u64) {
        let old_role = self.role();
        let old_epoch = self.epoch();
        self.epoch.store(epoch, Ordering::Release);
        self.observe_epoch(epoch);
        self.role.store(role.as_u8(), Ordering::Release);
        if old_role != role || old_epoch != epoch {
            loco_log::info!("repl.election", "replication role transition";
                from = old_role.as_str(),
                to = role.as_str(),
                old_epoch = old_epoch,
                epoch = epoch);
        }
        let _g = lock(&self.ring);
        self.work.notify_all();
        drop(_g);
        let _g = lock(&self.acks);
        self.ack_cv.notify_all();
    }

    /// Self-fence: a higher epoch exists. Idempotent; never lowers the
    /// observed epoch.
    pub fn fence(&self, seen_epoch: u64) {
        self.observe_epoch(seen_epoch);
        if self.role() == Role::Fenced {
            return;
        }
        loco_log::warn!("repl.election", "higher epoch observed: self-fencing";
            my_epoch = self.epoch(),
            seen_epoch = seen_epoch);
        self.fence_now();
    }

    /// Isolation fence: a primary that cannot complete an exchange with
    /// any standby for a full lease stops acking *before* any standby's
    /// staggered auto-promotion timer (earliest `2×lease`) can fire.
    /// Only meaningful with auto-promotion armed; the lease monitor
    /// owns the trigger.
    pub fn fence_isolated(&self) {
        if self.role() != Role::Primary {
            return;
        }
        loco_log::warn!("repl.lease", "no standby reachable within one lease: self-fencing";
            epoch = self.epoch(),
            silence_ms = self.peer_silence_ms(),
            lease_ms = self.lease.as_millis() as u64);
        self.fence_now();
    }

    fn fence_now(&self) {
        self.transition(Role::Fenced, self.epoch());
        // Fail any in-flight quorum waits — their batches must not ack.
        self.abort_pending.store(true, Ordering::Release);
        let _g = lock(&self.acks);
        self.ack_cv.notify_all();
    }

    /// Feed one sealed commit group into the ring (the store's commit
    /// tap) and wake the shippers.
    pub fn push_group(&self, first: u64, last: u64, bytes: &[u8]) {
        let mut ring = lock(&self.ring);
        ring.push(first, last, bytes);
        self.work.notify_all();
    }

    /// Run `f` against the ring (shippers collect batches through this).
    pub fn with_ring<R>(&self, f: impl FnOnce(&mut GroupRing) -> R) -> R {
        f(&mut lock(&self.ring))
    }

    /// Block until new work may exist (a group, a role change, or the
    /// timeout — whichever first).
    pub fn wait_work(&self, timeout: Duration) {
        let g = lock(&self.ring);
        let _ = self.work.wait_timeout(g, timeout);
    }

    /// Standby-side: record a valid contact from a primary at `epoch`.
    pub fn note_primary_contact(&self, epoch: u64) {
        self.observe_epoch(epoch);
        self.last_primary_ms.store(self.now_ms(), Ordering::Release);
    }

    /// Standby-side: ms since the last valid primary contact (since
    /// boot if none yet — a fresh standby starts its lease clock at
    /// construction, so promotion eligibility is never instant).
    pub fn primary_silence_ms(&self) -> u64 {
        self.now_ms()
            .saturating_sub(self.last_primary_ms.load(Ordering::Acquire))
    }

    /// The lease has been silent past `2×lease`: this standby may be
    /// promoted. Automatic promotion additionally waits out the rank
    /// stagger and the peer-corroboration gate (see the module docs);
    /// an operator promoting manually owns that judgement.
    pub fn promotion_eligible(&self) -> bool {
        self.role() == Role::Standby
            && self.primary_silence_ms() >= 2 * self.lease.as_millis() as u64
    }

    /// Primary-side: ms since the last completed exchange with *any*
    /// peer (since boot if none yet — mirrors the standby lease clock,
    /// so the isolation fence and the standby promotion timers measure
    /// the same silence window).
    pub fn peer_silence_ms(&self) -> u64 {
        let now = self.now_ms();
        self.peers
            .iter()
            .map(|p| now.saturating_sub(p.last_ok_ms.load(Ordering::Acquire)))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Primary-side: record the outcome of one exchange with peer `i`.
    /// Wakes quorum waiters on success. The durable-ack watermark only
    /// advances on an accepting reply from a standby: a refusal from an
    /// equal-epoch rival primary reports *its own* divergent WAL cursor,
    /// which must never count toward this primary's quorum.
    pub fn note_peer(&self, i: usize, info: Option<&ReplInfo>) {
        let Some(p) = self.peers.get(i) else { return };
        match info {
            Some(info) => {
                self.observe_epoch(info.epoch);
                p.next.store(info.next_seq, Ordering::Release);
                p.up.store(true, Ordering::Release);
                p.last_ok_ms.store(self.now_ms(), Ordering::Release);
                if info.ok || Role::from_u8(info.role) == Some(Role::Standby) {
                    p.acked
                        .store(info.next_seq.saturating_sub(1), Ordering::Release);
                    let _g = lock(&self.acks);
                    self.ack_cv.notify_all();
                }
            }
            None => p.up.store(false, Ordering::Release),
        }
    }

    /// The peer's next expected sequence (0 = unknown).
    pub fn peer_next(&self, i: usize) -> u64 {
        self.peers
            .get(i)
            .map(|p| p.next.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    fn quorum_met(&self, last_seq: u64) -> bool {
        let covered = self
            .peers
            .iter()
            .filter(|p| p.acked.load(Ordering::Acquire) >= last_seq)
            .count();
        match self.ack {
            AckPolicy::None => true,
            AckPolicy::One => covered >= 1.min(self.peers.len()),
            AckPolicy::All => covered >= self.peers.len(),
        }
    }

    /// Block until the ack quorum covers `last_seq`, the node fences,
    /// or the timeout expires. `true` = safe to ack. On failure the
    /// abort flag is raised so the committer drops the batch's replies.
    pub fn wait_quorum(&self, last_seq: u64, timeout: Duration) -> bool {
        if self.role() == Role::Fenced {
            // A fenced node never acks — even under `ack=none`, where
            // there is no quorum to wait for.
            self.abort_pending.store(true, Ordering::Release);
            return false;
        }
        if self.ack == AckPolicy::None || self.peers.is_empty() {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut g = lock(&self.acks);
        loop {
            if self.role() == Role::Fenced {
                self.abort_pending.store(true, Ordering::Release);
                return false;
            }
            if self.quorum_met(last_seq) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                loco_log::warn!("repl.quorum", "ack quorum timed out; dropping batch replies";
                    last_seq = last_seq,
                    policy = self.ack.as_str(),
                    timeout_ms = timeout.as_millis() as u64);
                self.abort_pending.store(true, Ordering::Release);
                return false;
            }
            let (g2, _) = self
                .ack_cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| {
                    let (g, t) = e.into_inner();
                    (g, t)
                });
            g = g2;
        }
    }

    /// Take (and clear) the pending batch-abort flag.
    pub fn take_abort(&self) -> bool {
        self.abort_pending.swap(false, Ordering::AcqRel)
    }

    /// Signal the replicator threads to exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _g = lock(&self.ring);
        self.work.notify_all();
    }

    /// Whether shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

// ----- the replicator ---------------------------------------------------

/// Transport to one peer replica, supplied by the daemon (an RPC
/// endpoint speaking the DMS `ReplAppend`/`ReplSnapshot`/`ReplStatus`
/// frames). Shared between the peer's shipper thread and the lease
/// monitor, hence `Sync`.
pub trait ReplTransport: Send + Sync {
    /// Ship one sealed commit group (`group` empty = heartbeat/probe).
    fn append(&self, epoch: u64, first_seq: u64, group: &[u8]) -> Result<ReplInfo, String>;
    /// Ship a full snapshot envelope covering sequences `..= last_seq`.
    fn snapshot(&self, epoch: u64, last_seq: u64, image: &[u8]) -> Result<ReplInfo, String>;
    /// Read-only probe of the peer's replication state. Unlike an
    /// empty `append`, this must NOT renew the peer's lease clock —
    /// the pre-promotion gate uses it to ask peers how long ago *they*
    /// heard the primary.
    fn status(&self) -> Result<ReplInfo, String>;
}

/// Reads the highest locally appended WAL sequence number.
pub type LastSeqFn = Arc<dyn Fn() -> u64 + Send + Sync>;
/// Builds a snapshot envelope: `(last_covered_seq, bytes)`.
pub type SnapshotFn = Arc<dyn Fn() -> Option<(u64, Vec<u8>)> + Send + Sync>;

/// Pulls state the shippers need from under the service lock.
pub struct ReplHost {
    /// Highest sequence number appended locally (`next_seq - 1`).
    pub last_seq: LastSeqFn,
    /// Build a snapshot envelope: `(last_covered_seq, bytes)`.
    pub snapshot: SnapshotFn,
    /// Promote this node (runs the same path as an explicit `Promote`
    /// request; used by auto-promotion).
    pub promote: Arc<dyn Fn() + Send + Sync>,
}

/// Tuning knobs for [`Replicator::spawn`].
pub struct ReplicatorConfig {
    /// Heartbeat cadence when idle (default `lease/3`).
    pub heartbeat: Duration,
    /// Standby rank for staggered auto-promotion (its index).
    pub rank: u64,
    /// Auto-promote after `(2 + rank) × lease` of primary silence.
    pub auto_promote: bool,
}

/// Background replication threads: one shipper per standby plus a
/// lease monitor. Threads park when the node is not primary and wake on
/// role transitions, so one `Replicator` serves the node across its
/// whole primary/standby lifecycle.
pub struct Replicator {
    ctl: Arc<ReplCtl>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Replicator {
    /// Spawn the shipper + monitor threads. `transports` pairs with
    /// `ctl.peers()` by index.
    pub fn spawn(
        ctl: Arc<ReplCtl>,
        transports: Vec<Box<dyn ReplTransport>>,
        host: ReplHost,
        registry: Option<Arc<MetricsRegistry>>,
        cfg: ReplicatorConfig,
    ) -> Self {
        assert_eq!(transports.len(), ctl.peers().len());
        // The lease monitor shares the transports with the shippers:
        // its pre-promotion gate probes peers with `status()`.
        let transports: Vec<Arc<dyn ReplTransport>> =
            transports.into_iter().map(Arc::from).collect();
        let mut threads = Vec::new();
        for (i, transport) in transports.iter().cloned().enumerate() {
            let ctl2 = ctl.clone();
            let host_last = host.last_seq.clone();
            let host_snap = host.snapshot.clone();
            let reg = registry.clone();
            let hb = cfg.heartbeat;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("loco-repl-ship-{i}"))
                    .spawn(move || {
                        ship_loop(
                            &ctl2,
                            i,
                            transport.as_ref(),
                            &host_last,
                            &host_snap,
                            reg.as_deref(),
                            hb,
                        )
                    })
                    .expect("spawn replication shipper"),
            );
        }
        {
            let ctl2 = ctl.clone();
            let promote = host.promote.clone();
            let reg = registry.clone();
            let rank = cfg.rank;
            let auto = cfg.auto_promote;
            threads.push(
                std::thread::Builder::new()
                    .name("loco-repl-lease".into())
                    .spawn(move || {
                        lease_loop(&ctl2, &transports, &promote, reg.as_deref(), rank, auto)
                    })
                    .expect("spawn replication lease monitor"),
            );
        }
        Self { ctl, threads }
    }

    /// Stop the threads and join them.
    pub fn stop(mut self) {
        self.ctl.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn publish_gauges(
    reg: Option<&MetricsRegistry>,
    ctl: &ReplCtl,
    peer: &str,
    lag_records: u64,
    lag_bytes: u64,
) {
    let Some(reg) = reg else { return };
    let labels: &[(&str, &str)] = &[("peer", peer)];
    reg.gauge("loco_repl_lag_records", labels)
        .set(lag_records as i64);
    reg.gauge("loco_repl_lag_bytes", labels)
        .set(lag_bytes as i64);
    reg.gauge("loco_repl_epoch", &[]).set(ctl.epoch() as i64);
    reg.gauge("loco_repl_role", &[])
        .set(ctl.role().as_u8() as i64);
}

/// One shipper: keeps peer `i` converged with the local WAL. Heartbeats
/// on idle (the standby's lease feed), replays the ring on lag, falls
/// back to a snapshot when the ring no longer covers the peer.
fn ship_loop(
    ctl: &ReplCtl,
    i: usize,
    transport: &dyn ReplTransport,
    last_seq: &LastSeqFn,
    snapshot: &SnapshotFn,
    reg: Option<&MetricsRegistry>,
    heartbeat: Duration,
) {
    let peer_addr = ctl.peers()[i].addr.clone();
    let mut last_beat = Instant::now() - heartbeat; // probe immediately
    loop {
        if ctl.is_shutdown() {
            return;
        }
        if ctl.role() != Role::Primary {
            ctl.wait_work(heartbeat);
            continue;
        }
        let epoch = ctl.epoch();
        let target = last_seq();
        let pn = ctl.peer_next(i);
        // Decide: probe (unknown peer), replay the ring, or snapshot.
        let batch = if pn == 0 {
            None // unknown: probe via heartbeat below
        } else {
            match ctl.with_ring(|r| r.collect_from(pn, MAX_SHIP_BYTES)) {
                Some(groups) => Some(groups),
                None => {
                    // The ring no longer covers the peer: full snapshot.
                    let Some((snap_last, image)) = snapshot() else {
                        ctl.wait_work(heartbeat);
                        continue;
                    };
                    loco_log::info!("repl.ship", "standby behind ring: shipping snapshot";
                        peer = peer_addr.clone(),
                        peer_next = pn,
                        snap_last = snap_last,
                        bytes = image.len() as u64);
                    match transport.snapshot(epoch, snap_last, &image) {
                        Ok(info) if info.epoch > epoch => {
                            ctl.fence(info.epoch);
                            continue;
                        }
                        Ok(info) => {
                            ctl.note_peer(i, Some(&info));
                            continue;
                        }
                        Err(e) => {
                            loco_log::warn!("repl.ship", "snapshot ship failed";
                                peer = peer_addr.clone(), error = e);
                            ctl.note_peer(i, None);
                            std::thread::sleep(heartbeat);
                            continue;
                        }
                    }
                }
            }
        };
        match batch {
            Some(groups) if !groups.is_empty() => {
                let mut ok = true;
                for (first, glast, bytes) in groups {
                    match transport.append(epoch, first, &bytes) {
                        Ok(info) if info.epoch > epoch => {
                            ctl.fence(info.epoch);
                            ok = false;
                            break;
                        }
                        Ok(info) => {
                            ctl.note_peer(i, Some(&info));
                            if !info.ok {
                                // Seq mismatch: the reply told us the
                                // peer's real cursor; re-plan.
                                ok = false;
                                break;
                            }
                            loco_log::trace!("repl.ship", "group shipped";
                                peer = peer_addr.clone(),
                                first = first,
                                last = glast,
                                bytes = bytes.len() as u64);
                        }
                        Err(e) => {
                            loco_log::warn!("repl.ship", "group ship failed";
                                peer = peer_addr.clone(), error = e);
                            ctl.note_peer(i, None);
                            ok = false;
                            std::thread::sleep(heartbeat);
                            break;
                        }
                    }
                }
                last_beat = Instant::now();
                let acked = ctl.peers()[i].acked();
                let lag = target.saturating_sub(acked);
                let lag_bytes = ctl.with_ring(|r| r.byte_len() as u64).min(lag * 64);
                publish_gauges(reg, ctl, &peer_addr, lag, lag_bytes);
                if !ok {
                    continue;
                }
            }
            _ => {
                // Caught up (or cursor unknown): heartbeat to feed the
                // standby's lease and learn its cursor.
                if last_beat.elapsed() >= heartbeat {
                    match transport.append(epoch, 0, &[]) {
                        Ok(info) if info.epoch > epoch => ctl.fence(info.epoch),
                        Ok(info) => {
                            ctl.note_peer(i, Some(&info));
                            let lag = target.saturating_sub(info.next_seq.saturating_sub(1));
                            publish_gauges(reg, ctl, &peer_addr, lag, 0);
                        }
                        Err(e) => {
                            loco_log::debug!("repl.ship", "heartbeat failed";
                                peer = peer_addr.clone(), error = e);
                            ctl.note_peer(i, None);
                        }
                    }
                    last_beat = Instant::now();
                }
                ctl.wait_work(heartbeat.min(Duration::from_millis(50)));
            }
        }
    }
}

/// Pre-promotion election gate: ask the other replicas whether they
/// corroborate the primary loss this standby observed. Vetoed by a
/// reachable live primary, a peer that heard the primary within the
/// last lease, or any higher epoch (an election already concluded
/// elsewhere — its stream will reach us). Fleets of three or more
/// replicas additionally require a majority of the replica set
/// (corroborating peers + this node) to agree, so a standby that is
/// itself the partitioned one cannot crown itself; a lone pair cannot
/// make that distinction, and relies on the primary-side isolation
/// fence instead.
fn promotion_confirmed(
    ctl: &ReplCtl,
    transports: &[Arc<dyn ReplTransport>],
    lease_ms: u64,
) -> bool {
    let mut corroborating = 0usize;
    for (i, t) in transports.iter().enumerate() {
        let Ok(info) = t.status() else { continue };
        ctl.observe_epoch(info.epoch);
        let peer = ctl.peers()[i].addr.clone();
        if info.epoch > ctl.epoch() {
            loco_log::debug!("repl.lease", "promotion gate: peer already at a higher epoch";
                peer = peer, epoch = info.epoch);
            return false;
        }
        match Role::from_u8(info.role) {
            Some(Role::Primary) => {
                loco_log::debug!("repl.lease", "promotion gate: peer is a live primary";
                    peer = peer, epoch = info.epoch);
                return false;
            }
            Some(Role::Standby) if info.silence_ms < lease_ms => {
                loco_log::debug!("repl.lease", "promotion gate: peer still hears the primary";
                    peer = peer, peer_silence_ms = info.silence_ms);
                return false;
            }
            // A fenced peer has certainly stopped acking; it counts as
            // corroboration just like a silent standby.
            Some(Role::Standby) | Some(Role::Fenced) => corroborating += 1,
            None => {}
        }
    }
    transports.len() <= 1 || 2 * (corroborating + 1) > transports.len() + 1
}

/// Lease monitor. On a standby: tracks primary silence and (with
/// auto-promotion armed) self-promotes at `(2 + rank) × lease` once
/// [`promotion_confirmed`] agrees. On a primary with auto-promotion
/// armed: enforces the isolation fence — one lease without a completed
/// standby exchange and the node stops acking, strictly before any
/// standby's promotion timer can fire. Also keeps the role/epoch
/// gauges fresh.
fn lease_loop(
    ctl: &ReplCtl,
    transports: &[Arc<dyn ReplTransport>],
    promote: &Arc<dyn Fn() + Send + Sync>,
    reg: Option<&MetricsRegistry>,
    rank: u64,
    auto_promote: bool,
) {
    let lease_ms = ctl.lease().as_millis() as u64;
    let mut announced_expired = false;
    let mut announced_withheld = false;
    loop {
        if ctl.is_shutdown() {
            return;
        }
        if let Some(reg) = reg {
            reg.gauge("loco_repl_epoch", &[]).set(ctl.epoch() as i64);
            reg.gauge("loco_repl_role", &[])
                .set(ctl.role().as_u8() as i64);
        }
        match ctl.role() {
            Role::Primary if auto_promote && !ctl.peers().is_empty() => {
                if ctl.peer_silence_ms() >= lease_ms {
                    ctl.fence_isolated();
                }
            }
            Role::Standby => {
                let silence = ctl.primary_silence_ms();
                if silence >= 2 * lease_ms && !announced_expired {
                    announced_expired = true;
                    loco_log::warn!("repl.lease", "primary lease expired; promotion-eligible";
                        silence_ms = silence,
                        lease_ms = lease_ms,
                        rank = rank);
                } else if silence < lease_ms {
                    announced_expired = false;
                    announced_withheld = false;
                }
                if auto_promote && silence >= (2 + rank) * lease_ms {
                    if promotion_confirmed(ctl, transports, lease_ms) {
                        loco_log::warn!("repl.lease", "auto-promoting after staggered lease expiry";
                            silence_ms = silence, rank = rank);
                        announced_withheld = false;
                        promote();
                        // The promote path transitions the role; loop back.
                    } else if !announced_withheld {
                        announced_withheld = true;
                        loco_log::warn!("repl.lease", "auto-promotion withheld: peers do not corroborate primary loss";
                            silence_ms = silence, rank = rank);
                    }
                }
            }
            _ => {}
        }
        std::thread::sleep(Duration::from_millis((lease_ms / 4).clamp(5, 250)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_policies_roundtrip() {
        for r in [Role::Primary, Role::Standby, Role::Fenced] {
            assert_eq!(Role::from_u8(r.as_u8()), Some(r));
        }
        assert_eq!(Role::from_u8(0), None);
        for (s, p) in [
            ("none", AckPolicy::None),
            ("one", AckPolicy::One),
            ("all", AckPolicy::All),
        ] {
            assert_eq!(AckPolicy::parse(s), Some(p));
            assert_eq!(AckPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(AckPolicy::parse("maybe"), None);
        let info = ReplInfo {
            ok: true,
            epoch: 7,
            next_seq: 42,
            role: Role::Standby.as_u8(),
            silence_ms: 0,
        };
        assert_eq!(ReplInfo::from_wire(&info.to_wire()), Ok(info));
    }

    #[test]
    fn ring_replays_contiguous_ranges() {
        let mut ring = GroupRing::new(1 << 20);
        ring.push(1, 2, b"aa");
        ring.push(3, 3, b"b");
        ring.push(4, 6, b"ccc");
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.last_seq(), 6);
        let all = ring.collect_from(1, usize::MAX).unwrap();
        assert_eq!(all.len(), 3);
        let tail = ring.collect_from(4, usize::MAX).unwrap();
        assert_eq!(tail, vec![(4, 6, b"ccc".to_vec())]);
        assert_eq!(
            ring.collect_from(7, usize::MAX),
            Some(Vec::new()),
            "caught-up peer gets nothing"
        );
        // Mid-group cursor and pre-ring cursor need a snapshot.
        assert_eq!(ring.collect_from(5, usize::MAX), None);
        ring = GroupRing::new(4); // tiny cap: evicts the front
        ring.push(1, 1, b"xx");
        ring.push(2, 2, b"yy");
        ring.push(3, 3, b"zz");
        assert!(
            ring.collect_from(1, usize::MAX).is_none(),
            "evicted: snapshot"
        );
        assert!(ring.collect_from(3, usize::MAX).is_some());
    }

    #[test]
    fn ring_discontinuity_drops_stale_prefix() {
        let mut ring = GroupRing::new(1 << 20);
        ring.push(1, 5, b"aaaaa");
        ring.push(100, 101, b"bb"); // snapshot reset the seq space
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.collect_from(100, usize::MAX).unwrap().len(), 1);
        assert_eq!(ring.collect_from(1, usize::MAX), None);
    }

    #[test]
    fn ring_batches_respect_byte_budget() {
        let mut ring = GroupRing::new(1 << 20);
        ring.push(1, 1, &[0u8; 600]);
        ring.push(2, 2, &[0u8; 600]);
        ring.push(3, 3, &[0u8; 600]);
        let batch = ring.collect_from(1, 1000).unwrap();
        assert_eq!(batch.len(), 1, "second group would bust the budget");
        // But a single over-budget group still ships (progress beats
        // the cap).
        let batch = ring.collect_from(1, 10).unwrap();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn quorum_policies_gate_on_peer_acks() {
        let mk = |ack| {
            Arc::new(ReplCtl::new(
                1,
                Role::Primary,
                ack,
                Duration::from_millis(50),
                vec!["a:1".into(), "b:2".into()],
            ))
        };
        // none: instant.
        assert!(mk(AckPolicy::None).wait_quorum(10, Duration::from_millis(1)));
        // one: blocks until any peer covers the seq.
        let ctl = mk(AckPolicy::One);
        assert!(!ctl.wait_quorum(10, Duration::from_millis(20)));
        assert!(ctl.take_abort(), "timeout raised the abort flag");
        ctl.note_peer(
            0,
            Some(&ReplInfo {
                ok: true,
                epoch: 1,
                next_seq: 11,
                role: Role::Standby.as_u8(),
                silence_ms: 0,
            }),
        );
        assert!(ctl.wait_quorum(10, Duration::from_millis(20)));
        // all: every peer must cover it.
        assert!(
            !ctl.wait_quorum(10, Duration::from_millis(5)) || ctl.ack_policy() != AckPolicy::All
        );
        let ctl = mk(AckPolicy::All);
        ctl.note_peer(
            0,
            Some(&ReplInfo {
                ok: true,
                epoch: 1,
                next_seq: 11,
                role: Role::Standby.as_u8(),
                silence_ms: 0,
            }),
        );
        assert!(!ctl.wait_quorum(10, Duration::from_millis(20)));
        let _ = ctl.take_abort();
        ctl.note_peer(
            1,
            Some(&ReplInfo {
                ok: true,
                epoch: 1,
                next_seq: 11,
                role: Role::Standby.as_u8(),
                silence_ms: 0,
            }),
        );
        assert!(ctl.wait_quorum(10, Duration::from_millis(20)));
    }

    #[test]
    fn quorum_wait_from_another_thread_unblocks() {
        let ctl = Arc::new(ReplCtl::new(
            1,
            Role::Primary,
            AckPolicy::One,
            Duration::from_millis(100),
            vec!["a:1".into()],
        ));
        let c2 = ctl.clone();
        let acker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            c2.note_peer(
                0,
                Some(&ReplInfo {
                    ok: true,
                    epoch: 1,
                    next_seq: 100,
                    role: Role::Standby.as_u8(),
                    silence_ms: 0,
                }),
            );
        });
        assert!(ctl.wait_quorum(99, Duration::from_secs(2)));
        acker.join().unwrap();
    }

    #[test]
    fn fencing_fails_quorum_waits_and_sticks() {
        let ctl = Arc::new(ReplCtl::new(
            3,
            Role::Primary,
            AckPolicy::One,
            Duration::from_millis(50),
            vec!["a:1".into()],
        ));
        let c2 = ctl.clone();
        let fencer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.fence(9);
        });
        assert!(
            !ctl.wait_quorum(5, Duration::from_secs(2)),
            "fenced: no ack"
        );
        fencer.join().unwrap();
        assert!(ctl.take_abort());
        assert_eq!(ctl.role(), Role::Fenced);
        assert_eq!(ctl.max_seen_epoch(), 9);
        // Fencing is idempotent and epoch observation is monotonic.
        ctl.fence(4);
        assert_eq!(ctl.max_seen_epoch(), 9);
    }

    #[test]
    fn standby_lease_clock_tracks_primary_contact() {
        let ctl = ReplCtl::new(
            1,
            Role::Standby,
            AckPolicy::One,
            Duration::from_millis(10),
            Vec::new(),
        );
        assert!(!ctl.promotion_eligible(), "fresh standby not yet eligible");
        std::thread::sleep(Duration::from_millis(25));
        assert!(ctl.promotion_eligible(), "2x lease of silence");
        ctl.note_primary_contact(1);
        assert!(!ctl.promotion_eligible(), "contact resets the clock");
    }

    #[test]
    fn shipper_converges_a_sim_standby_and_fences_on_higher_epoch() {
        use std::sync::Mutex as StdMutex;
        // A fake standby: applies groups by recording (first, bytes),
        // acks with a moving next_seq, and can be armed to answer with
        // a higher epoch.
        struct SimStandby {
            next: AtomicU64,
            applied: StdMutex<Vec<(u64, Vec<u8>)>>,
            fence_with: AtomicU64,
        }
        impl ReplTransport for Arc<SimStandby> {
            fn append(&self, epoch: u64, first_seq: u64, group: &[u8]) -> Result<ReplInfo, String> {
                let fence = self.fence_with.load(Ordering::Acquire);
                if fence > epoch {
                    return Ok(ReplInfo {
                        ok: false,
                        epoch: fence,
                        next_seq: self.next.load(Ordering::Acquire),
                        role: Role::Primary.as_u8(),
                        silence_ms: 0,
                    });
                }
                if !group.is_empty() && first_seq == self.next.load(Ordering::Acquire) {
                    // Count records = count of commit groups' records is
                    // opaque here; the sim advances by one group.
                    self.applied
                        .lock()
                        .unwrap()
                        .push((first_seq, group.to_vec()));
                    self.next.store(first_seq + 1, Ordering::Release);
                }
                Ok(ReplInfo {
                    ok: true,
                    epoch,
                    next_seq: self.next.load(Ordering::Acquire),
                    role: Role::Standby.as_u8(),
                    silence_ms: 0,
                })
            }
            fn snapshot(
                &self,
                epoch: u64,
                last_seq: u64,
                _image: &[u8],
            ) -> Result<ReplInfo, String> {
                self.next.store(last_seq + 1, Ordering::Release);
                Ok(ReplInfo {
                    ok: true,
                    epoch,
                    next_seq: last_seq + 1,
                    role: Role::Standby.as_u8(),
                    silence_ms: 0,
                })
            }
            fn status(&self) -> Result<ReplInfo, String> {
                Ok(ReplInfo {
                    ok: true,
                    epoch: 1,
                    next_seq: self.next.load(Ordering::Acquire),
                    role: Role::Standby.as_u8(),
                    silence_ms: 0,
                })
            }
        }

        let standby = Arc::new(SimStandby {
            next: AtomicU64::new(1),
            applied: StdMutex::new(Vec::new()),
            fence_with: AtomicU64::new(0),
        });
        let ctl = Arc::new(ReplCtl::new(
            1,
            Role::Primary,
            AckPolicy::One,
            Duration::from_millis(20),
            vec!["sim:1".into()],
        ));
        let local_last = Arc::new(AtomicU64::new(0));
        let ll = local_last.clone();
        let host = ReplHost {
            last_seq: Arc::new(move || ll.load(Ordering::Acquire)),
            snapshot: Arc::new(|| None),
            promote: Arc::new(|| {}),
        };
        let repl = Replicator::spawn(
            ctl.clone(),
            vec![Box::new(standby.clone())],
            host,
            None,
            ReplicatorConfig {
                heartbeat: Duration::from_millis(5),
                rank: 0,
                auto_promote: false,
            },
        );
        // Feed three single-record groups.
        for seq in 1..=3u64 {
            local_last.store(seq, Ordering::Release);
            ctl.push_group(seq, seq, format!("g{seq}").as_bytes());
        }
        // The quorum wait is the real synchronization point.
        assert!(
            ctl.wait_quorum(3, Duration::from_secs(5)),
            "shipper must converge the standby"
        );
        assert_eq!(standby.applied.lock().unwrap().len(), 3);
        // Now the standby answers with a higher epoch: the shipper must
        // fence this primary.
        standby.fence_with.store(7, Ordering::Release);
        local_last.store(4, Ordering::Release);
        ctl.push_group(4, 4, b"g4");
        for _ in 0..200 {
            if ctl.role() == Role::Fenced {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ctl.role(), Role::Fenced, "higher epoch must fence");
        assert!(!ctl.wait_quorum(4, Duration::from_millis(50)));
        repl.stop();
    }

    fn info(ok: bool, epoch: u64, next_seq: u64, role: Role, silence_ms: u64) -> ReplInfo {
        ReplInfo {
            ok,
            epoch,
            next_seq,
            role: role.as_u8(),
            silence_ms,
        }
    }

    #[test]
    fn refused_appends_do_not_advance_the_ack_watermark() {
        let ctl = ReplCtl::new(
            1,
            Role::Primary,
            AckPolicy::One,
            Duration::from_millis(50),
            vec!["a:1".into()],
        );
        // An equal-epoch rival primary refuses the append and reports
        // its own divergent WAL cursor: reachability bookkeeping
        // updates, but the durable-ack watermark must not — quorum
        // releases on its strength would ack unreplicated batches.
        ctl.note_peer(0, Some(&info(false, 1, 100, Role::Primary, 0)));
        assert!(ctl.peers()[0].is_up());
        assert_eq!(ctl.peer_next(0), 100);
        assert_eq!(ctl.peers()[0].acked(), 0, "rival cursor must not count");
        assert!(!ctl.wait_quorum(5, Duration::from_millis(10)));
        let _ = ctl.take_abort();
        // A genuine standby refusing a gap still reports a cursor that
        // *is* its durable high-water mark: that one counts.
        ctl.note_peer(0, Some(&info(false, 1, 7, Role::Standby, 0)));
        assert_eq!(ctl.peers()[0].acked(), 6);
        assert!(ctl.wait_quorum(5, Duration::from_millis(10)));
    }

    /// A transport to a peer that never answers.
    struct DeadPeer;
    impl ReplTransport for DeadPeer {
        fn append(&self, _: u64, _: u64, _: &[u8]) -> Result<ReplInfo, String> {
            Err("unreachable".into())
        }
        fn snapshot(&self, _: u64, _: u64, _: &[u8]) -> Result<ReplInfo, String> {
            Err("unreachable".into())
        }
        fn status(&self) -> Result<ReplInfo, String> {
            Err("unreachable".into())
        }
    }

    /// A transport whose `status()` reply is scripted by the test.
    struct FixedStatus(std::sync::Mutex<Result<ReplInfo, String>>);
    impl FixedStatus {
        fn new(r: Result<ReplInfo, String>) -> Arc<dyn ReplTransport> {
            Arc::new(FixedStatus(std::sync::Mutex::new(r)))
        }
    }
    impl ReplTransport for FixedStatus {
        fn append(&self, _: u64, _: u64, _: &[u8]) -> Result<ReplInfo, String> {
            // Answer heartbeats with the same scripted reply so a
            // freshly promoted primary in these tests keeps one peer
            // in contact (no spurious isolation fence).
            self.0.lock().unwrap().clone()
        }
        fn snapshot(&self, _: u64, _: u64, _: &[u8]) -> Result<ReplInfo, String> {
            Err("not a shipping target".into())
        }
        fn status(&self) -> Result<ReplInfo, String> {
            self.0.lock().unwrap().clone()
        }
    }

    #[test]
    fn isolated_primary_fences_after_one_lease_without_standby_contact() {
        let ctl = Arc::new(ReplCtl::new(
            3,
            Role::Primary,
            AckPolicy::One,
            Duration::from_millis(30),
            vec!["dead:1".into()],
        ));
        let host = ReplHost {
            last_seq: Arc::new(|| 0),
            snapshot: Arc::new(|| None),
            promote: Arc::new(|| {}),
        };
        let repl = Replicator::spawn(
            ctl.clone(),
            vec![Box::new(DeadPeer)],
            host,
            None,
            ReplicatorConfig {
                heartbeat: Duration::from_millis(10),
                rank: 0,
                auto_promote: true,
            },
        );
        for _ in 0..200 {
            if ctl.role() == Role::Fenced {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            ctl.role(),
            Role::Fenced,
            "one lease of total standby silence must fence an auto-promote primary"
        );
        assert!(!ctl.wait_quorum(1, Duration::from_millis(10)));
        assert!(ctl.take_abort(), "in-flight batches must drop, not ack");
        repl.stop();
    }

    #[test]
    fn isolation_fence_stays_off_without_auto_promote() {
        // Operator-driven fleets (the default) must not fence a healthy
        // primary over a transient standby outage — nothing can promote
        // behind its back without an operator deciding to.
        let ctl = Arc::new(ReplCtl::new(
            3,
            Role::Primary,
            AckPolicy::None,
            Duration::from_millis(10),
            vec!["dead:1".into()],
        ));
        let host = ReplHost {
            last_seq: Arc::new(|| 0),
            snapshot: Arc::new(|| None),
            promote: Arc::new(|| {}),
        };
        let repl = Replicator::spawn(
            ctl.clone(),
            vec![Box::new(DeadPeer)],
            host,
            None,
            ReplicatorConfig {
                heartbeat: Duration::from_millis(5),
                rank: 0,
                auto_promote: false,
            },
        );
        std::thread::sleep(Duration::from_millis(60)); // 6 leases
        assert_eq!(ctl.role(), Role::Primary);
        repl.stop();
    }

    #[test]
    fn promotion_gate_requires_peer_corroboration() {
        let lease_ms = 10u64;
        let ctl = ReplCtl::new(
            1,
            Role::Standby,
            AckPolicy::One,
            Duration::from_millis(lease_ms),
            vec!["p:1".into(), "s:2".into()],
        );
        let dead: Arc<dyn ReplTransport> = Arc::new(DeadPeer);
        // A reachable live primary vetoes: this standby is the
        // partitioned one, not the primary.
        let live_primary = FixedStatus::new(Ok(info(true, 1, 9, Role::Primary, 0)));
        assert!(!promotion_confirmed(
            &ctl,
            &[live_primary, dead.clone()],
            lease_ms
        ));
        // A peer that still hears the primary vetoes too.
        let fresh_standby = FixedStatus::new(Ok(info(true, 1, 9, Role::Standby, 2)));
        assert!(!promotion_confirmed(
            &ctl,
            &[dead.clone(), fresh_standby],
            lease_ms
        ));
        // A higher epoch anywhere means an election already concluded.
        let promoted = FixedStatus::new(Ok(info(true, 5, 9, Role::Standby, 50)));
        assert!(!promotion_confirmed(
            &ctl,
            &[promoted, dead.clone()],
            lease_ms
        ));
        // A fully isolated standby (no peer reachable, fleet of 3)
        // cannot crown itself...
        assert!(!promotion_confirmed(
            &ctl,
            &[dead.clone(), dead.clone()],
            lease_ms
        ));
        // ...but one corroborating silent standby makes a majority of
        // the replica set (2 of 3), and a fenced peer counts the same.
        let silent = FixedStatus::new(Ok(info(true, 1, 9, Role::Standby, 40)));
        assert!(promotion_confirmed(&ctl, &[dead.clone(), silent], lease_ms));
        let fenced = FixedStatus::new(Ok(info(true, 1, 9, Role::Fenced, 40)));
        assert!(promotion_confirmed(&ctl, &[dead.clone(), fenced], lease_ms));
        // A lone pair cannot distinguish primary death from its own
        // isolation; the primary-side isolation fence covers it, so
        // the gate waives corroboration.
        let ctl2 = ReplCtl::new(
            1,
            Role::Standby,
            AckPolicy::One,
            Duration::from_millis(lease_ms),
            vec!["p:1".into()],
        );
        assert!(promotion_confirmed(&ctl2, &[dead.clone()], lease_ms));
    }

    #[test]
    fn auto_promotion_waits_for_the_gate_then_fires() {
        // End-to-end through the lease monitor: a rank-0 standby with a
        // corroborating silent peer self-promotes once its own silence
        // passes 2x lease; the promote hook transitions the role.
        let ctl = Arc::new(ReplCtl::new(
            1,
            Role::Standby,
            AckPolicy::One,
            Duration::from_millis(15),
            vec!["p:1".into(), "s:2".into()],
        ));
        let promoted = Arc::new(AtomicBool::new(false));
        let host = ReplHost {
            last_seq: Arc::new(|| 0),
            snapshot: Arc::new(|| None),
            promote: {
                let ctl = ctl.clone();
                let promoted = promoted.clone();
                Arc::new(move || {
                    promoted.store(true, Ordering::Release);
                    let epoch = ctl.max_seen_epoch().max(ctl.epoch()) + 1;
                    ctl.transition(Role::Primary, epoch);
                })
            },
        };
        let silent = FixedStatus(std::sync::Mutex::new(Ok(info(
            true,
            1,
            9,
            Role::Standby,
            1_000,
        ))));
        let repl = Replicator::spawn(
            ctl.clone(),
            vec![Box::new(DeadPeer), Box::new(silent)],
            host,
            None,
            ReplicatorConfig {
                heartbeat: Duration::from_millis(5),
                rank: 0,
                auto_promote: true,
            },
        );
        for _ in 0..400 {
            if promoted.load(Ordering::Acquire) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            promoted.load(Ordering::Acquire),
            "gate must allow promotion"
        );
        assert_eq!(ctl.role(), Role::Primary);
        assert_eq!(ctl.epoch(), 2);
        repl.stop();
    }
}
