//! File-backed durability: a write-ahead log plus checkpoints over any
//! [`KvStore`].
//!
//! The in-memory stores model Kyoto Cabinet's *performance*; this
//! module supplies the missing *durability* half for deployments that
//! want real persistence (the daemons and the crash-recovery tests use
//! it):
//!
//! * every mutation is appended to `wal.log` before being applied to
//!   the wrapped store, and the WAL is flushed to the OS per commit
//!   group (so an acknowledged op survives `kill -9`) and fsync'd
//!   according to [`SyncPolicy`] (so it can also survive power loss);
//! * mutations bracketed by [`KvStore::txn_begin`] /
//!   [`KvStore::txn_commit`] form a *commit group*: the group is
//!   written as one contiguous run of records whose last record carries
//!   a commit flag, and recovery applies a group only when its commit
//!   record is present — a crash mid-group (e.g. half a rename's
//!   delete+put fan-out) leaves no partial effects;
//! * [`DurableStore::checkpoint`] writes a full snapshot image
//!   atomically (`snapshot.tmp` → fsync → rename → dir fsync) and
//!   rotates the log; the snapshot envelope records the last WAL
//!   sequence number it covers, so a crash between the rename and the
//!   log rotation cannot double-apply non-idempotent records (appends)
//!   on the next boot;
//! * [`DurableStore::open`] recovers by loading the snapshot and
//!   replaying committed groups, then truncates the log to the valid
//!   prefix so a torn tail can never shadow later appends.
//!
//! ## On-disk formats
//!
//! WAL v2: file header `b"LWAL"` ‖ u8 version(2), then records:
//! `u64 seq LE ‖ u8 flags (bit0 = commit, last record of its group) ‖
//! u8 op ‖ u32 key-len ‖ key ‖ per-op payload parts (u32 len ‖ bytes)
//! ‖ u32 IEEE CRC32 LE` over all preceding bytes of the record (the
//! same crc the RPC frames and snapshots use, from `loco_types`).
//!
//! Snapshot: `b"LSNP"` ‖ u8 version(2) ‖ u64 last-covered-seq LE ‖
//! u32 CRC32 LE over the preceding 13 header bytes ‖
//! [`crate::snapshot`] image. The header carries its own crc because
//! the inner image's checksum does not cover it — an unverified
//! last-covered-seq would silently skip (or double-apply) WAL records.
//!
//! Both the headerless v1 WAL (single XOR checksum byte per record)
//! and bare v1 snapshot images are still read; a legacy log is rotated
//! to v2 by an immediate checkpoint on open.
//!
//! ## Failure discipline
//!
//! A WAL write or fsync failure at runtime is **fatal** (process
//! abort): once the log can no longer be trusted, acknowledging more
//! mutations would be lying to clients — the Postgres "fsyncgate"
//! lesson. Corrupt on-disk state at *open* time is a clean error,
//! never a panic and never phantom records.
//!
//! Crash points (`loco_faults`, env-armed): `wal_pre_commit`,
//! `wal_after_append`, `wal_after_sync`, `checkpoint_pre_write`,
//! `checkpoint_pre_rename`, `checkpoint_post_rename`,
//! `checkpoint_post_truncate`; torn-write sites `wal_commit`,
//! `checkpoint_write`; I/O error sites `wal_write`, `wal_fsync`,
//! `checkpoint_write`.

use crate::{AccessStats, KvStore};
use loco_sim::time::Nanos;
use loco_types::checksum::crc32;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_APPEND: u8 = 3;
const OP_WRITE_AT: u8 = 4;

const WAL_MAGIC: &[u8; 4] = b"LWAL";
const WAL_VERSION: u8 = 2;
const WAL_HEADER_LEN: usize = 5;

const SNAP_MAGIC: &[u8; 4] = b"LSNP";
const SNAP_VERSION: u8 = 2;
/// magic(4) + version(1) + last_seq(8) + header crc32(4).
const SNAP_HEADER_LEN: usize = 17;
/// The header crc covers everything before it: magic, version, seq.
const SNAP_CRC_OFFSET: usize = 13;

/// Record-flags bit: this record commits its group.
const FLAG_COMMIT: u8 = 0x01;
/// Byte offset of the flags byte inside an encoded record (after the
/// u64 seq), patched when the group seals.
const FLAGS_OFFSET: usize = 8;

/// Commit tap: called as `(first_seq, last_seq, bytes)` with the
/// sealed, crc-complete bytes of every commit group immediately after
/// the group is appended + flushed to the local WAL. The bytes are the
/// exact on-disk encoding — a standby feeds them verbatim to
/// [`DurableStore::apply_replicated_group`]. Invoked under the store
/// lock, so tap invocations observe groups in WAL order.
pub type CommitTap = Box<dyn FnMut(u64, u64, &[u8]) + Send>;

/// When the WAL is fsync'd. Independently of the policy, the WAL is
/// *flushed* (userspace buffer → OS page cache) per commit group, so
/// acknowledged mutations survive a `kill -9` under either policy; the
/// policy only decides whether they also survive power loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync every commit group (safest, slowest).
    EveryRecord,
    /// Let the OS flush (group commit via page cache).
    OsManaged,
}

impl SyncPolicy {
    /// Parse a CLI/env spelling of the policy.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "every-record" | "every" | "sync" | "fsync" | "always" => Some(Self::EveryRecord),
            "os" | "os-managed" | "async" => Some(Self::OsManaged),
            _ => None,
        }
    }

    /// Canonical CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::EveryRecord => "every-record",
            Self::OsManaged => "os-managed",
        }
    }
}

/// Counters describing a durable store's recovery and steady-state
/// persistence work; surfaced as daemon gauges and in boot reports.
#[derive(Clone, Debug, Default)]
pub struct PersistenceStats {
    /// Records currently in the log (since the last checkpoint).
    pub wal_records: u64,
    /// WAL records applied during the last `open` (acked mutations the
    /// snapshot did not yet cover).
    pub replayed_records: u64,
    /// Records loaded from the snapshot during the last `open`.
    pub snapshot_records: u64,
    /// Checkpoints written since `open`.
    pub checkpoints: u64,
    /// WAL fsyncs issued since `open` (inline per-group syncs,
    /// deferred group-commit flushes, and maintenance syncs). The
    /// group-commit win is this counter staying far below the op
    /// count.
    pub wal_fsyncs: u64,
    /// A legacy (v1, XOR-checksummed) log was found at `open` and
    /// rotated to the v2 format by an immediate checkpoint.
    pub wal_upgraded: bool,
}

/// Durable wrapper over a store.
pub struct DurableStore<S: KvStore> {
    inner: S,
    dir: PathBuf,
    wal: BufWriter<File>,
    next_seq: u64,
    policy: SyncPolicy,
    /// Checkpoint automatically after this many logged mutations.
    pub checkpoint_every: usize,
    txn_depth: usize,
    /// Encoded-but-uncommitted records (crc appended at commit).
    txn_buf: Vec<Vec<u8>>,
    /// Group-commit mode: under [`SyncPolicy::EveryRecord`], commit
    /// groups are appended + flushed but their fsync is deferred to an
    /// explicit [`DurableStore::commit_flush`] — the hosting server
    /// promises not to acknowledge the group before calling it.
    defer_sync: bool,
    /// Records appended since the last WAL fsync (batch size of the
    /// next `commit_flush`).
    unsynced_records: u64,
    /// Per-request marker: highest sequence number of a group this
    /// request appended without an inline fsync. Taken (and cleared)
    /// by [`DurableStore::take_sync_ticket`].
    sync_ticket: Option<u64>,
    /// Replication feed: observes every sealed commit group.
    tap: Option<CommitTap>,
    stats: PersistenceStats,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snap_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.db")
}

/// v1 per-record checksum (kept for backward-compatible reads only).
fn v1_checksum(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0xA5u8, |acc, b| acc ^ b)
}

fn invalid(e: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.into())
}

fn wal_fatal(what: &str, e: std::io::Error) -> ! {
    loco_log::last_gasp(
        "wal",
        "wal failure; aborting",
        &format!(
            "loco-kv: FATAL wal {what} failure: {e} — aborting rather than acknowledge unlogged mutations"
        ),
    );
    std::process::abort();
}

/// One decoded WAL record (replay side).
struct RecView {
    seq: u64,
    commit: bool,
    op: u8,
    key: Vec<u8>,
    parts: Vec<Vec<u8>>,
}

fn op_part_count(op: u8) -> Option<usize> {
    match op {
        OP_PUT | OP_APPEND => Some(1),
        OP_DELETE => Some(0),
        OP_WRITE_AT => Some(2),
        _ => None,
    }
}

/// Parse one v2 record starting at `start`; `None` on a torn,
/// truncated, oversized-length or checksum-damaged record.
fn parse_v2_record(buf: &[u8], start: usize) -> Option<(RecView, usize)> {
    let rem = buf.get(start..)?;
    if rem.len() < 14 {
        return None;
    }
    let seq = u64::from_le_bytes(rem[0..8].try_into().unwrap());
    let flags = rem[8];
    let op = rem[9];
    let klen = u32::from_le_bytes(rem[10..14].try_into().unwrap()) as usize;
    let mut pos = 14usize;
    let end = pos.checked_add(klen)?;
    if rem.len() < end {
        return None;
    }
    let key = rem[pos..end].to_vec();
    pos = end;
    let n_parts = op_part_count(op)?;
    let mut parts = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        if rem.len() < pos + 4 {
            return None;
        }
        let plen = u32::from_le_bytes(rem[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        let end = pos.checked_add(plen)?;
        if rem.len() < end {
            return None;
        }
        parts.push(rem[pos..end].to_vec());
        pos = end;
    }
    if rem.len() < pos + 4 {
        return None;
    }
    let stored = u32::from_le_bytes(rem[pos..pos + 4].try_into().unwrap());
    if crc32(&rem[..pos]) != stored {
        return None;
    }
    Some((
        RecView {
            seq,
            commit: flags & FLAG_COMMIT != 0,
            op,
            key,
            parts,
        },
        start + pos + 4,
    ))
}

fn apply<S: KvStore>(store: &mut S, op: u8, key: &[u8], parts: &[Vec<u8>]) -> Option<()> {
    match op {
        OP_PUT => store.put(key, &parts[0]),
        OP_DELETE => {
            store.delete(key);
        }
        OP_APPEND => store.append(key, &parts[0]),
        OP_WRITE_AT => {
            let off = u64::from_le_bytes(parts[0].as_slice().try_into().ok()?) as usize;
            store.write_at(key, off, &parts[1]);
        }
        _ => return None,
    }
    Some(())
}

/// Replay one legacy v1 record from `buf`; returns its encoded length,
/// or `None` on a torn/invalid record (recovery stops there).
fn replay_one_v1<S: KvStore>(store: &mut S, buf: &[u8]) -> Option<usize> {
    let take_len = |buf: &[u8], pos: usize| -> Option<(usize, usize)> {
        if buf.len() < pos + 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        Some((n, pos + 4))
    };
    if buf.is_empty() {
        return None;
    }
    let op = buf[0];
    let (klen, mut pos) = take_len(buf, 1)?;
    let end = pos.checked_add(klen)?;
    if buf.len() < end {
        return None;
    }
    let key = buf[pos..end].to_vec();
    pos = end;
    let n_parts = op_part_count(op)?;
    let mut parts: Vec<Vec<u8>> = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let (plen, p2) = take_len(buf, pos)?;
        let end = p2.checked_add(plen)?;
        if buf.len() < end {
            return None;
        }
        parts.push(buf[p2..end].to_vec());
        pos = end;
    }
    if buf.len() < pos + 1 || v1_checksum(&buf[..pos]) != buf[pos] {
        return None;
    }
    apply(store, op, &key, &parts)?;
    Some(pos + 1)
}

impl<S: KvStore> DurableStore<S> {
    /// Open (or create) a durable store at `dir`, recovering any
    /// existing snapshot + log into `inner` (which must be empty).
    ///
    /// Recovery applies only *committed* groups whose sequence numbers
    /// the snapshot does not already cover, then truncates the log to
    /// that valid prefix. Corrupt state is a clean `Err`, never a
    /// panic and never a partial load presented as whole.
    pub fn open(dir: impl Into<PathBuf>, mut inner: S) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut stats = PersistenceStats::default();

        // 1) snapshot (v2 envelope with last-covered-seq, or bare v1
        //    image).
        let mut snap_seq = 0u64;
        match std::fs::read(snap_path(&dir)) {
            Ok(image) => {
                let inner_image: &[u8] = if image.starts_with(SNAP_MAGIC) {
                    if image.len() < SNAP_HEADER_LEN {
                        return Err(invalid("truncated snapshot envelope"));
                    }
                    if image[4] != SNAP_VERSION {
                        return Err(invalid(format!(
                            "unsupported snapshot version {}",
                            image[4]
                        )));
                    }
                    let want = u32::from_le_bytes(
                        image[SNAP_CRC_OFFSET..SNAP_HEADER_LEN].try_into().unwrap(),
                    );
                    if crc32(&image[..SNAP_CRC_OFFSET]) != want {
                        return Err(invalid("snapshot envelope header checksum mismatch"));
                    }
                    snap_seq = u64::from_le_bytes(image[5..SNAP_CRC_OFFSET].try_into().unwrap());
                    &image[SNAP_HEADER_LEN..]
                } else {
                    &image[..]
                };
                stats.snapshot_records =
                    crate::snapshot::load(&mut inner, inner_image).map_err(invalid)? as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        // 2) replay the WAL and compute the valid prefix.
        let wal_p = wal_path(&dir);
        let mut max_seq = 0u64;
        let mut needs_rotation = false;
        match std::fs::read(&wal_p) {
            Ok(buf) if buf.is_empty() => {}
            Ok(buf) => {
                let valid_end = if buf.len() < WAL_HEADER_LEN
                    && WAL_MAGIC.starts_with(&buf[..buf.len().min(4)])
                {
                    // A torn header write (the magic and version land in
                    // separate write calls): an empty log, not an error.
                    0
                } else if buf.starts_with(WAL_MAGIC) {
                    if buf[4] != WAL_VERSION {
                        return Err(invalid(format!("unsupported wal version {}", buf[4])));
                    }
                    let mut pos = WAL_HEADER_LEN;
                    let mut valid_end = pos;
                    let mut group: Vec<RecView> = Vec::new();
                    while let Some((rec, next)) = parse_v2_record(&buf, pos) {
                        pos = next;
                        let commit = rec.commit;
                        group.push(rec);
                        if commit {
                            for r in group.drain(..) {
                                max_seq = max_seq.max(r.seq);
                                stats.wal_records += 1;
                                if r.seq > snap_seq {
                                    apply(&mut inner, r.op, &r.key, &r.parts);
                                    stats.replayed_records += 1;
                                }
                            }
                            valid_end = pos;
                        }
                    }
                    // A trailing commit-less group is a torn group
                    // write: discard it (and everything after the last
                    // sealed group) by truncating below.
                    valid_end
                } else {
                    // Legacy v1 log: headerless XOR-checksummed
                    // records, one implicit group each.
                    let mut pos = 0usize;
                    while let Some(n) = replay_one_v1(&mut inner, &buf[pos..]) {
                        pos += n;
                        stats.wal_records += 1;
                        stats.replayed_records += 1;
                    }
                    if pos > 0 {
                        needs_rotation = true;
                    }
                    pos
                };
                if valid_end < buf.len() {
                    let f = OpenOptions::new().write(true).open(&wal_p)?;
                    f.set_len(valid_end as u64)?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let file = OpenOptions::new().create(true).append(true).open(&wal_p)?;
        let fresh = file.metadata()?.len() == 0;
        let mut wal = BufWriter::new(file);
        if fresh {
            wal.write_all(WAL_MAGIC)?;
            wal.write_all(&[WAL_VERSION])?;
            wal.flush()?;
            needs_rotation = false;
        }

        let mut s = Self {
            inner,
            dir,
            wal,
            next_seq: max_seq.max(snap_seq) + 1,
            policy: SyncPolicy::OsManaged,
            checkpoint_every: 100_000,
            txn_depth: 0,
            txn_buf: Vec::new(),
            defer_sync: false,
            unsynced_records: 0,
            sync_ticket: None,
            tap: None,
            stats,
        };
        let _ = s.inner.take_cost(); // recovery is offline work
        if needs_rotation {
            // Rotate a legacy log to the v2 format so future appends
            // are readable.
            s.checkpoint()?;
            s.stats.wal_upgraded = true;
        }
        loco_log::info!("wal.recovery", "durable store opened";
            snapshot_records = s.stats.snapshot_records,
            wal_records = s.stats.wal_records,
            replayed = s.stats.replayed_records,
            upgraded = s.stats.wal_upgraded,
            next_seq = s.next_seq);
        Ok(s)
    }

    /// Override the WAL sync policy.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Mutations currently in the log (since the last checkpoint).
    pub fn wal_records(&self) -> usize {
        self.stats.wal_records as usize
    }

    /// Recovery/persistence counters.
    pub fn stats(&self) -> &PersistenceStats {
        &self.stats
    }

    /// Build the crc-sealed snapshot envelope (the exact bytes
    /// `checkpoint` persists) for the current state; returns
    /// `(last_covered_seq, envelope)`. Also the replication snapshot
    /// image a primary ships to a lagging standby.
    pub fn snapshot_image(&mut self) -> (u64, Vec<u8>) {
        let image = crate::snapshot::dump(&mut self.inner);
        let _ = self.inner.take_cost();
        let last_seq = self.next_seq - 1;
        let mut env = Vec::with_capacity(SNAP_HEADER_LEN + image.len());
        env.extend_from_slice(SNAP_MAGIC);
        env.push(SNAP_VERSION);
        env.extend_from_slice(&last_seq.to_le_bytes());
        let header_crc = crc32(&env);
        env.extend_from_slice(&header_crc.to_le_bytes());
        env.extend_from_slice(&image);
        (last_seq, env)
    }

    /// Write a full snapshot atomically and rotate the log.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        loco_log::debug!("wal.checkpoint", "checkpoint begin";
            wal_records = self.stats.wal_records);
        loco_faults::crashpoint("checkpoint_pre_write");
        let (last_seq, env) = self.snapshot_image();
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            if let Some(e) = loco_faults::io_error("checkpoint_write") {
                return Err(e);
            }
            if let Some(n) = loco_faults::torn_len("checkpoint_write", env.len()) {
                let _ = f.write_all(&env[..n]);
                let _ = f.sync_all();
                loco_faults::die("checkpoint_write", "torn checkpoint write");
            }
            f.write_all(&env)?;
            f.sync_all()?;
        }
        loco_faults::crashpoint("checkpoint_pre_rename");
        std::fs::rename(&tmp, snap_path(&self.dir))?;
        // Make the rename itself durable before rotating the log.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        loco_faults::crashpoint("checkpoint_post_rename");
        // Rotate the WAL only after the snapshot is durable. If we
        // crash before this point the old log replays but its seqs are
        // ≤ the snapshot's last_seq, so nothing double-applies.
        let mut wal = BufWriter::new(File::create(wal_path(&self.dir))?);
        wal.write_all(WAL_MAGIC)?;
        wal.write_all(&[WAL_VERSION])?;
        wal.flush()?;
        self.wal = wal;
        loco_faults::crashpoint("checkpoint_post_truncate");
        self.stats.wal_records = 0;
        // The fsync'd snapshot covers every appended record, so any
        // deferred groups are durable now; the rotated (empty) log has
        // nothing left to flush.
        self.unsynced_records = 0;
        self.stats.checkpoints += 1;
        loco_log::info!("wal.checkpoint", "checkpoint complete: snapshot rotated";
            last_seq = last_seq,
            bytes = env.len() as u64,
            checkpoints = self.stats.checkpoints);
        Ok(())
    }

    /// Encode a record (sans crc) and queue it on the open group; a
    /// bare mutation (no surrounding txn) commits its group of one
    /// immediately.
    fn log(&mut self, op: u8, key: &[u8], parts: &[&[u8]]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut rec =
            Vec::with_capacity(18 + key.len() + parts.iter().map(|p| p.len() + 4).sum::<usize>());
        rec.extend_from_slice(&seq.to_le_bytes());
        rec.push(0); // flags — commit bit patched when the group seals
        rec.push(op);
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        for p in parts {
            rec.extend_from_slice(&(p.len() as u32).to_le_bytes());
            rec.extend_from_slice(p);
        }
        self.txn_buf.push(rec);
    }

    /// Commit the group of one for a bare (non-txn) mutation. Called
    /// by the mutators *after* the inner apply, so an auto-checkpoint
    /// triggered here snapshots state that includes the mutation whose
    /// sequence number the snapshot claims to cover.
    fn autocommit(&mut self) {
        if self.txn_depth == 0 {
            self.commit_group();
        }
    }

    /// Seal the open group (commit flag on its last record, crc per
    /// record), write it as one contiguous append, flush, and fsync
    /// per policy. A write/fsync failure here aborts the process: the
    /// caller is about to acknowledge these mutations.
    fn commit_group(&mut self) {
        let mut records = std::mem::take(&mut self.txn_buf);
        if records.is_empty() {
            return;
        }
        loco_faults::crashpoint("wal_pre_commit");
        if let Some(last) = records.last_mut() {
            last[FLAGS_OFFSET] |= FLAG_COMMIT;
        }
        let n = records.len() as u64;
        let mut group = Vec::with_capacity(records.iter().map(|r| r.len() + 4).sum::<usize>());
        for mut rec in records {
            let crc = crc32(&rec);
            rec.extend_from_slice(&crc.to_le_bytes());
            group.extend_from_slice(&rec);
        }
        if let Some(tl) = loco_faults::torn_len("wal_commit", group.len()) {
            let _ = self.wal.write_all(&group[..tl]);
            let _ = self.wal.flush();
            loco_faults::die("wal_commit", "torn wal group write");
        }
        if let Some(e) = loco_faults::io_error("wal_write") {
            wal_fatal("write", e);
        }
        // Always push the group through to the OS: a BufWriter-only
        // record dies with the process on kill -9, and the daemon acks
        // as soon as this returns.
        if let Err(e) = self.wal.write_all(&group).and_then(|()| self.wal.flush()) {
            wal_fatal("write", e);
        }
        loco_faults::crashpoint("wal_after_append");
        if let Some(tap) = self.tap.as_mut() {
            tap(self.next_seq - n, self.next_seq - 1, &group);
        }
        if self.policy == SyncPolicy::EveryRecord {
            if self.defer_sync {
                // Group commit: the records are in the OS page cache;
                // the fsync that makes them power-loss-durable happens
                // in `commit_flush`, before any ack for this group.
                self.unsynced_records += n;
                self.sync_ticket = Some(self.next_seq - 1);
            } else {
                if let Some(e) = loco_faults::io_error("wal_fsync") {
                    wal_fatal("fsync", e);
                }
                if let Err(e) = self.wal.get_ref().sync_data() {
                    wal_fatal("fsync", e);
                }
                self.stats.wal_fsyncs += 1;
                loco_faults::crashpoint("wal_after_sync");
            }
        }
        self.stats.wal_records += n;
        if self.stats.wal_records as usize >= self.checkpoint_every && self.txn_depth == 0 {
            // Abort (not panic) on failure: unwinding would flush the
            // BufWriter and run destructors, which is not what a crash
            // does — and a store that cannot checkpoint must not keep
            // acknowledging writes against an unbounded WAL.
            if let Err(e) = self.checkpoint() {
                wal_fatal("checkpoint", e);
            }
        }
    }

    /// Flush buffered WAL records to the OS (and disk).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.flush()?;
        self.wal.get_ref().sync_data()?;
        self.unsynced_records = 0;
        self.stats.wal_fsyncs += 1;
        Ok(())
    }

    /// Switch deferred group fsync on or off. Returns whether deferral
    /// is active afterwards — only [`SyncPolicy::EveryRecord`] stores
    /// defer (under [`SyncPolicy::OsManaged`] there is no per-group
    /// fsync to amortize and the WAL-before-ack contract is already met
    /// by the per-group flush). Turning deferral off flushes anything
    /// pending so no acknowledged group is left unsynced.
    pub fn set_defer_sync(&mut self, on: bool) -> bool {
        if on && self.policy == SyncPolicy::EveryRecord {
            self.defer_sync = true;
        } else {
            if self.defer_sync && self.unsynced_records > 0 {
                self.commit_flush();
            }
            self.defer_sync = false;
        }
        self.defer_sync
    }

    /// Take the pending commit ticket: `Some(seq)` when the current
    /// request appended a group whose fsync was deferred (the caller
    /// must not ack before [`DurableStore::commit_flush`] runs),
    /// `None` for read-only requests or non-deferring stores.
    pub fn take_sync_ticket(&mut self) -> Option<u64> {
        self.sync_ticket.take()
    }

    /// Fsync every deferred record in one batch; returns how many
    /// records the fsync covered (0 when everything was already
    /// durable — e.g. a checkpoint rotated the log meanwhile). A
    /// failure is fatal, exactly like the inline per-group fsync: the
    /// caller is about to acknowledge these groups.
    pub fn commit_flush(&mut self) -> u64 {
        let n = self.unsynced_records;
        if n == 0 {
            return 0;
        }
        if let Some(e) = loco_faults::io_error("wal_fsync") {
            wal_fatal("fsync", e);
        }
        if let Err(e) = self
            .wal
            .flush()
            .and_then(|()| self.wal.get_ref().sync_data())
        {
            wal_fatal("fsync", e);
        }
        self.unsynced_records = 0;
        self.stats.wal_fsyncs += 1;
        n
    }

    /// Stage [`DurableStore::commit_flush`] so the fsync itself can run
    /// without the store lock: flush the buffered WAL bytes to the OS
    /// now (so the returned handle sees every covered byte), zero the
    /// deferred counter, and hand back the fsync as a closure over a
    /// cloned file handle. Concurrent appends during the out-of-lock
    /// fsync are safe — they only *add* bytes past the ones this batch
    /// covers, and their own tickets hold their acks for the next
    /// batch. Falls back to the inline flush (returning `None`) if the
    /// handle cannot be cloned.
    pub fn commit_flush_begin(&mut self) -> Option<(u64, Box<dyn FnOnce() + Send>)> {
        let n = self.unsynced_records;
        if n == 0 {
            return None;
        }
        if let Err(e) = self.wal.flush() {
            wal_fatal("fsync", e);
        }
        let Ok(wal) = self.wal.get_ref().try_clone() else {
            self.commit_flush();
            return None;
        };
        self.unsynced_records = 0;
        self.stats.wal_fsyncs += 1;
        Some((
            n,
            Box::new(move || {
                if let Some(e) = loco_faults::io_error("wal_fsync") {
                    wal_fatal("fsync", e);
                }
                if let Err(e) = wal.sync_data() {
                    wal_fatal("fsync", e);
                }
            }),
        ))
    }

    // ----- replication (warm-standby) side ------------------------------

    /// Install the commit tap (replaces any previous tap).
    pub fn set_commit_tap(&mut self, tap: CommitTap) {
        self.tap = Some(tap);
    }

    /// The next WAL sequence number this store would assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Standby-side apply of one or more replicated commit groups —
    /// the exact bytes a primary's commit tap produced, possibly
    /// concatenated. Torn-tail safe: the payload is fully validated
    /// (parse, crc, contiguous seqs, final commit flag) before a single
    /// byte hits the local WAL or the wrapped store, so a malformed
    /// ship can never leave partial effects.
    ///
    /// Idempotent: a payload whose records are all `< next_seq` is
    /// skipped with `Ok(0)`. A payload starting past `next_seq` is a
    /// gap error — the primary must back-fill from its ring or send a
    /// snapshot. Returns the number of records applied.
    pub fn apply_replicated_group(&mut self, group: &[u8]) -> Result<u64, String> {
        let mut recs = Vec::new();
        let mut pos = 0usize;
        while pos < group.len() {
            let Some((rec, next)) = parse_v2_record(group, pos) else {
                return Err(format!("malformed replicated record at byte {pos}"));
            };
            pos = next;
            recs.push(rec);
        }
        let (Some(first), Some(last)) = (recs.first(), recs.last()) else {
            return Err("empty replicated group".into());
        };
        if !last.commit {
            return Err("replicated group missing its commit record".into());
        }
        let (first_seq, last_seq) = (first.seq, last.seq);
        for (i, r) in recs.iter().enumerate() {
            if r.seq != first_seq + i as u64 {
                return Err(format!(
                    "non-contiguous replicated seqs: expected {} got {}",
                    first_seq + i as u64,
                    r.seq
                ));
            }
        }
        if last_seq < self.next_seq {
            return Ok(0); // already applied (duplicate ship)
        }
        if first_seq > self.next_seq {
            return Err(format!(
                "replication gap: group starts at {first_seq}, store expects {}",
                self.next_seq
            ));
        }
        if first_seq != self.next_seq {
            // A group straddling the applied prefix would mean the
            // primary resent half a group — groups are atomic, refuse.
            return Err(format!(
                "replicated group straddles applied prefix ({first_seq}..{last_seq} vs next {})",
                self.next_seq
            ));
        }
        let n = recs.len() as u64;
        // Verbatim append: the standby's WAL stays byte-identical to
        // the primary's for the replicated range.
        if let Err(e) = self.wal.write_all(group).and_then(|()| self.wal.flush()) {
            wal_fatal("write", e);
        }
        if self.policy == SyncPolicy::EveryRecord {
            if self.defer_sync {
                // The hosting server's group-commit flush fsyncs before
                // the replication ack leaves — "standby acked" must
                // imply "standby durable" or the primary's quorum is a
                // lie.
                self.unsynced_records += n;
                self.sync_ticket = Some(last_seq);
            } else {
                if let Err(e) = self.wal.get_ref().sync_data() {
                    wal_fatal("fsync", e);
                }
                self.stats.wal_fsyncs += 1;
            }
        }
        for r in &recs {
            apply(&mut self.inner, r.op, &r.key, &r.parts);
        }
        let _ = self.inner.take_cost();
        self.next_seq = last_seq + 1;
        self.stats.wal_records += n;
        if let Some(tap) = self.tap.as_mut() {
            // Keep our own replication ring warm: if this standby is
            // promoted it can back-fill its peers without a snapshot.
            tap(first_seq, last_seq, group);
        }
        if self.stats.wal_records as usize >= self.checkpoint_every && self.txn_depth == 0 {
            if let Err(e) = self.checkpoint() {
                wal_fatal("checkpoint", e);
            }
        }
        Ok(n)
    }

    /// Install a snapshot envelope (from [`DurableStore::snapshot_image`]
    /// on the primary): validate, persist atomically, replace the
    /// in-memory state wholesale, and rotate the WAL. The standby
    /// resumes applying groups at `last_covered_seq + 1`.
    pub fn install_snapshot(&mut self, env: &[u8]) -> Result<usize, String> {
        if !env.starts_with(SNAP_MAGIC) || env.len() < SNAP_HEADER_LEN {
            return Err("bad snapshot envelope".into());
        }
        if env[4] != SNAP_VERSION {
            return Err(format!("unsupported snapshot version {}", env[4]));
        }
        let want = u32::from_le_bytes(env[SNAP_CRC_OFFSET..SNAP_HEADER_LEN].try_into().unwrap());
        if crc32(&env[..SNAP_CRC_OFFSET]) != want {
            return Err("snapshot envelope header checksum mismatch".into());
        }
        let snap_seq = u64::from_le_bytes(env[5..SNAP_CRC_OFFSET].try_into().unwrap());
        // Fully parse + checksum the image payload BEFORE touching the
        // disk envelope or the live store: a corrupt ship must leave
        // this replica serving (and acking) its current state, never
        // gut a running standby that then keeps taking the stream.
        crate::snapshot::validate(&env[SNAP_HEADER_LEN..])?;
        let io = |what: &str, e: std::io::Error| format!("snapshot install {what}: {e}");
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io("create", e))?;
            f.write_all(env).map_err(|e| io("write", e))?;
            f.sync_all().map_err(|e| io("fsync", e))?;
        }
        std::fs::rename(&tmp, snap_path(&self.dir)).map_err(|e| io("rename", e))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let _ = self.inner.extract_prefix(b"");
        let count = crate::snapshot::load(&mut self.inner, &env[SNAP_HEADER_LEN..])?;
        let _ = self.inner.take_cost();
        // Rotate the WAL only after the snapshot is durable (same
        // ordering argument as `checkpoint`).
        let mut wal =
            BufWriter::new(File::create(wal_path(&self.dir)).map_err(|e| io("rotate", e))?);
        wal.write_all(WAL_MAGIC).map_err(|e| io("rotate", e))?;
        wal.write_all(&[WAL_VERSION]).map_err(|e| io("rotate", e))?;
        wal.flush().map_err(|e| io("rotate", e))?;
        self.wal = wal;
        self.next_seq = snap_seq + 1;
        self.txn_buf.clear();
        self.sync_ticket = None;
        self.unsynced_records = 0;
        self.stats.wal_records = 0;
        self.stats.snapshot_records = count as u64;
        self.stats.checkpoints += 1;
        loco_log::info!("wal.snapshot", "replication snapshot installed";
            last_seq = snap_seq,
            records = count as u64,
            bytes = env.len() as u64);
        Ok(count)
    }
}

impl<S: KvStore> KvStore for DurableStore<S> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.log(OP_PUT, key, &[value]);
        self.inner.put(key, value);
        self.autocommit();
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        self.log(OP_DELETE, key, &[]);
        let hit = self.inner.delete(key);
        self.autocommit();
        hit
    }

    fn contains(&mut self, key: &[u8]) -> bool {
        self.inner.contains(key)
    }

    fn read_at(&mut self, key: &[u8], off: usize, len: usize) -> Option<Vec<u8>> {
        self.inner.read_at(key, off, len)
    }

    fn write_at(&mut self, key: &[u8], off: usize, data: &[u8]) -> bool {
        self.log(OP_WRITE_AT, key, &[&(off as u64).to_le_bytes(), data]);
        let hit = self.inner.write_at(key, off, data);
        self.autocommit();
        hit
    }

    fn append(&mut self, key: &[u8], data: &[u8]) {
        self.log(OP_APPEND, key, &[data]);
        self.inner.append(key, data);
        self.autocommit();
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.inner.scan_prefix(prefix)
    }

    fn extract_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        // Logged as individual deletes so replay is store-agnostic;
        // the deletes share one commit group so a crash can't leave
        // half an extraction applied.
        let out = self.inner.extract_prefix(prefix);
        for (k, _) in &out {
            self.log(OP_DELETE, k, &[]);
        }
        self.autocommit();
        out
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn ordered(&self) -> bool {
        self.inner.ordered()
    }

    fn take_cost(&mut self) -> Nanos {
        self.inner.take_cost()
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn txn_begin(&mut self) {
        self.txn_depth += 1;
    }

    fn txn_commit(&mut self) {
        if self.txn_depth > 0 {
            self.txn_depth -= 1;
        }
        if self.txn_depth == 0 && !self.txn_buf.is_empty() {
            self.commit_group();
        }
    }

    fn persist_checkpoint(&mut self) -> std::io::Result<bool> {
        if self.txn_depth > 0 {
            // Never snapshot half a commit group.
            return Ok(false);
        }
        self.checkpoint()?;
        Ok(true)
    }

    fn persist_sync(&mut self) -> std::io::Result<()> {
        self.sync()
    }

    fn persist_defer_sync(&mut self, on: bool) -> bool {
        self.set_defer_sync(on)
    }

    fn persist_take_ticket(&mut self) -> Option<u64> {
        self.take_sync_ticket()
    }

    fn persist_commit_flush(&mut self) -> u64 {
        self.commit_flush()
    }

    fn persist_commit_flush_begin(&mut self) -> Option<(u64, Box<dyn FnOnce() + Send>)> {
        self.commit_flush_begin()
    }

    fn persistence(&self) -> Option<PersistenceStats> {
        Some(self.stats.clone())
    }

    fn repl_set_tap(&mut self, tap: CommitTap) -> bool {
        self.set_commit_tap(tap);
        true
    }

    fn repl_next_seq(&self) -> u64 {
        self.next_seq()
    }

    fn repl_apply_group(&mut self, group: &[u8]) -> Result<u64, String> {
        self.apply_replicated_group(group)
    }

    fn repl_snapshot_image(&mut self) -> Option<(u64, Vec<u8>)> {
        Some(self.snapshot_image())
    }

    fn repl_install_snapshot(&mut self, env: &[u8]) -> Result<usize, String> {
        self.install_snapshot(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BTreeDb, HashDb, KvConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Unique scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Self {
            let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
            let dir =
                std::env::temp_dir().join(format!("loco-kv-durable-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fresh(dir: &Path) -> DurableStore<BTreeDb> {
        DurableStore::open(dir, BTreeDb::new(KvConfig::default())).unwrap()
    }

    /// Hand-encode a sealed v2 record (for corruption tests).
    fn encode_v2(seq: u64, flags: u8, op: u8, key: &[u8], parts: &[&[u8]]) -> Vec<u8> {
        let mut rec = Vec::new();
        rec.extend_from_slice(&seq.to_le_bytes());
        rec.push(flags);
        rec.push(op);
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        for p in parts {
            rec.extend_from_slice(&(p.len() as u32).to_le_bytes());
            rec.extend_from_slice(p);
        }
        let crc = crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());
        rec
    }

    #[test]
    fn mutations_survive_reopen_via_wal() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"a", b"1");
            db.put(b"b", b"2");
            db.delete(b"a");
            db.append(b"log", b"xy");
            db.append(b"log", b"z");
            db.sync().unwrap();
            // Dropped without checkpoint: recovery must come from WAL.
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"a"), None);
        assert_eq!(db.get(b"b").as_deref(), Some(&b"2"[..]));
        assert_eq!(db.get(b"log").as_deref(), Some(&b"xyz"[..]));
        assert_eq!(db.len(), 2);
        assert_eq!(db.stats().replayed_records, 5);
    }

    #[test]
    fn checkpoint_truncates_wal_and_still_recovers() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            for i in 0..200u32 {
                db.put(&i.to_be_bytes(), &[7u8; 32]);
            }
            db.checkpoint().unwrap();
            assert_eq!(db.wal_records(), 0);
            db.put(b"after", b"ckpt");
            db.sync().unwrap();
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.len(), 201);
        assert_eq!(db.get(b"after").as_deref(), Some(&b"ckpt"[..]));
        assert_eq!(db.stats().snapshot_records, 200);
        assert_eq!(db.stats().replayed_records, 1);
    }

    #[test]
    fn torn_wal_tail_is_ignored_and_truncated() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"good", b"record");
            db.sync().unwrap();
        }
        // Simulate a crash mid-append: write half a record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(wal_path(&scratch.0))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]).unwrap();
        drop(f);
        {
            let mut db = fresh(&scratch.0);
            assert_eq!(db.get(b"good").as_deref(), Some(&b"record"[..]));
            assert_eq!(db.len(), 1);
            // And the store keeps appending after recovery — the torn
            // tail was truncated, so new records are reachable.
            db.put(b"more", b"data");
            db.sync().unwrap();
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(b"more").as_deref(), Some(&b"data"[..]));
    }

    #[test]
    fn corrupted_record_checksum_stops_replay() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"k1", b"v1");
            db.put(b"k2", b"v2");
            db.sync().unwrap();
        }
        // Flip a bit in the middle of the log: replay stops at the
        // damaged record (k2's).
        let p = wal_path(&scratch.0);
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(db.get(b"k2"), None, "damaged record must not apply");
    }

    #[test]
    fn uncommitted_group_tail_is_discarded() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.txn_begin();
            db.put(b"pair/a", b"1");
            db.put(b"pair/b", b"2");
            db.txn_commit();
            db.sync().unwrap();
        }
        // Append a valid-looking record that never got its commit
        // record (torn group write): it must not apply on recovery.
        let mut f = OpenOptions::new()
            .append(true)
            .open(wal_path(&scratch.0))
            .unwrap();
        f.write_all(&encode_v2(99, 0, OP_PUT, b"orphan", &[b"x"]))
            .unwrap();
        drop(f);
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"pair/a").as_deref(), Some(&b"1"[..]));
        assert_eq!(db.get(b"pair/b").as_deref(), Some(&b"2"[..]));
        assert_eq!(db.get(b"orphan"), None, "uncommitted group must not apply");
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn snapshot_seq_prevents_double_replay_of_appends() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.append(b"log", b"x");
            db.sync().unwrap();
            let old_wal = std::fs::read(wal_path(&scratch.0)).unwrap();
            db.checkpoint().unwrap();
            drop(db);
            // Simulate a crash between the snapshot rename and the WAL
            // rotation: the old log (seqs the snapshot covers) is
            // still on disk.
            std::fs::write(wal_path(&scratch.0), &old_wal).unwrap();
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(
            db.get(b"log").as_deref(),
            Some(&b"x"[..]),
            "append must not double-apply"
        );
        assert_eq!(db.stats().replayed_records, 0);
        // Sequence numbers keep climbing past the recovered state.
        db.append(b"log", b"y");
        db.sync().unwrap();
        drop(db);
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"log").as_deref(), Some(&b"xy"[..]));
    }

    #[test]
    fn legacy_v1_log_replays_and_rotates_to_v2() {
        let scratch = Scratch::new();
        std::fs::create_dir_all(&scratch.0).unwrap();
        // Hand-write a v1 (headerless, XOR-checksummed) log.
        let mut v1 = Vec::new();
        for (op, key, parts) in [
            (OP_PUT, &b"a"[..], vec![&b"1"[..]]),
            (OP_APPEND, &b"l"[..], vec![&b"xy"[..]]),
            (OP_DELETE, &b"ghost"[..], vec![]),
        ] {
            let mut rec = vec![op];
            rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
            rec.extend_from_slice(key);
            for p in parts {
                rec.extend_from_slice(&(p.len() as u32).to_le_bytes());
                rec.extend_from_slice(p);
            }
            rec.push(v1_checksum(&rec));
            v1.extend_from_slice(&rec);
        }
        std::fs::write(wal_path(&scratch.0), &v1).unwrap();
        {
            let mut db = fresh(&scratch.0);
            assert_eq!(db.get(b"a").as_deref(), Some(&b"1"[..]));
            assert_eq!(db.get(b"l").as_deref(), Some(&b"xy"[..]));
            assert!(db.stats().wal_upgraded);
            assert!(snap_path(&scratch.0).exists());
        }
        // The rotated log is v2 now and keeps working.
        let head = std::fs::read(wal_path(&scratch.0)).unwrap();
        assert!(head.starts_with(WAL_MAGIC));
        {
            let mut db = fresh(&scratch.0);
            assert!(!db.stats().wal_upgraded);
            db.put(b"new", b"rec");
            db.sync().unwrap();
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"new").as_deref(), Some(&b"rec"[..]));
        assert_eq!(db.get(b"a").as_deref(), Some(&b"1"[..]));
    }

    #[test]
    fn corrupted_snapshot_fails_cleanly() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"k", b"v");
            db.checkpoint().unwrap();
        }
        let p = snap_path(&scratch.0);
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = DurableStore::open(&scratch.0, BTreeDb::new(KvConfig::default()));
        assert!(err.is_err(), "bit-flipped snapshot must not load");
    }

    #[test]
    fn write_at_and_extract_prefix_are_logged() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"fixed", b"0000000000");
            db.write_at(b"fixed", 4, b"XY");
            for i in 0..10u32 {
                db.put(format!("gone/{i}").as_bytes(), b"v");
            }
            let extracted = db.extract_prefix(b"gone/");
            assert_eq!(extracted.len(), 10);
            db.sync().unwrap();
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"fixed").as_deref(), Some(&b"0000XY0000"[..]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn auto_checkpoint_kicks_in() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0);
        db.checkpoint_every = 50;
        for i in 0..120u32 {
            db.put(&i.to_be_bytes(), b"v");
        }
        assert!(db.wal_records() < 50, "wal must have been truncated");
        assert!(snap_path(&scratch.0).exists());
        drop(db);
        let db2 = fresh(&scratch.0);
        assert_eq!(db2.len(), 120);
    }

    #[test]
    fn auto_checkpoint_defers_until_txn_commit() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0);
        db.checkpoint_every = 10;
        db.txn_begin();
        for i in 0..25u32 {
            db.put(&i.to_be_bytes(), b"v");
        }
        // Mid-txn: nothing written yet, so no checkpoint either.
        assert_eq!(db.stats().checkpoints, 0);
        db.txn_commit();
        assert_eq!(db.stats().checkpoints, 1, "group commit then checkpoint");
        drop(db);
        let db2 = fresh(&scratch.0);
        assert_eq!(db2.len(), 25);
    }

    #[test]
    fn works_over_hash_store_too() {
        let scratch = Scratch::new();
        {
            let mut db = DurableStore::open(&scratch.0, HashDb::new(KvConfig::default())).unwrap();
            db.put(b"h", b"1");
            db.sync().unwrap();
        }
        let mut db = DurableStore::open(&scratch.0, HashDb::new(KvConfig::default())).unwrap();
        assert_eq!(db.get(b"h").as_deref(), Some(&b"1"[..]));
    }

    #[test]
    fn every_record_sync_policy_works() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0).with_sync_policy(SyncPolicy::EveryRecord);
            db.put(b"synced", b"yes");
            // No explicit sync(): the policy already flushed.
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"synced").as_deref(), Some(&b"yes"[..]));
    }

    #[test]
    fn sync_policy_parses_cli_spellings() {
        assert_eq!(
            SyncPolicy::parse("every-record"),
            Some(SyncPolicy::EveryRecord)
        );
        assert_eq!(SyncPolicy::parse("os-managed"), Some(SyncPolicy::OsManaged));
        assert_eq!(SyncPolicy::parse("nope"), None);
        assert_eq!(SyncPolicy::EveryRecord.as_str(), "every-record");
    }

    #[test]
    fn deferred_sync_batches_fsyncs_and_survives_reopen() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0).with_sync_policy(SyncPolicy::EveryRecord);
            assert!(db.set_defer_sync(true), "every-record store defers");
            assert!(db.take_sync_ticket().is_none(), "no mutation yet");
            let before = db.stats().wal_fsyncs;
            for i in 0..10u32 {
                db.put(&i.to_be_bytes(), b"v");
                assert!(db.take_sync_ticket().is_some(), "mutation takes a ticket");
            }
            assert!(db.take_sync_ticket().is_none(), "tickets drain once");
            assert_eq!(db.stats().wal_fsyncs, before, "no inline fsync deferred");
            assert_eq!(db.commit_flush(), 10, "one fsync covers the batch");
            assert_eq!(db.stats().wal_fsyncs, before + 1);
            assert_eq!(db.commit_flush(), 0, "nothing pending after the flush");
        }
        let db = fresh(&scratch.0);
        assert_eq!(db.len(), 10, "deferred groups recover");
    }

    #[test]
    fn os_managed_store_refuses_deferral() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0); // OsManaged by default
        assert!(!db.set_defer_sync(true));
        db.put(b"k", b"v");
        assert!(db.take_sync_ticket().is_none());
    }

    #[test]
    fn disabling_deferral_flushes_pending_groups() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0).with_sync_policy(SyncPolicy::EveryRecord);
        db.set_defer_sync(true);
        db.put(b"k", b"v");
        let before = db.stats().wal_fsyncs;
        assert!(!db.set_defer_sync(false));
        assert_eq!(db.stats().wal_fsyncs, before + 1, "pending group flushed");
        assert_eq!(db.commit_flush(), 0);
        // Back to inline fsyncs.
        db.put(b"k2", b"v");
        assert_eq!(db.stats().wal_fsyncs, before + 2);
    }

    #[test]
    fn checkpoint_clears_deferred_batch() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0).with_sync_policy(SyncPolicy::EveryRecord);
        db.set_defer_sync(true);
        db.put(b"k", b"v");
        db.checkpoint().unwrap();
        // The fsync'd snapshot covers the group: nothing left to flush.
        assert_eq!(db.commit_flush(), 0);
    }

    #[test]
    fn commit_tap_feed_replays_on_a_standby() {
        use std::sync::{Arc, Mutex};
        type TappedGroups = Arc<Mutex<Vec<(u64, u64, Vec<u8>)>>>;
        let (p, s) = (Scratch::new(), Scratch::new());
        let feed: TappedGroups = Arc::new(Mutex::new(Vec::new()));
        let mut primary = fresh(&p.0);
        let sink = feed.clone();
        primary.set_commit_tap(Box::new(move |f, l, b| {
            sink.lock().unwrap().push((f, l, b.to_vec()));
        }));
        primary.put(b"a", b"1");
        primary.txn_begin();
        primary.put(b"b", b"2");
        primary.delete(b"a");
        primary.txn_commit();
        primary.append(b"log", b"xyz");

        let mut standby = fresh(&s.0);
        let groups = feed.lock().unwrap().clone();
        assert_eq!(groups.len(), 3, "three commit groups tapped");
        assert_eq!(groups[0].0, 1, "first group starts at seq 1");
        assert_eq!(groups[1].1 - groups[1].0, 1, "txn group spans 2 records");
        for (_, last, bytes) in &groups {
            let n = standby.apply_replicated_group(bytes).unwrap();
            assert!(n > 0);
            assert_eq!(standby.next_seq(), last + 1);
        }
        assert_eq!(standby.get(b"a"), None);
        assert_eq!(standby.get(b"b").as_deref(), Some(&b"2"[..]));
        assert_eq!(standby.get(b"log").as_deref(), Some(&b"xyz"[..]));
        // Duplicate ship is idempotent; a gap is an error.
        assert_eq!(
            standby.apply_replicated_group(&groups[2].2).unwrap(),
            0,
            "duplicate group skipped"
        );
        let gap = encode_v2(99, FLAG_COMMIT, OP_PUT, b"hole", &[b"x"]);
        assert!(standby.apply_replicated_group(&gap).is_err());
        // And the replicated range is durable: reopen the standby.
        drop(standby);
        let mut standby = fresh(&s.0);
        assert_eq!(standby.get(b"b").as_deref(), Some(&b"2"[..]));
        assert_eq!(standby.get(b"log").as_deref(), Some(&b"xyz"[..]));
    }

    #[test]
    fn replicated_group_without_commit_flag_is_rejected() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0);
        let open = encode_v2(1, 0, OP_PUT, b"k", &[b"v"]);
        assert!(db.apply_replicated_group(&open).is_err());
        assert_eq!(db.get(b"k"), None, "rejected group leaves no effects");
        assert_eq!(db.next_seq(), 1);
        // Damaged crc is also rejected wholesale.
        let mut torn = encode_v2(1, FLAG_COMMIT, OP_PUT, b"k", &[b"v"]);
        let n = torn.len();
        torn[n - 1] ^= 0xFF;
        assert!(db.apply_replicated_group(&torn).is_err());
    }

    #[test]
    fn snapshot_image_installs_on_a_standby() {
        let (p, s) = (Scratch::new(), Scratch::new());
        let mut primary = fresh(&p.0);
        for i in 0..50u32 {
            primary.put(&i.to_be_bytes(), b"v");
        }
        let (last_seq, env) = primary.snapshot_image();
        assert_eq!(last_seq, 50);

        let mut standby = fresh(&s.0);
        standby.put(b"stale", b"state"); // wiped by the install
        let count = standby.install_snapshot(&env).unwrap();
        assert_eq!(count, 50);
        assert_eq!(standby.len(), 50);
        assert_eq!(standby.get(b"stale"), None);
        assert_eq!(standby.next_seq(), last_seq + 1);
        // The standby can now take the WAL tail from exactly last_seq+1.
        let tail = encode_v2(last_seq + 1, FLAG_COMMIT, OP_PUT, b"tail", &[b"t"]);
        assert_eq!(standby.apply_replicated_group(&tail).unwrap(), 1);
        // Both snapshot and tail survive a reopen.
        drop(standby);
        let mut standby = fresh(&s.0);
        assert_eq!(standby.len(), 51);
        assert_eq!(standby.get(b"tail").as_deref(), Some(&b"t"[..]));
        // A corrupted envelope is refused before any state changes.
        let mut bad = env.clone();
        bad[6] ^= 0x01;
        assert!(standby.install_snapshot(&bad).is_err());
        // Corruption past the envelope header (inside the image
        // payload) is caught by the pre-install validation pass: the
        // live store keeps serving its current state instead of being
        // cleared and then failing the load.
        let mut bad = env.clone();
        let n = bad.len();
        bad[n - 3] ^= 0x10;
        assert!(standby.install_snapshot(&bad).is_err());
        assert_eq!(standby.len(), 51, "failed install must not gut the store");
        assert_eq!(standby.get(b"tail").as_deref(), Some(&b"t"[..]));
        assert_eq!(standby.next_seq(), last_seq + 2, "cursor unchanged");
        // ...and the replication stream resumes where it left off.
        let more = encode_v2(last_seq + 2, FLAG_COMMIT, OP_PUT, b"more", &[b"m"]);
        assert_eq!(standby.apply_replicated_group(&more).unwrap(), 1);
    }

    #[test]
    fn replicated_apply_defers_fsync_under_group_commit() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0).with_sync_policy(SyncPolicy::EveryRecord);
        db.set_defer_sync(true);
        let group = encode_v2(1, FLAG_COMMIT, OP_PUT, b"k", &[b"v"]);
        let before = db.stats().wal_fsyncs;
        db.apply_replicated_group(&group).unwrap();
        assert_eq!(db.stats().wal_fsyncs, before, "fsync deferred");
        assert_eq!(
            db.take_sync_ticket(),
            Some(1),
            "replicated apply takes a commit ticket so the ack waits for the flush"
        );
        assert_eq!(db.commit_flush(), 1);
    }

    #[test]
    fn repl_hooks_route_through_the_trait_object() {
        let scratch = Scratch::new();
        let mut db: Box<dyn KvStore> = Box::new(fresh(&scratch.0));
        assert!(db.repl_set_tap(Box::new(|_, _, _| {})));
        db.put(b"k", b"v");
        assert_eq!(db.repl_next_seq(), 2);
        assert!(db.repl_snapshot_image().is_some());
        // Volatile stores opt out of every hook.
        let mut plain: Box<dyn KvStore> = Box::new(BTreeDb::new(KvConfig::default()));
        assert!(!plain.repl_set_tap(Box::new(|_, _, _| {})));
        assert_eq!(plain.repl_next_seq(), 0);
        assert!(plain.repl_apply_group(b"x").is_err());
        assert!(plain.repl_snapshot_image().is_none());
        assert!(plain.repl_install_snapshot(b"x").is_err());
    }

    #[test]
    fn persistence_hooks_route_through_the_trait() {
        let scratch = Scratch::new();
        let mut db: Box<dyn KvStore> = Box::new(fresh(&scratch.0));
        db.put(b"k", b"v");
        assert!(db.persistence().is_some());
        assert!(db.persist_checkpoint().unwrap());
        db.persist_sync().unwrap();
        assert_eq!(db.persistence().unwrap().checkpoints, 1);
        // And a volatile store reports no persistence.
        let mut plain: Box<dyn KvStore> = Box::new(BTreeDb::new(KvConfig::default()));
        assert!(plain.persistence().is_none());
        assert!(!plain.persist_checkpoint().unwrap());
    }
}
