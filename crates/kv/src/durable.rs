//! File-backed durability: a write-ahead log plus checkpoints over any
//! [`KvStore`].
//!
//! The in-memory stores model Kyoto Cabinet's *performance*; this
//! module supplies the missing *durability* half for deployments that
//! want real persistence (the examples and the restart tests use it):
//!
//! * every mutation is appended to `wal.log` (fsync'd according to
//!   [`SyncPolicy`]) before being applied to the wrapped store;
//! * [`DurableStore::checkpoint`] writes a full snapshot image
//!   atomically (`snapshot.tmp` → rename) and truncates the log;
//! * [`DurableStore::open`] recovers by loading the snapshot and
//!   replaying the log, tolerating a torn final record (crash during
//!   append).
//!
//! WAL record: u8 op ‖ u32 key-len ‖ key ‖ (per-op payload), with a
//! trailing XOR checksum byte per record.

use crate::{AccessStats, KvStore};
use loco_sim::time::Nanos;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_APPEND: u8 = 3;
const OP_WRITE_AT: u8 = 4;

/// When the WAL is fsync'd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync every record (safest, slowest).
    EveryRecord,
    /// Let the OS flush (group commit via BufWriter + OS page cache).
    OsManaged,
}

/// Durable wrapper over a store.
pub struct DurableStore<S: KvStore> {
    inner: S,
    dir: PathBuf,
    wal: BufWriter<File>,
    wal_records: usize,
    policy: SyncPolicy,
    /// Checkpoint automatically after this many logged mutations.
    pub checkpoint_every: usize,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snap_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.db")
}

fn checksum(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0xA5u8, |acc, b| acc ^ b)
}

impl<S: KvStore> DurableStore<S> {
    /// Open (or create) a durable store at `dir`, recovering any
    /// existing snapshot + log into `inner` (which must be empty).
    pub fn open(dir: impl Into<PathBuf>, mut inner: S) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // 1) snapshot
        if let Ok(image) = std::fs::read(snap_path(&dir)) {
            crate::snapshot::load(&mut inner, &image)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        }
        // 2) replay WAL (tolerate a torn tail)
        let mut records = 0usize;
        if let Ok(mut f) = File::open(wal_path(&dir)) {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            while let Some(next) = replay_one(&mut inner, &buf[pos..]) {
                pos += next;
                records += 1;
            }
        }
        let wal = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(wal_path(&dir))?,
        );
        let mut s = Self {
            inner,
            dir,
            wal,
            wal_records: records,
            policy: SyncPolicy::OsManaged,
            checkpoint_every: 100_000,
        };
        let _ = s.inner.take_cost(); // recovery is offline work
        Ok(s)
    }

    /// Override the WAL sync policy.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Mutations currently in the log (since the last checkpoint).
    pub fn wal_records(&self) -> usize {
        self.wal_records
    }

    /// Write a full snapshot atomically and truncate the log.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        let image = crate::snapshot::dump(&mut self.inner);
        let _ = self.inner.take_cost();
        let tmp = self.dir.join("snapshot.tmp");
        std::fs::write(&tmp, &image)?;
        std::fs::rename(&tmp, snap_path(&self.dir))?;
        // Truncate the WAL only after the snapshot is durable.
        self.wal = BufWriter::new(File::create(wal_path(&self.dir))?);
        self.wal_records = 0;
        Ok(())
    }

    fn log(&mut self, op: u8, key: &[u8], parts: &[&[u8]]) {
        let mut rec =
            Vec::with_capacity(9 + key.len() + parts.iter().map(|p| p.len() + 4).sum::<usize>());
        rec.push(op);
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        for p in parts {
            rec.extend_from_slice(&(p.len() as u32).to_le_bytes());
            rec.extend_from_slice(p);
        }
        rec.push(checksum(&rec));
        self.wal.write_all(&rec).expect("wal append");
        if self.policy == SyncPolicy::EveryRecord {
            self.wal.flush().expect("wal flush");
            self.wal.get_ref().sync_data().expect("wal fsync");
        }
        self.wal_records += 1;
        if self.wal_records >= self.checkpoint_every {
            self.checkpoint().expect("auto checkpoint");
        }
    }

    /// Flush buffered WAL records to the OS (and disk).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.flush()?;
        self.wal.get_ref().sync_data()
    }
}

/// Replay one WAL record from `buf`; returns its encoded length, or
/// `None` on a torn/invalid record (recovery stops there).
fn replay_one<S: KvStore>(store: &mut S, buf: &[u8]) -> Option<usize> {
    let take_len = |buf: &[u8], pos: usize| -> Option<(usize, usize)> {
        if buf.len() < pos + 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        Some((n, pos + 4))
    };
    if buf.is_empty() {
        return None;
    }
    let op = buf[0];
    let (klen, mut pos) = take_len(buf, 1)?;
    if buf.len() < pos + klen {
        return None;
    }
    let key = &buf[pos..pos + klen];
    pos += klen;
    let n_parts = match op {
        OP_PUT | OP_APPEND => 1,
        OP_DELETE => 0,
        OP_WRITE_AT => 2,
        _ => return None,
    };
    let mut parts: Vec<&[u8]> = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let (plen, p2) = take_len(buf, pos)?;
        if buf.len() < p2 + plen {
            return None;
        }
        parts.push(&buf[p2..p2 + plen]);
        pos = p2 + plen;
    }
    if buf.len() < pos + 1 || checksum(&buf[..pos]) != buf[pos] {
        return None;
    }
    match op {
        OP_PUT => store.put(key, parts[0]),
        OP_DELETE => {
            store.delete(key);
        }
        OP_APPEND => store.append(key, parts[0]),
        OP_WRITE_AT => {
            let off = u64::from_le_bytes(parts[0].try_into().ok()?) as usize;
            store.write_at(key, off, parts[1]);
        }
        _ => return None,
    }
    Some(pos + 1)
}

impl<S: KvStore> KvStore for DurableStore<S> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.log(OP_PUT, key, &[value]);
        self.inner.put(key, value);
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        self.log(OP_DELETE, key, &[]);
        self.inner.delete(key)
    }

    fn contains(&mut self, key: &[u8]) -> bool {
        self.inner.contains(key)
    }

    fn read_at(&mut self, key: &[u8], off: usize, len: usize) -> Option<Vec<u8>> {
        self.inner.read_at(key, off, len)
    }

    fn write_at(&mut self, key: &[u8], off: usize, data: &[u8]) -> bool {
        self.log(OP_WRITE_AT, key, &[&(off as u64).to_le_bytes(), data]);
        self.inner.write_at(key, off, data)
    }

    fn append(&mut self, key: &[u8], data: &[u8]) {
        self.log(OP_APPEND, key, &[data]);
        self.inner.append(key, data);
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.inner.scan_prefix(prefix)
    }

    fn extract_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        // Logged as individual deletes so replay is store-agnostic.
        let out = self.inner.extract_prefix(prefix);
        for (k, _) in &out {
            self.log(OP_DELETE, k, &[]);
        }
        out
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn ordered(&self) -> bool {
        self.inner.ordered()
    }

    fn take_cost(&mut self) -> Nanos {
        self.inner.take_cost()
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BTreeDb, HashDb, KvConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Unique scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Self {
            let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
            let dir =
                std::env::temp_dir().join(format!("loco-kv-durable-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fresh(dir: &Path) -> DurableStore<BTreeDb> {
        DurableStore::open(dir, BTreeDb::new(KvConfig::default())).unwrap()
    }

    #[test]
    fn mutations_survive_reopen_via_wal() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"a", b"1");
            db.put(b"b", b"2");
            db.delete(b"a");
            db.append(b"log", b"xy");
            db.append(b"log", b"z");
            db.sync().unwrap();
            // Dropped without checkpoint: recovery must come from WAL.
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"a"), None);
        assert_eq!(db.get(b"b").as_deref(), Some(&b"2"[..]));
        assert_eq!(db.get(b"log").as_deref(), Some(&b"xyz"[..]));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn checkpoint_truncates_wal_and_still_recovers() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            for i in 0..200u32 {
                db.put(&i.to_be_bytes(), &[7u8; 32]);
            }
            db.checkpoint().unwrap();
            assert_eq!(db.wal_records(), 0);
            db.put(b"after", b"ckpt");
            db.sync().unwrap();
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.len(), 201);
        assert_eq!(db.get(b"after").as_deref(), Some(&b"ckpt"[..]));
    }

    #[test]
    fn torn_wal_tail_is_ignored() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"good", b"record");
            db.sync().unwrap();
        }
        // Simulate a crash mid-append: write half a record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(wal_path(&scratch.0))
            .unwrap();
        f.write_all(&[OP_PUT, 200, 0, 0, 0, b'x']).unwrap(); // claims 200-byte key
        drop(f);
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"good").as_deref(), Some(&b"record"[..]));
        assert_eq!(db.len(), 1);
        // And the store keeps working after recovery.
        db.put(b"more", b"data");
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn corrupted_record_checksum_stops_replay() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"k1", b"v1");
            db.put(b"k2", b"v2");
            db.sync().unwrap();
        }
        // Flip a bit in the middle of the log: replay stops at the
        // damaged record (k2's value byte).
        let p = wal_path(&scratch.0);
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(db.get(b"k2"), None, "damaged record must not apply");
    }

    #[test]
    fn write_at_and_extract_prefix_are_logged() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0);
            db.put(b"fixed", b"0000000000");
            db.write_at(b"fixed", 4, b"XY");
            for i in 0..10u32 {
                db.put(format!("gone/{i}").as_bytes(), b"v");
            }
            let extracted = db.extract_prefix(b"gone/");
            assert_eq!(extracted.len(), 10);
            db.sync().unwrap();
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"fixed").as_deref(), Some(&b"0000XY0000"[..]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn auto_checkpoint_kicks_in() {
        let scratch = Scratch::new();
        let mut db = fresh(&scratch.0);
        db.checkpoint_every = 50;
        for i in 0..120u32 {
            db.put(&i.to_be_bytes(), b"v");
        }
        assert!(db.wal_records() < 50, "wal must have been truncated");
        assert!(snap_path(&scratch.0).exists());
        drop(db);
        let db2 = fresh(&scratch.0);
        assert_eq!(db2.len(), 120);
    }

    #[test]
    fn works_over_hash_store_too() {
        let scratch = Scratch::new();
        {
            let mut db = DurableStore::open(&scratch.0, HashDb::new(KvConfig::default())).unwrap();
            db.put(b"h", b"1");
            db.sync().unwrap();
        }
        let mut db = DurableStore::open(&scratch.0, HashDb::new(KvConfig::default())).unwrap();
        assert_eq!(db.get(b"h").as_deref(), Some(&b"1"[..]));
    }

    #[test]
    fn every_record_sync_policy_works() {
        let scratch = Scratch::new();
        {
            let mut db = fresh(&scratch.0).with_sync_policy(SyncPolicy::EveryRecord);
            db.put(b"synced", b"yes");
            // No explicit sync(): the policy already flushed.
        }
        let mut db = fresh(&scratch.0);
        assert_eq!(db.get(b"synced").as_deref(), Some(&b"yes"[..]));
    }
}
