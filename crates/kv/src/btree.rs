//! A B+ tree key-value store — the Kyoto Cabinet *tree DB* analog.
//!
//! Keys live in sorted order in linked leaves, so:
//!
//! * a prefix scan descends once and walks consecutive leaves — cost
//!   proportional to the number of *matching* records, not the table;
//! * directory rename (paper §3.4.3) extracts the contiguous key range
//!   `old_path/…` and reinserts it under the new name, which is why the
//!   LocoFS DMS keeps directory metadata in tree mode.
//!
//! Implementation notes: nodes are arena-allocated (`Vec<Node>`, `u32`
//! ids). Inserts split nodes on overflow. Deletes are *lazy*: entries
//! are removed from leaves but empty leaves stay linked (skipped by
//! scans) and the tree never shrinks in height — the strategy Kyoto
//! Cabinet itself uses between compactions. Lazy deletion keeps every
//! structural invariant local to the insert path; the property tests at
//! the bottom verify equivalence against `std::collections::BTreeMap`
//! under millions of mixed operations.

use crate::{AccessStats, KvConfig, KvStore, Meter};
use loco_sim::time::Nanos;

const MAX_LEAF: usize = 32;
const MAX_CHILDREN: usize = 32;
const NIL: u32 = u32::MAX;

type Entry = (Box<[u8]>, Vec<u8>);

enum Node {
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i+1]`.
        keys: Vec<Box<[u8]>>,
        children: Vec<u32>,
    },
    Leaf {
        entries: Vec<Entry>,
        next: u32,
    },
}

/// Smallest byte string strictly greater than every string starting with
/// `prefix`, or `None` if no such bound exists (prefix is all `0xff`).
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut hi = prefix.to_vec();
    while let Some(&last) = hi.last() {
        if last == 0xff {
            hi.pop();
        } else {
            *hi.last_mut().unwrap() = last + 1;
            return Some(hi);
        }
    }
    None
}

/// B+ tree store.
pub struct BTreeDb {
    nodes: Vec<Node>,
    root: u32,
    len: usize,
    cfg: KvConfig,
    meter: Meter,
}

impl BTreeDb {
    /// Create a new instance with default settings.
    pub fn new(cfg: KvConfig) -> Self {
        Self {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                next: NIL,
            }],
            root: 0,
            len: 0,
            cfg,
            meter: Meter::default(),
        }
    }

    /// Locate the leaf that would contain `key`.
    fn find_leaf(&self, key: &[u8]) -> u32 {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| &**k <= key);
                    id = children[idx];
                }
                Node::Leaf { .. } => return id,
            }
        }
    }

    /// Recursive insert. Returns `Some((separator, new_node))` when the
    /// child split and the parent must absorb a new entry.
    fn insert_rec(&mut self, id: u32, key: &[u8], value: Vec<u8>) -> Option<(Box<[u8]>, u32)> {
        match &mut self.nodes[id as usize] {
            Node::Leaf { entries, .. } => {
                match entries.binary_search_by(|(k, _)| (**k).cmp(key)) {
                    Ok(pos) => {
                        entries[pos].1 = value;
                        return None;
                    }
                    Err(pos) => {
                        entries.insert(pos, (key.to_vec().into_boxed_slice(), value));
                        self.len += 1;
                    }
                }
                if let Node::Leaf { entries, next } = &mut self.nodes[id as usize] {
                    if entries.len() > MAX_LEAF {
                        let right_entries = entries.split_off(entries.len() / 2);
                        let sep = right_entries[0].0.clone();
                        let old_next = *next;
                        let new_id = self.nodes.len() as u32;
                        if let Node::Leaf { next, .. } = &mut self.nodes[id as usize] {
                            *next = new_id;
                        }
                        self.nodes.push(Node::Leaf {
                            entries: right_entries,
                            next: old_next,
                        });
                        return Some((sep, new_id));
                    }
                }
                None
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| &**k <= key);
                let child = children[idx];
                let split = self.insert_rec(child, key, value)?;
                let (sep, new_child) = split;
                if let Node::Internal { keys, children } = &mut self.nodes[id as usize] {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, new_child);
                    if children.len() > MAX_CHILDREN {
                        let mid = keys.len() / 2;
                        let promoted = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the promoted key from the left node
                        let right_children = children.split_off(mid + 1);
                        let new_id = self.nodes.len() as u32;
                        self.nodes.push(Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        });
                        return Some((promoted, new_id));
                    }
                }
                None
            }
        }
    }

    /// Number of tree levels (used by tests/benches to sanity-check
    /// logarithmic growth).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        while let Node::Internal { children, .. } = &self.nodes[id as usize] {
            id = children[0];
            h += 1;
        }
        h
    }

    /// Scan `[lo, hi)` in key order (`hi = None` means unbounded).
    /// Returns cloned entries and charges scan costs.
    pub fn scan_range(&mut self, lo: &[u8], hi: Option<&[u8]>) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.meter.stats.scans += 1;
        let mut out = Vec::new();
        let mut bytes = 0usize;
        let mut id = self.find_leaf(lo);
        'walk: while id != NIL {
            if let Node::Leaf { entries, next } = &self.nodes[id as usize] {
                for (k, v) in entries {
                    if &**k < lo {
                        continue;
                    }
                    if let Some(hi) = hi {
                        if &**k >= hi {
                            break 'walk;
                        }
                    }
                    bytes += k.len() + v.len();
                    out.push((k.to_vec(), v.clone()));
                }
                id = *next;
            } else {
                unreachable!("leaf chain contains internal node");
            }
        }
        self.meter.stats.bytes_read += bytes as u64;
        self.meter
            .charge(self.cfg.model.scan(out.len(), bytes) + self.cfg.device.stream_read(bytes));
        out
    }
}

impl KvStore for BTreeDb {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.meter.stats.gets += 1;
        let leaf = self.find_leaf(key);
        let Node::Leaf { entries, .. } = &self.nodes[leaf as usize] else {
            unreachable!()
        };
        let found = entries
            .binary_search_by(|(k, _)| (**k).cmp(key))
            .ok()
            .map(|pos| entries[pos].1.clone());
        let len = found.as_ref().map_or(0, |v| v.len());
        self.meter.stats.bytes_read += len as u64;
        self.meter.charge(self.cfg.model.get(len, self.cfg.codec));
        found
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.meter.stats.puts += 1;
        self.meter.stats.bytes_written += (key.len() + value.len()) as u64;
        self.meter.charge(
            self.cfg.model.put(value.len(), self.cfg.codec)
                + self.cfg.device.write_amortized(key.len() + value.len()),
        );
        if let Some((sep, new_node)) = self.insert_rec(self.root, key, value.to_vec()) {
            let new_root = self.nodes.len() as u32;
            self.nodes.push(Node::Internal {
                keys: vec![sep],
                children: vec![self.root, new_node],
            });
            self.root = new_root;
        }
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        self.meter.stats.deletes += 1;
        self.meter
            .charge(self.cfg.model.delete() + self.cfg.device.write_amortized(key.len()));
        let leaf = self.find_leaf(key);
        let Node::Leaf { entries, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!()
        };
        match entries.binary_search_by(|(k, _)| (**k).cmp(key)) {
            Ok(pos) => {
                entries.remove(pos);
                self.len -= 1;
                true
            }
            Err(_) => false,
        }
    }

    fn contains(&mut self, key: &[u8]) -> bool {
        self.meter.stats.gets += 1;
        self.meter.charge(self.cfg.model.get(0, self.cfg.codec));
        let leaf = self.find_leaf(key);
        let Node::Leaf { entries, .. } = &self.nodes[leaf as usize] else {
            unreachable!()
        };
        entries.binary_search_by(|(k, _)| (**k).cmp(key)).is_ok()
    }

    fn read_at(&mut self, key: &[u8], off: usize, len: usize) -> Option<Vec<u8>> {
        self.meter.stats.partial_reads += 1;
        let leaf = self.find_leaf(key);
        let Node::Leaf { entries, .. } = &self.nodes[leaf as usize] else {
            unreachable!()
        };
        let found = entries.binary_search_by(|(k, _)| (**k).cmp(key)).ok();
        let total = found.map_or(0, |pos| entries[pos].1.len());
        self.meter
            .charge(self.cfg.model.get_partial(len, total, self.cfg.codec));
        let pos = found?;
        let v = &entries[pos].1;
        if off + len > v.len() {
            return None;
        }
        self.meter.stats.bytes_read += len as u64;
        Some(v[off..off + len].to_vec())
    }

    fn write_at(&mut self, key: &[u8], off: usize, data: &[u8]) -> bool {
        self.meter.stats.partial_writes += 1;
        let leaf = self.find_leaf(key);
        let codec = self.cfg.codec;
        let model = self.cfg.model.clone();
        let device = self.cfg.device.clone();
        let Node::Leaf { entries, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!()
        };
        let Ok(pos) = entries.binary_search_by(|(k, _)| (**k).cmp(key)) else {
            self.meter.charge(model.get(0, codec));
            return false;
        };
        let v = &mut entries[pos].1;
        if off + data.len() > v.len() {
            self.meter.charge(model.get(0, codec));
            return false;
        }
        let total = v.len();
        v[off..off + data.len()].copy_from_slice(data);
        self.meter.stats.bytes_written += data.len() as u64;
        self.meter.charge(
            model.put_partial(data.len(), total, codec) + device.write_amortized(data.len()),
        );
        true
    }

    fn append(&mut self, key: &[u8], data: &[u8]) {
        self.meter.stats.puts += 1;
        self.meter.stats.bytes_written += data.len() as u64;
        self.meter.charge(
            self.cfg.model.put(data.len(), self.cfg.codec)
                + self.cfg.device.write_amortized(data.len()),
        );
        let leaf = self.find_leaf(key);
        let Node::Leaf { entries, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!()
        };
        if let Ok(pos) = entries.binary_search_by(|(k, _)| (**k).cmp(key)) {
            entries[pos].1.extend_from_slice(data);
            return;
        }
        // Record absent: appending to nothing is an insert; reuse the
        // normal insert path (cost already charged above, so insert via
        // insert_rec directly rather than put()).
        if let Some((sep, new_node)) = self.insert_rec(self.root, key, data.to_vec()) {
            let new_root = self.nodes.len() as u32;
            self.nodes.push(Node::Internal {
                keys: vec![sep],
                children: vec![self.root, new_node],
            });
            self.root = new_root;
        }
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let hi = prefix_upper_bound(prefix);
        self.scan_range(prefix, hi.as_deref())
    }

    fn extract_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        // Range extraction: walk the leaf chain once, draining matching
        // entries in place. Cost is proportional to the extracted range
        // only — the whole point of tree mode for d-rename (Fig 14).
        self.meter.stats.scans += 1;
        let hi = prefix_upper_bound(prefix);
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut bytes = 0usize;
        let mut id = self.find_leaf(prefix);
        while id != NIL {
            let Node::Leaf { entries, next } = &mut self.nodes[id as usize] else {
                unreachable!()
            };
            let next_id = *next;
            let mut done = false;
            let mut i = 0;
            while i < entries.len() {
                let k = &entries[i].0;
                if &**k < prefix {
                    i += 1;
                    continue;
                }
                if let Some(hi) = &hi {
                    if **k >= hi[..] {
                        done = true;
                        break;
                    }
                }
                let (k, v) = entries.remove(i);
                bytes += k.len() + v.len();
                self.len -= 1;
                out.push((k.to_vec(), v));
            }
            if done {
                break;
            }
            id = next_id;
        }
        self.meter.stats.bytes_read += bytes as u64;
        self.meter.charge(
            self.cfg.model.scan(out.len(), bytes)
                + self.cfg.device.stream_read(bytes)
                + out.len() as Nanos * self.cfg.model.kv_del_base
                + self.cfg.device.write_amortized(bytes),
        );
        out
    }

    fn len(&self) -> usize {
        self.len
    }

    fn ordered(&self) -> bool {
        true
    }

    fn take_cost(&mut self) -> Nanos {
        self.meter.cost.take()
    }

    fn stats(&self) -> AccessStats {
        self.meter.stats
    }

    fn reset_stats(&mut self) {
        self.meter.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn db() -> BTreeDb {
        BTreeDb::new(KvConfig::default())
    }

    #[test]
    fn prefix_upper_bound_cases() {
        assert_eq!(prefix_upper_bound(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper_bound(b"ab\xff"), Some(b"ac".to_vec()));
        assert_eq!(prefix_upper_bound(b"\xff\xff"), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    #[test]
    fn splits_maintain_order_for_sequential_inserts() {
        let mut t = db();
        for i in 0..10_000u32 {
            t.put(format!("{i:08}").as_bytes(), &i.to_le_bytes());
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.height() >= 3, "10k entries must split: h={}", t.height());
        let all = t.scan_prefix(b"");
        assert_eq!(all.len(), 10_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn splits_maintain_order_for_reverse_inserts() {
        let mut t = db();
        for i in (0..5_000u32).rev() {
            t.put(format!("{i:08}").as_bytes(), b"v");
        }
        let all = t.scan_prefix(b"");
        assert_eq!(all.len(), 5_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = db();
        for i in 0..100_000u32 {
            t.put(&i.to_be_bytes(), b"");
        }
        // Order-32 tree: 100k entries fit comfortably within 5 levels.
        assert!(t.height() <= 5, "height = {}", t.height());
    }

    #[test]
    fn scan_range_half_open() {
        let mut t = db();
        for i in 0..100u32 {
            t.put(format!("{i:03}").as_bytes(), b"v");
        }
        let got = t.scan_range(b"010", Some(b"020"));
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"010");
        assert_eq!(got[9].0, b"019");
    }

    #[test]
    fn extract_prefix_is_range_local_cost() {
        // Tree-mode extraction must not pay for the rest of the table.
        let mut big = db();
        let mut small = db();
        for i in 0..50_000u32 {
            big.put(format!("other/{i:08}").as_bytes(), &[0u8; 64]);
        }
        for i in 0..100u32 {
            big.put(format!("target/{i:04}").as_bytes(), &[0u8; 64]);
            small.put(format!("target/{i:04}").as_bytes(), &[0u8; 64]);
        }
        big.take_cost();
        small.take_cost();
        let a = big.extract_prefix(b"target/");
        let ca = big.take_cost();
        let b = small.extract_prefix(b"target/");
        let cb = small.take_cost();
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 100);
        // Costs within 2x of each other despite a 500x table-size gap.
        assert!(ca < cb * 2, "ca={ca} cb={cb}");
    }

    #[test]
    fn lazy_delete_keeps_scans_correct() {
        let mut t = db();
        for i in 0..1_000u32 {
            t.put(format!("{i:04}").as_bytes(), b"v");
        }
        // Hollow out entire leaves.
        for i in 0..500u32 {
            assert!(t.delete(format!("{i:04}").as_bytes()));
        }
        assert_eq!(t.len(), 500);
        let all = t.scan_prefix(b"");
        assert_eq!(all.len(), 500);
        assert_eq!(all[0].0, b"0500");
        // Reinsert into hollowed region.
        t.put(b"0100", b"back");
        assert_eq!(t.get(b"0100").as_deref(), Some(&b"back"[..]));
        // Keys 0100..0199 were all deleted, so the prefix now matches
        // only the reinserted record.
        assert_eq!(t.scan_prefix(b"01").len(), 1);
    }

    #[test]
    fn reinsert_after_mass_delete() {
        let mut t = db();
        for i in 0..2_000u32 {
            t.put(&i.to_be_bytes(), b"a");
        }
        for i in 0..2_000u32 {
            t.delete(&i.to_be_bytes());
        }
        assert_eq!(t.len(), 0);
        assert!(t.scan_prefix(b"").is_empty());
        for i in 0..2_000u32 {
            t.put(&i.to_be_bytes(), b"b");
        }
        assert_eq!(t.len(), 2_000);
        assert_eq!(t.get(&42u32.to_be_bytes()).as_deref(), Some(&b"b"[..]));
    }

    use loco_sim::rng::Rng;

    fn random_bytes(rng: &mut Rng, max_len: usize, alphabet: u8) -> Vec<u8> {
        let len = rng.gen_range(0..max_len);
        (0..len).map(|_| (rng.gen_u64() as u8) % alphabet).collect()
    }

    /// Mixed random workload must agree with std BTreeMap. Randomized
    /// model test (seeded, deterministic), 64 cases.
    #[test]
    fn model_equivalence() {
        let mut rng = Rng::seed_from_u64(0xB7EE);
        for _case in 0..64 {
            let n_ops = rng.gen_range(1..400);
            let mut tree = db();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for _ in 0..n_ops {
                let op = rng.gen_below(4) as u8;
                let key = random_bytes(&mut rng, 6, 255);
                let value = random_bytes(&mut rng, 20, 255);
                match op {
                    0 => {
                        tree.put(&key, &value);
                        model.insert(key.clone(), value.clone());
                    }
                    1 => {
                        let a = tree.delete(&key);
                        let b = model.remove(&key).is_some();
                        assert_eq!(a, b);
                    }
                    2 => {
                        let a = tree.get(&key);
                        let b = model.get(&key).cloned();
                        assert_eq!(a, b);
                    }
                    _ => {
                        let prefix = &key[..key.len().min(2)];
                        let a = tree.scan_prefix(prefix);
                        let b: Vec<(Vec<u8>, Vec<u8>)> = model
                            .iter()
                            .filter(|(k, _)| k.starts_with(prefix))
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect();
                        assert_eq!(a, b);
                    }
                }
                assert_eq!(tree.len(), model.len());
            }
        }
    }

    /// extract_prefix == filter out of the model, and removes exactly
    /// those records. Randomized model test over a small (0..4)
    /// alphabet so prefixes collide often.
    #[test]
    fn extract_prefix_equivalence() {
        let mut rng = Rng::seed_from_u64(0xEF1A7);
        for _case in 0..64 {
            let n_keys = rng.gen_range(1..200);
            let keys: std::collections::BTreeSet<Vec<u8>> = (0..n_keys)
                .map(|_| {
                    let len = rng.gen_range(1..6);
                    (0..len).map(|_| (rng.gen_below(4)) as u8).collect()
                })
                .collect();
            let prefix: Vec<u8> = {
                let len = rng.gen_range(0..3);
                (0..len).map(|_| (rng.gen_below(4)) as u8).collect()
            };
            let mut tree = db();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for k in &keys {
                tree.put(k, k);
                model.insert(k.clone(), k.clone());
            }
            let got = tree.extract_prefix(&prefix);
            let expect: Vec<(Vec<u8>, Vec<u8>)> = model
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            assert_eq!(&got, &expect);
            model.retain(|k, _| !k.starts_with(&prefix));
            assert_eq!(tree.len(), model.len());
            for (k, v) in &model {
                let got = tree.get(k);
                assert_eq!(got.as_deref(), Some(&v[..]));
            }
            for (k, _) in &got {
                assert_eq!(tree.get(k), None);
            }
        }
    }

    /// Ordered full scans stay sorted and complete under churn.
    #[test]
    fn scans_sorted_under_churn() {
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from_u64(0x5CA2 ^ seed.wrapping_mul(0x9E3779B9));
            let mut tree = db();
            let mut model = BTreeMap::new();
            for _ in 0..500 {
                let k = format!("{:06}", rng.gen_below(300)).into_bytes();
                if rng.gen_bool(0.7) {
                    tree.put(&k, b"x");
                    model.insert(k, b"x".to_vec());
                } else {
                    tree.delete(&k);
                    model.remove(&k);
                }
            }
            let scan = tree.scan_prefix(b"");
            assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
            assert_eq!(scan.len(), model.len());
        }
    }
}
