#![warn(missing_docs)]
//! # loco-kv — key-value store substrate
//!
//! LocoFS stores all metadata in key-value stores (the paper uses Kyoto
//! Cabinet for LocoFS itself and compares against LevelDB-backed
//! systems). This crate provides three from-scratch stores behind one
//! [`KvStore`] trait:
//!
//! * [`HashDb`] — a bucket-chained hash store (Kyoto Cabinet *hash DB*
//!   analog). Point operations are O(1); **prefix scans require a full
//!   table scan**, which is what makes directory rename expensive in
//!   hash mode (paper Fig 14).
//! * [`BTreeDb`] — a real B+ tree (Kyoto Cabinet *tree DB* analog) with
//!   ordered iteration, cheap prefix scans and range extraction; this is
//!   what the DMS uses to make directory rename a contiguous-range move
//!   (paper §3.4.3).
//! * [`LsmDb`] — a memtable-plus-sorted-runs store with compaction
//!   (LevelDB analog) used by the IndexFS baseline model.
//!
//! Every store performs the real data-structure work *and* charges
//! virtual time to an internal cost accumulator according to the
//! calibrated [`CostModel`] plus a [`Device`] model; the RPC layer
//! drains the accumulator to obtain handler service times.
//!
//! Stores are also configured with a [`CodecKind`]: `Varlen` stores pay
//! per-byte (de)serialization on whole-value accesses (the overhead the
//! paper identifies in §2.2.2), `Fixed` stores support cheap partial
//! reads/writes via [`KvStore::read_at`]/[`KvStore::write_at`] (the
//! "(de)serialization removal" of §3.3.3).

pub mod bloom;
pub mod btree;
pub mod durable;
pub mod hashdb;
pub mod lsm;
pub mod snapshot;
pub mod watermark;

pub use bloom::BloomFilter;
pub use btree::BTreeDb;
pub use durable::{CommitTap, DurableStore, PersistenceStats, SyncPolicy};
pub use hashdb::HashDb;
pub use lsm::LsmDb;

pub use loco_sim::cost::{CodecKind, CostModel};
pub use loco_sim::device::{Device, DeviceKind};
use loco_sim::time::{CostAcc, Nanos};

/// Operation counters, used by tests that assert *which* metadata records
/// an FS operation touches (Table 1 conformance) and by benchmark
/// reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Whole-value reads.
    pub gets: u64,
    /// Whole-value writes (including appends).
    pub puts: u64,
    /// Record removals.
    pub deletes: u64,
    /// Prefix/range scans.
    pub scans: u64,
    /// Fixed-layout partial reads (`read_at`).
    pub partial_reads: u64,
    /// In-place partial writes (`write_at`).
    pub partial_writes: u64,
    /// Value bytes returned by reads (gets, partial reads, scans).
    pub bytes_read: u64,
    /// Key+value bytes ingested by writes (puts, appends, partial
    /// writes).
    pub bytes_written: u64,
}

impl AccessStats {
    /// Total number of operations of any kind (byte volumes are not
    /// operations and do not contribute).
    pub fn total(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.scans + self.partial_reads + self.partial_writes
    }
}

/// Per-request cost attribution for span tracing: the software-vs-KV
/// split of a server's `take_cost` plus the KV traffic delta since the
/// previous request. Servers update this on every `take_cost` (a few
/// subtractions — the cumulative [`AccessStats`] are maintained anyway)
/// so attribution is correct even when traced and untraced requests
/// interleave.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanSplit {
    /// Handler software cost of the last request (everything that is
    /// not KV work).
    pub sw_ns: u64,
    /// KV store cost of the last request.
    pub kv_ns: u64,
    /// Value bytes read from the KV store by the last request.
    pub kv_bytes_read: u64,
    /// Key+value bytes written to the KV store by the last request.
    pub kv_bytes_written: u64,
    /// KV operations issued by the last request.
    pub kv_ops: u64,
    prev_read: u64,
    prev_written: u64,
    prev_ops: u64,
}

impl SpanSplit {
    /// Record one request's split: its software and KV cost plus the
    /// store's *cumulative* stats, from which the per-request traffic
    /// delta is derived.
    pub fn update(&mut self, sw_ns: u64, kv_ns: u64, stats: &AccessStats) {
        self.sw_ns = sw_ns;
        self.kv_ns = kv_ns;
        let (read, written, ops) = (stats.bytes_read, stats.bytes_written, stats.total());
        self.kv_bytes_read = read.saturating_sub(self.prev_read);
        self.kv_bytes_written = written.saturating_sub(self.prev_written);
        self.kv_ops = ops.saturating_sub(self.prev_ops);
        self.prev_read = read;
        self.prev_written = written;
        self.prev_ops = ops;
    }

    /// Forget the cumulative baseline (call when the store's stats are
    /// reset).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The last request's split as span attributes.
    pub fn attrs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sw_ns", self.sw_ns),
            ("kv_ns", self.kv_ns),
            ("kv_bytes_read", self.kv_bytes_read),
            ("kv_bytes_written", self.kv_bytes_written),
            ("kv_ops", self.kv_ops),
        ]
    }
}

/// Common interface over the three stores.
///
/// Keys and values are raw byte strings; the metadata layer (loco-types)
/// defines their layout. All methods take `&mut self`: stores are owned
/// by a single server and external synchronization (the server lock) is
/// the concurrency boundary, mirroring how Kyoto Cabinet is used by the
/// original system.
pub trait KvStore: Send {
    /// Read a whole value.
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>>;

    /// Insert or overwrite a whole value.
    fn put(&mut self, key: &[u8], value: &[u8]);

    /// Remove a record. Returns whether it existed.
    fn delete(&mut self, key: &[u8]) -> bool;

    /// Whether a record exists (charged like a point lookup).
    fn contains(&mut self, key: &[u8]) -> bool;

    /// Read `len` bytes at byte offset `off` of the value. On a
    /// fixed-layout store this is a cheap field access; on a varlen
    /// store it costs a full deserialization. Returns `None` if the key
    /// is missing or the range is out of bounds.
    fn read_at(&mut self, key: &[u8], off: usize, len: usize) -> Option<Vec<u8>>;

    /// Overwrite `data.len()` bytes at byte offset `off` of the value
    /// in place. Fails (returns false) if the key is missing or the
    /// range exceeds the current value length — fixed-layout values
    /// never grow.
    fn write_at(&mut self, key: &[u8], off: usize, data: &[u8]) -> bool;

    /// Append `data` to the value of `key`, creating the record if
    /// missing. Charged proportionally to `data.len()` on stores that
    /// support in-place extension (HashDb, BTreeDb — like Kyoto
    /// Cabinet's `append`); LSM stores pay a full read-modify-write.
    /// This is how per-directory dirent lists absorb O(1)-cost inserts.
    fn append(&mut self, key: &[u8], data: &[u8]);

    /// Return all records whose key starts with `prefix`, in key order.
    fn scan_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Remove and return all records whose key starts with `prefix`, in
    /// key order. This is the directory-rename primitive: the B+ tree
    /// extracts a contiguous range; the hash store must scan everything.
    fn extract_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Number of live records.
    fn len(&self) -> usize;

    /// Whether there are no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether prefix scans are supported natively by ordered traversal
    /// (`true` for [`BTreeDb`] and [`LsmDb`], `false` for [`HashDb`]).
    fn ordered(&self) -> bool;

    /// Drain the virtual cost accumulated since the last call.
    fn take_cost(&mut self) -> Nanos;

    /// Access-pattern counters since creation.
    fn stats(&self) -> AccessStats;

    /// Reset access counters (between benchmark phases).
    fn reset_stats(&mut self);

    // ----- durability hooks (no-ops for the volatile stores) -----------

    /// Begin a commit group: mutations issued until the matching
    /// [`KvStore::txn_commit`] become durable *atomically* — a crash
    /// mid-group recovers to the state before the group. Servers
    /// bracket every request handler with begin/commit so multi-record
    /// operations (rename's extract + reinserts, create's inode +
    /// dirent append) never survive half-applied. Groups nest; only the
    /// outermost commit writes. Volatile stores ignore both calls.
    fn txn_begin(&mut self) {}

    /// End a commit group, making its mutations durable before any ack
    /// is sent. A WAL failure here is fatal by design (see
    /// `DurableStore`): the process dies rather than acknowledge an
    /// operation it cannot recover.
    fn txn_commit(&mut self) {}

    /// Write a durable checkpoint (snapshot + WAL truncation), if this
    /// store persists at all. Returns `Ok(true)` when a checkpoint was
    /// written, `Ok(false)` for volatile stores.
    fn persist_checkpoint(&mut self) -> std::io::Result<bool> {
        Ok(false)
    }

    /// Push buffered WAL bytes to stable storage (fsync), if this store
    /// persists at all. Volatile stores return `Ok(())`.
    fn persist_sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Switch deferred group fsync (cross-request WAL group commit) on
    /// or off; returns whether deferral is active afterwards. While
    /// active, commit groups are appended + flushed but *not* fsync'd
    /// inline — the caller must invoke [`KvStore::persist_commit_flush`]
    /// before acknowledging any group that took a ticket. Volatile
    /// stores (and stores whose sync policy never fsyncs per group)
    /// return `false`.
    fn persist_defer_sync(&mut self, _on: bool) -> bool {
        false
    }

    /// Take the pending commit ticket: `Some(seq)` when the current
    /// request appended a deferred (not yet fsync'd) commit group,
    /// `None` otherwise. Read-only requests and volatile stores never
    /// ticket.
    fn persist_take_ticket(&mut self) -> Option<u64> {
        None
    }

    /// Fsync every deferred commit group in one batch; returns how many
    /// WAL records the fsync covered (0 when nothing was pending).
    fn persist_commit_flush(&mut self) -> u64 {
        0
    }

    /// Stage the deferred batch fsync: flush buffered WAL bytes to the
    /// OS now and return `(records covered, fsync closure)`. The
    /// closure performs the actual fsync and may run *without* the
    /// store lock — but must run before any covered group is
    /// acknowledged. `None` when nothing was pending (or the store
    /// cannot stage; callers fall back to
    /// [`KvStore::persist_commit_flush`]).
    fn persist_commit_flush_begin(&mut self) -> Option<(u64, Box<dyn FnOnce() + Send>)> {
        None
    }

    /// Recovery/durability counters, or `None` for volatile stores.
    /// Servers use `Some` here to detect that they are running durably
    /// (e.g. to persist the uuid-allocation watermark).
    fn persistence(&self) -> Option<PersistenceStats> {
        None
    }

    // ----- replication hooks (DurableStore only) ------------------------

    /// Install a commit tap: invoked as `(first_seq, last_seq, bytes)`
    /// with the sealed, crc-complete bytes of every WAL commit group
    /// right after it is written — the feed a replication shipper
    /// forwards to warm standbys. Returns whether the store supports
    /// tapping (`false` for volatile stores, which have no WAL).
    fn repl_set_tap(&mut self, _tap: durable::CommitTap) -> bool {
        false
    }

    /// The next WAL sequence number this store would assign (equals
    /// `last applied seq + 1`). `0` for volatile stores.
    fn repl_next_seq(&self) -> u64 {
        0
    }

    /// Apply a replicated commit group (the exact bytes a tap
    /// produced) on a standby: validate, append verbatim to the local
    /// WAL, and apply to the wrapped store. Idempotent — a group whose
    /// records are already covered returns `Ok(0)`. A sequence gap
    /// (group starts past our next seq) is an error; the primary must
    /// back-fill from its ring or send a snapshot.
    fn repl_apply_group(&mut self, _group: &[u8]) -> Result<u64, String> {
        Err("store does not support replication".into())
    }

    /// Build a crc-sealed snapshot envelope of the current state (the
    /// same format `checkpoint` writes) without touching disk; returns
    /// `(last_covered_seq, envelope_bytes)`. `None` for volatile
    /// stores.
    fn repl_snapshot_image(&mut self) -> Option<(u64, Vec<u8>)> {
        None
    }

    /// Install a snapshot envelope produced by
    /// [`KvStore::repl_snapshot_image`] on a standby: validate, persist
    /// atomically, replace the in-memory state, and rotate the WAL.
    /// Returns the number of records loaded.
    fn repl_install_snapshot(&mut self, _env: &[u8]) -> Result<usize, String> {
        Err("store does not support replication".into())
    }
}

/// A boxed store is itself a store, so layers that are generic over
/// `S: KvStore` (notably [`DurableStore`]) can wrap a backend chosen
/// at runtime.
impl KvStore for Box<dyn KvStore> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        (**self).get(key)
    }
    fn put(&mut self, key: &[u8], value: &[u8]) {
        (**self).put(key, value)
    }
    fn delete(&mut self, key: &[u8]) -> bool {
        (**self).delete(key)
    }
    fn contains(&mut self, key: &[u8]) -> bool {
        (**self).contains(key)
    }
    fn read_at(&mut self, key: &[u8], off: usize, len: usize) -> Option<Vec<u8>> {
        (**self).read_at(key, off, len)
    }
    fn write_at(&mut self, key: &[u8], off: usize, data: &[u8]) -> bool {
        (**self).write_at(key, off, data)
    }
    fn append(&mut self, key: &[u8], data: &[u8]) {
        (**self).append(key, data)
    }
    fn scan_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        (**self).scan_prefix(prefix)
    }
    fn extract_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        (**self).extract_prefix(prefix)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn ordered(&self) -> bool {
        (**self).ordered()
    }
    fn take_cost(&mut self) -> Nanos {
        (**self).take_cost()
    }
    fn stats(&self) -> AccessStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn txn_begin(&mut self) {
        (**self).txn_begin()
    }
    fn txn_commit(&mut self) {
        (**self).txn_commit()
    }
    fn persist_checkpoint(&mut self) -> std::io::Result<bool> {
        (**self).persist_checkpoint()
    }
    fn persist_sync(&mut self) -> std::io::Result<()> {
        (**self).persist_sync()
    }
    fn persist_defer_sync(&mut self, on: bool) -> bool {
        (**self).persist_defer_sync(on)
    }
    fn persist_take_ticket(&mut self) -> Option<u64> {
        (**self).persist_take_ticket()
    }
    fn persist_commit_flush(&mut self) -> u64 {
        (**self).persist_commit_flush()
    }
    fn persist_commit_flush_begin(&mut self) -> Option<(u64, Box<dyn FnOnce() + Send>)> {
        (**self).persist_commit_flush_begin()
    }
    fn persistence(&self) -> Option<PersistenceStats> {
        (**self).persistence()
    }
    fn repl_set_tap(&mut self, tap: durable::CommitTap) -> bool {
        (**self).repl_set_tap(tap)
    }
    fn repl_next_seq(&self) -> u64 {
        (**self).repl_next_seq()
    }
    fn repl_apply_group(&mut self, group: &[u8]) -> Result<u64, String> {
        (**self).repl_apply_group(group)
    }
    fn repl_snapshot_image(&mut self) -> Option<(u64, Vec<u8>)> {
        (**self).repl_snapshot_image()
    }
    fn repl_install_snapshot(&mut self, env: &[u8]) -> Result<usize, String> {
        (**self).repl_install_snapshot(env)
    }
}

/// Shared configuration for constructing any of the stores.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Virtual-cost model.
    pub model: CostModel,
    /// Storage-device model.
    pub device: Device,
    /// Value encoding (fixed layout vs varlen).
    pub codec: CodecKind,
}

impl Default for KvConfig {
    fn default() -> Self {
        Self {
            model: CostModel::default(),
            device: Device::ram(),
            codec: CodecKind::Fixed,
        }
    }
}

impl KvConfig {
    /// Configuration with the fixed-layout codec (default).
    pub fn fixed() -> Self {
        Self::default()
    }

    /// Configuration with the varlen codec.
    pub fn varlen() -> Self {
        Self {
            codec: CodecKind::Varlen,
            ..Self::default()
        }
    }

    /// Override the device model.
    pub fn with_device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Override the value codec.
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }
}

/// Bookkeeping shared by the store implementations: cost accumulator and
/// access counters.
#[derive(Debug, Default)]
pub(crate) struct Meter {
    pub cost: CostAcc,
    pub stats: AccessStats,
}

impl Meter {
    pub fn charge(&self, ns: Nanos) {
        self.cost.charge(ns);
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// All three stores must agree on basic semantics.
    fn stores() -> Vec<Box<dyn KvStore>> {
        vec![
            Box::new(HashDb::new(KvConfig::default())),
            Box::new(BTreeDb::new(KvConfig::default())),
            Box::new(LsmDb::new(KvConfig::default())),
        ]
    }

    #[test]
    fn put_get_roundtrip_all_stores() {
        for mut s in stores() {
            s.put(b"alpha", b"1");
            s.put(b"beta", b"2");
            assert_eq!(s.get(b"alpha").as_deref(), Some(&b"1"[..]));
            assert_eq!(s.get(b"beta").as_deref(), Some(&b"2"[..]));
            assert_eq!(s.get(b"gamma"), None);
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn overwrite_replaces_value() {
        for mut s in stores() {
            s.put(b"k", b"old");
            s.put(b"k", b"new-longer-value");
            assert_eq!(s.get(b"k").as_deref(), Some(&b"new-longer-value"[..]));
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn byte_volume_counters_track_reads_and_writes() {
        for mut s in stores() {
            s.put(b"key", &[7u8; 100]);
            let st = s.stats();
            assert_eq!(st.bytes_written, 103, "put writes key+value");
            assert_eq!(st.bytes_read, 0);
            s.get(b"key");
            assert_eq!(s.stats().bytes_read, 100, "get reads the value");
            s.get(b"missing");
            assert_eq!(s.stats().bytes_read, 100, "a miss moves no bytes");
            assert_eq!(s.read_at(b"key", 10, 20).unwrap().len(), 20);
            assert_eq!(s.stats().bytes_read, 120);
            assert!(s.write_at(b"key", 0, &[1u8; 8]));
            assert!(
                s.stats().bytes_written >= 111,
                "write_at adds at least its span: {:?}",
                s.stats()
            );
            assert_eq!(s.scan_prefix(b"key").len(), 1);
            assert!(
                s.stats().bytes_read >= 223,
                "scan reads key+value: {:?}",
                s.stats()
            );
            s.reset_stats();
            assert_eq!(s.stats().bytes_read, 0);
            assert_eq!(s.stats().bytes_written, 0);
        }
    }

    #[test]
    fn delete_semantics() {
        for mut s in stores() {
            s.put(b"k", b"v");
            assert!(s.delete(b"k"));
            assert!(!s.delete(b"k"));
            assert_eq!(s.get(b"k"), None);
            assert_eq!(s.len(), 0);
        }
    }

    #[test]
    fn contains_and_empty() {
        for mut s in stores() {
            assert!(s.is_empty());
            assert!(!s.contains(b"x"));
            s.put(b"x", b"");
            assert!(s.contains(b"x"));
            assert_eq!(s.get(b"x").as_deref(), Some(&b""[..]));
        }
    }

    #[test]
    fn scan_prefix_ordering_all_stores() {
        for mut s in stores() {
            for k in ["/a/b", "/a/c", "/a", "/b", "/a/b/c"] {
                s.put(k.as_bytes(), k.as_bytes());
            }
            let got: Vec<String> = s
                .scan_prefix(b"/a")
                .into_iter()
                .map(|(k, _)| String::from_utf8(k).unwrap())
                .collect();
            assert_eq!(got, vec!["/a", "/a/b", "/a/b/c", "/a/c"]);
        }
    }

    #[test]
    fn extract_prefix_removes_records() {
        for mut s in stores() {
            for k in ["p/1", "p/2", "q/1"] {
                s.put(k.as_bytes(), b"v");
            }
            let got = s.extract_prefix(b"p/");
            assert_eq!(got.len(), 2);
            assert_eq!(s.len(), 1);
            assert!(s.contains(b"q/1"));
            assert!(!s.contains(b"p/1"));
        }
    }

    #[test]
    fn read_at_and_write_at() {
        for mut s in stores() {
            s.put(b"k", b"0123456789");
            assert_eq!(s.read_at(b"k", 2, 3).as_deref(), Some(&b"234"[..]));
            assert!(s.write_at(b"k", 4, b"XY"));
            assert_eq!(s.get(b"k").as_deref(), Some(&b"0123XY6789"[..]));
            // Out of bounds and missing keys fail cleanly.
            assert_eq!(s.read_at(b"k", 8, 4), None);
            assert!(!s.write_at(b"k", 9, b"ZZ"));
            assert_eq!(s.read_at(b"missing", 0, 1), None);
            assert!(!s.write_at(b"missing", 0, b"a"));
        }
    }

    #[test]
    fn costs_accumulate_and_drain() {
        for mut s in stores() {
            s.put(b"k", b"value");
            let c = s.take_cost();
            assert!(c > 0, "put must charge");
            assert_eq!(s.take_cost(), 0);
            s.get(b"k");
            assert!(s.take_cost() > 0, "get must charge");
        }
    }

    #[test]
    fn stats_counters() {
        for mut s in stores() {
            s.put(b"a", b"1");
            s.get(b"a");
            s.get(b"b");
            s.delete(b"a");
            s.scan_prefix(b"");
            let st = s.stats();
            assert_eq!(st.puts, 1);
            assert_eq!(st.gets, 2);
            assert_eq!(st.deletes, 1);
            assert_eq!(st.scans, 1);
            s.reset_stats();
            assert_eq!(s.stats().total(), 0);
        }
    }

    #[test]
    fn append_semantics_all_stores() {
        for mut s in stores() {
            s.append(b"log", b"aa");
            s.append(b"log", b"bb");
            assert_eq!(s.get(b"log").as_deref(), Some(&b"aabb"[..]));
            assert_eq!(s.len(), 1);
            // Append after put extends the existing value.
            s.put(b"log", b"x");
            s.append(b"log", b"y");
            assert_eq!(s.get(b"log").as_deref(), Some(&b"xy"[..]));
        }
    }

    #[test]
    fn append_cost_is_entry_sized_on_mutable_stores() {
        // In-place stores charge O(entry); this keeps dirent-list
        // maintenance O(1) per create no matter how big the directory.
        let mut db = BTreeDb::new(KvConfig::default());
        db.append(b"d", &[0u8; 16]);
        db.take_cost();
        // Grow the value to ~16 KB.
        for _ in 0..1000 {
            db.append(b"d", &[0u8; 16]);
        }
        db.take_cost();
        db.append(b"d", &[0u8; 16]);
        let late = db.take_cost();
        let mut fresh = BTreeDb::new(KvConfig::default());
        fresh.append(b"d", &[0u8; 16]);
        let early = fresh.take_cost();
        assert!(
            late <= early * 2,
            "append must not scale: {late} vs {early}"
        );
    }

    #[test]
    fn varlen_charges_more_than_fixed() {
        let value = vec![7u8; 256];
        let mut f = BTreeDb::new(KvConfig::fixed());
        let mut v = BTreeDb::new(KvConfig::varlen());
        f.put(b"k", &value);
        v.put(b"k", &value);
        let (cf, cv) = (f.take_cost(), v.take_cost());
        assert!(cv > cf, "varlen put {cv} must exceed fixed put {cf}");
    }

    #[test]
    fn ordered_flags() {
        assert!(!HashDb::new(KvConfig::default()).ordered());
        assert!(BTreeDb::new(KvConfig::default()).ordered());
        assert!(LsmDb::new(KvConfig::default()).ordered());
    }
}

#[cfg(test)]
mod span_split_tests {
    use super::*;

    #[test]
    fn span_split_tracks_per_request_deltas() {
        let mut db = HashDb::new(KvConfig::default());
        let mut split = SpanSplit::default();

        db.put(b"a", &[1u8; 64]);
        let kv = db.take_cost();
        split.update(500, kv, &db.stats());
        assert_eq!((split.sw_ns, split.kv_ns), (500, kv));
        assert_eq!(split.kv_ops, 1);
        assert!(split.kv_bytes_written >= 64);
        assert_eq!(split.kv_bytes_read, 0);

        // Next request sees only its own delta, not the cumulative sum.
        db.get(b"a");
        let kv2 = db.take_cost();
        split.update(200, kv2, &db.stats());
        assert_eq!(split.kv_ops, 1);
        assert_eq!(split.kv_bytes_written, 0);
        assert!(split.kv_bytes_read >= 64);
        assert_eq!(split.attrs().len(), 5);

        db.reset_stats();
        split.reset();
        db.put(b"b", &[0u8; 8]);
        let kv3 = db.take_cost();
        split.update(0, kv3, &db.stats());
        assert_eq!(split.kv_ops, 1, "reset rebases the cumulative baseline");
    }
}
