//! Durable uuid-allocation watermark.
//!
//! WAL replay recovers *records*, not the server's in-memory uuid
//! allocator — so a recovered server that re-seeded its allocator from
//! zero would hand out uuids that already name live files (and their
//! object-store blocks). The fix is the classic chunked watermark: the
//! server persists, through the normal KV write path (and therefore
//! through the WAL), a fid bound `W` meaning "every fid below `W` may
//! have been handed out". Allocation never crosses the durable bound:
//! before handing out fid `f >= W`, the server first persists
//! `W' = f + CHUNK`. Recovery resumes allocation at the stored bound,
//! wasting at most `CHUNK` fids per crash and never reusing one.
//!
//! The key lives in its own `\x00` namespace byte so it can never
//! collide with path keys (`/`), dirent lists (`E`) or file records
//! (`A`/`C`/`F`), and stays invisible to every prefix scan the servers
//! do.

use crate::KvStore;

/// Store key of the watermark record (the `\x00` meta namespace).
pub const KEY: &[u8] = b"\x00uuid_watermark";

/// Fids reserved per watermark bump. One durable write per `CHUNK`
/// allocations; at most `CHUNK` fids wasted per crash.
pub const CHUNK: u64 = 1024;

/// Read the persisted watermark, if any.
pub fn load(db: &mut dyn KvStore) -> Option<u64> {
    let v = db.get(KEY)?;
    Some(u64::from_le_bytes(v.try_into().ok()?))
}

/// Persist a new watermark covering at least `next_fid`; returns the
/// stored bound (`next_fid + CHUNK`).
pub fn reserve(db: &mut dyn KvStore, next_fid: u64) -> u64 {
    let bound = next_fid.saturating_add(CHUNK);
    db.put(KEY, &bound.to_le_bytes());
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BTreeDb, KvConfig};

    #[test]
    fn roundtrip_and_namespace_isolation() {
        let mut db = BTreeDb::new(KvConfig::default());
        assert_eq!(load(&mut db), None);
        let bound = reserve(&mut db, 41);
        assert_eq!(bound, 41 + CHUNK);
        assert_eq!(load(&mut db), Some(bound));
        // Invisible to the namespaces servers actually scan.
        db.put(b"/a", b"dir");
        assert_eq!(db.scan_prefix(b"/").len(), 1);
        assert_eq!(db.scan_prefix(b"E").len(), 0);
    }
}
