//! Store snapshots: serialize every record of a store to a flat binary
//! image and load it back into any (possibly different-flavoured)
//! store. This is the persistence/restart substrate the servers build
//! on — the moral equivalent of copying a Kyoto Cabinet database file.
//!
//! Current format (v2): `b"LKV2"` magic ‖ u64 record count ‖ per record
//! (u32 key-len ‖ key ‖ u32 value-len ‖ value) ‖ trailing IEEE CRC32
//! (LE) over everything before it. The crc turns any bit flip anywhere
//! in the image into a clean load error instead of silently corrupted
//! metadata. v1 images (`b"LKV1"`, no crc) still load — durable stores
//! written before the WAL v2 upgrade recover transparently.

use crate::KvStore;
use loco_types::checksum::crc32;

const MAGIC_V1: &[u8; 4] = b"LKV1";
const MAGIC_V2: &[u8; 4] = b"LKV2";

/// Serialize all records (full scan, key order for ordered stores)
/// into a crc-sealed v2 image.
pub fn dump(store: &mut dyn KvStore) -> Vec<u8> {
    let records = store.scan_prefix(b"");
    let mut out = Vec::with_capacity(
        16 + 12 * records.len()
            + records
                .iter()
                .map(|(k, v)| k.len() + v.len())
                .sum::<usize>(),
    );
    out.extend_from_slice(MAGIC_V2);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for (k, v) in records {
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(&k);
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(&v);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Load an image produced by [`dump`] (v2, crc-checked) or by its v1
/// predecessor (no crc) into `store` (which should be empty). Returns
/// the number of records loaded. Corruption — truncation, bit flips,
/// oversized lengths, trailing bytes — is an error, never a panic and
/// never a partial load the caller can't detect.
pub fn load(store: &mut dyn KvStore, bytes: &[u8]) -> Result<usize, String> {
    walk(bytes, |k, v| store.put(k, v))
}

/// Fully parse and checksum-verify an image without applying it
/// anywhere. Callers that must not disturb live state on a bad image
/// (a standby installing a replicated snapshot) validate first, then
/// [`load`] — which cannot fail on the same bytes.
pub fn validate(bytes: &[u8]) -> Result<usize, String> {
    walk(bytes, |_, _| {})
}

fn walk(mut bytes: &[u8], mut sink: impl FnMut(&[u8], &[u8])) -> Result<usize, String> {
    if bytes.len() < 4 {
        return Err("truncated snapshot".into());
    }
    let v2 = match &bytes[..4] {
        m if m == MAGIC_V2 => true,
        m if m == MAGIC_V1 => false,
        _ => return Err("bad snapshot magic".into()),
    };
    if v2 {
        // Peel and verify the trailing crc before trusting any length
        // field inside.
        if bytes.len() < 16 {
            return Err("truncated snapshot".into());
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(body) != stored {
            return Err("snapshot checksum mismatch".into());
        }
        bytes = body;
    }
    fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
        if bytes.len() < n {
            return Err("truncated snapshot".into());
        }
        let (head, rest) = bytes.split_at(n);
        *bytes = rest;
        Ok(head)
    }
    take(&mut bytes, 4)?; // magic, already validated
    let count = u64::from_le_bytes(take(&mut bytes, 8)?.try_into().unwrap()) as usize;
    for _ in 0..count {
        let klen = u32::from_le_bytes(take(&mut bytes, 4)?.try_into().unwrap()) as usize;
        let key = take(&mut bytes, klen)?;
        let vlen = u32::from_le_bytes(take(&mut bytes, 4)?.try_into().unwrap()) as usize;
        let value = take(&mut bytes, vlen)?;
        sink(key, value);
    }
    if !bytes.is_empty() {
        return Err("trailing bytes after snapshot".into());
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BTreeDb, HashDb, KvConfig, LsmDb};

    fn all_stores() -> Vec<Box<dyn KvStore>> {
        vec![
            Box::new(HashDb::new(KvConfig::default())),
            Box::new(BTreeDb::new(KvConfig::default())),
            Box::new(LsmDb::new(KvConfig::default())),
        ]
    }

    #[test]
    fn roundtrip_within_and_across_store_kinds() {
        for mut src in all_stores() {
            for i in 0..500u32 {
                src.put(format!("key/{i:05}").as_bytes(), &i.to_le_bytes());
            }
            src.delete(b"key/00042");
            let image = dump(&mut *src);
            for mut dst in all_stores() {
                let n = load(&mut *dst, &image).unwrap();
                assert_eq!(n, 499);
                assert_eq!(dst.len(), 499);
                assert_eq!(
                    dst.get(b"key/00007").as_deref(),
                    Some(&7u32.to_le_bytes()[..])
                );
                assert_eq!(dst.get(b"key/00042"), None);
            }
        }
    }

    #[test]
    fn empty_store_roundtrip() {
        let mut src = HashDb::new(KvConfig::default());
        let image = dump(&mut src);
        let mut dst = BTreeDb::new(KvConfig::default());
        assert_eq!(load(&mut dst, &image).unwrap(), 0);
        assert!(dst.is_empty());
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let mut dst = HashDb::new(KvConfig::default());
        assert!(load(&mut dst, b"").is_err());
        assert!(load(&mut dst, b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00").is_err());
        let mut src = HashDb::new(KvConfig::default());
        src.put(b"k", b"v");
        let mut image = dump(&mut src);
        image.truncate(image.len() - 1); // cut the last value byte
        assert!(load(&mut dst, &image).is_err());
        image.extend_from_slice(b"vXX"); // trailing garbage
        assert!(load(&mut dst, &image).is_err());
    }

    /// Randomized model test (seeded, deterministic): arbitrary byte
    /// records survive a dump from one store kind and a load into
    /// another.
    #[test]
    fn dump_load_preserves_any_contents() {
        let mut rng = loco_sim::rng::Rng::seed_from_u64(0x5A4B);
        for _case in 0..32 {
            let n = rng.gen_range(0..100);
            let records: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = (0..n)
                .map(|_| {
                    let klen = rng.gen_range(1..24);
                    let vlen = rng.gen_range(0..64);
                    let k: Vec<u8> = (0..klen).map(|_| rng.gen_u64() as u8).collect();
                    let v: Vec<u8> = (0..vlen).map(|_| rng.gen_u64() as u8).collect();
                    (k, v)
                })
                .collect();
            let mut src = BTreeDb::new(KvConfig::default());
            for (k, v) in &records {
                src.put(k, v);
            }
            let image = dump(&mut src);
            let mut dst = LsmDb::new(KvConfig::default());
            load(&mut dst, &image).unwrap();
            assert_eq!(dst.len(), records.len());
            for (k, v) in &records {
                assert_eq!(dst.get(k).as_deref(), Some(&v[..]));
            }
        }
    }
}
