//! A log-structured merge store — the LevelDB analog, with **leveled
//! compaction**.
//!
//! Writes land in a sorted in-memory memtable; flushes produce
//! immutable sorted runs (SSTable analogs, each with a Bloom filter) in
//! level 0, where runs may overlap. When L0 holds too many runs they
//! are merged — together with the overlapping part of L1 — into L1,
//! whose runs are non-overlapping and bounded in size; each level holds
//! ~`level_fanout`× the bytes of the one above, and overflowing levels
//! spill downward the same way. Compaction work (read + merge + write)
//! is charged to the operation that triggered it, reproducing the
//! write-amplification tax LevelDB pays and the paper's observation
//! that IndexFS needs an extra cache layer to hide it (§2.2.2).
//!
//! Deletions write tombstones; tombstones are dropped only when a
//! compaction reaches the bottommost populated level.

use crate::bloom::BloomFilter;
use crate::{AccessStats, KvConfig, KvStore, Meter};
use loco_sim::time::Nanos;
use std::cell::Cell;
use std::collections::BTreeMap;

/// One record of a run: key plus value, where `None` is a tombstone.
type RunEntry = (Box<[u8]>, Option<Vec<u8>>);

/// One immutable sorted run with its Bloom filter, the analog of a
/// LevelDB SSTable.
struct Run {
    entries: Vec<RunEntry>,
    bloom: BloomFilter,
}

impl Run {
    fn build(entries: Vec<RunEntry>) -> Self {
        let mut bloom = BloomFilter::with_capacity(entries.len(), 10);
        for (k, _) in &entries {
            bloom.insert(k);
        }
        Self { entries, bloom }
    }

    fn min_key(&self) -> &[u8] {
        &self.entries.first().expect("runs are never empty").0
    }

    fn max_key(&self) -> &[u8] {
        &self.entries.last().expect("runs are never empty").0
    }

    fn bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
            .sum()
    }

    /// Key ranges `[min, max]` intersect?
    fn overlaps(&self, min: &[u8], max: &[u8]) -> bool {
        self.min_key() <= max && min <= self.max_key()
    }
}

/// Log-structured merge key-value store.
pub struct LsmDb {
    memtable: BTreeMap<Box<[u8]>, Option<Vec<u8>>>,
    memtable_bytes: usize,
    /// `levels[0]` holds possibly-overlapping runs newest-first; deeper
    /// levels hold non-overlapping runs in key order.
    levels: Vec<Vec<Run>>,
    live: usize,
    cfg: KvConfig,
    meter: Meter,
    /// Flush the memtable once it holds this many value bytes.
    pub memtable_budget: usize,
    /// Compact L0 into L1 once this many L0 runs exist.
    pub max_runs: usize,
    /// Size ratio between consecutive levels (LevelDB: 10).
    pub level_fanout: usize,
    /// Split compaction output into runs of roughly this many bytes.
    pub run_target_bytes: usize,
    /// Runs skipped by Bloom filters since creation (observability).
    bloom_skips: Cell<u64>,
    /// Runs actually probed (binary-searched) since creation.
    run_probes: Cell<u64>,
}

impl LsmDb {
    /// Create a new instance with default settings.
    pub fn new(cfg: KvConfig) -> Self {
        Self {
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            levels: vec![Vec::new()],
            live: 0,
            cfg,
            meter: Meter::default(),
            memtable_budget: 4 << 20,
            max_runs: 4,
            level_fanout: 10,
            run_target_bytes: 8 << 20,
            bloom_skips: Cell::new(0),
            run_probes: Cell::new(0),
        }
    }

    fn all_runs(&self) -> impl Iterator<Item = &Run> {
        self.levels.iter().flatten()
    }

    /// `(runs skipped by Bloom filters, runs binary-searched)` since
    /// creation.
    pub fn bloom_stats(&self) -> (u64, u64) {
        (self.bloom_skips.get(), self.run_probes.get())
    }

    /// Point lookup across memtable and runs, newest first. Returns the
    /// logical state (`Some(None)` = tombstoned, `None` = never seen).
    fn probe_run<'a>(&self, run: &'a Run, key: &[u8]) -> Option<Option<&'a Vec<u8>>> {
        if !run.bloom.may_contain(key) {
            self.bloom_skips.set(self.bloom_skips.get() + 1);
            return None;
        }
        self.run_probes.set(self.run_probes.get() + 1);
        run.entries
            .binary_search_by(|(k, _)| (**k).cmp(key))
            .ok()
            .map(|pos| run.entries[pos].1.as_ref())
    }

    fn lookup(&self, key: &[u8]) -> Option<Option<&Vec<u8>>> {
        if let Some(v) = self.memtable.get(key) {
            return Some(v.as_ref());
        }
        // L0: runs may overlap — probe newest first.
        for run in &self.levels[0] {
            if let Some(v) = self.probe_run(run, key) {
                return Some(v);
            }
        }
        // L1+: at most one run per level can hold the key.
        for level in &self.levels[1..] {
            let idx = level.partition_point(|r| r.max_key() < key);
            if let Some(run) = level.get(idx) {
                if run.min_key() <= key {
                    if let Some(v) = self.probe_run(run, key) {
                        return Some(v);
                    }
                }
            }
        }
        None
    }

    fn flush_memtable(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<_> = std::mem::take(&mut self.memtable).into_iter().collect();
        let bytes = self.memtable_bytes;
        self.memtable_bytes = 0;
        self.meter.charge(
            entries.len() as Nanos * self.cfg.model.lsm_merge_record
                + self.cfg.device.write_sync(bytes),
        );
        self.levels[0].insert(0, Run::build(entries));
        if self.levels[0].len() > self.max_runs {
            self.compact_level(0);
        }
    }

    /// Byte budget of level `n` (L1 = fanout × memtable, L2 = fanout²…).
    fn level_budget(&self, n: usize) -> usize {
        self.memtable_budget * self.level_fanout.pow(n as u32)
    }

    /// Merge all of level `n` plus the overlapping runs of level `n+1`
    /// into level `n+1`, splitting the output into target-sized runs.
    /// Tombstones are dropped only if `n+1` is the bottommost populated
    /// level (nothing older could resurrect a deleted key).
    fn compact_level(&mut self, n: usize) {
        if self.levels.len() <= n + 1 {
            self.levels.push(Vec::new());
        }
        let upper: Vec<Run> = std::mem::take(&mut self.levels[n]);
        if upper.is_empty() {
            return;
        }
        let min = upper.iter().map(|r| r.min_key().to_vec()).min().unwrap();
        let max = upper.iter().map(|r| r.max_key().to_vec()).max().unwrap();
        // Pull the overlapping slice of the next level.
        let lower = &mut self.levels[n + 1];
        let mut overlapping = Vec::new();
        let mut i = 0;
        while i < lower.len() {
            if lower[i].overlaps(&min, &max) {
                overlapping.push(lower.remove(i));
            } else {
                i += 1;
            }
        }
        let bottommost = self.levels.iter().skip(n + 2).all(|l| l.is_empty());

        let total_records: usize = upper
            .iter()
            .chain(overlapping.iter())
            .map(|r| r.entries.len())
            .sum();
        let mut merged: BTreeMap<Box<[u8]>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest first so newer versions overwrite: lower level, then
        // upper level oldest→newest (L0 is stored newest-first).
        for run in overlapping {
            for (k, v) in run.entries {
                merged.insert(k, v);
            }
        }
        for run in upper.into_iter().rev() {
            for (k, v) in run.entries {
                merged.insert(k, v);
            }
        }
        let bytes: usize = merged
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
            .sum();
        self.meter.charge(
            total_records as Nanos * self.cfg.model.lsm_merge_record
                + self.cfg.device.stream_read(bytes)
                + self.cfg.device.write_sync(bytes),
        );

        // Split into target-sized output runs and insert in key order.
        let mut out_runs: Vec<Run> = Vec::new();
        let mut cur: Vec<RunEntry> = Vec::new();
        let mut cur_bytes = 0usize;
        for (k, v) in merged {
            if bottommost && v.is_none() {
                continue; // drop tombstones at the bottom
            }
            cur_bytes += k.len() + v.as_ref().map_or(0, |v| v.len());
            cur.push((k, v));
            if cur_bytes >= self.run_target_bytes {
                out_runs.push(Run::build(std::mem::take(&mut cur)));
                cur_bytes = 0;
            }
        }
        if !cur.is_empty() {
            out_runs.push(Run::build(cur));
        }
        let lower = &mut self.levels[n + 1];
        for run in out_runs {
            let pos = lower.partition_point(|r| r.max_key() < run.min_key());
            lower.insert(pos, run);
        }
        // Cascade if the level is now over budget.
        let budget = self.level_budget(n + 1);
        let lower_bytes: usize = self.levels[n + 1].iter().map(|r| r.bytes()).sum();
        if lower_bytes > budget {
            self.compact_level(n + 1);
        }
    }

    /// Number of immutable runs currently on disk (all levels).
    pub fn run_count(&self) -> usize {
        self.all_runs().count()
    }

    /// Number of levels currently populated.
    pub fn depth(&self) -> usize {
        self.levels
            .iter()
            .rposition(|l| !l.is_empty())
            .map_or(0, |i| i + 1)
    }

    fn upsert(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        let existed = matches!(self.lookup(key), Some(Some(_)));
        let exists_after = value.is_some();
        match (existed, exists_after) {
            (false, true) => self.live += 1,
            (true, false) => self.live -= 1,
            _ => {}
        }
        let add = key.len() + value.as_ref().map_or(0, |v| v.len());
        self.memtable_bytes += add;
        self.memtable.insert(key.to_vec().into_boxed_slice(), value);
        if self.memtable_bytes > self.memtable_budget {
            self.flush_memtable();
        }
    }

    /// Merge-scan across memtable and all runs for `[prefix, hi)`.
    fn merged_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut acc: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Deepest (oldest) levels first so newer versions overwrite;
        // within L0, oldest run first.
        for level in self.levels.iter().skip(1).rev() {
            for run in level {
                for (k, v) in &run.entries {
                    if k.starts_with(prefix) {
                        acc.insert(k.to_vec(), v.clone());
                    }
                }
            }
        }
        for run in self.levels[0].iter().rev() {
            for (k, v) in &run.entries {
                if k.starts_with(prefix) {
                    acc.insert(k.to_vec(), v.clone());
                }
            }
        }
        for (k, v) in &self.memtable {
            if k.starts_with(prefix) {
                acc.insert(k.to_vec(), v.clone());
            }
        }
        acc.into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }
}

impl KvStore for LsmDb {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.meter.stats.gets += 1;
        // Each run probed is an extra index lookup: LSM reads get more
        // expensive as L0 runs and levels pile up, one of the reasons
        // LevelDB's read IOPS (190 K) trail its index-hit path.
        let probes = 1 + self.levels[0].len() + self.levels.len().saturating_sub(1);
        let found = self.lookup(key).flatten().cloned();
        let len = found.as_ref().map_or(0, |v| v.len());
        self.meter.stats.bytes_read += len as u64;
        self.meter.charge(
            self.cfg.model.get(len, self.cfg.codec)
                + (probes.saturating_sub(1)) as Nanos * (self.cfg.model.kv_get_base / 4),
        );
        found
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.meter.stats.puts += 1;
        self.meter.stats.bytes_written += (key.len() + value.len()) as u64;
        self.meter.charge(
            self.cfg.model.put(value.len(), self.cfg.codec)
                + self.cfg.device.write_amortized(key.len() + value.len()),
        );
        self.upsert(key, Some(value.to_vec()));
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        self.meter.stats.deletes += 1;
        self.meter
            .charge(self.cfg.model.delete() + self.cfg.device.write_amortized(key.len()));
        let existed = matches!(self.lookup(key), Some(Some(_)));
        if existed {
            self.upsert(key, None);
        }
        existed
    }

    fn contains(&mut self, key: &[u8]) -> bool {
        self.meter.stats.gets += 1;
        self.meter.charge(self.cfg.model.get(0, self.cfg.codec));
        matches!(self.lookup(key), Some(Some(_)))
    }

    fn read_at(&mut self, key: &[u8], off: usize, len: usize) -> Option<Vec<u8>> {
        self.meter.stats.partial_reads += 1;
        let found = self.lookup(key).flatten();
        let total = found.map_or(0, |v| v.len());
        self.meter
            .charge(self.cfg.model.get_partial(len, total, self.cfg.codec));
        let v = found?;
        if off + len > v.len() {
            return None;
        }
        let out = v[off..off + len].to_vec();
        self.meter.stats.bytes_read += len as u64;
        Some(out)
    }

    fn write_at(&mut self, key: &[u8], off: usize, data: &[u8]) -> bool {
        self.meter.stats.partial_writes += 1;
        // LSM stores are append-only: a partial update is always a
        // read-modify-write of the full value, whatever the codec — the
        // design LocoFS's fixed-layout in-place stores avoid.
        let Some(Some(v)) = self.lookup(key) else {
            self.meter.charge(self.cfg.model.get(0, self.cfg.codec));
            return false;
        };
        if off + data.len() > v.len() {
            self.meter.charge(self.cfg.model.get(0, self.cfg.codec));
            return false;
        }
        let mut new = v.clone();
        new[off..off + data.len()].copy_from_slice(data);
        let total = new.len();
        self.meter.stats.bytes_read += total as u64;
        self.meter.stats.bytes_written += data.len() as u64;
        self.meter.charge(
            self.cfg.model.get(total, self.cfg.codec)
                + self.cfg.model.put(total, self.cfg.codec)
                + self.cfg.device.write_amortized(key.len() + total),
        );
        self.upsert(key, Some(new));
        true
    }

    fn append(&mut self, key: &[u8], data: &[u8]) {
        // LSM files are immutable: append = read-modify-write, paying
        // full (de)serialization like any whole-value update.
        self.meter.stats.puts += 1;
        let old = self.lookup(key).flatten().cloned().unwrap_or_default();
        let mut new = old;
        let read_len = new.len();
        new.extend_from_slice(data);
        self.meter.stats.bytes_read += read_len as u64;
        self.meter.stats.bytes_written += data.len() as u64;
        self.meter.charge(
            self.cfg.model.get(read_len, self.cfg.codec)
                + self.cfg.model.put(new.len(), self.cfg.codec)
                + self.cfg.device.write_amortized(key.len() + new.len()),
        );
        self.upsert(key, Some(new));
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.meter.stats.scans += 1;
        let out = self.merged_prefix(prefix);
        let bytes: usize = out.iter().map(|(k, v)| k.len() + v.len()).sum();
        self.meter.stats.bytes_read += bytes as u64;
        // Merging iterators across runs costs per run per record.
        let merge_factor = 1 + self.run_count();
        self.meter.charge(
            self.cfg.model.scan(out.len() * merge_factor, bytes)
                + self.cfg.device.stream_read(bytes),
        );
        out
    }

    fn extract_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let out = self.scan_prefix(prefix);
        for (k, _) in &out {
            self.meter
                .charge(self.cfg.model.delete() + self.cfg.device.write_amortized(k.len()));
            self.upsert(k, None);
            self.meter.stats.deletes += 1;
        }
        out
    }

    fn len(&self) -> usize {
        self.live
    }

    fn ordered(&self) -> bool {
        true
    }

    fn take_cost(&mut self) -> Nanos {
        self.meter.cost.take()
    }

    fn stats(&self) -> AccessStats {
        self.meter.stats
    }

    fn reset_stats(&mut self) {
        self.meter.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn small_lsm() -> LsmDb {
        let mut db = LsmDb::new(KvConfig::default());
        db.memtable_budget = 256; // force frequent flushes in tests
        db.max_runs = 3;
        db
    }

    #[test]
    fn reads_span_memtable_and_runs() {
        let mut db = small_lsm();
        for i in 0..200u32 {
            db.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes());
        }
        assert!(db.run_count() >= 1, "flushes must have happened");
        for i in (0..200u32).step_by(17) {
            assert_eq!(
                db.get(format!("k{i:04}").as_bytes()).unwrap(),
                format!("v{i}").into_bytes()
            );
        }
    }

    #[test]
    fn newest_version_wins_across_runs() {
        let mut db = small_lsm();
        for round in 0..5u8 {
            for i in 0..40u32 {
                db.put(format!("k{i:04}").as_bytes(), &[round]);
            }
        }
        for i in 0..40u32 {
            assert_eq!(db.get(format!("k{i:04}").as_bytes()).unwrap(), vec![4u8]);
        }
        assert_eq!(db.len(), 40);
    }

    #[test]
    fn tombstones_shadow_older_runs() {
        let mut db = small_lsm();
        for i in 0..100u32 {
            db.put(&i.to_be_bytes(), b"value");
        }
        // Ensure data is in runs, then delete half.
        assert!(db.run_count() >= 1);
        for i in 0..50u32 {
            assert!(db.delete(&i.to_be_bytes()));
        }
        assert_eq!(db.len(), 50);
        assert_eq!(db.get(&10u32.to_be_bytes()), None);
        assert!(db.get(&60u32.to_be_bytes()).is_some());
        assert_eq!(db.scan_prefix(b"").len(), 50);
    }

    #[test]
    fn leveled_compaction_maintains_invariants() {
        let mut db = small_lsm();
        db.run_target_bytes = 512;
        for i in 0..2_000u32 {
            db.put(&i.to_be_bytes(), &[0u8; 32]);
        }
        // L0 stays bounded; deeper levels exist and never overlap.
        assert!(db.levels[0].len() <= db.max_runs + 1);
        assert!(db.depth() >= 2, "data must have spilled past L0");
        for level in &db.levels[1..] {
            for pair in level.windows(2) {
                assert!(
                    pair[0].max_key() < pair[1].min_key(),
                    "L1+ runs must be disjoint and ordered"
                );
            }
        }
        for i in 0..2_000u32 {
            db.delete(&i.to_be_bytes());
        }
        // Churn enough fresh keys to cascade compactions through the
        // tombstones.
        for i in 0..2_000u32 {
            db.put(&(1_000_000 + i).to_be_bytes(), &[0u8; 32]);
        }
        assert_eq!(db.len(), 2_000);
        assert_eq!(db.scan_prefix(b"").len(), 2_000);
    }

    #[test]
    fn bottommost_compaction_drops_tombstones() {
        let mut db = small_lsm();
        db.run_target_bytes = 256;
        for i in 0..400u32 {
            db.put(&i.to_be_bytes(), &[0u8; 16]);
        }
        for i in 0..400u32 {
            db.delete(&i.to_be_bytes());
        }
        // Push everything to the bottom by repeated flush pressure.
        for i in 0..2_000u32 {
            db.put(&(500_000 + i).to_be_bytes(), &[0u8; 16]);
        }
        assert_eq!(db.len(), 2_000);
        // Count physical records: tombstones for the first 400 keys
        // must eventually disappear (bottommost drop). Some may linger
        // in upper levels, but far fewer than 400.
        let physical: usize = db.all_runs().map(|r| r.entries.len()).sum();
        let tombs: usize = db
            .all_runs()
            .flat_map(|r| r.entries.iter())
            .filter(|(_, v)| v.is_none())
            .count();
        assert!(
            tombs < 400,
            "tombstones must be reclaimed: {tombs} of {physical} records"
        );
    }

    #[test]
    fn compaction_charges_merge_work() {
        let mut db = small_lsm();
        let mut max_single_op = 0;
        for i in 0..1_000u32 {
            db.put(&i.to_be_bytes(), &[0u8; 64]);
            max_single_op = max_single_op.max(db.take_cost());
        }
        // Some op must have absorbed a compaction spike well above the
        // base put cost.
        let base = {
            let mut fresh = LsmDb::new(KvConfig::default());
            fresh.put(b"k", &[0u8; 64]);
            fresh.take_cost()
        };
        assert!(
            max_single_op > 10 * base,
            "expected a compaction spike: max={max_single_op} base={base}"
        );
    }

    #[test]
    fn write_at_is_read_modify_write() {
        let mut db = small_lsm();
        db.put(b"k", &[0u8; 128]);
        db.take_cost();
        db.write_at(b"k", 0, &[1u8; 8]);
        let partial = db.take_cost();
        db.put(b"k2", &[0u8; 128]);
        let full = db.take_cost();
        assert!(
            partial >= full,
            "LSM partial update ({partial}) must cost at least a full put ({full})"
        );
    }

    #[test]
    fn bloom_filters_skip_irrelevant_runs() {
        let mut db = small_lsm();
        // Build several runs from disjoint key ranges.
        for batch in 0..4u32 {
            for i in 0..50u32 {
                db.put(format!("b{batch}/k{i:04}").as_bytes(), &[0u8; 16]);
            }
        }
        assert!(db.run_count() >= 2);
        // Lookups of keys in the newest data skip older runs.
        for i in 0..50u32 {
            db.get(format!("b3/k{i:04}").as_bytes());
        }
        let (skips, probes) = db.bloom_stats();
        assert!(
            skips > 0,
            "blooms must skip runs: skips={skips} probes={probes}"
        );
        // Misses skip (almost) everything.
        let before = db.bloom_stats();
        for i in 0..100u32 {
            assert!(db.get(format!("absent/{i}").as_bytes()).is_none());
        }
        let after = db.bloom_stats();
        let new_probes = after.1 - before.1;
        let new_skips = after.0 - before.0;
        assert!(
            new_skips > 10 * new_probes.max(1),
            "misses should rarely probe: skips={new_skips} probes={new_probes}"
        );
    }

    /// Randomized model test (seeded, deterministic), 48 cases: mixed
    /// workloads — with the tiny memtable forcing frequent flushes and
    /// compactions — must agree with std BTreeMap.
    #[test]
    fn model_equivalence_with_flushes() {
        let mut rng = loco_sim::rng::Rng::seed_from_u64(0x15A1);
        for _case in 0..48 {
            let n_ops = rng.gen_range(1..300);
            let mut db = small_lsm();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for _ in 0..n_ops {
                let op = rng.gen_below(3) as u8;
                let klen = rng.gen_range(0..5);
                let key: Vec<u8> = (0..klen).map(|_| rng.gen_u64() as u8).collect();
                let vlen = rng.gen_range(0..24);
                let value: Vec<u8> = (0..vlen).map(|_| rng.gen_u64() as u8).collect();
                match op {
                    0 => {
                        db.put(&key, &value);
                        model.insert(key, value);
                    }
                    1 => {
                        let a = db.delete(&key);
                        let b = model.remove(&key).is_some();
                        assert_eq!(a, b);
                    }
                    _ => {
                        let a = db.get(&key);
                        let b = model.get(&key).cloned();
                        assert_eq!(a, b);
                    }
                }
                assert_eq!(db.len(), model.len());
            }
            let scan = db.scan_prefix(b"");
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(scan, expect);
        }
    }
}
