//! Bucket-chained hash store — the Kyoto Cabinet *hash DB* analog.
//!
//! Point operations hash the key to a bucket and walk a short chain.
//! There is no key order, so prefix scans degrade to a full table scan
//! plus a sort — exactly the behaviour that makes directory rename
//! expensive on the hash DB in the paper's Fig 14.

use crate::{AccessStats, KvConfig, KvStore, Meter};
use loco_sim::time::Nanos;

/// FNV-1a 64-bit hash; deterministic across runs and platforms so that
/// consistent-hash placement and benchmark results are reproducible.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

type Entry = (Box<[u8]>, Vec<u8>);

/// A bucket-chained hash key-value store.
pub struct HashDb {
    buckets: Vec<Vec<Entry>>,
    len: usize,
    cfg: KvConfig,
    meter: Meter,
    /// Total key+value bytes currently stored (used to charge device
    /// streaming cost for full scans).
    bytes: usize,
}

impl HashDb {
    /// Create a new instance with default settings.
    pub fn new(cfg: KvConfig) -> Self {
        Self {
            buckets: vec![Vec::new(); 64],
            len: 0,
            cfg,
            meter: Meter::default(),
            bytes: 0,
        }
    }

    fn bucket_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) as usize) & (self.buckets.len() - 1)
    }

    fn maybe_grow(&mut self) {
        if self.len <= self.buckets.len() * 3 / 4 {
            return;
        }
        let new_size = self.buckets.len() * 2;
        let mut new_buckets: Vec<Vec<Entry>> = vec![Vec::new(); new_size];
        for bucket in self.buckets.drain(..) {
            for (k, v) in bucket {
                let idx = (fnv1a(&k) as usize) & (new_size - 1);
                new_buckets[idx].push((k, v));
            }
        }
        self.buckets = new_buckets;
    }

    /// Immutable lookup without charging (internal).
    fn find(&self, key: &[u8]) -> Option<&Entry> {
        self.buckets[self.bucket_of(key)]
            .iter()
            .find(|(k, _)| &**k == key)
    }

    fn find_mut(&mut self, key: &[u8]) -> Option<&mut Entry> {
        let b = self.bucket_of(key);
        self.buckets[b].iter_mut().find(|(k, _)| &**k == key)
    }

    /// Charge a full-table scan: per-record CPU plus a streaming device
    /// read of the whole table (hash tables have no locality for range
    /// queries, so the scan reads everything back).
    fn charge_full_scan(&self) {
        let cpu = self.cfg.model.full_scan(self.len);
        let io = self.cfg.device.stream_read(self.bytes);
        self.meter.charge(cpu + io);
    }
}

impl KvStore for HashDb {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.meter.stats.gets += 1;
        let found = self.find(key).map(|(_, v)| v.clone());
        let len = found.as_ref().map_or(0, |v| v.len());
        self.meter.stats.bytes_read += len as u64;
        self.meter.charge(self.cfg.model.get(len, self.cfg.codec));
        found
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.meter.stats.puts += 1;
        self.meter.stats.bytes_written += (key.len() + value.len()) as u64;
        self.meter.charge(
            self.cfg.model.put(value.len(), self.cfg.codec)
                + self.cfg.device.write_amortized(key.len() + value.len()),
        );
        if let Some(entry) = self.find_mut(key) {
            let old_len = entry.1.len();
            entry.1 = value.to_vec();
            self.bytes -= old_len;
            self.bytes += value.len();
            return;
        }
        let b = self.bucket_of(key);
        self.buckets[b].push((key.to_vec().into_boxed_slice(), value.to_vec()));
        self.bytes += key.len() + value.len();
        self.len += 1;
        self.maybe_grow();
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        self.meter.stats.deletes += 1;
        self.meter
            .charge(self.cfg.model.delete() + self.cfg.device.write_amortized(key.len()));
        let b = self.bucket_of(key);
        if let Some(pos) = self.buckets[b].iter().position(|(k, _)| &**k == key) {
            let (k, v) = self.buckets[b].swap_remove(pos);
            self.bytes -= k.len() + v.len();
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn contains(&mut self, key: &[u8]) -> bool {
        self.meter.stats.gets += 1;
        self.meter.charge(self.cfg.model.get(0, self.cfg.codec));
        self.find(key).is_some()
    }

    fn read_at(&mut self, key: &[u8], off: usize, len: usize) -> Option<Vec<u8>> {
        self.meter.stats.partial_reads += 1;
        let entry = self.find(key);
        let total = entry.map_or(0, |(_, v)| v.len());
        self.meter
            .charge(self.cfg.model.get_partial(len, total, self.cfg.codec));
        let (_, v) = entry?;
        if off + len > v.len() {
            return None;
        }
        let out = v[off..off + len].to_vec();
        self.meter.stats.bytes_read += len as u64;
        Some(out)
    }

    fn write_at(&mut self, key: &[u8], off: usize, data: &[u8]) -> bool {
        self.meter.stats.partial_writes += 1;
        let codec = self.cfg.codec;
        let model = self.cfg.model.clone();
        let device = self.cfg.device.clone();
        let Some((_, v)) = self.find_mut(key) else {
            self.meter.charge(model.get(0, codec));
            return false;
        };
        if off + data.len() > v.len() {
            self.meter.charge(model.get(0, codec));
            return false;
        }
        let total = v.len();
        v[off..off + data.len()].copy_from_slice(data);
        self.meter.stats.bytes_written += data.len() as u64;
        self.meter.charge(
            model.put_partial(data.len(), total, codec) + device.write_amortized(data.len()),
        );
        true
    }

    fn append(&mut self, key: &[u8], data: &[u8]) {
        self.meter.stats.puts += 1;
        self.meter.stats.bytes_written += data.len() as u64;
        self.meter.charge(
            self.cfg.model.put(data.len(), self.cfg.codec)
                + self.cfg.device.write_amortized(data.len()),
        );
        if let Some((_, v)) = self.find_mut(key) {
            v.extend_from_slice(data);
            self.bytes += data.len();
        } else {
            let b = self.bucket_of(key);
            self.buckets[b].push((key.to_vec().into_boxed_slice(), data.to_vec()));
            self.bytes += key.len() + data.len();
            self.len += 1;
            self.maybe_grow();
        }
    }

    fn scan_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.meter.stats.scans += 1;
        self.charge_full_scan();
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = self
            .buckets
            .iter()
            .flatten()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect();
        self.meter.stats.bytes_read += out
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum::<u64>();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn extract_prefix(&mut self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.meter.stats.scans += 1;
        self.charge_full_scan();
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for bucket in &mut self.buckets {
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0.starts_with(prefix) {
                    let (k, v) = bucket.swap_remove(i);
                    self.bytes -= k.len() + v.len();
                    self.len -= 1;
                    out.push((k.to_vec(), v));
                } else {
                    i += 1;
                }
            }
        }
        // Each removal is a record-level delete on the device.
        let del_cost: Nanos = out
            .iter()
            .map(|(k, _)| self.cfg.model.delete() + self.cfg.device.write_amortized(k.len()))
            .sum();
        self.meter.stats.bytes_read += out
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum::<u64>();
        self.meter.charge(del_cost);
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn len(&self) -> usize {
        self.len
    }

    fn ordered(&self) -> bool {
        false
    }

    fn take_cost(&mut self) -> Nanos {
        self.meter.cost.take()
    }

    fn stats(&self) -> AccessStats {
        self.meter.stats
    }

    fn reset_stats(&mut self) {
        self.meter.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_sim::device::Device;

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut db = HashDb::new(KvConfig::default());
        for i in 0..10_000u32 {
            db.put(&i.to_be_bytes(), &i.to_le_bytes());
        }
        assert_eq!(db.len(), 10_000);
        for i in (0..10_000u32).step_by(97) {
            assert_eq!(db.get(&i.to_be_bytes()).unwrap(), i.to_le_bytes());
        }
        assert!(db.buckets.len() >= 10_000);
    }

    #[test]
    fn full_scan_cost_scales_with_table_size() {
        let mut db = HashDb::new(KvConfig::default());
        for i in 0..100u32 {
            db.put(&i.to_be_bytes(), b"v");
        }
        db.take_cost();
        db.scan_prefix(b"zzz-no-match");
        let small = db.take_cost();
        for i in 100..10_000u32 {
            db.put(&i.to_be_bytes(), b"v");
        }
        db.take_cost();
        db.scan_prefix(b"zzz-no-match");
        let large = db.take_cost();
        assert!(
            large > 50 * small,
            "scan must be O(table): small={small} large={large}"
        );
    }

    #[test]
    fn scan_cost_independent_of_match_count() {
        // A hash DB pays for the whole table whether 1 or 1000 records
        // match — that is the Fig 14 point.
        let mut db = HashDb::new(KvConfig::default());
        for i in 0..5_000u32 {
            db.put(format!("a/{i:05}").as_bytes(), b"v");
        }
        db.take_cost();
        db.scan_prefix(b"a/00001");
        let narrow = db.take_cost();
        db.scan_prefix(b"a/");
        let wide = db.take_cost();
        let ratio = wide as f64 / narrow as f64;
        assert!(ratio < 1.5, "costs should be comparable, ratio={ratio}");
    }

    #[test]
    fn hdd_scan_costs_more_than_ram() {
        let mut ram = HashDb::new(KvConfig::default());
        let mut hdd = HashDb::new(KvConfig::default().with_device(Device::hdd()));
        for i in 0..1_000u32 {
            ram.put(&i.to_be_bytes(), &[0u8; 200]);
            hdd.put(&i.to_be_bytes(), &[0u8; 200]);
        }
        ram.take_cost();
        hdd.take_cost();
        ram.scan_prefix(b"");
        hdd.scan_prefix(b"");
        assert!(hdd.take_cost() > ram.take_cost());
    }

    #[test]
    fn bytes_accounting_under_overwrite_and_delete() {
        let mut db = HashDb::new(KvConfig::default());
        db.put(b"k", &[0u8; 100]);
        let after_first = db.bytes;
        db.put(b"k", &[0u8; 10]);
        assert_eq!(db.bytes, after_first - 90);
        db.delete(b"k");
        assert_eq!(db.bytes, 0);
    }

    #[test]
    fn extract_prefix_empty_prefix_drains_everything() {
        let mut db = HashDb::new(KvConfig::default());
        for i in 0..50u32 {
            db.put(&i.to_be_bytes(), b"v");
        }
        let all = db.extract_prefix(b"");
        assert_eq!(all.len(), 50);
        assert!(db.is_empty());
    }
}
