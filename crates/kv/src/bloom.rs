//! Bloom filters for LSM runs.
//!
//! LevelDB attaches a Bloom filter to each SSTable so point lookups can
//! skip tables that cannot contain the key; our [`crate::LsmDb`] does
//! the same per run. Standard double-hashing construction (Kirsch &
//! Mitzenmacher): k probe positions derived from two 32-bit halves of
//! one 64-bit hash.

/// A fixed-size Bloom filter sized at build time for a target
/// bits-per-key budget.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    k: u32,
}

fn hash64(key: &[u8]) -> u64 {
    // FNV-1a + splitmix finalizer (deterministic, well mixed).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl BloomFilter {
    /// Build for `n` expected keys at `bits_per_key` (LevelDB default: 10,
    /// ≈1 % false-positive rate with k = 7).
    pub fn with_capacity(n: usize, bits_per_key: usize) -> Self {
        let num_bits = (n.max(1) * bits_per_key).max(64);
        // Optimal k ≈ bits_per_key · ln 2.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        Self {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            k,
        }
    }

    /// Number of hash probes per key.
    pub fn probes(&self) -> u32 {
        self.k
    }

    /// Size of the filter in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// Add a key to the filter.
    pub fn insert(&mut self, key: &[u8]) {
        let h = hash64(key);
        let (h1, h2) = ((h >> 32) as u32, h as u32);
        for i in 0..self.k {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) as usize) % self.num_bits;
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// May return true for absent keys (false positive); never returns
    /// false for present keys.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h = hash64(key);
        let (h1, h2) = ((h >> 32) as u32, h as u32);
        for i in 0..self.k {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) as usize) % self.num_bits;
            if self.bits[bit / 64] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_basic() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_be_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(&i.to_be_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::with_capacity(10_000, 10);
        for i in 0..10_000u32 {
            f.insert(&i.to_be_bytes());
        }
        let fps = (10_000..110_000u32)
            .filter(|i| f.may_contain(&i.to_be_bytes()))
            .count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.03, "false-positive rate = {rate}");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::with_capacity(100, 10);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn tiny_capacity_still_works() {
        let mut f = BloomFilter::with_capacity(0, 10);
        f.insert(b"x");
        assert!(f.may_contain(b"x"));
    }

    /// The structural invariant: inserted keys are always reported.
    /// Randomized model test (seeded, deterministic) over random byte
    /// keys of random lengths.
    #[test]
    fn never_false_negative() {
        let mut rng = loco_sim::rng::Rng::seed_from_u64(0xB100F);
        for _case in 0..64 {
            let n_keys = rng.gen_range(1..500);
            let keys: std::collections::HashSet<Vec<u8>> = (0..n_keys)
                .map(|_| {
                    let len = rng.gen_range(0..32);
                    (0..len).map(|_| rng.gen_u64() as u8).collect()
                })
                .collect();
            let mut f = BloomFilter::with_capacity(keys.len(), 10);
            for k in &keys {
                f.insert(k);
            }
            for k in &keys {
                assert!(f.may_contain(k));
            }
        }
    }
}
