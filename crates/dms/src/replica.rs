//! Hot-standby replication for the Directory Metadata Server.
//!
//! The paper's single-DMS design concentrates all directory metadata on
//! one machine; its introduction notes that supercomputer sites keep
//! metadata-server counts low partly to "guarantee reliability", but
//! the paper itself leaves DMS fault tolerance open. This module is
//! that extension: a primary/standby pair with **synchronous log
//! shipping** —
//!
//! * every *mutation* (mkdir, rmdir, attr changes, rename, dirent
//!   updates) is applied to the primary and, if it succeeded, forwarded
//!   to the standby before the reply returns; the extra work and one
//!   inter-server round trip are charged to the mutation's service
//!   time;
//! * *reads* are served by the primary alone at unchanged cost — the
//!   common path (lookups, stats, ACL walks) keeps the paper's numbers;
//! * on primary failure, [`ReplicatedDms::promote`] turns the standby
//!   into a complete, up-to-date DMS.

use crate::{DirServer, DmsBackend, DmsRequest, DmsResponse};
use loco_kv::KvConfig;
use loco_net::{Nanos, Service};
use loco_sim::time::CostAcc;

/// Is this request a namespace mutation that must be replicated?
fn is_mutation(req: &DmsRequest) -> bool {
    matches!(
        req,
        DmsRequest::Mkdir { .. }
            | DmsRequest::Rmdir { .. }
            | DmsRequest::SetDirAttr { .. }
            | DmsRequest::RenameDir { .. }
            | DmsRequest::MkdirLocal { .. }
            | DmsRequest::RmdirLocal { .. }
            | DmsRequest::AddDirent { .. }
            | DmsRequest::RemoveDirent { .. }
    )
}

fn succeeded(resp: &DmsResponse) -> bool {
    match resp {
        DmsResponse::Done(r) => r.is_ok(),
        DmsResponse::Dir(r) => r.is_ok(),
        DmsResponse::Dirents(r) => r.is_ok(),
        DmsResponse::Bool(b) => *b,
        DmsResponse::Repl(i) => i.ok,
    }
}

/// A DMS with a synchronously-replicated hot standby.
pub struct ReplicatedDms {
    primary: DirServer,
    standby: DirServer,
    /// Inter-server round trip charged per replicated mutation
    /// (primary → standby → ack). Defaults to the cluster RTT.
    pub replication_rtt: Nanos,
    extra: CostAcc,
    mutations_replicated: u64,
}

impl ReplicatedDms {
    /// Create a new instance with default settings.
    pub fn new(backend: DmsBackend, cfg: KvConfig, replication_rtt: Nanos) -> Self {
        Self {
            primary: DirServer::new(backend, cfg.clone()),
            standby: DirServer::new(backend, cfg),
            replication_rtt,
            extra: CostAcc::new(),
            mutations_replicated: 0,
        }
    }

    /// Number of mutations shipped to the standby so far.
    pub fn replicated(&self) -> u64 {
        self.mutations_replicated
    }

    /// Failover: consume the pair, returning the standby as the new
    /// primary (a complete replica of every acknowledged mutation).
    pub fn promote(self) -> DirServer {
        self.standby
    }

    /// Read access to the primary (tests).
    pub fn primary_mut(&mut self) -> &mut DirServer {
        &mut self.primary
    }
}

impl Service for ReplicatedDms {
    type Req = DmsRequest;
    type Resp = DmsResponse;

    fn handle(&mut self, req: DmsRequest) -> DmsResponse {
        let replicate = is_mutation(&req);
        let resp = if replicate {
            let resp = self.primary.handle(req.clone());
            if succeeded(&resp) {
                // Synchronous log shipping: apply on the standby and
                // charge its work plus the inter-server round trip.
                let standby_resp = self.standby.handle(req);
                debug_assert!(
                    succeeded(&standby_resp),
                    "standby diverged: {standby_resp:?}"
                );
                self.extra
                    .charge(self.standby.take_cost() + self.replication_rtt);
                self.mutations_replicated += 1;
            }
            resp
        } else {
            self.primary.handle(req)
        };
        resp
    }

    fn take_cost(&mut self) -> Nanos {
        self.extra.take() + self.primary.take_cost()
    }

    fn span_attrs(&self) -> Vec<(&'static str, u64)> {
        self.primary.span_attrs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_sim::time::MICROS;

    fn replicated() -> ReplicatedDms {
        ReplicatedDms::new(DmsBackend::BTree, KvConfig::default(), 174 * MICROS)
    }

    fn mkdir(r: &mut ReplicatedDms, path: &str) -> DmsResponse {
        r.handle(DmsRequest::Mkdir {
            path: path.into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 0,
        })
    }

    #[test]
    fn mutations_reach_the_standby() {
        let mut r = replicated();
        assert!(succeeded(&mkdir(&mut r, "/a")));
        assert!(succeeded(&mkdir(&mut r, "/a/b")));
        assert_eq!(r.replicated(), 2);
        let mut standby = r.promote();
        assert!(standby.lookup("/a/b").is_some());
    }

    #[test]
    fn failed_mutations_are_not_replicated() {
        let mut r = replicated();
        mkdir(&mut r, "/a");
        let resp = mkdir(&mut r, "/a"); // duplicate
        assert!(!succeeded(&resp));
        assert_eq!(r.replicated(), 1, "failed op must not ship");
    }

    #[test]
    fn reads_cost_the_same_as_unreplicated() {
        let mut r = replicated();
        let mut plain = DirServer::new(DmsBackend::BTree, KvConfig::default());
        mkdir(&mut r, "/a");
        plain.handle(DmsRequest::Mkdir {
            path: "/a".into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 0,
        });
        let _ = (r.take_cost(), plain.take_cost());
        r.handle(DmsRequest::GetDir { path: "/a".into() });
        plain.handle(DmsRequest::GetDir { path: "/a".into() });
        assert_eq!(r.take_cost(), plain.take_cost(), "read path unchanged");
    }

    #[test]
    fn mutations_pay_the_replication_rtt() {
        let mut r = replicated();
        let mut plain = DirServer::new(DmsBackend::BTree, KvConfig::default());
        mkdir(&mut r, "/a");
        plain.handle(DmsRequest::Mkdir {
            path: "/a".into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 0,
        });
        let (c_repl, c_plain) = (r.take_cost(), plain.take_cost());
        assert!(
            c_repl >= c_plain + 174 * MICROS,
            "replicated {c_repl} vs plain {c_plain}"
        );
    }

    #[test]
    fn promoted_standby_serves_renames_and_attrs() {
        let mut r = replicated();
        mkdir(&mut r, "/a");
        mkdir(&mut r, "/a/deep");
        r.handle(DmsRequest::SetDirAttr {
            path: "/a".into(),
            uid: 1,
            gid: 1,
            new_mode: Some(0o700),
            new_owner: None,
            ts: 5,
        });
        r.handle(DmsRequest::RenameDir {
            old_path: "/a".into(),
            new_path: "/z".into(),
            uid: 1,
            gid: 1,
            ts: 6,
        });
        let mut standby = r.promote();
        let z = standby.lookup("/z").unwrap();
        assert_eq!(z.mode, 0o700);
        assert!(standby.lookup("/z/deep").is_some());
        assert!(standby.lookup("/a").is_none());
    }

    #[test]
    fn standby_allocates_identical_uuids() {
        // Deterministic uuid allocation on both replicas means a
        // failover never changes any directory's uuid — file placement
        // (dir_uuid + name) survives.
        let mut r = replicated();
        mkdir(&mut r, "/a");
        mkdir(&mut r, "/b");
        let a_primary = r.primary_mut().lookup("/a").unwrap().uuid;
        let b_primary = r.primary_mut().lookup("/b").unwrap().uuid;
        let mut standby = r.promote();
        assert_eq!(standby.lookup("/a").unwrap().uuid, a_primary);
        assert_eq!(standby.lookup("/b").unwrap().uuid, b_primary);
    }
}
