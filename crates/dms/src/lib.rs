#![warn(missing_docs)]
//! # loco-dms — the Directory Metadata Server
//!
//! LocoFS keeps **all** directory inodes on one DMS (§3.1), keyed by
//! full path in an ordered key-value store. The design consequences this
//! crate implements:
//!
//! * **Single-get directory lookup** — locating any directory is one KV
//!   `get` on its full path; no per-component traversal across servers
//!   (the flattened directory tree of §3.2).
//! * **Local ancestor ACL walk** — permission checks over the whole
//!   ancestry happen inside one RPC, reading each ancestor's d-inode
//!   locally (cheap KV gets, no extra round trips). Deeper paths cost
//!   more *server* time but never more network time (Fig 13).
//! * **Backward subdirectory dirents** — per directory uuid, the DMS
//!   keeps one concatenated dirent list of its subdirectories (§3.2.1).
//! * **Range-move rename** — with the B+ tree backend, renaming a
//!   directory extracts the contiguous key range `old/…` and reinserts
//!   it under `new/…` (§3.4.3). With the hash backend the same
//!   operation degenerates to a full table scan — the Fig 14 ablation.
//!
//! The key space of the backing store uses the first byte as a
//! namespace: directory paths start with `/`, dirent lists with `E`.
//! Path keys therefore form one contiguous lexicographic region that
//! rename can extract without touching dirent records.

pub mod replica;

pub use replica::ReplicatedDms;

use loco_kv::{BTreeDb, HashDb, KvConfig, KvStore};
use loco_net::{Nanos, Service};
use loco_repl::{ReplCtl, ReplInfo, Role};
use loco_sim::time::CostAcc;
use loco_types::{
    acl, basename, parent, DirInode, DirentKind, DirentList, FsError, FsResult, Perm, Uuid, UuidGen,
};
use std::sync::Arc;

/// Which KV backend the DMS runs on (Fig 14 compares them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmsBackend {
    /// B+ tree (Kyoto Cabinet tree DB) — ordered, rename-friendly.
    BTree,
    /// Hash table (Kyoto Cabinet hash DB) — rename needs a full scan.
    Hash,
}

/// Requests handled by the DMS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmsRequest {
    /// Create a directory. ACL-checks the ancestry, inserts the
    /// d-inode, and appends to the parent's subdir dirent list.
    Mkdir {
        /// Absolute, normalized path of the target.
        path: String,
        /// POSIX permission bits.
        mode: u32,
        /// Caller user id (permission checks).
        uid: u32,
        /// Caller group id (permission checks).
        gid: u32,
        /// Logical timestamp recorded in ctime/mtime fields.
        ts: u64,
    },
    /// Remove an empty directory (no subdirs; the *client* first
    /// verifies no files remain on any FMS, per §4.2.1's rmdir note).
    /// Remove an empty directory.
    /// on any FMS first, per §4.2.1's rmdir note).
    Rmdir {
        /// Absolute, normalized path of the directory.
        path: String,
        /// Caller user id (permission checks).
        uid: u32,
        /// Caller group id (permission checks).
        gid: u32,
    },
    /// Fetch a d-inode by full path (no ACL walk — used by lookups that
    /// already hold cached ancestors).
    /// Fetch a d-inode by full path (no ACL walk).
    GetDir {
        /// Absolute, normalized path of the directory.
        path: String,
    },
    /// Fetch a d-inode with a full ancestor ACL walk (exec permission
    /// on every ancestor), as issued on client-cache misses.
    /// misses).
    StatDir {
        /// Absolute, normalized path of the directory.
        path: String,
        /// Caller user id (permission checks).
        uid: u32,
        /// Caller group id (permission checks).
        gid: u32,
    },
    /// Subdirectory dirents of the directory with this uuid.
    ReaddirSubdirs {
        /// Uuid of the directory to list.
        dir_uuid: Uuid,
    },
    /// chmod/chown on a directory: updates mode and/or owner + ctime.
    SetDirAttr {
        /// Absolute, normalized path of the target.
        path: String,
        /// Caller user id (permission checks).
        uid: u32,
        /// Caller group id (permission checks).
        gid: u32,
        /// Replacement permission bits, if changing.
        new_mode: Option<u32>,
        /// Replacement `(uid, gid)`, if changing ownership.
        new_owner: Option<(u32, u32)>,
        /// Logical timestamp recorded in ctime/mtime fields.
        ts: u64,
    },
    /// Rename/move a directory and (implicitly) its whole subtree of
    /// directory inodes.
    RenameDir {
        /// Current absolute path.
        old_path: String,
        /// Destination absolute path.
        new_path: String,
        /// Caller user id (permission checks).
        uid: u32,
        /// Caller group id (permission checks).
        gid: u32,
        /// Logical timestamp recorded in ctime/mtime fields.
        ts: u64,
    },
    /// Pure permission probe against the ancestry + target directory.
    CheckAccess {
        /// Absolute, normalized path of the target.
        path: String,
        /// Caller user id (permission checks).
        uid: u32,
        /// Caller group id (permission checks).
        gid: u32,
        /// Requested access kind.
        perm: Perm,
    },
    /// Sharded-DMS ablation: insert a d-inode without ancestor checks or
    /// parent-dirent maintenance (the client does both across shards).
    MkdirLocal {
        /// Absolute, normalized path of the target.
        path: String,
        /// POSIX permission bits.
        mode: u32,
        /// Caller user id (permission checks).
        uid: u32,
        /// Caller group id (permission checks).
        gid: u32,
        /// Logical timestamp recorded in ctime/mtime fields.
        ts: u64,
    },
    /// Sharded-DMS ablation: remove a d-inode (emptiness of the subdir
    /// dirent list is still enforced locally).
    /// Sharded ablation: remove a d-inode (local emptiness check only).
    RmdirLocal {
        /// Absolute, normalized path of the directory.
        path: String,
    },
    /// Sharded-DMS ablation: append a subdirectory dirent.
    AddDirent {
        /// Uuid of the parent directory (placement-key half).
        dir_uuid: Uuid,
        /// File name within the directory (placement-key half).
        name: String,
        /// Uuid of the child entry.
        child_uuid: Uuid,
    },
    /// Sharded-DMS ablation: tombstone a subdirectory dirent.
    /// Sharded ablation: tombstone a subdirectory dirent.
    RemoveDirent {
        /// Uuid of the parent directory.
        dir_uuid: Uuid,
        /// Child entry name to tombstone.
        name: String,
    },
    /// Replication: one sealed WAL commit group shipped primary →
    /// standby. An empty `group` is a heartbeat/probe (lease renewal +
    /// `next_seq` discovery). Answered with [`DmsResponse::Repl`].
    ReplAppend {
        /// The sender's fencing epoch.
        epoch: u64,
        /// Sequence number of the group's first record (0 for probes).
        first_seq: u64,
        /// Verbatim sealed commit-group bytes from the primary's WAL.
        group: Vec<u8>,
    },
    /// Replication: full-state catch-up when the standby is behind the
    /// primary's in-memory group ring. Installs the image, then the
    /// WAL tail streams via `ReplAppend`.
    ReplSnapshot {
        /// The sender's fencing epoch.
        epoch: u64,
        /// Last WAL sequence number the image covers.
        last_seq: u64,
        /// Snapshot envelope bytes (`loco-kv` snapshot format).
        image: Vec<u8>,
    },
    /// Replication: read-only role/epoch/seq probe, used by clients
    /// resolving the current primary and by `cluster.sh status`.
    ReplStatus {},
    /// Election: make this replica the primary at a fresh epoch. The
    /// epoch bump is written through the WAL, so it replicates to the
    /// surviving standbys like any mutation.
    Promote {},
}

/// Responses from the DMS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmsResponse {
    /// Directory.
    Dir(FsResult<DirInode>),
    /// Subdirectory entries as `(name, uuid)` pairs.
    Dirents(FsResult<Vec<(String, Uuid)>>),
    /// Unit result; `Ok(n)` carries the number of relocated directory
    /// records for rename (1 for mkdir/rmdir/attr ops).
    Done(FsResult<usize>),
    /// Boolean probe result.
    Bool(bool),
    /// Replication control reply (epoch / next expected seq / role).
    Repl(ReplInfo),
}

// Wire codec for the RPC transport. Tags are protocol: append-only.
loco_types::impl_wire_enum!(DmsRequest, "dms-request", {
    0 => Mkdir { path, mode, uid, gid, ts },
    1 => Rmdir { path, uid, gid },
    2 => GetDir { path },
    3 => StatDir { path, uid, gid },
    4 => ReaddirSubdirs { dir_uuid },
    5 => SetDirAttr { path, uid, gid, new_mode, new_owner, ts },
    6 => RenameDir { old_path, new_path, uid, gid, ts },
    7 => CheckAccess { path, uid, gid, perm },
    8 => MkdirLocal { path, mode, uid, gid, ts },
    9 => RmdirLocal { path },
    10 => AddDirent { dir_uuid, name, child_uuid },
    11 => RemoveDirent { dir_uuid, name },
    12 => ReplAppend { epoch, first_seq, group },
    13 => ReplSnapshot { epoch, last_seq, image },
    14 => ReplStatus {},
    15 => Promote {},
});

loco_types::impl_wire_enum!(DmsResponse, "dms-response", tuple {
    0 => Dir(r),
    1 => Dirents(r),
    2 => Done(r),
    3 => Bool(r),
    4 => Repl(r),
});

/// The Directory Metadata Server.
pub struct DirServer {
    db: Box<dyn KvStore>,
    uuids: UuidGen,
    extra: CostAcc,
    /// Fixed software overhead charged per handled request.
    rpc_overhead: Nanos,
    /// Software-vs-KV split of the last request (span attribution).
    split: loco_kv::SpanSplit,
    /// Store is durable: uuid allocation goes through the persisted
    /// watermark so recovery never re-issues a live uuid.
    durable: bool,
    /// Exclusive fid bound covered by the persisted watermark.
    wm_limit: u64,
    /// Warm-standby replication control plane, when enabled.
    repl: Option<Arc<ReplCtl>>,
    /// The request just handled was rejected for not being primary;
    /// drained into the reply's [`loco_net::ReplStamp`].
    fenced_reply: bool,
}

const DIRENT_NS: u8 = b'E';

/// Reserved KV key holding the replica set's fencing epoch. Writing it
/// through the store (rather than a side file) makes epoch bumps ride
/// the WAL — durable before the promote is acknowledged, replayed on
/// recovery, and replicated to standbys like any other mutation.
/// The leading NUL keeps it outside the `/` and `E` namespaces,
/// mirroring the uuid watermark key.
const EPOCH_KEY: &[u8] = b"\x00repl_epoch";

fn dirent_key(dir_uuid: Uuid) -> [u8; 9] {
    let mut k = [0u8; 9];
    k[0] = DIRENT_NS;
    k[1..].copy_from_slice(&dir_uuid.key_bytes());
    k
}

impl DirServer {
    /// Create a DMS over the given backend. The root directory (`/`,
    /// mode 0777, owned by root) exists from the start.
    pub fn new(backend: DmsBackend, cfg: KvConfig) -> Self {
        Self::with_sid(backend, cfg, 0)
    }

    /// Create a DMS shard with a distinct uuid-allocation space. Used by
    /// the sharded-DMS ablation (multiple directory servers, directories
    /// hash-placed by path); the paper's design uses a single DMS.
    pub fn with_sid(backend: DmsBackend, cfg: KvConfig, sid: u16) -> Self {
        let db: Box<dyn KvStore> = match backend {
            DmsBackend::BTree => Box::new(BTreeDb::new(cfg)),
            DmsBackend::Hash => Box::new(HashDb::new(cfg)),
        };
        Self::with_store(db, sid)
    }

    /// Create a DMS over a caller-supplied store — e.g. a
    /// `loco_kv::DurableStore` for on-disk persistence. If the store
    /// already holds a namespace (recovered from disk), it is used
    /// as-is; otherwise the root directory is initialized.
    pub fn with_store(mut db: Box<dyn KvStore>, sid: u16) -> Self {
        if !db.contains(b"/") {
            // World-writable root, like the fresh scratch namespace
            // mdtest assumes.
            let root = DirInode::new(Uuid::ROOT, 0o777, 0, 0, 0);
            db.put(b"/", &root.encode());
            db.put(&dirent_key(Uuid::ROOT), &DirentList::new().encode());
        }
        let durable = db.persistence().is_some();
        let (uuids, wm_limit) = match loco_kv::watermark::load(&mut *db) {
            // A recovered durable store resumes allocation at the
            // persisted bound: every fid below it may already name a
            // live file or directory.
            Some(bound) if durable => (UuidGen::from_state(sid, bound), bound),
            _ => (UuidGen::new(sid), 0),
        };
        db.take_cost(); // setup is free
        Self {
            db,
            uuids,
            extra: CostAcc::new(),
            rpc_overhead: loco_sim::CostModel::default().rpc_handler,
            split: loco_kv::SpanSplit::default(),
            durable,
            wm_limit,
            repl: None,
            fenced_reply: false,
        }
    }

    /// Wire up warm-standby replication: every sealed WAL commit group
    /// is pushed into the control plane's ring (for the shipper to
    /// replay), and the server starts stamping replies / gating client
    /// ops by role. Returns `false` when the backing store has no WAL
    /// (volatile stores cannot replicate).
    pub fn enable_repl(&mut self, ctl: Arc<ReplCtl>) -> bool {
        let sink = Arc::clone(&ctl);
        let ok = self.db.repl_set_tap(Box::new(move |first, last, group| {
            sink.push_group(first, last, group);
        }));
        if ok {
            self.repl = Some(ctl);
        }
        ok
    }

    /// The fencing epoch persisted in the store (0 when never
    /// promoted). Read at boot to seed the control plane's epoch.
    pub fn stored_epoch(&mut self) -> u64 {
        let e = self
            .db
            .get(EPOCH_KEY)
            .and_then(|v| {
                v.get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
            })
            .unwrap_or(0);
        let _ = self.db.take_cost();
        e
    }

    /// Next WAL sequence number of the backing store (0 when volatile).
    pub fn wal_next_seq(&mut self) -> u64 {
        self.db.repl_next_seq()
    }

    /// Snapshot image + last covered seq for standby catch-up
    /// (maintenance path; virtual cost discarded).
    pub fn repl_snapshot(&mut self) -> Option<(u64, Vec<u8>)> {
        let img = self.db.repl_snapshot_image();
        let _ = self.db.take_cost();
        img
    }

    /// Allocate a uuid, first pushing the durable watermark past it
    /// when the store persists (the watermark write rides in the
    /// current request's WAL commit group, so it is durable before the
    /// op that used the uuid is acknowledged). Volatile stores skip
    /// the extra write to keep the Table 1 op/KV-access accounting
    /// exact.
    fn alloc_uuid(&mut self) -> Uuid {
        if self.durable {
            let (_, next_fid) = self.uuids.state();
            if next_fid >= self.wm_limit {
                self.wm_limit = loco_kv::watermark::reserve(&mut *self.db, next_fid);
            }
        }
        self.uuids.alloc()
    }

    /// Persist the full server state (all records + uuid allocator) to
    /// a binary image; virtual cost of the scan is discarded (snapshots
    /// are an offline/maintenance path).
    pub fn snapshot(&mut self) -> Vec<u8> {
        let (sid, next_fid) = self.uuids.state();
        let mut out = Vec::new();
        out.extend_from_slice(&sid.to_le_bytes());
        out.extend_from_slice(&next_fid.to_le_bytes());
        out.extend_from_slice(&loco_kv::snapshot::dump(&mut *self.db));
        let _ = self.db.take_cost();
        out
    }

    /// Rebuild a server from a [`DirServer::snapshot`] image, on any
    /// backend (a restore can migrate hash → B+ tree).
    pub fn restore(backend: DmsBackend, cfg: KvConfig, image: &[u8]) -> Result<Self, String> {
        if image.len() < 10 {
            return Err("truncated server snapshot".into());
        }
        let sid = u16::from_le_bytes(image[0..2].try_into().unwrap());
        let next_fid = u64::from_le_bytes(image[2..10].try_into().unwrap());
        let mut server = Self::new(backend, cfg);
        // Drop the constructor's default root; the snapshot carries it.
        server.db.delete(b"/");
        server.db.extract_prefix(b"E");
        loco_kv::snapshot::load(&mut *server.db, &image[10..])?;
        let _ = server.db.take_cost();
        server.uuids = UuidGen::from_state(sid, next_fid);
        Ok(server)
    }

    /// Export every directory inode (offline/maintenance path; virtual
    /// cost discarded).
    pub fn export_dirs(&mut self) -> Vec<(String, DirInode)> {
        let out = self
            .db
            .scan_prefix(b"/")
            .into_iter()
            .filter_map(|(k, v)| {
                let path = String::from_utf8(k).ok()?;
                Some((path, DirInode::decode(&v)?))
            })
            .collect();
        let _ = self.db.take_cost();
        out
    }

    /// Export every subdirectory dirent list keyed by directory uuid.
    pub fn export_dirent_lists(&mut self) -> Vec<(Uuid, DirentList)> {
        let out = self
            .db
            .scan_prefix(&[DIRENT_NS])
            .into_iter()
            .filter_map(|(k, v)| {
                let uuid = Uuid::from_key_bytes(k.get(1..9)?.try_into().ok()?);
                Some((uuid, DirentList::decode(&v)?))
            })
            .collect();
        let _ = self.db.take_cost();
        out
    }

    /// Overwrite one dirent list (fsck repair path).
    pub fn repair_dirent_list(&mut self, dir_uuid: Uuid, list: &DirentList) {
        self.db.put(&dirent_key(dir_uuid), &list.encode());
        let _ = self.db.take_cost();
    }

    /// Delete one dirent list (fsck: corruption injection in tests).
    pub fn drop_dirent_list(&mut self, dir_uuid: Uuid) {
        self.db.delete(&dirent_key(dir_uuid));
        let _ = self.db.take_cost();
    }

    /// Number of directories (excluding dirent-list records).
    pub fn dir_count(&mut self) -> usize {
        // Dirent lists are one record per directory, so halve.
        self.db.len() / 2
    }

    /// Direct read access for tests.
    pub fn lookup(&mut self, path: &str) -> Option<DirInode> {
        let inode = self
            .db
            .get(path.as_bytes())
            .and_then(|v| DirInode::decode(&v));
        self.db.take_cost();
        inode
    }

    /// KV access statistics of the backing store (Table 1 conformance
    /// tests).
    pub fn kv_stats(&self) -> loco_kv::AccessStats {
        self.db.stats()
    }

    /// Reset the KV access counters.
    pub fn reset_kv_stats(&mut self) {
        self.db.reset_stats();
        self.split.reset();
    }

    /// Walk every ancestor of `path` (excluding `path` itself), checking
    /// exec permission. All reads are local KV gets — the single-RPC ACL
    /// check the paper credits the single-DMS design with.
    fn check_ancestors(&mut self, path: &str, uid: u32, gid: u32) -> FsResult<()> {
        for anc in loco_types::path::ancestors(path) {
            let v = self.db.get(anc.as_bytes()).ok_or(FsError::NotFound)?;
            let d = DirInode::decode(&v).ok_or_else(|| FsError::Io("bad d-inode".into()))?;
            if !acl::may_access(d.mode, d.uid, d.gid, uid, gid, Perm::Exec) {
                return Err(FsError::PermissionDenied);
            }
        }
        Ok(())
    }

    fn get_dir(&mut self, path: &str) -> FsResult<DirInode> {
        let v = self.db.get(path.as_bytes()).ok_or(FsError::NotFound)?;
        DirInode::decode(&v).ok_or_else(|| FsError::Io("bad d-inode".into()))
    }

    fn load_dirents(&mut self, dir_uuid: Uuid) -> DirentList {
        let list = self
            .db
            .get(&dirent_key(dir_uuid))
            .and_then(|v| DirentList::decode(&v))
            .unwrap_or_default();
        // Lazy compaction: once tombstones dominate the stored log,
        // rewrite it as the resolved list.
        if list.tombstone_ratio() > 0.5 {
            self.db.put(&dirent_key(dir_uuid), &list.encode());
        }
        list
    }

    /// O(entry) dirent insert: append one record to the directory's
    /// dirent log (Kyoto Cabinet `append` semantics).
    fn add_dirent(&mut self, dir_uuid: Uuid, name: &str, uuid: Uuid) {
        self.db.append(
            &dirent_key(dir_uuid),
            &loco_types::encode_entry(name, uuid, DirentKind::Dir),
        );
    }

    /// O(entry) dirent removal: append a tombstone.
    fn remove_dirent(&mut self, dir_uuid: Uuid, name: &str) {
        self.db
            .append(&dirent_key(dir_uuid), &loco_types::encode_tombstone(name));
    }

    fn mkdir(&mut self, path: &str, mode: u32, uid: u32, gid: u32, ts: u64) -> FsResult<usize> {
        let parent_path = parent(path).ok_or(FsError::AlreadyExists)?; // mkdir /
        self.check_ancestors(path, uid, gid)?;
        let parent_inode = self.get_dir(parent_path)?;
        if !acl::may_access(
            parent_inode.mode,
            parent_inode.uid,
            parent_inode.gid,
            uid,
            gid,
            Perm::Write,
        ) {
            return Err(FsError::PermissionDenied);
        }
        if self.db.contains(path.as_bytes()) {
            return Err(FsError::AlreadyExists);
        }
        let uuid = self.alloc_uuid();
        let inode = DirInode::new(uuid, mode, uid, gid, ts);
        self.db.put(path.as_bytes(), &inode.encode());
        self.db.put(&dirent_key(uuid), &DirentList::new().encode());
        self.add_dirent(parent_inode.uuid, basename(path), uuid);
        Ok(1)
    }

    fn rmdir(&mut self, path: &str, uid: u32, gid: u32) -> FsResult<usize> {
        if path == "/" {
            return Err(FsError::Busy);
        }
        self.check_ancestors(path, uid, gid)?;
        let inode = self.get_dir(path)?;
        let parent_path = parent(path).expect("non-root has parent");
        let parent_inode = self.get_dir(parent_path)?;
        if !acl::may_access(
            parent_inode.mode,
            parent_inode.uid,
            parent_inode.gid,
            uid,
            gid,
            Perm::Write,
        ) {
            return Err(FsError::PermissionDenied);
        }
        if !self.load_dirents(inode.uuid).is_empty() {
            return Err(FsError::NotEmpty);
        }
        self.db.delete(path.as_bytes());
        self.db.delete(&dirent_key(inode.uuid));
        self.remove_dirent(parent_inode.uuid, basename(path));
        Ok(1)
    }

    fn set_attr(
        &mut self,
        path: &str,
        uid: u32,
        gid: u32,
        new_mode: Option<u32>,
        new_owner: Option<(u32, u32)>,
        ts: u64,
    ) -> FsResult<usize> {
        self.check_ancestors(path, uid, gid)?;
        let inode = self.get_dir(path)?;
        // Only the owner (or root) may chmod/chown.
        if uid != 0 && uid != inode.uid {
            return Err(FsError::PermissionDenied);
        }
        // Fixed-layout in-place field updates: mode/uid/gid/ctime only.
        if let Some(mode) = new_mode {
            self.db
                .write_at(path.as_bytes(), DirInode::OFF_MODE, &mode.to_le_bytes());
        }
        if let Some((new_uid, new_gid)) = new_owner {
            self.db
                .write_at(path.as_bytes(), DirInode::OFF_UID, &new_uid.to_le_bytes());
            self.db
                .write_at(path.as_bytes(), DirInode::OFF_GID, &new_gid.to_le_bytes());
        }
        self.db
            .write_at(path.as_bytes(), DirInode::OFF_CTIME, &ts.to_le_bytes());
        Ok(1)
    }

    /// Relocate `old_path` and every directory beneath it to
    /// `new_path`. Returns the number of directory inodes moved.
    ///
    /// On the B+ tree backend the subtree `old_path/…` is a contiguous
    /// key range: one range extraction + reinserts. On the hash backend
    /// each extraction is a full table scan. Files and data blocks are
    /// *never* touched: they are indexed by `directory_uuid + name` and
    /// `uuid + blk_num`, and uuids don't change (§3.4.2).
    fn rename_dir(
        &mut self,
        old_path: &str,
        new_path: &str,
        uid: u32,
        gid: u32,
        ts: u64,
    ) -> FsResult<usize> {
        if old_path == "/" || new_path == "/" {
            return Err(FsError::Busy);
        }
        if loco_types::path::is_same_or_descendant(new_path, old_path) {
            return Err(FsError::Busy); // cannot move under itself
        }
        self.check_ancestors(old_path, uid, gid)?;
        self.check_ancestors(new_path, uid, gid)?;
        let inode = self.get_dir(old_path)?;
        if self.db.contains(new_path.as_bytes()) {
            return Err(FsError::AlreadyExists);
        }
        let old_parent = self.get_dir(parent(old_path).unwrap())?;
        let new_parent = self.get_dir(parent(new_path).unwrap())?;
        for p in [&old_parent, &new_parent] {
            if !acl::may_access(p.mode, p.uid, p.gid, uid, gid, Perm::Write) {
                return Err(FsError::PermissionDenied);
            }
        }

        // Move the directory's own inode.
        self.db.delete(old_path.as_bytes());
        let mut moved_inode = inode;
        moved_inode.ctime = ts;
        self.db.put(new_path.as_bytes(), &moved_inode.encode());
        let mut moved = 1usize;

        // Move the subtree: contiguous range `old_path/…`.
        let mut prefix = old_path.as_bytes().to_vec();
        prefix.push(b'/');
        let subtree = self.db.extract_prefix(&prefix);
        for (k, v) in subtree {
            let suffix = &k[prefix.len()..];
            let mut new_key = new_path.as_bytes().to_vec();
            new_key.push(b'/');
            new_key.extend_from_slice(suffix);
            self.db.put(&new_key, &v);
            moved += 1;
        }

        // Fix parent dirent lists (uuid-keyed, so unaffected by the key
        // moves above).
        self.remove_dirent(old_parent.uuid, basename(old_path));
        self.add_dirent(new_parent.uuid, basename(new_path), inode.uuid);
        Ok(moved)
    }
}

impl Service for DirServer {
    type Req = DmsRequest;
    type Resp = DmsResponse;

    fn handle(&mut self, req: DmsRequest) -> DmsResponse {
        self.extra.charge(self.rpc_overhead);
        // Replication traffic bypasses the txn bracket: a ReplAppend
        // carries an *already sealed* commit group that must land in
        // the WAL verbatim, not be re-wrapped into a new group.
        if matches!(
            req,
            DmsRequest::ReplAppend { .. }
                | DmsRequest::ReplSnapshot { .. }
                | DmsRequest::ReplStatus {}
        ) {
            return self.handle_repl(req);
        }
        // Role gate: a replicated server that is not the primary
        // rejects every client operation (reads included — a standby
        // may lag, and LocoFS's consistency story is primary-only).
        // The rejection rides the reply's ReplStamp so the transport
        // surfaces it as FencedEpoch and the client redials.
        if let Some(ctl) = &self.repl {
            if !matches!(req, DmsRequest::Promote {}) && ctl.role() != Role::Primary {
                self.fenced_reply = true;
                return DmsResponse::Done(Err(FsError::Io("fenced: not primary".into())));
            }
        }
        let op = Self::req_label(&req);
        // One request = one WAL commit group: a crash mid-handler (e.g.
        // between a rename's extracts and reinserts) replays either the
        // whole mutation or none of it.
        self.db.txn_begin();
        let resp = self.dispatch(req);
        self.db.txn_commit();
        if let Some(e) = resp_error(&resp) {
            loco_log::debug!("dms", "request failed";
                op = op, error = format_args!("{e}"));
        }
        resp
    }

    fn take_cost(&mut self) -> Nanos {
        let sw = self.extra.take();
        let kv = self.db.take_cost();
        self.split.update(sw, kv, &self.db.stats());
        sw + kv
    }

    fn span_attrs(&self) -> Vec<(&'static str, u64)> {
        self.split.attrs()
    }

    fn maintain(&mut self, drain: bool) -> Option<loco_net::MaintainReport> {
        let _ = self.db.persistence()?;
        let checkpointed = if drain {
            self.db.persist_checkpoint().unwrap_or(false)
        } else {
            let _ = self.db.persist_sync();
            false
        };
        let stats = self.db.persistence()?;
        Some(loco_net::MaintainReport {
            wal_records: stats.wal_records,
            replayed_records: stats.replayed_records,
            snapshot_records: stats.snapshot_records,
            checkpoints: stats.checkpoints,
            wal_fsyncs: stats.wal_fsyncs,
            checkpointed,
        })
    }

    fn defer_sync(&mut self, on: bool) -> bool {
        self.db.persist_defer_sync(on)
    }

    fn take_commit_ticket(&mut self) -> Option<u64> {
        self.db.persist_take_ticket()
    }

    fn commit_flush(&mut self) -> u64 {
        self.db.persist_commit_flush()
    }

    fn commit_flush_begin(&mut self) -> Option<(u64, loco_net::CommitFsync)> {
        let (n, fsync) = self.db.persist_commit_flush_begin()?;
        // Replicated primary: after the local fsync, hold the ack until
        // the configured quorum of standbys has the batch (or the node
        // fences / times out, which raises the batch-abort flag the
        // committer reads via `commit_abort`). Runs outside the service
        // lock, so shipping proceeds while we wait.
        let Some(ctl) = self.repl.clone() else {
            return Some((n, fsync));
        };
        if ctl.role() != Role::Primary {
            return Some((n, fsync));
        }
        let last_seq = self.db.repl_next_seq().saturating_sub(1);
        let timeout = ctl.lease() * 2;
        Some((
            n,
            Box::new(move || {
                fsync();
                let _ = ctl.wait_quorum(last_seq, timeout);
            }),
        ))
    }

    fn take_repl_stamp(&mut self) -> Option<loco_net::ReplStamp> {
        let ctl = self.repl.as_ref()?;
        Some(loco_net::ReplStamp {
            epoch: ctl.epoch(),
            fenced: std::mem::take(&mut self.fenced_reply),
        })
    }

    fn commit_abort(&mut self) -> bool {
        self.repl.as_ref().is_some_and(|c| c.take_abort())
    }

    fn req_label(req: &DmsRequest) -> &'static str {
        match req {
            DmsRequest::Mkdir { .. } => "Mkdir",
            DmsRequest::Rmdir { .. } => "Rmdir",
            DmsRequest::GetDir { .. } => "GetDir",
            DmsRequest::StatDir { .. } => "StatDir",
            DmsRequest::ReaddirSubdirs { .. } => "ReaddirSubdirs",
            DmsRequest::SetDirAttr { .. } => "SetDirAttr",
            DmsRequest::RenameDir { .. } => "RenameDir",
            DmsRequest::CheckAccess { .. } => "CheckAccess",
            DmsRequest::MkdirLocal { .. } => "MkdirLocal",
            DmsRequest::RmdirLocal { .. } => "RmdirLocal",
            DmsRequest::AddDirent { .. } => "AddDirent",
            DmsRequest::RemoveDirent { .. } => "RemoveDirent",
            DmsRequest::ReplAppend { .. } => "ReplAppend",
            DmsRequest::ReplSnapshot { .. } => "ReplSnapshot",
            DmsRequest::ReplStatus {} => "ReplStatus",
            DmsRequest::Promote {} => "Promote",
        }
    }

    /// Read-only wire tags (GetDir=2, StatDir=3, ReaddirSubdirs=4,
    /// CheckAccess=7, ReplStatus=14) are never shed by admission
    /// control; everything else mutates.
    fn tag_mutates(tag: u8) -> bool {
        !matches!(tag, 2 | 3 | 4 | 7 | 14)
    }

    /// Reads are trivially idempotent; `SetDirAttr` sets absolute
    /// values and the replication stream (`ReplAppend`/`ReplSnapshot`)
    /// is sequence-guarded, so re-sending after an ambiguous loss is
    /// safe. `Mkdir`/`Rmdir`/`RenameDir`/dirent edits/`Promote` are
    /// not: a blind re-send can double-apply (e.g. `AlreadyExists` on
    /// a mkdir that did land) — those surface `MaybeApplied`.
    fn req_idempotent(req: &DmsRequest) -> bool {
        matches!(
            req,
            DmsRequest::GetDir { .. }
                | DmsRequest::StatDir { .. }
                | DmsRequest::ReaddirSubdirs { .. }
                | DmsRequest::CheckAccess { .. }
                | DmsRequest::SetDirAttr { .. }
                | DmsRequest::ReplAppend { .. }
                | DmsRequest::ReplSnapshot { .. }
                | DmsRequest::ReplStatus {}
        )
    }
}

/// The error a response carries, if any — the one choke point where
/// every failed mutation/lookup becomes a structured log event.
fn resp_error(resp: &DmsResponse) -> Option<&FsError> {
    match resp {
        DmsResponse::Dir(Err(e)) => Some(e),
        DmsResponse::Dirents(Err(e)) => Some(e),
        DmsResponse::Done(Err(e)) => Some(e),
        _ => None,
    }
}

impl DirServer {
    fn dispatch(&mut self, req: DmsRequest) -> DmsResponse {
        match req {
            DmsRequest::Mkdir {
                path,
                mode,
                uid,
                gid,
                ts,
            } => DmsResponse::Done(self.mkdir(&path, mode, uid, gid, ts)),
            DmsRequest::Rmdir { path, uid, gid } => DmsResponse::Done(self.rmdir(&path, uid, gid)),
            DmsRequest::GetDir { path } => DmsResponse::Dir(self.get_dir(&path)),
            DmsRequest::StatDir { path, uid, gid } => DmsResponse::Dir(
                self.check_ancestors(&path, uid, gid)
                    .and_then(|()| self.get_dir(&path)),
            ),
            DmsRequest::ReaddirSubdirs { dir_uuid } => {
                let list = self.load_dirents(dir_uuid);
                DmsResponse::Dirents(Ok(list
                    .entries()
                    .iter()
                    .map(|e| (e.name.clone(), e.uuid))
                    .collect()))
            }
            DmsRequest::SetDirAttr {
                path,
                uid,
                gid,
                new_mode,
                new_owner,
                ts,
            } => DmsResponse::Done(self.set_attr(&path, uid, gid, new_mode, new_owner, ts)),
            DmsRequest::RenameDir {
                old_path,
                new_path,
                uid,
                gid,
                ts,
            } => DmsResponse::Done(self.rename_dir(&old_path, &new_path, uid, gid, ts)),
            DmsRequest::MkdirLocal {
                path,
                mode,
                uid,
                gid,
                ts,
            } => {
                let res = (|| {
                    if self.db.contains(path.as_bytes()) {
                        return Err(FsError::AlreadyExists);
                    }
                    let uuid = self.alloc_uuid();
                    let inode = DirInode::new(uuid, mode, uid, gid, ts);
                    self.db.put(path.as_bytes(), &inode.encode());
                    self.db.put(&dirent_key(uuid), &DirentList::new().encode());
                    Ok(1)
                })();
                DmsResponse::Done(res)
            }
            DmsRequest::RmdirLocal { path } => {
                let res = (|| {
                    let inode = self.get_dir(&path)?;
                    if !self.load_dirents(inode.uuid).is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                    self.db.delete(path.as_bytes());
                    self.db.delete(&dirent_key(inode.uuid));
                    Ok(1)
                })();
                DmsResponse::Done(res)
            }
            DmsRequest::AddDirent {
                dir_uuid,
                name,
                child_uuid,
            } => {
                self.add_dirent(dir_uuid, &name, child_uuid);
                DmsResponse::Done(Ok(1))
            }
            DmsRequest::RemoveDirent { dir_uuid, name } => {
                self.remove_dirent(dir_uuid, &name);
                DmsResponse::Done(Ok(1))
            }
            DmsRequest::CheckAccess {
                path,
                uid,
                gid,
                perm,
            } => {
                let ok = self
                    .check_ancestors(&path, uid, gid)
                    .and_then(|()| {
                        let d = self.get_dir(&path)?;
                        if acl::may_access(d.mode, d.uid, d.gid, uid, gid, perm) {
                            Ok(())
                        } else {
                            Err(FsError::PermissionDenied)
                        }
                    })
                    .is_ok();
                DmsResponse::Bool(ok)
            }
            DmsRequest::Promote {} => DmsResponse::Repl(self.do_promote()),
            // Intercepted in `handle` before the txn bracket; kept
            // total so the match stays exhaustive.
            DmsRequest::ReplAppend { .. }
            | DmsRequest::ReplSnapshot { .. }
            | DmsRequest::ReplStatus {} => self.repl_info(false),
        }
    }

    /// Snapshot of the replication state for a control reply.
    fn repl_info(&mut self, ok: bool) -> DmsResponse {
        let (epoch, role, silence_ms) = match &self.repl {
            Some(ctl) => {
                let silence = match ctl.role() {
                    Role::Primary => 0,
                    _ => ctl.primary_silence_ms(),
                };
                (ctl.epoch(), ctl.role().as_u8(), silence)
            }
            None => (0, 0, u64::MAX),
        };
        DmsResponse::Repl(ReplInfo {
            ok,
            epoch,
            next_seq: self.db.repl_next_seq(),
            role,
            silence_ms,
        })
    }

    /// Become the primary at a fresh epoch: `max(max epoch ever seen,
    /// mine) + 1`, persisted through the WAL so the bump is durable
    /// before the promote is acknowledged and replicates to surviving
    /// standbys. Runs inside the normal txn bracket.
    fn do_promote(&mut self) -> ReplInfo {
        let Some(ctl) = self.repl.clone() else {
            // Unreplicated server: promote is meaningless but harmless.
            return ReplInfo {
                ok: false,
                epoch: 0,
                next_seq: self.db.repl_next_seq(),
                role: 0,
                silence_ms: u64::MAX,
            };
        };
        let epoch = ctl.max_seen_epoch().max(ctl.epoch()) + 1;
        self.db.put(EPOCH_KEY, &epoch.to_le_bytes());
        // The replicated stream carried the old primary's watermark
        // writes straight into the store, bypassing this instance's
        // in-memory allocator — re-seed it so the new primary never
        // re-issues a uuid the old one already handed out.
        let (sid, cur) = self.uuids.state();
        let bound = loco_kv::watermark::load(&mut *self.db).unwrap_or(0);
        if bound > cur {
            self.uuids = UuidGen::from_state(sid, bound);
            self.wm_limit = bound;
        }
        ctl.transition(Role::Primary, epoch);
        loco_log::info!("repl.election", "promoted to primary";
            epoch = epoch, next_seq = self.db.repl_next_seq());
        ReplInfo {
            ok: true,
            epoch,
            next_seq: self.db.repl_next_seq(),
            role: Role::Primary.as_u8(),
            silence_ms: 0,
        }
    }

    /// Standby-side replication handler (and the shared status probe).
    /// Runs outside the txn bracket: shipped groups land in the WAL
    /// verbatim via `repl_apply_group`, preserving the primary's
    /// sequence numbers and group boundaries.
    fn handle_repl(&mut self, req: DmsRequest) -> DmsResponse {
        let Some(ctl) = self.repl.clone() else {
            return self.repl_info(false);
        };
        match req {
            DmsRequest::ReplStatus {} => self.repl_info(true),
            DmsRequest::ReplAppend {
                epoch,
                first_seq,
                group,
            } => {
                ctl.observe_epoch(epoch);
                let mine = ctl.epoch();
                if epoch < mine {
                    // Stale primary: reject, and let our higher epoch
                    // in the reply fence it.
                    loco_log::warn!("repl.ship", "append from stale epoch rejected";
                        from_epoch = epoch, epoch = mine, first_seq = first_seq);
                    return self.repl_info(false);
                }
                if epoch > mine || ctl.role() == Role::Primary {
                    // A higher (or equal-from-elsewhere) epoch is
                    // authoritative: follow it. A primary hearing a
                    // higher epoch has been superseded and steps down.
                    if ctl.role() == Role::Primary && epoch > mine {
                        loco_log::warn!("repl.election", "superseded by higher epoch; stepping down";
                            epoch = mine, new_epoch = epoch);
                    }
                    if epoch > mine {
                        ctl.transition(Role::Standby, epoch);
                    } else if ctl.role() == Role::Primary {
                        // Same epoch from another node claiming primary
                        // — split brain; refuse and keep our claim.
                        return self.repl_info(false);
                    }
                }
                ctl.note_primary_contact(epoch);
                if group.is_empty() {
                    return self.repl_info(true); // heartbeat/probe
                }
                match self.db.repl_apply_group(&group) {
                    Ok(_) => self.repl_info(true),
                    Err(e) => {
                        loco_log::warn!("repl.ship", "replicated group refused";
                            first_seq = first_seq,
                            next_seq = self.db.repl_next_seq(),
                            error = format_args!("{e}"));
                        self.repl_info(false)
                    }
                }
            }
            DmsRequest::ReplSnapshot {
                epoch,
                last_seq,
                image,
            } => {
                ctl.observe_epoch(epoch);
                if epoch < ctl.epoch() {
                    return self.repl_info(false);
                }
                if epoch > ctl.epoch() {
                    ctl.transition(Role::Standby, epoch);
                } else if ctl.role() == Role::Primary {
                    // Same epoch from another node claiming primary —
                    // split brain, exactly as in ReplAppend: refuse
                    // rather than let a rival wholesale-clobber a live
                    // primary's store while it keeps acking clients.
                    loco_log::warn!("repl.ship", "equal-epoch snapshot from rival primary refused";
                        epoch = epoch, last_seq = last_seq);
                    return self.repl_info(false);
                }
                ctl.note_primary_contact(epoch);
                match self.db.repl_install_snapshot(&image) {
                    Ok(records) => {
                        loco_log::info!("repl.ship", "snapshot installed";
                            last_seq = last_seq, records = records as u64);
                        // Snapshot state supersedes the in-memory uuid
                        // allocator: re-seed from the persisted
                        // watermark it carried.
                        let (sid, _) = self.uuids.state();
                        let bound = loco_kv::watermark::load(&mut *self.db).unwrap_or(0);
                        self.uuids = UuidGen::from_state(sid, bound);
                        self.wm_limit = bound;
                        self.repl_info(true)
                    }
                    Err(e) => {
                        loco_log::warn!("repl.ship", "snapshot install failed";
                            error = format_args!("{e}"));
                        self.repl_info(false)
                    }
                }
            }
            _ => self.repl_info(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dms() -> DirServer {
        DirServer::new(DmsBackend::BTree, KvConfig::default())
    }

    fn mk(d: &mut DirServer, path: &str) -> FsResult<usize> {
        d.mkdir(path, 0o755, 1000, 100, 1)
    }

    #[test]
    fn root_exists_at_startup() {
        let mut d = dms();
        let root = d.lookup("/").unwrap();
        assert_eq!(root.uuid, Uuid::ROOT);
        assert_eq!(root.mode, 0o777);
    }

    #[test]
    fn mkdir_and_lookup() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        mk(&mut d, "/a/b").unwrap();
        let a = d.lookup("/a").unwrap();
        let b = d.lookup("/a/b").unwrap();
        assert_ne!(a.uuid, b.uuid);
        assert_eq!(a.uid, 1000);
    }

    #[test]
    fn mkdir_requires_existing_parent() {
        let mut d = dms();
        assert_eq!(mk(&mut d, "/a/b"), Err(FsError::NotFound));
    }

    #[test]
    fn mkdir_duplicate_fails() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        assert_eq!(mk(&mut d, "/a"), Err(FsError::AlreadyExists));
    }

    #[test]
    fn mkdir_records_parent_dirent() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        mk(&mut d, "/b").unwrap();
        let list = d.load_dirents(Uuid::ROOT);
        assert_eq!(list.len(), 2);
        assert!(list.find("a").is_some());
    }

    #[test]
    fn rmdir_empty_only() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        mk(&mut d, "/a/b").unwrap();
        assert_eq!(d.rmdir("/a", 1000, 100), Err(FsError::NotEmpty));
        d.rmdir("/a/b", 1000, 100).unwrap();
        d.rmdir("/a", 1000, 100).unwrap();
        assert!(d.lookup("/a").is_none());
        assert!(d.load_dirents(Uuid::ROOT).is_empty());
    }

    #[test]
    fn rmdir_root_refused() {
        let mut d = dms();
        assert_eq!(d.rmdir("/", 0, 0), Err(FsError::Busy));
    }

    #[test]
    fn acl_walk_blocks_unreadable_ancestors() {
        let mut d = dms();
        d.mkdir("/secret", 0o700, 42, 42, 1).unwrap();
        // Owner can create inside.
        d.mkdir("/secret/mine", 0o755, 42, 42, 1).unwrap();
        // Others cannot traverse /secret.
        assert_eq!(
            d.mkdir("/secret/theirs", 0o755, 7, 7, 1),
            Err(FsError::PermissionDenied)
        );
        assert_eq!(
            d.check_ancestors("/secret/mine/x", 7, 7),
            Err(FsError::PermissionDenied)
        );
    }

    #[test]
    fn mkdir_needs_write_on_parent() {
        let mut d = dms();
        d.mkdir("/ro", 0o555, 42, 42, 1).unwrap();
        assert_eq!(
            d.mkdir("/ro/x", 0o755, 42, 42, 1),
            Err(FsError::PermissionDenied)
        );
        // root bypasses
        d.mkdir("/ro/byroot", 0o755, 0, 0, 1).unwrap();
    }

    #[test]
    fn set_attr_chmod_chown() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        d.set_attr("/a", 1000, 100, Some(0o700), None, 9).unwrap();
        let a = d.lookup("/a").unwrap();
        assert_eq!(a.mode, 0o700);
        assert_eq!(a.ctime, 9);
        // Non-owner cannot chmod.
        assert_eq!(
            d.set_attr("/a", 7, 7, Some(0o777), None, 9),
            Err(FsError::PermissionDenied)
        );
        // Root can chown.
        d.set_attr("/a", 0, 0, None, Some((5, 6)), 10).unwrap();
        let a = d.lookup("/a").unwrap();
        assert_eq!((a.uid, a.gid), (5, 6));
    }

    #[test]
    fn rename_moves_whole_subtree() {
        let mut d = dms();
        for p in ["/a", "/a/x", "/a/x/deep", "/a/y", "/b"] {
            mk(&mut d, p).unwrap();
        }
        let moved = d.rename_dir("/a", "/b/a2", 1000, 100, 5).unwrap();
        assert_eq!(moved, 4); // /a + 3 descendants
        assert!(d.lookup("/a").is_none());
        assert!(d.lookup("/a/x").is_none());
        assert!(d.lookup("/b/a2").is_some());
        assert!(d.lookup("/b/a2/x/deep").is_some());
        // Dirent lists updated.
        let root_list = d.load_dirents(Uuid::ROOT);
        assert!(root_list.find("a").is_none());
        let b_uuid = d.lookup("/b").unwrap().uuid;
        assert!(d.load_dirents(b_uuid).find("a2").is_some());
    }

    #[test]
    fn rename_preserves_uuids() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        mk(&mut d, "/a/x").unwrap();
        let before = d.lookup("/a/x").unwrap().uuid;
        d.rename_dir("/a", "/a2", 1000, 100, 5).unwrap();
        assert_eq!(d.lookup("/a2/x").unwrap().uuid, before);
    }

    #[test]
    fn rename_onto_descendant_refused() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        mk(&mut d, "/a/b").unwrap();
        assert_eq!(
            d.rename_dir("/a", "/a/b/c", 1000, 100, 5),
            Err(FsError::Busy)
        );
        assert_eq!(d.rename_dir("/a", "/a", 1000, 100, 5), Err(FsError::Busy));
    }

    #[test]
    fn rename_does_not_disturb_siblings_with_common_prefix() {
        let mut d = dms();
        mk(&mut d, "/ab").unwrap();
        mk(&mut d, "/ab2").unwrap(); // shares string prefix "/ab"
        mk(&mut d, "/ab/kid").unwrap();
        let moved = d.rename_dir("/ab", "/zz", 1000, 100, 5).unwrap();
        assert_eq!(moved, 2);
        assert!(d.lookup("/ab2").is_some(), "sibling must survive");
    }

    #[test]
    fn rename_to_existing_target_fails() {
        let mut d = dms();
        mk(&mut d, "/a").unwrap();
        mk(&mut d, "/b").unwrap();
        assert_eq!(
            d.rename_dir("/a", "/b", 1000, 100, 5),
            Err(FsError::AlreadyExists)
        );
    }

    #[test]
    fn hash_backend_same_semantics() {
        let mut d = DirServer::new(DmsBackend::Hash, KvConfig::default());
        d.mkdir("/a", 0o755, 1, 1, 1).unwrap();
        d.mkdir("/a/b", 0o755, 1, 1, 1).unwrap();
        let moved = d.rename_dir("/a", "/c", 1, 1, 2).unwrap();
        assert_eq!(moved, 2);
        assert!(d.lookup("/c/b").is_some());
    }

    #[test]
    fn btree_rename_much_cheaper_than_hash_at_scale() {
        let mut bt = DirServer::new(DmsBackend::BTree, KvConfig::default());
        let mut hs = DirServer::new(DmsBackend::Hash, KvConfig::default());
        for d in [&mut bt, &mut hs] {
            d.mkdir("/big", 0o755, 1, 1, 0).unwrap();
            d.mkdir("/target", 0o755, 1, 1, 0).unwrap();
            for i in 0..2_000 {
                d.mkdir(&format!("/big/d{i:05}"), 0o755, 1, 1, 0).unwrap();
            }
            // Plenty of unrelated records that hash rename must scan.
            for i in 0..2_000 {
                d.mkdir(&format!("/target/t{i:05}"), 0o755, 1, 1, 0)
                    .unwrap();
            }
            let _ = d.take_cost();
        }
        bt.rename_dir("/big", "/big2", 1, 1, 1).unwrap();
        let bt_cost = bt.take_cost();
        hs.rename_dir("/big", "/big2", 1, 1, 1).unwrap();
        let hs_cost = hs.take_cost();
        assert!(
            // The gap mostly comes from the full scan; with everything in
            // RAM it is modest at this scale but must be clearly visible.
            bt_cost < hs_cost,
            "btree {bt_cost} should beat hash {hs_cost}"
        );
    }

    #[test]
    fn service_interface_dispatches() {
        let mut d = dms();
        let resp = d.handle(DmsRequest::Mkdir {
            path: "/s".into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 0,
        });
        assert!(matches!(resp, DmsResponse::Done(Ok(1))));
        assert!(d.take_cost() > 0);
        let resp = d.handle(DmsRequest::GetDir { path: "/s".into() });
        match resp {
            DmsResponse::Dir(Ok(inode)) => assert_eq!(inode.uid, 1),
            other => panic!("unexpected {other:?}"),
        }
        let resp = d.handle(DmsRequest::CheckAccess {
            path: "/s".into(),
            uid: 1,
            gid: 1,
            perm: Perm::Write,
        });
        assert!(matches!(resp, DmsResponse::Bool(true)));
    }

    #[test]
    fn shard_local_requests_skip_ancestor_state() {
        // A shard holding only part of the namespace must accept
        // MkdirLocal for paths whose ancestors live elsewhere.
        let mut shard = DirServer::with_sid(DmsBackend::BTree, KvConfig::default(), 3);
        let resp = shard.handle(DmsRequest::MkdirLocal {
            path: "/elsewhere/deep/dir".into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 0,
        });
        assert!(matches!(resp, DmsResponse::Done(Ok(1))));
        let inode = shard.lookup("/elsewhere/deep/dir").unwrap();
        assert_eq!(inode.uuid.sid(), 3, "shard allocates from its own space");
        // Duplicate refused.
        let resp = shard.handle(DmsRequest::MkdirLocal {
            path: "/elsewhere/deep/dir".into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 0,
        });
        assert!(matches!(
            resp,
            DmsResponse::Done(Err(FsError::AlreadyExists))
        ));
        // RmdirLocal enforces subdir emptiness via the local dirent log.
        shard.handle(DmsRequest::AddDirent {
            dir_uuid: inode.uuid,
            name: "kid".into(),
            child_uuid: Uuid::new(3, 99),
        });
        let resp = shard.handle(DmsRequest::RmdirLocal {
            path: "/elsewhere/deep/dir".into(),
        });
        assert!(matches!(resp, DmsResponse::Done(Err(FsError::NotEmpty))));
        shard.handle(DmsRequest::RemoveDirent {
            dir_uuid: inode.uuid,
            name: "kid".into(),
        });
        let resp = shard.handle(DmsRequest::RmdirLocal {
            path: "/elsewhere/deep/dir".into(),
        });
        assert!(matches!(resp, DmsResponse::Done(Ok(1))));
        assert!(shard.lookup("/elsewhere/deep/dir").is_none());
    }

    #[test]
    fn check_access_probes_ancestry_and_target() {
        let mut d = dms();
        d.mkdir("/locked", 0o700, 42, 42, 1).unwrap();
        let ok = |d: &mut DirServer, uid, perm| {
            matches!(
                d.handle(DmsRequest::CheckAccess {
                    path: "/locked".into(),
                    uid,
                    gid: 42,
                    perm,
                }),
                DmsResponse::Bool(true)
            )
        };
        assert!(ok(&mut d, 42, Perm::Write));
        assert!(!ok(&mut d, 7, Perm::Read), "others blocked by 0700");
        assert!(ok(&mut d, 0, Perm::Write), "root bypasses");
    }

    #[test]
    fn wal_replication_ships_promotes_and_fences() {
        use loco_repl::AckPolicy;
        use std::time::Duration;
        let tmp = std::env::temp_dir().join(format!("dms-repl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        let open = |name: &str| {
            let store =
                loco_kv::DurableStore::open(tmp.join(name), BTreeDb::new(KvConfig::default()))
                    .unwrap();
            DirServer::with_store(Box::new(store), 0)
        };
        let ctl_p = Arc::new(ReplCtl::new(
            1,
            Role::Primary,
            AckPolicy::None,
            Duration::from_millis(100),
            vec!["peer".into()],
        ));
        let ctl_s = Arc::new(ReplCtl::new(
            0,
            Role::Standby,
            AckPolicy::None,
            Duration::from_millis(100),
            Vec::new(),
        ));
        let mut primary = open("primary");
        let mut standby = open("standby");
        assert!(primary.enable_repl(Arc::clone(&ctl_p)));
        assert!(standby.enable_repl(Arc::clone(&ctl_s)));
        for p in ["/a", "/a/b", "/c"] {
            let resp = primary.handle(DmsRequest::Mkdir {
                path: p.into(),
                mode: 0o755,
                uid: 1,
                gid: 1,
                ts: 0,
            });
            assert!(matches!(resp, DmsResponse::Done(Ok(1))), "{resp:?}");
        }
        // Ship every sealed group from the primary's ring, starting at
        // the standby's next expected sequence number.
        let from = standby.wal_next_seq();
        let groups = ctl_p
            .with_ring(|r| r.collect_from(from, usize::MAX))
            .unwrap();
        assert!(!groups.is_empty());
        for (first, _, bytes) in groups {
            let resp = standby.handle(DmsRequest::ReplAppend {
                epoch: 1,
                first_seq: first,
                group: bytes,
            });
            match resp {
                DmsResponse::Repl(i) => assert!(i.ok, "{i:?}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Client ops on the standby are fenced.
        let resp = standby.handle(DmsRequest::GetDir { path: "/a".into() });
        assert!(matches!(resp, DmsResponse::Done(Err(FsError::Io(_)))));
        assert!(standby.take_repl_stamp().unwrap().fenced);
        // Promote: fresh epoch above anything seen, namespace complete.
        let resp = standby.handle(DmsRequest::Promote {});
        let info = match resp {
            DmsResponse::Repl(i) => i,
            other => panic!("unexpected {other:?}"),
        };
        assert!(info.ok && info.epoch == 2 && info.role == Role::Primary.as_u8());
        assert!(standby.lookup("/a/b").is_some());
        // Uuid allocation resumes past everything the old primary used.
        let resp = standby.handle(DmsRequest::Mkdir {
            path: "/d".into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 1,
        });
        assert!(matches!(resp, DmsResponse::Done(Ok(1))));
        let fresh = standby.lookup("/d").unwrap().uuid;
        for p in ["/a", "/a/b", "/c"] {
            assert_ne!(standby.lookup(p).unwrap().uuid, fresh);
        }
        // The stale primary's appends are now rejected by epoch.
        let resp = standby.handle(DmsRequest::ReplAppend {
            epoch: 1,
            first_seq: 99,
            group: vec![1, 2, 3],
        });
        match resp {
            DmsResponse::Repl(i) => {
                assert!(!i.ok);
                assert_eq!(i.epoch, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // An equal-epoch ReplSnapshot from a rival claimed primary is
        // split brain, exactly like an equal-epoch append: it must be
        // refused before it can wholesale-clobber a live primary's
        // store while that primary keeps acking clients.
        let (snap_last, image) = standby.repl_snapshot().expect("snapshot image");
        let resp = standby.handle(DmsRequest::Mkdir {
            path: "/post-snap".into(),
            mode: 0o755,
            uid: 1,
            gid: 1,
            ts: 2,
        });
        assert!(matches!(resp, DmsResponse::Done(Ok(1))), "{resp:?}");
        let resp = standby.handle(DmsRequest::ReplSnapshot {
            epoch: 2,
            last_seq: snap_last,
            image,
        });
        match resp {
            DmsResponse::Repl(i) => {
                assert!(!i.ok, "equal-epoch rival snapshot must be refused");
                assert_eq!(i.role, Role::Primary.as_u8(), "role keeps its claim");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            standby.lookup("/post-snap").is_some(),
            "refused snapshot must leave the live store untouched"
        );
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn deeper_paths_cost_more_server_time() {
        // Fig 13 mechanism: ancestor ACL walk is per-level KV gets.
        let mut d = dms();
        let mut path = String::new();
        for i in 0..16 {
            path.push_str(&format!("/L{i}"));
            mk(&mut d, &path).unwrap();
        }
        d.take_cost();
        d.check_ancestors("/L0/x", 1000, 100).unwrap();
        let shallow = d.take_cost();
        d.check_ancestors(&format!("{path}/x"), 1000, 100).unwrap();
        let deep = d.take_cost();
        assert!(deep > 5 * shallow, "shallow={shallow} deep={deep}");
    }
}
