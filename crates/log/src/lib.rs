//! # loco-log — structured, trace-correlated, ring-buffered logging
//!
//! Every daemon keeps the last N log events in a fixed-size in-memory
//! ring; nothing is written to disk by the hot path. Events are
//! structured — a static `target` (subsystem), a static `msg`, and
//! typed `key=value` fields — and automatically carry the trace/span
//! identity of the operation being served (see [`span_scope`]), so a
//! cluster-wide collector can merge per-daemon streams into one
//! timeline keyed by `trace_id`.
//!
//! Cost discipline (same as loco-trace's sampling off-path):
//!
//! * **Disabled level ⇒ one relaxed atomic load.** The [`event!`]
//!   macro evaluates *nothing* — no field expressions, no allocation —
//!   unless the level passes the filter. `LOCO_LOG=off` turns every
//!   site into a load + predictable branch.
//! * **Enabled ⇒ no global lock.** An emitter claims a slot with one
//!   `fetch_add` on the ring head and takes only that slot's guard;
//!   two emitters contend only when they collide on the same slot
//!   modulo the capacity (i.e. one full lap apart).
//! * **Readers never stall writers.** [`tail`] walks the ring
//!   slot-by-slot and simply skips entries that are mid-overwrite;
//!   the cursor protocol re-delivers anything skipped.
//!
//! Environment:
//!
//! * `LOCO_LOG` — minimum level kept in the ring:
//!   `off|error|warn|info|debug|trace` (default `info`);
//! * `LOCO_LOG_STDERR` — minimum level *also* mirrored to stderr as a
//!   text line (default `error`; `off` silences);
//! * `LOCO_LOG_RING` — ring capacity in events (default 4096);
//! * `LOCO_LOG_DUMP` / `LOCO_LOG_SOURCE` — see [`dump_env`]: clients
//!   (bench harnesses, chaos workloads) flush their ring to a JSONL
//!   file the collector's report phase merges into the timeline.
//!
//! The crate depends on nothing, so any layer — including `loco-faults`
//! and `loco-kv`, which sit below the observability stack — can log.

use std::cell::Cell;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

// ----- levels -----------------------------------------------------------

/// Severity of an event. Ordered: `Trace < Debug < Info < Warn < Error`.
#[repr(u8)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-item detail (per-frame, per-record); high volume.
    Trace = 1,
    /// Per-batch / per-connection detail.
    Debug = 2,
    /// Lifecycle milestones: boot, recovery, checkpoint, drain.
    Info = 3,
    /// Something degraded but survivable: reconnects, sheds, faults.
    Warn = 4,
    /// A request or subsystem failed.
    Error = 5,
}

impl Level {
    /// Lowercase name, as rendered in JSON and text.
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse `trace|debug|info|warn|error`; `off`/unknown ⇒ `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// Sentinel meaning "filter not initialized yet" in [`MIN_LEVEL`].
const UNINIT: u8 = 0;
/// Sentinel meaning "everything disabled" (`LOCO_LOG=off`).
const OFF: u8 = u8::MAX;

/// Minimum level kept in the ring. `UNINIT` until first use.
static MIN_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
/// Minimum level mirrored to stderr (`OFF` disables the mirror).
static STDERR_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

#[cold]
fn init_levels() -> u8 {
    let ring = match std::env::var("LOCO_LOG") {
        Ok(v) => match Level::parse(&v) {
            Some(l) => l as u8,
            None => OFF, // "off" and anything unparseable
        },
        Err(_) => Level::Info as u8,
    };
    let mirror = match std::env::var("LOCO_LOG_STDERR") {
        Ok(v) => match Level::parse(&v) {
            Some(l) => l as u8,
            None => OFF,
        },
        Err(_) => Level::Error as u8,
    };
    STDERR_LEVEL.store(mirror, Ordering::Relaxed);
    MIN_LEVEL.store(ring, Ordering::Relaxed);
    ring
}

/// Whether events at `level` are currently kept. This is the entire
/// off-path: one relaxed load and a compare.
#[inline]
pub fn enabled(level: Level) -> bool {
    let min = MIN_LEVEL.load(Ordering::Relaxed);
    if min == UNINIT {
        return level as u8 >= init_levels();
    }
    level as u8 >= min
}

/// Override the ring filter at runtime (tests, daemons raising
/// verbosity on demand). `None` ⇒ off.
pub fn set_level(level: Option<Level>) {
    if MIN_LEVEL.load(Ordering::Relaxed) == UNINIT {
        init_levels(); // settle STDERR_LEVEL from env first
    }
    MIN_LEVEL.store(level.map(|l| l as u8).unwrap_or(OFF), Ordering::Relaxed);
}

/// Override the stderr mirror level. `None` ⇒ no mirroring.
pub fn set_stderr_level(level: Option<Level>) {
    if MIN_LEVEL.load(Ordering::Relaxed) == UNINIT {
        init_levels();
    }
    STDERR_LEVEL.store(level.map(|l| l as u8).unwrap_or(OFF), Ordering::Relaxed);
}

/// The current ring filter (`None` = off).
pub fn level() -> Option<Level> {
    match MIN_LEVEL.load(Ordering::Relaxed) {
        UNINIT => match init_levels() {
            OFF => None,
            v => Level::parse_u8(v),
        },
        OFF => None,
        v => Level::parse_u8(v),
    }
}

impl Level {
    fn parse_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Trace),
            2 => Some(Level::Debug),
            3 => Some(Level::Info),
            4 => Some(Level::Warn),
            5 => Some(Level::Error),
            _ => None,
        }
    }
}

// ----- values & events --------------------------------------------------

/// A typed field value. Constructed via `From` in the [`event!`] macro;
/// field expressions are only evaluated when the level is enabled.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (allocates; only on the enabled path).
    Str(String),
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant(v as $conv) }
        }
    )*};
}
value_from!(
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64,
    u8 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64, isize => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}
impl From<std::fmt::Arguments<'_>> for Value {
    fn from(v: std::fmt::Arguments<'_>) -> Value {
        Value::Str(v.to_string())
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::I64(v) => {
                out.push_str(&v.to_string());
            }
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => write_json_str(out, v),
        }
    }

    fn write_text(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&format!("{v}")),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => {
                if v.contains([' ', '"', '=']) {
                    write_json_str(out, v);
                } else {
                    out.push_str(v);
                }
            }
        }
    }
}

/// Minimal JSON string escaping (the workspace builds offline; this
/// crate depends on nothing, so it carries its own writer).
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One structured log event as stored in the ring.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotone per-process sequence number (resets on restart).
    pub seq: u64,
    /// Wall-clock microseconds since the unix epoch (cross-process
    /// merge key; one host ⇒ one clock).
    pub t_us: u64,
    /// Monotonic nanoseconds since logger init (intra-process order
    /// even across wall-clock steps).
    pub mono_ns: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem, dot-separated (`"net.conn"`, `"wal"`, `"faults"`).
    pub target: &'static str,
    /// Static human-readable message; variability goes in `fields`.
    pub msg: &'static str,
    /// Trace identity of the op being served when emitted (0 = none).
    pub trace_id: u64,
    /// Span within the trace (0 = none).
    pub span_id: u64,
    /// Structured `key=value` fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// One JSON object (one JSONL line). `source` tags the emitting
    /// process (daemon name); `None` omits the key — the collector
    /// injects it on ingest instead.
    pub fn to_json(&self, source: Option<&str>) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"mono_ns\":");
        out.push_str(&self.mono_ns.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.name());
        out.push_str("\",\"target\":");
        write_json_str(&mut out, self.target);
        out.push_str(",\"msg\":");
        write_json_str(&mut out, self.msg);
        if self.trace_id != 0 {
            // Hex string: u64 ids do not survive an f64-based JSON
            // parser (the in-tree one) as numbers.
            out.push_str(",\"trace\":");
            write_json_str(&mut out, &format!("{:016x}", self.trace_id));
            out.push_str(",\"span\":");
            out.push_str(&self.span_id.to_string());
        }
        if let Some(src) = source {
            out.push_str(",\"source\":");
            write_json_str(&mut out, src);
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, k);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// One human-readable text line (what `locod logs` prints).
    pub fn to_text(&self) -> String {
        let secs = self.t_us / 1_000_000;
        let us = self.t_us % 1_000_000;
        let (h, m, s) = (secs / 3600 % 24, secs / 60 % 60, secs % 60);
        let mut out = format!(
            "{h:02}:{m:02}:{s:02}.{us:06} {:5} {:<12} {}",
            self.level.name().to_ascii_uppercase(),
            self.target,
            self.msg
        );
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            v.write_text(&mut out);
        }
        if self.trace_id != 0 {
            out.push_str(&format!(" trace={:016x}:{}", self.trace_id, self.span_id));
        }
        out
    }
}

// ----- the ring ---------------------------------------------------------

struct Ring {
    /// Per-slot guards: emitters claim a seq with `fetch_add` on
    /// `head`, then take only slot `seq % capacity`.
    slots: Vec<Mutex<Option<Event>>>,
    /// Next sequence number to claim (== total events ever emitted).
    head: AtomicU64,
    /// Identifies this process incarnation: a cursor obtained from a
    /// previous boot is detected by the reader and reset.
    boot_id: u64,
    /// Base for `mono_ns`.
    start: Instant,
}

static RING: OnceLock<Ring> = OnceLock::new();

fn ring() -> &'static Ring {
    RING.get_or_init(|| {
        let capacity = std::env::var("LOCO_LOG_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4096);
        let boot_id = wall_us() ^ ((std::process::id() as u64) << 48);
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            boot_id,
            start: Instant::now(),
        }
    })
}

fn wall_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Ring capacity in events (env `LOCO_LOG_RING`, default 4096).
pub fn capacity() -> usize {
    ring().slots.len()
}

/// This process incarnation's identity, carried in every [`tail_json`]
/// reply so a scraper can tell a restart from a quiet daemon.
pub fn boot_id() -> u64 {
    ring().boot_id
}

/// Total events emitted so far (== the next event's `seq`).
pub fn head_seq() -> u64 {
    ring().head.load(Ordering::Acquire)
}

// ----- span correlation -------------------------------------------------

thread_local! {
    /// `(trace_id, span_id)` of the operation this thread is serving.
    static CURRENT_SPAN: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// RAII guard restoring the previous span identity on drop.
pub struct SpanScope {
    prev: (u64, u64),
}

/// Enter a traced operation: until the guard drops, every event this
/// thread emits carries `(trace_id, span_id)`. Request dispatch sites
/// (the epoll worker, the threaded core, the sim endpoint) install one
/// around the service handler for sampled ops.
pub fn span_scope(trace_id: u64, span_id: u64) -> SpanScope {
    let prev = CURRENT_SPAN.with(|c| c.replace((trace_id, span_id)));
    SpanScope { prev }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        let _ = CURRENT_SPAN.try_with(|c| c.set(self.prev));
    }
}

/// The calling thread's current `(trace_id, span_id)` (0,0 = none).
pub fn current_span() -> (u64, u64) {
    CURRENT_SPAN.try_with(Cell::get).unwrap_or((0, 0))
}

// ----- emission ---------------------------------------------------------

/// Store one event. Called by the [`event!`] macro *after* the level
/// check; use the macro, not this, so disabled sites stay free.
pub fn emit(
    level: Level,
    target: &'static str,
    msg: &'static str,
    fields: Vec<(&'static str, Value)>,
) {
    let r = ring();
    let (trace_id, span_id) = current_span();
    let ev = Event {
        seq: r.head.fetch_add(1, Ordering::AcqRel),
        t_us: wall_us(),
        mono_ns: r.start.elapsed().as_nanos() as u64,
        level,
        target,
        msg,
        trace_id,
        span_id,
        fields,
    };
    if level as u8 >= STDERR_LEVEL.load(Ordering::Relaxed) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "[loco-log] {}", ev.to_text());
    }
    let slot = &r.slots[(ev.seq % r.slots.len() as u64) as usize];
    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(ev);
}

/// Emit a structured event:
///
/// ```ignore
/// loco_log::event!(Level::Info, "wal", "recovery complete";
///     replayed = n, truncated = t, path = dir.display().to_string());
/// ```
///
/// Field expressions are not evaluated unless `enabled(level)`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        if $crate::enabled($lvl) {
            $crate::emit(
                $lvl,
                $target,
                $msg,
                ::std::vec![$($( (stringify!($k), $crate::Value::from($v)) ),*)?],
            );
        }
    };
}

/// `event!` at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Error, $($tt)*) };
}
/// `event!` at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Warn, $($tt)*) };
}
/// `event!` at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Info, $($tt)*) };
}
/// `event!` at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Debug, $($tt)*) };
}
/// `event!` at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Trace, $($tt)*) };
}

/// Last-gasp diagnostic for abort paths (WAL fsync failure, armed
/// crash points): records an error event *and* writes the line
/// straight to stderr regardless of the mirror level — the ring dies
/// with the process, so stderr is the only surviving copy.
pub fn last_gasp(target: &'static str, msg: &'static str, detail: &str) {
    if enabled(Level::Error) {
        emit(
            Level::Error,
            target,
            msg,
            vec![("detail", Value::Str(detail.to_string()))],
        );
    }
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{detail}");
}

// ----- reading ----------------------------------------------------------

/// Result of one [`tail`] call.
#[derive(Clone, Debug, Default)]
pub struct Tail {
    /// Events with `seq >= cursor`, oldest first, contiguous.
    pub events: Vec<Event>,
    /// Oldest sequence still (approximately) in the ring.
    pub first_seq: u64,
    /// Pass this as the next call's `cursor`.
    pub next_seq: u64,
    /// Events that fell out of the ring between `cursor` and
    /// `first_seq` (the reader polled too slowly).
    pub dropped: u64,
}

/// Read events from `cursor` (inclusive), at most `max`. Lock-step
/// with writers: a slot whose event has not been stored yet ends the
/// scan (it is re-delivered next poll); a slot already overwritten by
/// a lap counts as dropped.
pub fn tail(cursor: u64, max: usize) -> Tail {
    let r = ring();
    let cap = r.slots.len() as u64;
    let head = r.head.load(Ordering::Acquire);
    let first = head.saturating_sub(cap);
    let from = cursor.max(first);
    let mut out = Tail {
        events: Vec::new(),
        first_seq: first,
        next_seq: from,
        dropped: from.saturating_sub(cursor),
    };
    for seq in from..head.min(from.saturating_add(max as u64)) {
        let slot = r.slots[(seq % cap) as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match &*slot {
            Some(ev) if ev.seq == seq => {
                out.events.push(ev.clone());
                out.next_seq = seq + 1;
            }
            Some(ev) if ev.seq > seq => {
                // Lapped while scanning: the event is gone.
                out.dropped += 1;
                out.next_seq = seq + 1;
            }
            // Claimed but not yet stored (writer in flight) — stop;
            // the cursor stays here and the next poll picks it up.
            _ => break,
        }
    }
    out
}

/// Render a [`tail`] as the JSON the `Logs` control frame returns:
/// `{"boot_id":"…","first":f,"next":n,"dropped":d,"events":[…]}`.
pub fn tail_json(cursor: u64, max: usize) -> String {
    let t = tail(cursor, max);
    let mut out = String::with_capacity(256 + t.events.len() * 128);
    out.push_str("{\"boot_id\":");
    write_json_str(&mut out, &format!("{:016x}", boot_id()));
    out.push_str(&format!(
        ",\"first\":{},\"next\":{},\"dropped\":{},\"events\":[",
        t.first_seq, t.next_seq, t.dropped
    ));
    for (i, ev) in t.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ev.to_json(None));
    }
    out.push_str("]}");
    out
}

/// Append the whole ring (oldest first) to `path` as JSONL, tagging
/// each line with `source`. Used by client processes whose rings the
/// collector cannot scrape over the wire.
pub fn dump_jsonl(path: &std::path::Path, source: &str) -> std::io::Result<usize> {
    let t = tail(0, usize::MAX);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for ev in &t.events {
        writeln!(f, "{}", ev.to_json(Some(source)))?;
    }
    f.flush()?;
    Ok(t.events.len())
}

/// If `LOCO_LOG_DUMP=path` is set, flush the ring there (tagged with
/// `LOCO_LOG_SOURCE`, default `"client"`). Harness binaries call this
/// before exiting so client-side events (reconnects, watchdog warns)
/// reach the collector's merged timeline.
pub fn dump_env() -> Option<usize> {
    let path = std::env::var("LOCO_LOG_DUMP").ok()?;
    let source = std::env::var("LOCO_LOG_SOURCE").unwrap_or_else(|_| "client".to_string());
    dump_jsonl(std::path::Path::new(&path), &source).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Level mutations are process-global; every test that touches the
    /// filter serializes here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn level_parsing_and_ordering() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("nonsense"), None);
    }

    #[test]
    fn emitted_events_come_back_in_order_with_fields() {
        let _g = lock();
        set_level(Some(Level::Debug));
        set_stderr_level(None);
        let start = head_seq();
        crate::info!("test.order", "first"; n = 1u64, name = "alpha");
        crate::warn!("test.order", "second"; ok = false);
        let t = tail(start, usize::MAX);
        let mine: Vec<&Event> = t
            .events
            .iter()
            .filter(|e| e.target == "test.order")
            .collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].msg, "first");
        assert_eq!(mine[0].fields[0], ("n", Value::U64(1)));
        assert_eq!(mine[0].fields[1], ("name", Value::Str("alpha".into())));
        assert_eq!(mine[1].level, Level::Warn);
        assert!(mine[0].seq < mine[1].seq);
    }

    #[test]
    fn disabled_levels_evaluate_nothing() {
        let _g = lock();
        set_level(Some(Level::Warn));
        set_stderr_level(None);
        let mut evaluated = false;
        crate::debug!("test.off", "below filter"; x = {
            evaluated = true;
            1u64
        });
        assert!(!evaluated, "field expressions must not run when filtered");
        crate::error!("test.off", "above filter"; x = {
            evaluated = true;
            1u64
        });
        assert!(evaluated);
    }

    #[test]
    fn span_scope_attaches_and_restores() {
        let _g = lock();
        set_level(Some(Level::Info));
        set_stderr_level(None);
        assert_eq!(current_span(), (0, 0));
        let start = head_seq();
        {
            let _s = span_scope(0xABCD, 7);
            crate::info!("test.span", "inside");
            {
                let _inner = span_scope(0xEF, 9);
                assert_eq!(current_span(), (0xEF, 9));
            }
            assert_eq!(current_span(), (0xABCD, 7));
        }
        assert_eq!(current_span(), (0, 0));
        let t = tail(start, usize::MAX);
        let ev = t
            .events
            .iter()
            .find(|e| e.target == "test.span")
            .expect("event recorded");
        assert_eq!((ev.trace_id, ev.span_id), (0xABCD, 7));
    }

    #[test]
    fn json_line_shape_and_escaping() {
        let ev = Event {
            seq: 3,
            t_us: 1_000_000,
            mono_ns: 42,
            level: Level::Warn,
            target: "net.conn",
            msg: "peer \"quoted\"\n",
            trace_id: 0x1234,
            span_id: 2,
            fields: vec![
                ("count", Value::U64(9)),
                ("path", Value::Str("/a b".into())),
            ],
        };
        let line = ev.to_json(Some("fms0"));
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"msg\":\"peer \\\"quoted\\\"\\n\""));
        assert!(line.contains("\"trace\":\"0000000000001234\""));
        assert!(line.contains("\"source\":\"fms0\""));
        assert!(line.contains("\"fields\":{\"count\":9,\"path\":\"/a b\"}"));
        // Text rendering carries the same information.
        let text = ev.to_text();
        assert!(text.contains("WARN"));
        assert!(text.contains("count=9"));
        assert!(text.contains("trace=0000000000001234:2"));
    }

    #[test]
    fn tail_cursor_protocol_is_contiguous() {
        let _g = lock();
        set_level(Some(Level::Info));
        set_stderr_level(None);
        let start = head_seq();
        for _ in 0..5 {
            crate::info!("test.cursor", "ev");
        }
        let t1 = tail(start, 2);
        assert_eq!(t1.events.len(), 2);
        assert_eq!(t1.next_seq, start + 2);
        let t2 = tail(t1.next_seq, usize::MAX);
        assert!(t2.events.iter().take(3).all(|e| e.target == "test.cursor"));
        assert_eq!(t2.events.first().unwrap().seq, start + 2);
    }

    #[test]
    fn tail_json_parses_as_expected_shape() {
        let _g = lock();
        set_level(Some(Level::Info));
        set_stderr_level(None);
        crate::info!("test.json", "one");
        let s = tail_json(0, 8);
        assert!(s.starts_with("{\"boot_id\":\""));
        assert!(s.contains("\"events\":["));
        assert!(s.ends_with("]}"));
    }
}
