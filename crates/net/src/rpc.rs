//! RPC envelopes: what actually travels inside a frame payload.
//!
//! A request frame carries an [`RpcRequest`] — the typed request body
//! plus the caller's optional trace-propagation context, so a sampled
//! slow op decomposes into the same client / net / software / KV terms
//! whether the server is in-process or across a socket. A response
//! frame carries an [`RpcResponse`] — the typed response body, the
//! handler's virtual cost (the `Service::take_cost` contract crosses
//! the wire, keeping visit traces transport-independent), and the
//! [`SpanReply`] attribution for traced calls.
//!
//! `SpanReply` and `TraceCtx` are encoded field-by-field here rather
//! than via `impl Wire` in their home crates, because `loco-obs` must
//! not depend on `loco-types` (orphan rule + layering).

use loco_obs::trace::TraceCtx;
use loco_sim::time::Nanos;
use loco_types::wire::{Wire, WireError, WireResult};
use std::collections::HashSet;
use std::sync::Mutex;

/// Span attribution computed server-side for a traced call: only the
/// server side is generic over the service, so it alone can resolve
/// the request label and read `Service::span_attrs`. Travels back in
/// the reply — over a channel for `ThreadEndpoint`, inside an
/// [`RpcResponse`] for the TCP transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanReply {
    /// The service's `req_label` for the handled request.
    pub op: &'static str,
    /// Real (wall-clock) queue wait before the handler ran.
    pub queue_ns: Nanos,
    /// Numeric attribution from `Service::span_attrs` (kv/software
    /// split, byte volumes).
    pub attrs: Vec<(&'static str, u64)>,
}

// ----- string interning -------------------------------------------------

/// Upper bound on distinct interned strings. The real vocabulary is
/// tiny (op labels + span attr keys, a few dozen); the cap stops a
/// malicious peer from leaking unbounded memory through fresh labels.
const INTERN_CAP: usize = 1024;

/// Label returned once the intern table is full.
const INTERN_OVERFLOW: &str = "?";

/// Intern a decoded label, returning a `&'static str`. Span labels and
/// attr keys are `&'static str` throughout the tracing stack (they are
/// string literals in-process); decoding from the wire reconstructs
/// that via a small leaked, capped table.
pub fn intern(s: &str) -> &'static str {
    static TABLE: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut guard = TABLE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let table = guard.get_or_insert_with(HashSet::new);
    if let Some(hit) = table.get(s) {
        return hit;
    }
    if table.len() >= INTERN_CAP {
        return INTERN_OVERFLOW;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

fn put_static_str(s: &str, out: &mut Vec<u8>) {
    (s.len() as u32).put(out);
    out.extend_from_slice(s.as_bytes());
}

fn get_interned_str(buf: &mut &[u8]) -> WireResult<&'static str> {
    let s = String::get(buf)?;
    Ok(intern(&s))
}

impl Wire for SpanReply {
    fn put(&self, out: &mut Vec<u8>) {
        put_static_str(self.op, out);
        self.queue_ns.put(out);
        (self.attrs.len() as u32).put(out);
        for (k, v) in &self.attrs {
            put_static_str(k, out);
            v.put(out);
        }
    }
    fn get(buf: &mut &[u8]) -> WireResult<Self> {
        let op = get_interned_str(buf)?;
        let queue_ns = Nanos::get(buf)?;
        let count = u32::get(buf)? as usize;
        if count > buf.len() {
            return Err(WireError::Oversized {
                what: "span-attrs",
                len: count as u64,
            });
        }
        let mut attrs = Vec::with_capacity(count);
        for _ in 0..count {
            attrs.push((get_interned_str(buf)?, u64::get(buf)?));
        }
        Ok(SpanReply {
            op,
            queue_ns,
            attrs,
        })
    }
}

fn put_trace_ctx(t: &TraceCtx, out: &mut Vec<u8>) {
    t.trace_id.put(out);
    t.span_id.put(out);
    t.parent.put(out);
    t.sampled.put(out);
}

fn get_trace_ctx(buf: &mut &[u8]) -> WireResult<TraceCtx> {
    Ok(TraceCtx {
        trace_id: u64::get(buf)?,
        span_id: u32::get(buf)?,
        parent: u32::get(buf)?,
        sampled: bool::get(buf)?,
    })
}

// ----- request / response envelopes ------------------------------------

/// Client → server payload of a `Request` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcRequest<Req> {
    /// Remaining deadline budget of the caller's operation in
    /// milliseconds, measured when the frame was (re)sent; `0` means
    /// "no deadline". Servers drop the request (without executing it)
    /// once this much time has passed since the frame arrived. Encoded
    /// *first* and fixed-width so the server can read it — and the
    /// body tag behind it — before decoding anything. Adding this
    /// field changed the request codec — frame protocol v3
    /// ([`crate::frame::VERSION`]).
    pub budget_ms: u32,
    /// Trace propagation context of the caller's sampled op, if any —
    /// asks the server to attach a [`SpanReply`].
    pub trace: Option<TraceCtx>,
    /// The typed request.
    pub body: Req,
}

impl<Req: Wire> Wire for RpcRequest<Req> {
    fn put(&self, out: &mut Vec<u8>) {
        self.budget_ms.put(out);
        match &self.trace {
            None => out.push(0),
            Some(t) => {
                out.push(1);
                put_trace_ctx(t, out);
            }
        }
        self.body.put(out);
    }
    fn get(buf: &mut &[u8]) -> WireResult<Self> {
        let budget_ms = u32::get(buf)?;
        let trace = match u8::get(buf)? {
            0 => None,
            1 => Some(get_trace_ctx(buf)?),
            tag => return Err(WireError::BadTag { what: "trace", tag }),
        };
        Ok(RpcRequest {
            budget_ms,
            trace,
            body: Req::get(buf)?,
        })
    }
}

// ----- guard fast-path peeking ------------------------------------------

/// Byte offset of the `budget_ms` field in an encoded [`RpcRequest`].
const REQ_BUDGET_OFF: usize = 0;
/// Byte offset of the trace presence tag in an encoded [`RpcRequest`].
const REQ_TRACE_OFF: usize = 4;
/// Encoded size of a [`TraceCtx`] (u64 + u32 + u32 + bool).
const TRACE_CTX_LEN: usize = 17;

/// Read the `budget_ms` field out of an encoded [`RpcRequest`] payload
/// without decoding it. `None` if the payload is too short to be one.
pub fn peek_budget_ms(payload: &[u8]) -> Option<u32> {
    let b = payload.get(REQ_BUDGET_OFF..REQ_BUDGET_OFF + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Overwrite the `budget_ms` field of an already-encoded
/// [`RpcRequest`] payload in place (the client restamps the remaining
/// budget on every retry attempt without re-encoding the body). False
/// if the payload is too short.
pub fn restamp_budget_ms(payload: &mut [u8], budget_ms: u32) -> bool {
    match payload.get_mut(REQ_BUDGET_OFF..REQ_BUDGET_OFF + 4) {
        Some(b) => {
            b.copy_from_slice(&budget_ms.to_le_bytes());
            true
        }
        None => false,
    }
}

/// Read the request-body enum tag out of an encoded [`RpcRequest`]
/// payload without decoding it — the first body byte sits right after
/// the fixed-width budget and the (optional, fixed-width) trace
/// context. `None` when the payload is malformed; the caller falls
/// back to the conservative path (full decode / treat as mutation).
pub fn peek_body_tag(payload: &[u8]) -> Option<u8> {
    let body_off = match *payload.get(REQ_TRACE_OFF)? {
        0 => REQ_TRACE_OFF + 1,
        1 => REQ_TRACE_OFF + 1 + TRACE_CTX_LEN,
        _ => return None,
    };
    payload.get(body_off).copied()
}

// ----- guard reject codes -----------------------------------------------

/// Payload byte of a [`crate::frame::FrameKind::Error`] frame: the
/// request was shed at admission (server past its inflight or
/// queue-depth watermark).
pub const REJECT_OVERLOADED: u8 = 1;
/// Payload byte of a [`crate::frame::FrameKind::Error`] frame: the
/// request's deadline budget expired while it sat in a server queue.
pub const REJECT_EXPIRED: u8 = 2;

/// Replication stamp a replicated service attaches to every reply:
/// the server's fencing epoch, and whether the request was *rejected*
/// because this server is not the primary (fenced or standby). Clients
/// seeing `fenced = true` redial through an updated cluster view
/// instead of retrying the same address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplStamp {
    /// The server's current fencing epoch.
    pub epoch: u64,
    /// The request was rejected for fencing reasons (not primary).
    pub fenced: bool,
}

impl Wire for ReplStamp {
    fn put(&self, out: &mut Vec<u8>) {
        self.epoch.put(out);
        self.fenced.put(out);
    }
    fn get(buf: &mut &[u8]) -> WireResult<Self> {
        Ok(ReplStamp {
            epoch: u64::get(buf)?,
            fenced: bool::get(buf)?,
        })
    }
}

/// Server → client payload of a `Response` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcResponse<Resp> {
    /// Virtual cost of the handler run (`Service::take_cost`).
    pub cost: Nanos,
    /// Span attribution, present iff the request carried a sampled
    /// trace context.
    pub span: Option<SpanReply>,
    /// Replication stamp (`Service::take_repl_stamp`): present on every
    /// reply from a replicated service, absent otherwise. Adding this
    /// field changed the reply codec — frame protocol v2
    /// ([`crate::frame::VERSION`]).
    pub repl: Option<ReplStamp>,
    /// The typed response.
    pub body: Resp,
}

impl<Resp: Wire> Wire for RpcResponse<Resp> {
    fn put(&self, out: &mut Vec<u8>) {
        self.cost.put(out);
        self.span.put(out);
        self.repl.put(out);
        self.body.put(out);
    }
    fn get(buf: &mut &[u8]) -> WireResult<Self> {
        Ok(RpcResponse {
            cost: Nanos::get(buf)?,
            span: Option::<SpanReply>::get(buf)?,
            repl: Option::<ReplStamp>::get(buf)?,
            body: Resp::get(buf)?,
        })
    }
}

// ----- control plane ----------------------------------------------------

/// Out-of-band messages a client (or the launcher) can send on any
/// connection, framed as `FrameKind::Control`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe; the launcher polls this until a daemon is up.
    Ping,
    /// Ask the server for its Prometheus metrics text.
    Metrics,
    /// Ask the server to drain in-flight requests and exit.
    Shutdown,
    /// Ask the server for its folded-stack profile (loco-prof): per-RPC
    /// service time split into software and KV frames, in inferno text.
    Profile,
    /// Ask the server for its metrics time-series window as JSON
    /// (periodic counter deltas + gauge levels; see
    /// `loco_obs::TimeSeriesRing`).
    Series,
    /// Tail the server's structured log ring (loco-log) from `cursor`,
    /// returning at most `max` events as JSON. `cursor = 0` starts at
    /// the oldest retained event; the reply's `next` field is the
    /// cursor for the following call, and its `boot_id` lets a scraper
    /// detect a daemon restart (sequence numbers reset).
    Logs {
        /// First sequence number wanted (inclusive).
        cursor: u64,
        /// Cap on returned events (bounds the reply frame size).
        max: u32,
    },
}

/// Server reply to a [`Control`] message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlReply {
    /// Ping answer.
    Pong,
    /// Rendered Prometheus exposition text.
    Metrics(String),
    /// Shutdown acknowledged; the server closes after draining.
    ShuttingDown,
    /// Folded-stack profile text (`stack value` lines).
    Profile(String),
    /// Time-series window JSON; empty object when the daemon was not
    /// started with a series ring.
    Series(String),
    /// Log-tail JSON: `{"boot_id":…,"first":…,"next":…,"dropped":…,
    /// "events":[…]}` (see `loco_log::tail_json`).
    Logs(String),
}

impl Wire for Control {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Control::Ping => out.push(0),
            Control::Metrics => out.push(1),
            Control::Shutdown => out.push(2),
            Control::Profile => out.push(3),
            Control::Series => out.push(4),
            Control::Logs { cursor, max } => {
                out.push(5);
                cursor.put(out);
                max.put(out);
            }
        }
    }
    fn get(buf: &mut &[u8]) -> WireResult<Self> {
        Ok(match u8::get(buf)? {
            0 => Control::Ping,
            1 => Control::Metrics,
            2 => Control::Shutdown,
            3 => Control::Profile,
            4 => Control::Series,
            5 => Control::Logs {
                cursor: u64::get(buf)?,
                max: u32::get(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "control",
                    tag,
                })
            }
        })
    }
}

impl Wire for ControlReply {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            ControlReply::Pong => out.push(0),
            ControlReply::Metrics(text) => {
                out.push(1);
                text.put(out);
            }
            ControlReply::ShuttingDown => out.push(2),
            ControlReply::Profile(text) => {
                out.push(3);
                text.put(out);
            }
            ControlReply::Series(text) => {
                out.push(4);
                text.put(out);
            }
            ControlReply::Logs(text) => {
                out.push(5);
                text.put(out);
            }
        }
    }
    fn get(buf: &mut &[u8]) -> WireResult<Self> {
        Ok(match u8::get(buf)? {
            0 => ControlReply::Pong,
            1 => ControlReply::Metrics(String::get(buf)?),
            2 => ControlReply::ShuttingDown,
            3 => ControlReply::Profile(String::get(buf)?),
            4 => ControlReply::Series(String::get(buf)?),
            5 => ControlReply::Logs(String::get(buf)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "control-reply",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_capped() {
        let a = intern("kv_ns");
        let b = intern("kv_ns");
        assert!(std::ptr::eq(a, b), "same allocation on re-intern");
        assert_eq!(intern("sw_ns"), "sw_ns");
    }

    #[test]
    fn span_reply_roundtrip() {
        let span = SpanReply {
            op: "Mkdir",
            queue_ns: 1234,
            attrs: vec![("kv_ns", 900), ("sw_ns", 100)],
        };
        let back = SpanReply::from_wire(&span.to_wire()).unwrap();
        assert_eq!(back, span);
    }

    #[test]
    fn rpc_request_roundtrip_with_and_without_trace() {
        let req = RpcRequest {
            budget_ms: 1500,
            trace: Some(TraceCtx {
                trace_id: 99,
                span_id: 1,
                parent: 0,
                sampled: true,
            }),
            body: 7u64,
        };
        let back = RpcRequest::<u64>::from_wire(&req.to_wire()).unwrap();
        assert_eq!(back.trace, req.trace);
        assert_eq!(back.budget_ms, 1500);
        assert_eq!(back.body, 7);

        let req = RpcRequest {
            budget_ms: 0,
            trace: None,
            body: 7u64,
        };
        let back = RpcRequest::<u64>::from_wire(&req.to_wire()).unwrap();
        assert!(back.trace.is_none());
        assert_eq!(back.budget_ms, 0);
    }

    #[test]
    fn budget_peek_and_restamp_match_codec() {
        for trace in [
            None,
            Some(TraceCtx {
                trace_id: 1,
                span_id: 2,
                parent: 0,
                sampled: true,
            }),
        ] {
            let mut bytes = RpcRequest {
                budget_ms: 250,
                trace,
                body: 0xABu8, // body tag byte for an enum would sit here
            }
            .to_wire();
            assert_eq!(peek_budget_ms(&bytes), Some(250));
            assert_eq!(peek_body_tag(&bytes), Some(0xAB));
            assert!(restamp_budget_ms(&mut bytes, 75));
            let back = RpcRequest::<u8>::from_wire(&bytes).unwrap();
            assert_eq!(back.budget_ms, 75);
            assert_eq!(back.body, 0xAB);
        }
        // Degenerate payloads peek to None, not panic.
        assert_eq!(peek_budget_ms(&[1, 2]), None);
        assert_eq!(peek_body_tag(&[0, 0, 0, 0]), None);
        assert_eq!(peek_body_tag(&[0, 0, 0, 0, 9]), None);
    }

    #[test]
    fn rpc_response_roundtrip() {
        let resp = RpcResponse {
            cost: 5000,
            span: Some(SpanReply {
                op: "Stat",
                queue_ns: 7,
                attrs: vec![("kv_bytes_read", 72)],
            }),
            repl: Some(ReplStamp {
                epoch: 3,
                fenced: true,
            }),
            body: String::from("ok"),
        };
        let back = RpcResponse::<String>::from_wire(&resp.to_wire()).unwrap();
        assert_eq!(back.cost, 5000);
        assert_eq!(back.span, resp.span);
        assert_eq!(back.repl, resp.repl);
        assert_eq!(back.body, "ok");
    }

    #[test]
    fn control_roundtrip() {
        for c in [
            Control::Ping,
            Control::Metrics,
            Control::Shutdown,
            Control::Profile,
            Control::Series,
            Control::Logs {
                cursor: 987,
                max: 512,
            },
        ] {
            assert_eq!(Control::from_wire(&c.to_wire()), Ok(c));
        }
        for r in [
            ControlReply::Pong,
            ControlReply::Metrics("# HELP x\n".into()),
            ControlReply::ShuttingDown,
            ControlReply::Profile("dms0;Mknod;kv 9\n".into()),
            ControlReply::Series("{\"points\":[]}".into()),
            ControlReply::Logs("{\"events\":[]}".into()),
        ] {
            let back = ControlReply::from_wire(&r.to_wire()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn corrupt_envelopes_rejected() {
        let resp = RpcResponse {
            cost: 1,
            span: None,
            repl: None,
            body: 9u32,
        };
        let bytes = resp.to_wire();
        for cut in 0..bytes.len() {
            assert!(RpcResponse::<u32>::from_wire(&bytes[..cut]).is_err());
        }
        assert!(Control::from_wire(&[9]).is_err());
    }
}
