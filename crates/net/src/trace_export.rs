//! Export recorded visit traces as Chrome trace-event timelines.
//!
//! Every filesystem operation leaves a [`JobTrace`]: the ordered server
//! visits (each with its virtual service cost) plus client-side work.
//! This module lays a sequence of such operations out on a single
//! virtual timeline — each visit costs one RTT plus its service time,
//! exactly the unloaded-latency model — and emits one *client* span per
//! operation with nested *server* spans per visit. The result loads
//! directly into `about://tracing` / Perfetto via
//! [`loco_obs::chrome_trace_json`].

use crate::metrics::role_name;
use loco_obs::trace_event::TraceSpan;
use loco_sim::des::JobTrace;
use loco_sim::time::Nanos;

fn us(ns: Nanos) -> f64 {
    ns as f64 / 1_000.0
}

/// Convert a sequence of `(op_name, trace)` pairs into trace spans on
/// one timeline. Operations run back to back; within an operation each
/// visit takes `rtt + service` (half the RTT out, the server span,
/// half back), then client work runs, so each client span's duration
/// equals [`JobTrace::unloaded_latency`].
pub fn op_spans(ops: &[(String, JobTrace)], rtt: Nanos) -> Vec<TraceSpan> {
    let mut spans = Vec::new();
    let mut t: Nanos = 0;
    for (name, trace) in ops {
        let start = t;
        let mut cursor = t;
        let mut visit_spans = Vec::with_capacity(trace.visits.len());
        for v in &trace.visits {
            let server_start = cursor + rtt / 2;
            visit_spans.push(TraceSpan {
                name: format!("{}{}", role_name(v.server.class), v.server.index),
                cat: "server".into(),
                pid: v.server.class as u32 + 1,
                tid: v.server.index as u32,
                ts_us: us(server_start),
                dur_us: us(v.service),
                args: vec![
                    ("op".into(), name.clone()),
                    ("service_ns".into(), v.service.to_string()),
                ],
            });
            cursor = server_start + v.service + (rtt - rtt / 2);
        }
        cursor += trace.client_work;
        spans.push(TraceSpan {
            name: name.clone(),
            cat: "client".into(),
            pid: 0,
            tid: 0,
            ts_us: us(start),
            dur_us: us(cursor - start),
            // Keys sorted: JSON objects serialize in key order, so
            // sorted args make the Chrome-trace round trip lossless.
            args: vec![
                ("client_work_ns".into(), trace.client_work.to_string()),
                ("round_trips".into(), trace.visits.len().to_string()),
            ],
        });
        spans.extend(visit_spans);
        t = cursor;
    }
    spans
}

/// [`op_spans`] serialized straight to a Chrome trace-event JSON
/// document.
pub fn chrome_trace_of_ops(ops: &[(String, JobTrace)], rtt: Nanos) -> String {
    loco_obs::chrome_trace_json(&op_spans(ops, rtt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_sim::des::{ServerId, Visit};
    use loco_sim::time::MICROS;

    fn two_visit_trace() -> JobTrace {
        JobTrace {
            visits: vec![
                Visit {
                    server: ServerId::new(crate::class::DMS, 1),
                    service: 20 * MICROS,
                },
                Visit {
                    server: ServerId::new(crate::class::FMS, 3),
                    service: 35 * MICROS,
                },
            ],
            client_work: 4 * MICROS,
        }
    }

    #[test]
    fn client_span_duration_matches_unloaded_latency() {
        let rtt = 174 * MICROS;
        let ops = vec![("create".to_string(), two_visit_trace())];
        let spans = op_spans(&ops, rtt);
        let client = &spans[0];
        assert_eq!(client.name, "create");
        let expect_us = ops[0].1.unloaded_latency(rtt) as f64 / 1_000.0;
        assert!((client.dur_us - expect_us).abs() < 1e-9);
    }

    #[test]
    fn server_spans_nest_inside_client_span_in_visit_order() {
        let rtt = 174 * MICROS;
        let ops = vec![("create".to_string(), two_visit_trace())];
        let spans = op_spans(&ops, rtt);
        let (client, servers) = (&spans[0], &spans[1..]);
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].name, "dms1");
        assert_eq!(servers[1].name, "fms3");
        for s in servers {
            assert!(client.encloses(s), "server span inside client span");
        }
        // DMS visit completes (plus the return trip) before the FMS
        // visit starts.
        assert!(servers[0].end_us() < servers[1].ts_us);
    }

    #[test]
    fn sequential_ops_do_not_overlap() {
        let rtt = 10 * MICROS;
        let ops = vec![
            ("mkdir".to_string(), two_visit_trace()),
            ("create".to_string(), two_visit_trace()),
        ];
        let spans = op_spans(&ops, rtt);
        let clients: Vec<_> = spans.iter().filter(|s| s.cat == "client").collect();
        assert_eq!(clients.len(), 2);
        assert!(clients[0].end_us() <= clients[1].ts_us + 1e-9);
    }
}
