#![warn(missing_docs)]
//! # loco-net — RPC layer between LocoFS clients and metadata servers
//!
//! The paper's analysis (§2.2.1) shows that metadata performance is
//! governed by how many network round trips an operation needs, not by
//! bandwidth. This crate therefore models an RPC as:
//!
//! ```text
//! latency(op) = Σ_visits (RTT + queueing + service)
//! ```
//!
//! A server is a [`Service`]: a request handler that also reports the
//! virtual cost of the work it just did (drained from its KV stores'
//! cost accumulators). Two endpoint flavours expose a service to
//! clients:
//!
//! * [`SimEndpoint`] — executes the handler synchronously in the calling
//!   thread and records a [`Visit`] into the caller's [`CallCtx`]. This
//!   is the *execute-then-replay* path used by every benchmark: the
//!   recorded [`JobTrace`] is either summed for unloaded latency or fed
//!   to `loco-sim`'s closed-loop simulator for throughput.
//! * [`ThreadEndpoint`] — runs the service on its own OS thread behind a
//!   channel, giving real cross-thread request/response behaviour for
//!   integration tests and the example applications.
//! * [`TcpEndpoint`] — speaks the framed wire protocol ([`frame`],
//!   [`rpc`]) to a server hosted by [`serve_tcp`] in another process
//!   (the `locod` daemon), with connection pooling, request-ID
//!   multiplexing, per-call deadlines and retry with backoff.
//!
//! All flavours produce identical visit traces for identical request
//! sequences, which the integration tests verify. Either flavour can
//! carry [`EndpointMetrics`] — per-server request counts, service-time
//! and queue-wait histograms and an in-flight gauge, reported into a
//! shared [`loco_obs::MetricsRegistry`] — and [`trace_export`] renders
//! recorded traces as Chrome trace-event timelines.

pub mod endpoint;
mod event_loop;
pub mod frame;
pub mod metrics;
pub mod poller;
pub mod rpc;
pub mod tcp;
pub mod threaded;
mod threaded_core;
pub mod trace_export;

pub use endpoint::{
    CallCtx, CommitFsync, Endpoint, MaintainReport, RpcError, Service, SimEndpoint,
};
pub use metrics::{role_name, EndpointMetrics, ServerMetrics};
pub use poller::{Interest, Poller, PollerEvent};
pub use rpc::{
    Control, ControlReply, ReplStamp, RpcRequest, RpcResponse, SpanReply, REJECT_EXPIRED,
    REJECT_OVERLOADED,
};
pub use tcp::{
    control, serve_tcp, serve_tcp_shared, RetryPolicy, ServeOptions, TcpEndpoint, TcpServerGuard,
};
pub use threaded::{spawn, spawn_with_metrics, ThreadEndpoint, ThreadServerGuard};
pub use trace_export::{chrome_trace_of_ops, op_spans};

pub use loco_obs::trace::{OpTrace, TraceCtx, VisitSpan};
pub use loco_sim::des::{JobTrace, ServerId, Visit};
pub use loco_sim::time::Nanos;

/// Server-role classes used across the workspace for [`ServerId::class`].
pub mod class {
    /// Directory Metadata Server.
    pub const DMS: u8 = 0;
    /// File Metadata Server.
    pub const FMS: u8 = 1;
    /// Object store server.
    pub const OST: u8 = 2;
    /// Generic metadata server used by baseline models.
    pub const MDS: u8 = 3;
}
