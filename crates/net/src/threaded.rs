//! Threaded endpoint: each service runs on its own OS thread behind an
//! mpsc channel, providing real concurrent request/response behaviour
//! (the deployment shape of the original system: one server process
//! per metadata node).

use crate::endpoint::{CallCtx, Endpoint, Service};
use crate::metrics::EndpointMetrics;
use crate::rpc::SpanReply;
use loco_sim::des::ServerId;
use loco_sim::time::Nanos;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

enum Envelope<Req, Resp> {
    Call {
        req: Req,
        sent: Instant,
        /// Whether the caller's op is sampled; asks the server to
        /// attach a [`SpanReply`].
        traced: bool,
        reply: Sender<(Resp, Nanos, Option<SpanReply>)>,
    },
    Shutdown,
}

/// Client-side handle to a service running on its own thread. Cloning
/// yields another handle to the same server (clients multiplex over the
/// same request channel).
pub struct ThreadEndpoint<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
    id: ServerId,
}

impl<Req, Resp> Clone for ThreadEndpoint<Req, Resp> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            id: self.id,
        }
    }
}

/// Owns the server thread; joins it on drop. Keep this alive for the
/// lifetime of the cluster.
pub struct ThreadServerGuard<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
    handle: Option<JoinHandle<()>>,
}

impl<Req, Resp> Drop for ThreadServerGuard<Req, Resp> {
    fn drop(&mut self) {
        let _ = self.tx.send(Envelope::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Endpoint handle plus the guard that stops the server thread when
/// dropped — what [`spawn`] returns.
pub type Spawned<S> = (
    ThreadEndpoint<<S as Service>::Req, <S as Service>::Resp>,
    ThreadServerGuard<<S as Service>::Req, <S as Service>::Resp>,
);

/// Spawn `svc` on a dedicated thread. Returns the endpoint handle plus a
/// guard that stops the thread when dropped.
pub fn spawn<S>(id: ServerId, svc: S) -> Spawned<S>
where
    S: Service + 'static,
{
    spawn_with_metrics(id, svc, None)
}

/// Like [`spawn`], with instrumentation: the server thread records each
/// request's count, service time, queue wait (channel residence) and
/// in-flight status into `metrics`.
pub fn spawn_with_metrics<S>(
    id: ServerId,
    mut svc: S,
    metrics: Option<Arc<EndpointMetrics>>,
) -> Spawned<S>
where
    S: Service + 'static,
{
    let (tx, rx) = channel::<Envelope<S::Req, S::Resp>>();
    let handle = std::thread::Builder::new()
        .name(format!("loco-server-{}-{}", id.class, id.index))
        .spawn(move || {
            while let Ok(env) = rx.recv() {
                match env {
                    Envelope::Call {
                        req,
                        sent,
                        traced,
                        reply,
                    } => {
                        let queue_wait = sent.elapsed().as_nanos() as Nanos;
                        let op = S::req_label(&req);
                        if let Some(m) = &metrics {
                            m.begin();
                        }
                        let alloc0 = loco_obs::alloc::snapshot();
                        let resp = svc.handle(req);
                        let (allocs, alloc_bytes) = alloc0.delta();
                        let cost = svc.take_cost();
                        let attrs = if traced || metrics.is_some() {
                            svc.span_attrs()
                        } else {
                            Vec::new()
                        };
                        let span = traced.then(|| {
                            let mut attrs = attrs.clone();
                            attrs.push(("allocs", allocs));
                            attrs.push(("alloc_bytes", alloc_bytes));
                            SpanReply {
                                op,
                                queue_ns: queue_wait,
                                attrs,
                            }
                        });
                        if let Some(m) = &metrics {
                            let kv_ns = attrs
                                .iter()
                                .find(|(k, _)| *k == "kv_ns")
                                .map(|(_, v)| *v)
                                .unwrap_or(0);
                            m.observe_profiled(op, cost, queue_wait, kv_ns, allocs, alloc_bytes);
                        }
                        // A dropped reply sender just means the client
                        // went away; keep serving.
                        let _ = reply.send((resp, cost, span));
                    }
                    Envelope::Shutdown => break,
                }
            }
        })
        .expect("spawn server thread");
    (
        ThreadEndpoint { tx: tx.clone(), id },
        ThreadServerGuard {
            tx,
            handle: Some(handle),
        },
    )
}

impl<Req, Resp> Endpoint<Req, Resp> for ThreadEndpoint<Req, Resp>
where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    fn call(&self, ctx: &mut CallCtx, req: Req) -> Resp {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .send(Envelope::Call {
                req,
                sent: Instant::now(),
                traced: ctx.is_traced(),
                reply: reply_tx,
            })
            .expect("server thread alive");
        let (resp, cost, span) = reply_rx.recv().expect("server reply");
        ctx.record(self.id, cost);
        if let Some(s) = span {
            ctx.record_span(self.id, s.op, cost, s.queue_ns, s.attrs);
        }
        resp
    }

    fn id(&self) -> ServerId {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::test_service::Adder;
    use loco_sim::time::MICROS;

    #[test]
    fn threaded_call_roundtrip() {
        let (ep, _guard) = spawn(ServerId::new(1, 0), Adder::new(3 * MICROS));
        let mut ctx = CallCtx::new();
        assert_eq!(ep.call(&mut ctx, 7), 7);
        assert_eq!(ep.call(&mut ctx, 3), 10);
        assert_eq!(ctx.round_trips(), 2);
        assert_eq!(ctx.visits()[1].service, 3 * MICROS);
    }

    #[test]
    fn concurrent_clients_serialize_on_server() {
        let (ep, _guard) = spawn(ServerId::new(1, 1), Adder::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ep = ep.clone();
            handles.push(std::thread::spawn(move || {
                let mut ctx = CallCtx::new();
                for _ in 0..100 {
                    ep.call(&mut ctx, 1);
                }
                ctx.round_trips()
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 800);
        let mut ctx = CallCtx::new();
        // 801st request observes all 800 increments.
        assert_eq!(ep.call(&mut ctx, 0), 800);
    }

    #[test]
    fn guard_drop_stops_server_thread() {
        let (ep, guard) = spawn(ServerId::new(1, 2), Adder::new(0));
        drop(guard);
        // The endpoint's channel may still accept sends, but the server
        // has exited; we only assert the guard's drop didn't hang.
        drop(ep);
    }

    #[test]
    fn visit_traces_match_sim_endpoint() {
        use crate::endpoint::SimEndpoint;
        let id = ServerId::new(2, 0);
        let sim = SimEndpoint::new(id, Adder::new(9 * MICROS));
        let (thr, _guard) = spawn(id, Adder::new(9 * MICROS));
        let mut cs = CallCtx::new();
        let mut ct = CallCtx::new();
        for i in 0..10 {
            assert_eq!(sim.call(&mut cs, i), thr.call(&mut ct, i));
        }
        assert_eq!(cs.take_trace().visits, ct.take_trace().visits);
    }

    #[test]
    fn threaded_metrics_count_requests_and_service_time() {
        use loco_obs::MetricsRegistry;
        let reg = MetricsRegistry::shared();
        let id = ServerId::new(crate::class::FMS, 0);
        let m = EndpointMetrics::register(&reg, id);
        let (ep, guard) = spawn_with_metrics(id, Adder::new(2 * MICROS), Some(m.clone()));
        let mut ctx = CallCtx::new();
        for i in 0..5 {
            ep.call(&mut ctx, i);
        }
        // Synchronous calls: by the time the reply arrives, the server
        // recorded the request.
        assert_eq!(m.requests(), 5);
        assert_eq!(m.service_total(), 5 * 2 * MICROS);
        assert_eq!(m.inflight(), 0);
        drop(guard);
    }
}
