//! Service trait, per-operation call context, and the synchronous
//! simulated endpoint.

use crate::metrics::EndpointMetrics;
use loco_sim::des::{JobTrace, ServerId, Visit};
use loco_sim::time::Nanos;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A metadata or storage server: handles typed requests and reports the
/// virtual cost of each handler invocation.
pub trait Service: Send {
    /// Request message type.
    type Req: Send + 'static;
    /// Response message type.
    type Resp: Send + 'static;

    /// Process one request, mutating server state.
    fn handle(&mut self, req: Self::Req) -> Self::Resp;

    /// Drain the virtual cost accumulated by the last handler run
    /// (typically the sum of the KV stores' cost accumulators plus
    /// fixed per-request software overhead).
    fn take_cost(&mut self) -> Nanos;

    /// Short static label describing the request's RPC type, used to
    /// bucket per-op service-time histograms (e.g. `"Mkdir"`). The
    /// default collapses every request into a single bucket.
    fn req_label(_req: &Self::Req) -> &'static str {
        "req"
    }
}

/// Per-operation context threaded through every RPC a filesystem
/// operation makes. Collects the visit trace that drives both latency
/// and throughput figures.
#[derive(Clone, Debug, Default)]
pub struct CallCtx {
    visits: Vec<Visit>,
    client_work: Nanos,
}

impl CallCtx {
    /// Create a new instance with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one server visit.
    pub fn record(&mut self, server: ServerId, service: Nanos) {
        self.visits.push(Visit { server, service });
    }

    /// Charge client-side CPU work (path parsing, cache management).
    pub fn charge_client(&mut self, ns: Nanos) {
        self.client_work += ns;
    }

    /// Number of round trips made so far.
    pub fn round_trips(&self) -> usize {
        self.visits.len()
    }

    /// Visits recorded so far.
    pub fn visits(&self) -> &[Visit] {
        &self.visits
    }

    /// Finish the operation: drain into a replayable trace.
    pub fn take_trace(&mut self) -> JobTrace {
        JobTrace {
            visits: std::mem::take(&mut self.visits),
            client_work: std::mem::replace(&mut self.client_work, 0),
        }
    }
}

/// Anything a client can send requests to.
pub trait Endpoint<Req, Resp>: Send + Sync {
    /// Issue one request, recording the visit into `ctx`.
    fn call(&self, ctx: &mut CallCtx, req: Req) -> Resp;

    /// Stable identity of the server behind this endpoint.
    fn id(&self) -> ServerId;

    /// Whether the server is currently marked unreachable (failure
    /// injection). Clients must check before calling; calling a down
    /// endpoint is a caller bug.
    fn is_down(&self) -> bool {
        false
    }
}

/// Synchronous in-process endpoint: the handler runs on the caller's
/// thread; timing is purely virtual. Cloning shares the same server.
pub struct SimEndpoint<S: Service> {
    svc: Arc<Mutex<S>>,
    id: ServerId,
    down: Arc<std::sync::atomic::AtomicBool>,
    metrics: Option<Arc<EndpointMetrics>>,
}

impl<S: Service> Clone for SimEndpoint<S> {
    fn clone(&self) -> Self {
        Self {
            svc: Arc::clone(&self.svc),
            id: self.id,
            down: Arc::clone(&self.down),
            metrics: self.metrics.clone(),
        }
    }
}

impl<S: Service> SimEndpoint<S> {
    /// Create a new instance with default settings.
    pub fn new(id: ServerId, svc: S) -> Self {
        Self {
            svc: Arc::new(Mutex::new(svc)),
            id,
            down: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            metrics: None,
        }
    }

    /// Attach per-endpoint instrumentation (builder style). Every
    /// clone made afterwards shares the same metric handles.
    pub fn with_metrics(mut self, metrics: Arc<EndpointMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The instrumentation attached via [`Self::with_metrics`], if any.
    pub fn metrics(&self) -> Option<&Arc<EndpointMetrics>> {
        self.metrics.as_ref()
    }

    /// Failure injection: mark the server unreachable (or back up).
    /// Affects every clone of this endpoint — all clients see the
    /// outage.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, std::sync::atomic::Ordering::SeqCst);
    }

    /// Direct access to the underlying service for test setup and
    /// inspection (not part of the RPC surface).
    pub fn with_service<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut lock_ignoring_poison(&self.svc))
    }
}

impl<S: Service> Endpoint<S::Req, S::Resp> for SimEndpoint<S> {
    fn call(&self, ctx: &mut CallCtx, req: S::Req) -> S::Resp {
        debug_assert!(!self.is_down(), "call to a down endpoint");
        let op = self.metrics.as_ref().map(|m| {
            m.begin();
            (S::req_label(&req), Instant::now())
        });
        let mut svc = lock_ignoring_poison(&self.svc);
        let queue_wait = op.as_ref().map(|(_, t0)| t0.elapsed().as_nanos() as Nanos);
        let resp = svc.handle(req);
        let service = svc.take_cost();
        drop(svc);
        ctx.record(self.id, service);
        if let (Some(m), Some((label, _))) = (&self.metrics, op) {
            m.observe(label, service, queue_wait.unwrap_or(0));
        }
        resp
    }

    fn id(&self) -> ServerId {
        self.id
    }

    fn is_down(&self) -> bool {
        self.down.load(std::sync::atomic::Ordering::SeqCst)
    }
}

#[cfg(test)]
pub(crate) mod test_service {
    use super::*;
    use loco_sim::time::CostAcc;

    /// Toy echo service used by endpoint tests: replies with the sum and
    /// charges `cost_per_req` per request.
    pub struct Adder {
        pub total: u64,
        pub cost_per_req: Nanos,
        pub acc: CostAcc,
    }

    impl Adder {
        pub fn new(cost_per_req: Nanos) -> Self {
            Self {
                total: 0,
                cost_per_req,
                acc: CostAcc::new(),
            }
        }
    }

    impl Service for Adder {
        type Req = u64;
        type Resp = u64;

        fn handle(&mut self, req: u64) -> u64 {
            self.total += req;
            self.acc.charge(self.cost_per_req);
            self.total
        }

        fn take_cost(&mut self) -> Nanos {
            self.acc.take()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_service::Adder;
    use super::*;
    use loco_sim::time::MICROS;

    #[test]
    fn sim_endpoint_executes_and_records() {
        let ep = SimEndpoint::new(ServerId::new(3, 7), Adder::new(5 * MICROS));
        let mut ctx = CallCtx::new();
        assert_eq!(ep.call(&mut ctx, 10), 10);
        assert_eq!(ep.call(&mut ctx, 5), 15);
        assert_eq!(ctx.round_trips(), 2);
        assert_eq!(ctx.visits()[0].server, ServerId::new(3, 7));
        assert_eq!(ctx.visits()[0].service, 5 * MICROS);
    }

    #[test]
    fn clones_share_server_state() {
        let ep = SimEndpoint::new(ServerId::new(0, 0), Adder::new(0));
        let ep2 = ep.clone();
        let mut ctx = CallCtx::new();
        ep.call(&mut ctx, 1);
        assert_eq!(ep2.call(&mut ctx, 1), 2);
    }

    #[test]
    fn trace_drains_ctx() {
        let ep = SimEndpoint::new(ServerId::new(0, 0), Adder::new(MICROS));
        let mut ctx = CallCtx::new();
        ep.call(&mut ctx, 1);
        ctx.charge_client(500);
        let trace = ctx.take_trace();
        assert_eq!(trace.visits.len(), 1);
        assert_eq!(trace.client_work, 500);
        assert_eq!(ctx.round_trips(), 0);
        assert_eq!(ctx.take_trace().visits.len(), 0);
    }

    #[test]
    fn unloaded_latency_counts_round_trips() {
        let ep = SimEndpoint::new(ServerId::new(0, 0), Adder::new(MICROS));
        let mut ctx = CallCtx::new();
        ep.call(&mut ctx, 1);
        ep.call(&mut ctx, 1);
        let t = ctx.take_trace();
        let rtt = 174 * MICROS;
        assert_eq!(t.unloaded_latency(rtt), 2 * rtt + 2 * MICROS);
    }

    #[test]
    fn down_flag_is_shared_across_clones() {
        let ep = SimEndpoint::new(ServerId::new(0, 0), Adder::new(0));
        let clone = ep.clone();
        assert!(!ep.is_down());
        clone.set_down(true);
        assert!(ep.is_down(), "clones share the outage flag");
        ep.set_down(false);
        assert!(!clone.is_down());
    }

    #[test]
    fn with_service_allows_inspection() {
        let ep = SimEndpoint::new(ServerId::new(0, 0), Adder::new(0));
        let mut ctx = CallCtx::new();
        ep.call(&mut ctx, 41);
        ep.call(&mut ctx, 1);
        assert_eq!(ep.with_service(|s| s.total), 42);
    }
}
